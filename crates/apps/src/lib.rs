//! # lcs-apps
//!
//! Distributed optimization via low-congestion shortcuts — the paper's
//! §4 applications, built on the partwise-aggregation primitive:
//!
//! * [`mst`] — MST in `Õ(k_D)` rounds via Boruvka over shortcuts
//!   (Corollary 1.2), verified edge-for-edge against Kruskal;
//! * [`mincut`] — (1+ε)-approximate min cut via Karger skeletons and
//!   greedy tree packing (Corollary 1.2), verified against Stoer–Wagner;
//! * [`sssp`] — shortcut-accelerated shortest-path upper bounds
//!   (demonstrating Corollary 4.2's mechanism);
//! * [`two_ecss`](mod@two_ecss) — O(log n)-approximate weighted 2-ECSS
//!   (Corollary 4.3).
//!
//! ## Example
//!
//! ```
//! use lcs_apps::{mst_via_shortcuts, MstConfig};
//! use lcs_graph::{HighwayGraph, HighwayParams, WeightedGraph, kruskal};
//!
//! let hw = HighwayGraph::new(HighwayParams {
//!     num_paths: 3, path_len: 16, diameter: 4,
//! }).unwrap();
//! let mut rng = <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(1);
//! let wg = WeightedGraph::with_random_weights(hw.graph().clone(), 100, &mut rng);
//! let out = mst_via_shortcuts(&wg, &MstConfig { diameter: Some(4), ..Default::default() }).unwrap();
//! assert_eq!(out.weight, kruskal(&wg).weight);
//! ```

#![warn(missing_docs)]

pub mod mincut;
pub mod mst;
pub mod sssp;
pub mod two_ecss;

pub use mincut::{
    approximate_min_cut, approximation_ratio, min_respecting_cut, MinCutConfig, MinCutError,
    MinCutOutcome,
};
pub use mst::{
    assert_matches_kruskal, mst_via_shortcuts, MstConfig, MstError, MstOutcome, PhaseCost,
    ShortcutStrategy,
};
pub use sssp::{
    bellman_ford_rounds, shortcut_sssp, shortcut_sssp_simulated, SimulatedSsspOutcome, SsspOutcome,
};
pub use two_ecss::{two_ecss, verify_two_ecss, TwoEcssError, TwoEcssOutcome};
