//! (1+ε)-approximate minimum cut via tree packing
//! (Corollary 1.2 / Fact 4.1, Theorem 7.6.1 of Ghaffari's thesis;
//! algorithmic core from Karger '96 / Thorup).
//!
//! Pipeline:
//!
//! 1. **Skeleton** — sample each edge with probability
//!    `p = min(1, c₀·ln n / (ε²·ĉ))` (Karger sparsification): cuts are
//!    preserved to `(1 ± ε)` w.h.p. while the skeleton min cut drops to
//!    `O(log n / ε²)`, so few trees suffice.
//! 2. **Greedy tree packing** — repeatedly take a minimum spanning tree
//!    of the skeleton w.r.t. edge *loads* (times used so far). Karger:
//!    w.h.p. some packed tree 2-respects a `(1+ε)`-minimum cut.
//! 3. **Respecting cuts** — for each packed tree, compute the exact
//!    minimum 1-respecting and 2-respecting cut *of the original
//!    weighted graph*: `cut1[v]` via subtree sums and
//!    `cut2(u,v) = cut1[u] + cut1[v] − 2·M[u][v]`, where `M[u][v]`
//!    accumulates, for every edge, the pairs of tree-path nodes it
//!    co-crosses (an edge `(x,y)` crosses exactly the subtrees rooted
//!    along the tree path `x⇝y`).
//! 4. The estimate `ĉ` is settled by a doubling loop (start at the
//!    minimum degree cut; re-run once if the found cut is much smaller).
//!
//! Distributed cost accounting: each packed tree costs one
//! MST-via-shortcuts computation plus one partwise aggregation for the
//! subtree sums (`Õ(k_D)` each); the `O(n²)` 2-respecting scan is
//! evaluated centrally with its round cost charged per GH16's
//! distributed implementation — see DESIGN.md (substitutions).

use crate::mst::{mst_via_shortcuts, MstConfig, MstError};
use lcs_congest::{ceil_log2, FaultPlan, SimError};
use lcs_core::{detect_and_excise, DegradedOutcome};
use lcs_graph::{kruskal, stoer_wagner, Graph, NodeId, WeightedGraph};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// Min-cut configuration.
#[derive(Debug, Clone)]
pub struct MinCutConfig {
    /// Approximation slack ε.
    pub epsilon: f64,
    /// Seed for skeleton sampling.
    pub seed: u64,
    /// Sparsification constant `c₀` (theory wants ~12; smaller is
    /// faster and usually still exact at bench scales).
    pub sampling_constant: f64,
    /// Number of packed trees per estimate round (`None` = `⌈3·ln n⌉`).
    pub trees: Option<usize>,
    /// MST configuration used when accounting distributed rounds. In
    /// [`ExecutionMode::Simulated`](lcs_congest::ExecutionMode) the MST
    /// subroutine runs all of its Boruvka aggregations through one
    /// engine [`Session`](lcs_congest::Session) (its `shards` field
    /// sizes the session's worker pool).
    pub mst: MstConfig,
}

impl Default for MinCutConfig {
    fn default() -> Self {
        MinCutConfig {
            epsilon: 0.2,
            seed: 0xCA7,
            sampling_constant: 6.0,
            trees: None,
            mst: MstConfig::default(),
        }
    }
}

/// Min-cut failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MinCutError {
    /// Graph has fewer than two nodes or is disconnected.
    NotCuttable,
    /// Propagated MST error (round accounting).
    Mst(MstError),
    /// Fault-handling failure (detection phase).
    Sim(SimError),
}

impl fmt::Display for MinCutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MinCutError::NotCuttable => write!(f, "graph has no proper cut (n < 2)"),
            MinCutError::Mst(e) => write!(f, "mst subroutine failed: {e}"),
            MinCutError::Sim(e) => write!(f, "fault handling failed: {e}"),
        }
    }
}

impl std::error::Error for MinCutError {}

impl From<MstError> for MinCutError {
    fn from(e: MstError) -> Self {
        MinCutError::Mst(e)
    }
}

/// Result of the approximate min cut.
#[derive(Debug, Clone)]
pub struct MinCutOutcome {
    /// The best cut weight found.
    pub weight: u64,
    /// One side of the best cut found.
    pub side: Vec<NodeId>,
    /// Trees packed in total.
    pub trees_packed: usize,
    /// Rounds charged (tree computations + aggregations).
    pub total_rounds: u64,
    /// Estimate-loop iterations.
    pub estimate_iterations: u32,
    /// Present iff the run was configured with a
    /// [`FaultPlan`](MstConfig::faults) on its MST subroutine: what
    /// graceful degradation excised and cost.
    pub degraded: Option<DegradedOutcome>,
}

/// A rooted tree view with Euler intervals for subtree tests.
struct RootedTree {
    parent: Vec<Option<NodeId>>,
    tin: Vec<u32>,
    tout: Vec<u32>,
    order: Vec<NodeId>, // nodes in DFS order
}

impl RootedTree {
    fn new(g_edges: &[(NodeId, NodeId)], n: usize, root: NodeId) -> Self {
        let mut adj: Vec<Vec<NodeId>> = vec![Vec::new(); n];
        for &(u, v) in g_edges {
            adj[u as usize].push(v);
            adj[v as usize].push(u);
        }
        let mut parent = vec![None; n];
        let mut tin = vec![0u32; n];
        let mut tout = vec![0u32; n];
        let mut order = Vec::with_capacity(n);
        let mut clock = 0u32;
        // Iterative DFS.
        let mut stack: Vec<(NodeId, usize, bool)> = vec![(root, 0, false)];
        let mut visited = vec![false; n];
        visited[root as usize] = true;
        while let Some((v, idx, _)) = stack.pop() {
            if idx == 0 {
                tin[v as usize] = clock;
                clock += 1;
                order.push(v);
            }
            if idx < adj[v as usize].len() {
                stack.push((v, idx + 1, true));
                let w = adj[v as usize][idx];
                if !visited[w as usize] {
                    visited[w as usize] = true;
                    parent[w as usize] = Some(v);
                    stack.push((w, 0, false));
                }
            } else {
                tout[v as usize] = clock;
            }
        }
        RootedTree {
            parent,
            tin,
            tout,
            order,
        }
    }

    /// Is `x` in the subtree of `v`?
    #[inline]
    fn in_subtree(&self, v: NodeId, x: NodeId) -> bool {
        self.tin[v as usize] <= self.tin[x as usize] && self.tin[x as usize] < self.tout[v as usize]
    }

    /// Tree path from `x` up to the root as node list.
    fn path_to_root(&self, x: NodeId) -> Vec<NodeId> {
        let mut path = vec![x];
        let mut cur = x;
        while let Some(p) = self.parent[cur as usize] {
            path.push(p);
            cur = p;
        }
        path
    }

    /// Nodes `v` (≠ root) whose subtree the edge `(x, y)` crosses: the
    /// nodes strictly on the tree path between `x` and `y`, excluding
    /// their LCA.
    fn crossing_nodes(&self, x: NodeId, y: NodeId) -> Vec<NodeId> {
        let px = self.path_to_root(x);
        let py = self.path_to_root(y);
        // Find LCA: deepest common suffix element.
        let mut ix = px.len();
        let mut iy = py.len();
        while ix > 0 && iy > 0 && px[ix - 1] == py[iy - 1] {
            ix -= 1;
            iy -= 1;
        }
        let mut nodes: Vec<NodeId> = Vec::with_capacity(ix + iy);
        nodes.extend_from_slice(&px[..ix]);
        nodes.extend_from_slice(&py[..iy]);
        nodes
    }
}

/// Exact minimum 1- or 2-respecting cut of `wg` with respect to the
/// spanning tree given by `tree_edges`. Returns `(weight, side)`.
pub fn min_respecting_cut(
    wg: &WeightedGraph,
    tree_edges: &[(NodeId, NodeId)],
    root: NodeId,
) -> (u64, Vec<NodeId>) {
    let g = wg.graph();
    let n = g.n();
    let t = RootedTree::new(tree_edges, n, root);

    // cut1[v] (v ≠ root) and the co-crossing matrix M.
    let mut cut1 = vec![0u64; n];
    let mut m = vec![0u64; n * n];
    for e in g.edge_ids() {
        let (x, y) = g.edge_endpoints(e);
        let w = wg.weight(e);
        let crossing = t.crossing_nodes(x, y);
        for &u in &crossing {
            cut1[u as usize] += w;
        }
        for &u in &crossing {
            for &v in &crossing {
                m[u as usize * n + v as usize] += w;
            }
        }
    }

    // 1-respecting.
    let mut best = u64::MAX;
    let mut best_side: Vec<NodeId> = Vec::new();
    let subtree_side =
        |v: NodeId| -> Vec<NodeId> { (0..n as u32).filter(|&x| t.in_subtree(v, x)).collect() };
    for &v in &t.order {
        if v == root {
            continue;
        }
        if cut1[v as usize] < best {
            best = cut1[v as usize];
            best_side = subtree_side(v);
        }
    }
    // 2-respecting.
    for &u in &t.order {
        if u == root {
            continue;
        }
        for &v in &t.order {
            if v == root || t.tin[v as usize] <= t.tin[u as usize] {
                continue; // enumerate unordered pairs once
            }
            let c2 = cut1[u as usize] + cut1[v as usize] - 2 * m[u as usize * n + v as usize];
            if c2 < best && c2 > 0 {
                // Side = S_u Δ S_v.
                let su: std::collections::HashSet<NodeId> = subtree_side(u).into_iter().collect();
                let sv: std::collections::HashSet<NodeId> = subtree_side(v).into_iter().collect();
                let side: Vec<NodeId> = su.symmetric_difference(&sv).copied().collect();
                if !side.is_empty() && side.len() < n {
                    best = c2;
                    best_side = side;
                }
            }
        }
    }
    (best, best_side)
}

/// Greedy tree packing: `count` spanning trees of `skeleton`, each a
/// minimum spanning tree with respect to current edge loads.
fn pack_trees(skeleton: &Graph, count: usize) -> Vec<Vec<(NodeId, NodeId)>> {
    let mut loads: Vec<u64> = vec![0; skeleton.m()];
    let mut trees = Vec::with_capacity(count);
    for _ in 0..count {
        let wg = WeightedGraph::new(skeleton.clone(), loads.clone())
            .expect("load vector sized to skeleton");
        let msf = kruskal(&wg);
        let edges: Vec<(NodeId, NodeId)> = msf
            .edges
            .iter()
            .map(|&e| skeleton.edge_endpoints(e))
            .collect();
        for &e in &msf.edges {
            loads[e.index()] += 1;
        }
        trees.push(edges);
    }
    trees
}

/// Runs the (1+ε)-approximate min cut.
///
/// With a [`FaultPlan`](MstConfig::faults) attached to `cfg.mst`,
/// crash-stopped nodes are detected and excised first (see
/// [`lcs_core::degrade`]) and the cut is computed on the surviving
/// subgraph — the returned side carries **original** node ids and the
/// outcome a [`DegradedOutcome`].
///
/// # Errors
///
/// [`MinCutError::NotCuttable`] for `n < 2` or disconnected inputs (or
/// fewer than two survivors after excision);
/// [`MinCutError::Sim`] when the detection phase fails.
pub fn approximate_min_cut(
    wg: &WeightedGraph,
    cfg: &MinCutConfig,
) -> Result<MinCutOutcome, MinCutError> {
    let g = wg.graph();
    let n = g.n();
    if n < 2 || !lcs_graph::is_connected(g) {
        return Err(MinCutError::NotCuttable);
    }
    if let Some(plan) = &cfg.mst.faults {
        return degraded_min_cut(wg, cfg, &plan.clone());
    }
    let ln_n = (n as f64).ln().max(1.0);
    let trees_per_round = cfg.trees.unwrap_or((3.0 * ln_n).ceil() as usize).max(1);

    // Initial estimate: minimum degree cut.
    let mut best: u64 = u64::MAX;
    let mut best_side: Vec<NodeId> = Vec::new();
    for v in g.nodes() {
        let deg_cut: u64 = g.neighbors_with_edges(v).map(|(_, e)| wg.weight(e)).sum();
        if deg_cut < best {
            best = deg_cut;
            best_side = vec![v];
        }
    }

    // Round cost of one MST-via-shortcuts (used per packed tree).
    let mst_probe = mst_via_shortcuts(wg, &cfg.mst)?;
    let per_tree_rounds = mst_probe.total_rounds
        + 2 * (ceil_log2(n) as u64) * (mst_probe.total_rounds / mst_probe.phases.max(1) as u64);

    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut total_rounds = 0u64;
    let mut trees_packed = 0usize;
    let mut iterations = 0u32;
    let mut estimate = best.max(1);
    loop {
        iterations += 1;
        // Skeleton: weighted sampling — edge kept with probability
        // 1 − (1−p)^w (a weight-w bundle of parallel unit edges).
        let p =
            (cfg.sampling_constant * ln_n / (cfg.epsilon * cfg.epsilon * estimate as f64)).min(1.0);
        let kept: Vec<(NodeId, NodeId)> = g
            .edge_ids()
            .filter(|&e| {
                let w = wg.weight(e) as f64;
                let keep_prob = 1.0 - (1.0 - p).powf(w);
                rng.gen_bool(keep_prob.clamp(0.0, 1.0))
            })
            .map(|e| g.edge_endpoints(e))
            .collect();
        let skeleton = Graph::from_edges(n, &kept).expect("skeleton nodes in range");
        if !lcs_graph::is_connected(&skeleton) {
            // Sampling too sparse (estimate too big): the min cut is
            // tiny; halve the estimate and retry.
            estimate = (estimate / 2).max(1);
            if p >= 1.0 {
                break; // skeleton == G and still disconnected: impossible here
            }
            continue;
        }
        // Pack trees and evaluate respecting cuts on the ORIGINAL graph.
        let trees = pack_trees(&skeleton, trees_per_round);
        trees_packed += trees.len();
        total_rounds += trees.len() as u64 * per_tree_rounds;
        for tree in &trees {
            let (w, side) = min_respecting_cut(wg, tree, 0);
            if w < best && !side.is_empty() && side.len() < n {
                best = w;
                best_side = side;
            }
        }
        // Doubling loop: if the found cut is much smaller than the
        // estimate the sampling rate was off; re-run with the better
        // estimate. Otherwise we are done.
        if best >= estimate / 2 || p >= 1.0 {
            break;
        }
        estimate = best.max(1);
        if iterations > 40 {
            break;
        }
    }

    Ok(MinCutOutcome {
        weight: best,
        side: best_side,
        trees_packed,
        total_rounds,
        estimate_iterations: iterations,
        degraded: None,
    })
}

/// Fault-tolerant wrapper: detect crash-stops on the faulty network,
/// excise the dead, and pack trees on the surviving subgraph (which the
/// detection BFS guarantees is connected). The inner MST subroutine
/// re-derives the diameter (`diameter: None`) because excision can
/// lengthen shortest paths; detection rounds are charged on top.
fn degraded_min_cut(
    wg: &WeightedGraph,
    cfg: &MinCutConfig,
    plan: &FaultPlan,
) -> Result<MinCutOutcome, MinCutError> {
    let g = wg.graph();
    let exc = detect_and_excise(g, plan, cfg.mst.seed, cfg.mst.shards).map_err(MinCutError::Sim)?;

    if exc.is_trivial() {
        let inner = MinCutConfig {
            mst: MstConfig {
                faults: None,
                ..cfg.mst.clone()
            },
            ..cfg.clone()
        };
        let mut out = approximate_min_cut(wg, &inner)?;
        out.total_rounds += exc.extra_rounds;
        out.degraded = Some(exc.outcome());
        return Ok(out);
    }

    if exc.survivors.len() < 2 {
        return Err(MinCutError::NotCuttable);
    }
    let inner = MinCutConfig {
        mst: MstConfig {
            faults: None,
            diameter: None, // excision can stretch the diameter
            ..cfg.mst.clone()
        },
        ..cfg.clone()
    };
    let sub_wg = exc.induced_weighted(wg);
    let sub = approximate_min_cut(&sub_wg, &inner)?;
    let side: Vec<NodeId> = sub
        .side
        .iter()
        .map(|&v| exc.survivors[v as usize])
        .collect();
    Ok(MinCutOutcome {
        weight: sub.weight,
        side,
        trees_packed: sub.trees_packed,
        total_rounds: sub.total_rounds + exc.extra_rounds,
        estimate_iterations: sub.estimate_iterations,
        degraded: Some(exc.outcome()),
    })
}

/// Convenience: ratio between the approximate result and the exact
/// Stoer–Wagner cut.
pub fn approximation_ratio(wg: &WeightedGraph, outcome: &MinCutOutcome) -> f64 {
    let exact = stoer_wagner(wg).map(|c| c.weight).unwrap_or(0);
    if exact == 0 {
        return 1.0;
    }
    outcome.weight as f64 / exact as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::{cut_weight, gnp_connected, HighwayGraph, HighwayParams};

    fn weighted_fixture(seed: u64) -> WeightedGraph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = gnp_connected(40, 0.12, &mut rng);
        WeightedGraph::with_random_weights(g, 20, &mut rng)
    }

    #[test]
    fn respecting_cut_on_a_path_tree_is_exact() {
        // Graph = weighted cycle; tree = the path (cycle minus one
        // edge). Every cut of a cycle is 2-respecting w.r.t. that path.
        let wg = WeightedGraph::from_weighted_edges(
            5,
            &[(0, 1, 3), (1, 2, 1), (2, 3, 5), (3, 4, 2), (4, 0, 4)],
        )
        .unwrap();
        let tree: Vec<(NodeId, NodeId)> = vec![(0, 1), (1, 2), (2, 3), (3, 4)];
        let (w, side) = min_respecting_cut(&wg, &tree, 0);
        let exact = stoer_wagner(&wg).unwrap().weight;
        assert_eq!(w, exact);
        assert_eq!(cut_weight(&wg, &side), w);
    }

    #[test]
    fn approx_matches_exact_on_bridge_graph() {
        let wg = WeightedGraph::from_weighted_edges(
            6,
            &[
                (0, 1, 9),
                (1, 2, 9),
                (2, 0, 9),
                (3, 4, 9),
                (4, 5, 9),
                (5, 3, 9),
                (2, 3, 2),
            ],
        )
        .unwrap();
        let cfg = MinCutConfig {
            mst: MstConfig {
                diameter: Some(3),
                ..MstConfig::default()
            },
            ..MinCutConfig::default()
        };
        let out = approximate_min_cut(&wg, &cfg).unwrap();
        assert_eq!(out.weight, 2);
        assert_eq!(cut_weight(&wg, &out.side), 2);
    }

    #[test]
    fn ratio_within_epsilon_on_random_graphs() {
        let mut worst: f64 = 1.0;
        for seed in 0..6 {
            let wg = weighted_fixture(seed);
            let cfg = MinCutConfig {
                epsilon: 0.25,
                seed,
                ..MinCutConfig::default()
            };
            let out = approximate_min_cut(&wg, &cfg).unwrap();
            // The returned side must evaluate to the claimed weight.
            assert_eq!(cut_weight(&wg, &out.side), out.weight, "seed {seed}");
            let r = approximation_ratio(&wg, &out);
            assert!(r >= 1.0 - 1e-9, "cannot beat the exact cut");
            worst = worst.max(r);
        }
        assert!(
            worst <= 1.25 + 1e-9,
            "worst ratio {worst} exceeded 1 + epsilon"
        );
    }

    #[test]
    fn highway_family_cut() {
        // The highway family's min cut is small (a path end column).
        let hw = HighwayGraph::new(HighwayParams {
            num_paths: 3,
            path_len: 16,
            diameter: 4,
        })
        .unwrap();
        let wg = WeightedGraph::new(hw.graph().clone(), vec![1; hw.graph().m()]).unwrap();
        let cfg = MinCutConfig {
            mst: MstConfig {
                diameter: Some(4),
                ..MstConfig::default()
            },
            ..MinCutConfig::default()
        };
        let out = approximate_min_cut(&wg, &cfg).unwrap();
        let exact = stoer_wagner(&wg).unwrap().weight;
        assert_eq!(out.weight, exact);
        assert!(out.total_rounds > 0);
        assert!(out.trees_packed > 0);
    }

    #[test]
    fn degraded_min_cut_excises_and_matches_stoer_wagner() {
        use lcs_congest::{Crash, FaultPlan};
        // Two weight-9 triangles joined by a weight-2 bridge; node 4
        // (in the right triangle) crash-stops under lossy, corrupting
        // links. The survivors stay connected through the bridge.
        let wg = WeightedGraph::from_weighted_edges(
            6,
            &[
                (0, 1, 9),
                (1, 2, 9),
                (2, 0, 9),
                (3, 4, 9),
                (4, 5, 9),
                (5, 3, 9),
                (2, 3, 2),
            ],
        )
        .unwrap();
        let plan = FaultPlan {
            drop_rate: 0.05,
            corrupt_rate: 0.05,
            crashes: vec![Crash {
                node: 4,
                at_round: 0,
                recover_at: None,
            }],
            ..FaultPlan::default()
        };
        let cfg = MinCutConfig {
            mst: MstConfig {
                diameter: Some(3),
                faults: Some(plan),
                ..MstConfig::default()
            },
            ..MinCutConfig::default()
        };
        let out = approximate_min_cut(&wg, &cfg).unwrap();
        let deg = out
            .degraded
            .as_ref()
            .expect("fault plan reports degradation");
        assert_eq!(deg.excluded_nodes, vec![4]);
        assert!(deg.extra_rounds > 0);
        assert!(out.side.iter().all(|&v| v != 4), "excised node in no side");

        // Differential reference: Stoer–Wagner on the survivors'
        // induced subgraph (survivors 0,1,2,3,5 → sub ids 0..=4).
        let sub = WeightedGraph::from_weighted_edges(
            5,
            &[(0, 1, 9), (1, 2, 9), (0, 2, 9), (3, 4, 9), (2, 3, 2)],
        )
        .unwrap();
        let exact = stoer_wagner(&sub).unwrap().weight;
        assert_eq!(out.weight, exact);
        assert_eq!(out.weight, 2, "the bridge is still the min cut");
        let side_sub: Vec<NodeId> = out
            .side
            .iter()
            .map(|&v| if v == 5 { 4 } else { v })
            .collect();
        assert_eq!(cut_weight(&sub, &side_sub), out.weight);
    }

    #[test]
    fn degraded_min_cut_without_permanent_crashes_matches_fault_free() {
        use lcs_congest::FaultPlan;
        let wg = weighted_fixture(3);
        let clean_cfg = MinCutConfig {
            epsilon: 0.25,
            seed: 3,
            ..MinCutConfig::default()
        };
        let clean = approximate_min_cut(&wg, &clean_cfg).unwrap();
        let faulty_cfg = MinCutConfig {
            mst: MstConfig {
                faults: Some(FaultPlan {
                    drop_rate: 0.10,
                    corrupt_rate: 0.05,
                    ..FaultPlan::default()
                }),
                ..clean_cfg.mst.clone()
            },
            ..clean_cfg.clone()
        };
        let out = approximate_min_cut(&wg, &faulty_cfg).unwrap();
        assert_eq!(out.weight, clean.weight);
        assert_eq!(out.side, clean.side);
        let deg = out.degraded.expect("plan reports degradation");
        assert!(deg.excluded_nodes.is_empty());
        assert_eq!(out.total_rounds, clean.total_rounds + deg.extra_rounds);
    }

    #[test]
    fn rejects_uncuttable_inputs() {
        let single = WeightedGraph::from_weighted_edges(1, &[]).unwrap();
        assert_eq!(
            approximate_min_cut(&single, &MinCutConfig::default()).unwrap_err(),
            MinCutError::NotCuttable
        );
        let disc = WeightedGraph::from_weighted_edges(4, &[(0, 1, 1), (2, 3, 1)]).unwrap();
        assert_eq!(
            approximate_min_cut(&disc, &MinCutConfig::default()).unwrap_err(),
            MinCutError::NotCuttable
        );
    }
}

#[cfg(test)]
mod nested_tests {
    use super::*;
    use lcs_graph::cut_weight;

    #[test]
    fn two_respecting_nested_pair_is_found() {
        // Tree = path 0-1-2-3-4 rooted at 0. The min cut {1,2} crosses
        // tree edges (0,1) and (2,3): the 2-respecting pair is the
        // *nested* subtrees of 1 and 3 (side = S_1 Δ S_3 = {1,2}).
        let wg = WeightedGraph::from_weighted_edges(
            5,
            &[(0, 1, 1), (1, 2, 10), (2, 3, 1), (3, 4, 10), (0, 4, 10)],
        )
        .unwrap();
        let tree: Vec<(NodeId, NodeId)> = vec![(0, 1), (1, 2), (2, 3), (3, 4)];
        let (w, side) = min_respecting_cut(&wg, &tree, 0);
        assert_eq!(w, 2);
        let mut side = side;
        side.sort_unstable();
        assert!(side == vec![1, 2] || side == vec![0, 3, 4]);
        assert_eq!(cut_weight(&wg, &side), 2);
        // Exact reference agrees.
        assert_eq!(stoer_wagner(&wg).unwrap().weight, 2);
    }

    #[test]
    fn one_respecting_beats_two_respecting_when_optimal_is_a_subtree() {
        // Min cut isolates node 4 (subtree of the path tree): a pure
        // 1-respecting cut.
        let wg = WeightedGraph::from_weighted_edges(
            5,
            &[(0, 1, 10), (1, 2, 10), (2, 3, 10), (3, 4, 1), (0, 4, 1)],
        )
        .unwrap();
        let tree: Vec<(NodeId, NodeId)> = vec![(0, 1), (1, 2), (2, 3), (3, 4)];
        let (w, side) = min_respecting_cut(&wg, &tree, 0);
        assert_eq!(w, 2);
        assert!(side == vec![4] || side.len() == 4);
    }
}
