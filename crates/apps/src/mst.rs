//! Distributed MST via Boruvka over low-congestion shortcuts
//! (Corollary 1.2 / Fact 4.1 of the paper; framework from Ghaffari's
//! thesis, Theorem 6.1.2).
//!
//! Boruvka runs `O(log n)` phases. In each phase the current MST
//! fragments are the parts; shortcuts are (re)built for them; every
//! fragment finds its minimum-weight outgoing edge (MWOE) by a partwise
//! aggregation over the augmented fragment trees; the MWOE edges merge
//! fragments. Each phase costs one shortcut construction plus `O(1)`
//! aggregations, so the round complexity is `Õ(quality)` per phase and
//! `Õ(k_D)` overall on constant-diameter graphs.
//!
//! Tie-breaking by `(weight, edge id)` makes the MST unique and equal,
//! edge for edge, to the Kruskal reference in `lcs-graph`.
//!
//! Execution modes:
//! * [`ExecutionMode::Simulated`] — MWOE aggregations run through the
//!   CONGEST simulator (message-for-message); shortcut construction
//!   rounds are charged from the distributed construction's budget.
//! * [`ExecutionMode::Accounted`] — aggregations charged via the
//!   scheduler theorem from measured tree congestion/dilation.
//!
//! Fragment-merge bookkeeping (leader relabeling) is charged as one
//! extra aggregation sweep per phase (see DESIGN.md substitutions).

use lcs_congest::{AggOp, ExecutionMode, FaultPlan, Session, SimConfig, SimError};
use lcs_core::{
    centralized_shortcuts, detect_and_excise, prune_to_trees, DegradedOutcome, KpParams,
    LargenessRule, OracleMode, ParamError,
};
use lcs_graph::{exact_diameter, kruskal, EdgeId, NodeId, UnionFind, WeightedGraph};
use lcs_shortcut::{
    global_tree_shortcuts, trivial_shortcuts, AggregationSetup, Partition, PartitionError,
    ShortcutSet,
};
use std::fmt;

/// Which shortcut construction feeds each Boruvka phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShortcutStrategy {
    /// Kogan–Parter sampling shortcuts (`Õ(k_D)` quality).
    KoganParter,
    /// Folklore global-BFS-tree shortcuts (`O(D + √n)` quality).
    GlobalTree,
    /// No shortcuts (`H_i = ∅`): dilation = fragment diameter.
    Trivial,
}

impl fmt::Display for ShortcutStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShortcutStrategy::KoganParter => write!(f, "kogan-parter"),
            ShortcutStrategy::GlobalTree => write!(f, "global-tree"),
            ShortcutStrategy::Trivial => write!(f, "trivial"),
        }
    }
}

/// MST configuration.
#[derive(Debug, Clone)]
pub struct MstConfig {
    /// Seed for shortcut sampling and the simulator.
    pub seed: u64,
    /// Shortcut construction per phase.
    pub strategy: ShortcutStrategy,
    /// Simulated or accounted execution.
    pub execution: ExecutionMode,
    /// Known diameter (skips re-deriving it; required for
    /// [`ShortcutStrategy::KoganParter`] parameters — pass the measured
    /// graph diameter).
    pub diameter: Option<u32>,
    /// Probability constant for the KP sampling.
    pub prob_constant: f64,
    /// Engine shards for simulated execution ([`SimConfig::shards`]);
    /// `0` (the default) auto-sizes to the machine. Any value is
    /// bit-identical.
    pub shards: usize,
    /// Fault plan for the network ([`SimConfig::faults`]). With a plan
    /// attached, a detection phase (reliable BFS + census convergecast
    /// on the faulty network) excises permanently crashed nodes and
    /// anything they disconnect; Boruvka then computes the MST of the
    /// **surviving component** and reports a
    /// [`DegradedOutcome`].
    pub faults: Option<FaultPlan>,
}

impl Default for MstConfig {
    fn default() -> Self {
        MstConfig {
            seed: 0xB0B,
            strategy: ShortcutStrategy::KoganParter,
            execution: ExecutionMode::Accounted,
            diameter: None,
            prob_constant: 1.0,
            shards: 0,
            faults: None,
        }
    }
}

/// Why the MST computation failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MstError {
    /// Fragment partition became invalid (internal error).
    Partition(PartitionError),
    /// Parameter failure.
    Params(ParamError),
    /// Simulator failure.
    Sim(SimError),
    /// The MWOE encoding needs `weight < 2^38` and `edge id < 2^26`.
    EncodingOverflow,
}

impl fmt::Display for MstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MstError::Partition(e) => write!(f, "fragment partition invalid: {e}"),
            MstError::Params(e) => write!(f, "parameter error: {e}"),
            MstError::Sim(e) => write!(f, "simulator error: {e}"),
            MstError::EncodingOverflow => {
                write!(f, "weight/edge-id exceed the MWOE message encoding")
            }
        }
    }
}

impl std::error::Error for MstError {}

impl From<PartitionError> for MstError {
    fn from(e: PartitionError) -> Self {
        MstError::Partition(e)
    }
}
impl From<ParamError> for MstError {
    fn from(e: ParamError) -> Self {
        MstError::Params(e)
    }
}
impl From<SimError> for MstError {
    fn from(e: SimError) -> Self {
        MstError::Sim(e)
    }
}

/// Per-phase cost breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseCost {
    /// Rounds charged/used to (re)build shortcuts for the fragments.
    pub shortcut_rounds: u64,
    /// Rounds charged/used by the MWOE aggregation and merge
    /// bookkeeping.
    pub aggregation_rounds: u64,
    /// Fragments alive at the start of the phase.
    pub fragments: usize,
}

/// MST result with cost accounting.
#[derive(Debug, Clone)]
pub struct MstOutcome {
    /// The MST/MSF edges, sorted by id.
    pub edges: Vec<EdgeId>,
    /// Total weight.
    pub weight: u64,
    /// Number of Boruvka phases.
    pub phases: u32,
    /// Total rounds across phases.
    pub total_rounds: u64,
    /// Total simulator messages (0 in accounted mode).
    pub messages: u64,
    /// Per-phase cost breakdown.
    pub phase_costs: Vec<PhaseCost>,
    /// Execution mode used.
    pub execution: ExecutionMode,
    /// Present iff the run was configured with a
    /// [`FaultPlan`](MstConfig::faults): what graceful degradation
    /// excised and cost.
    pub degraded: Option<DegradedOutcome>,
}

const EID_BITS: u32 = 26;

/// Encodes an MWOE candidate as one aggregate-able word:
/// `(weight << 26) | edge_id` — min over these words is min over
/// `(weight, edge id)`, matching [`lcs_graph::mst_key`].
fn encode(weight: u64, e: EdgeId) -> Option<u64> {
    if weight >= (1 << (63 - EID_BITS)) || e.0 as u64 >= (1 << EID_BITS) {
        return None;
    }
    Some((weight << EID_BITS) | e.0 as u64)
}

fn decode(word: u64) -> EdgeId {
    EdgeId((word & ((1 << EID_BITS) - 1)) as u32)
}

/// Computes the MST (or minimum spanning forest) of `wg` through the
/// shortcut framework, with full round accounting.
///
/// With a [`FaultPlan`](MstConfig::faults) attached, crash-stopped
/// nodes are detected and excised first and the MST is computed on the
/// surviving component (see [`MstConfig::faults`]).
///
/// # Errors
///
/// See [`MstError`].
pub fn mst_via_shortcuts(wg: &WeightedGraph, cfg: &MstConfig) -> Result<MstOutcome, MstError> {
    if wg.graph().n() > 0 {
        if let Some(plan) = &cfg.faults {
            return degraded_mst(wg, cfg, &plan.clone());
        }
    }
    mst_pipeline(wg, cfg)
}

/// The fault-free Boruvka pipeline.
fn mst_pipeline(wg: &WeightedGraph, cfg: &MstConfig) -> Result<MstOutcome, MstError> {
    let g = wg.graph();
    let n = g.n();
    if n == 0 {
        return Ok(MstOutcome {
            edges: vec![],
            weight: 0,
            phases: 0,
            total_rounds: 0,
            messages: 0,
            phase_costs: vec![],
            execution: cfg.execution,
            degraded: None,
        });
    }
    let diameter = match cfg.diameter {
        Some(d) => d,
        None => exact_diameter(g).unwrap_or(3).max(3),
    };
    let sim_cfg = SimConfig {
        seed: cfg.seed,
        shards: cfg.shards,
        ..SimConfig::default()
    };
    // One engine for every Boruvka phase's MWOE aggregation: the
    // session's pool and reverse-arc tables are built once, and its
    // cumulative stats give the whole run's message total.
    let mut session = match cfg.execution {
        ExecutionMode::Simulated => Some(Session::new(g, sim_cfg)),
        ExecutionMode::Accounted => None,
    };

    let mut uf = UnionFind::new(n);
    let mut mst_edges: Vec<EdgeId> = Vec::new();
    let mut weight = 0u64;
    let mut phase_costs: Vec<PhaseCost> = Vec::new();
    let mut total_rounds = 0u64;
    let mut messages = 0u64;

    for phase in 0..64 {
        // Fragment labels.
        let labels: Vec<u32> = (0..n as u32).map(|v| uf.find(v)).collect();
        let partition = Partition::from_labels(g, &labels)?;
        let fragments = partition.num_parts();
        if fragments <= 1 {
            break;
        }

        // Shortcuts for the fragments.
        let (shortcuts, shortcut_rounds): (ShortcutSet, u64) = match cfg.strategy {
            ShortcutStrategy::KoganParter => {
                let params = KpParams::new(n, diameter.max(3), cfg.prob_constant)?;
                let raw = centralized_shortcuts(
                    g,
                    &partition,
                    params,
                    cfg.seed ^ (phase as u64) << 32,
                    LargenessRule::Radius,
                    OracleMode::PerPart,
                );
                let pruned = prune_to_trees(g, &partition, &raw.shortcuts, params.depth_limit());
                // Charged at the distributed construction's budget
                // (`Õ(k_D)`); the simulated construction is exercised
                // separately in lcs-core tests/benches.
                (pruned.shortcuts, params.round_budget())
            }
            ShortcutStrategy::GlobalTree => {
                let s = global_tree_shortcuts(g, &partition, 0, None);
                (s, 2 * diameter as u64 + 2)
            }
            ShortcutStrategy::Trivial => (trivial_shortcuts(&partition), 0),
        };

        // MWOE values per node: min over incident outgoing edges.
        let setup = AggregationSetup::build(g, &partition, &shortcuts);
        let mut node_candidate: Vec<u64> = vec![u64::MAX; n];
        for v in 0..n as u32 {
            let fv = labels[v as usize];
            let mut best = u64::MAX;
            for (w, e) in g.neighbors_with_edges(v) {
                if labels[w as usize] != fv {
                    let word = encode(wg.weight(e), e).ok_or(MstError::EncodingOverflow)?;
                    best = best.min(word);
                }
            }
            node_candidate[v as usize] = best;
        }
        let value = |v: NodeId, part: usize| -> u64 {
            if partition.part_of(v) == Some(part as u32) {
                node_candidate[v as usize]
            } else {
                u64::MAX
            }
        };

        // One round for the fragment-label neighbor exchange.
        let mut aggregation_rounds = 1u64;
        let mwoe: Vec<u64> = match cfg.execution {
            ExecutionMode::Simulated => {
                let session = session.as_mut().expect("simulated mode has a session");
                let (roots, outcome) =
                    setup.aggregate_in_session(session, AggOp::Min, &value, true)?;
                aggregation_rounds += outcome.stats.rounds;
                messages += outcome.stats.messages;
                roots.into_iter().map(|r| r.unwrap_or(u64::MAX)).collect()
            }
            ExecutionMode::Accounted => {
                let res = setup.aggregate_centralized(AggOp::Min, &value);
                aggregation_rounds += 2 * setup.accounted_rounds(n);
                res
            }
        };
        // Merge bookkeeping: one extra aggregation sweep (leader
        // relabeling broadcast).
        aggregation_rounds += setup.accounted_rounds(n);

        // Merge.
        let mut merged_any = false;
        for (i, &word) in mwoe.iter().enumerate() {
            if word == u64::MAX {
                continue; // fragment has no outgoing edge (own component)
            }
            let e = decode(word);
            let (a, b) = g.edge_endpoints(e);
            let _ = i;
            if uf.union(a, b) {
                mst_edges.push(e);
                weight += wg.weight(e);
                merged_any = true;
            }
        }
        total_rounds += shortcut_rounds + aggregation_rounds;
        phase_costs.push(PhaseCost {
            shortcut_rounds,
            aggregation_rounds,
            fragments,
        });
        if !merged_any {
            break; // every remaining fragment is a full component
        }
    }

    debug_assert_eq!(
        session.as_ref().map_or(0, |s| s.stats().messages),
        messages,
        "session cumulative stats must equal the per-phase sum"
    );
    mst_edges.sort_unstable();
    Ok(MstOutcome {
        edges: mst_edges,
        weight,
        phases: phase_costs.len() as u32,
        total_rounds,
        messages,
        phase_costs,
        execution: cfg.execution,
        degraded: None,
    })
}

/// Fault-tolerant wrapper: detect crash-stops on the faulty network
/// (reliable BFS from node 0 + census convergecast over its tree),
/// excise the dead and anything they disconnect, and run Boruvka on the
/// surviving component. Detection rounds are charged as
/// [`DegradedOutcome::extra_rounds`]; the remaining phases run over the
/// reliable transport, whose outputs are byte-identical to fault-free
/// runs, so they are simulated fault-free.
fn degraded_mst(
    wg: &WeightedGraph,
    cfg: &MstConfig,
    plan: &FaultPlan,
) -> Result<MstOutcome, MstError> {
    let g = wg.graph();
    let exc = detect_and_excise(g, plan, cfg.seed, cfg.shards).map_err(MstError::Sim)?;
    let sub_cfg = MstConfig {
        faults: None,
        ..cfg.clone()
    };

    if exc.is_trivial() {
        // Nothing crash-stopped: the reliable layer absorbed the drops
        // and delays; Boruvka runs on the whole graph.
        let mut out = mst_pipeline(wg, &sub_cfg)?;
        out.total_rounds += exc.extra_rounds;
        out.messages += exc.messages;
        out.degraded = Some(exc.outcome());
        return Ok(out);
    }

    // ---- Excision: the MST of the surviving component. ---------------
    let sub_wg = exc.induced_weighted(wg);
    let sub = mst_pipeline(&sub_wg, &sub_cfg)?;

    // Map the tree back to original edge ids.
    let mut edges: Vec<EdgeId> = sub
        .edges
        .iter()
        .map(|&e| exc.original_edge(g, sub_wg.graph(), e))
        .collect();
    edges.sort_unstable();
    Ok(MstOutcome {
        edges,
        weight: sub.weight,
        phases: sub.phases,
        total_rounds: sub.total_rounds + exc.extra_rounds,
        messages: sub.messages + exc.messages,
        phase_costs: sub.phase_costs,
        execution: cfg.execution,
        degraded: Some(exc.outcome()),
    })
}

/// Convenience: assert the outcome equals the Kruskal reference.
/// Returns the common weight.
///
/// # Panics
///
/// Panics if the outcomes differ (edge-for-edge).
pub fn assert_matches_kruskal(wg: &WeightedGraph, outcome: &MstOutcome) -> u64 {
    let k = kruskal(wg);
    assert_eq!(outcome.weight, k.weight, "MST weight mismatch");
    assert_eq!(outcome.edges, k.edges, "MST edge set mismatch");
    k.weight
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::{gnp_connected, HighwayGraph, HighwayParams};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn highway_weighted(d: u32, paths: usize, len: usize, seed: u64) -> WeightedGraph {
        let hw = HighwayGraph::new(HighwayParams {
            num_paths: paths,
            path_len: len,
            diameter: d,
        })
        .unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        WeightedGraph::with_random_weights(hw.graph().clone(), 1000, &mut rng)
    }

    #[test]
    fn accounted_mst_matches_kruskal_on_highway() {
        let wg = highway_weighted(4, 4, 24, 1);
        let cfg = MstConfig {
            diameter: Some(4),
            ..MstConfig::default()
        };
        let out = mst_via_shortcuts(&wg, &cfg).unwrap();
        assert_matches_kruskal(&wg, &out);
        assert!(out.phases >= 1);
        assert!(out.total_rounds > 0);
    }

    #[test]
    fn simulated_mst_matches_kruskal() {
        let wg = highway_weighted(4, 3, 16, 2);
        let cfg = MstConfig {
            diameter: Some(4),
            execution: ExecutionMode::Simulated,
            ..MstConfig::default()
        };
        let out = mst_via_shortcuts(&wg, &cfg).unwrap();
        assert_matches_kruskal(&wg, &out);
        assert!(out.messages > 0, "simulated mode must exchange messages");
    }

    #[test]
    fn all_strategies_agree_on_the_tree() {
        let wg = highway_weighted(4, 3, 20, 3);
        let mut outs = Vec::new();
        for strategy in [
            ShortcutStrategy::KoganParter,
            ShortcutStrategy::GlobalTree,
            ShortcutStrategy::Trivial,
        ] {
            let cfg = MstConfig {
                strategy,
                diameter: Some(4),
                ..MstConfig::default()
            };
            outs.push(mst_via_shortcuts(&wg, &cfg).unwrap());
        }
        let k = kruskal(&wg);
        for o in &outs {
            assert_eq!(o.edges, k.edges);
        }
    }

    #[test]
    fn random_graphs_over_seeds() {
        for seed in 0..8 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let g = gnp_connected(60, 0.08, &mut rng);
            let wg = WeightedGraph::with_random_weights(g, 500, &mut rng);
            let cfg = MstConfig {
                seed,
                ..MstConfig::default()
            };
            let out = mst_via_shortcuts(&wg, &cfg).unwrap();
            assert_matches_kruskal(&wg, &out);
        }
    }

    #[test]
    fn disconnected_graph_yields_forest() {
        let wg =
            WeightedGraph::from_weighted_edges(6, &[(0, 1, 5), (1, 2, 2), (3, 4, 1), (4, 5, 9)])
                .unwrap();
        let cfg = MstConfig {
            diameter: Some(3),
            ..MstConfig::default()
        };
        let out = mst_via_shortcuts(&wg, &cfg).unwrap();
        let k = kruskal(&wg);
        assert_eq!(out.edges, k.edges);
        assert_eq!(out.weight, 17);
    }

    #[test]
    fn boruvka_phase_count_is_logarithmic() {
        let wg = highway_weighted(4, 4, 24, 5);
        let cfg = MstConfig {
            diameter: Some(4),
            ..MstConfig::default()
        };
        let out = mst_via_shortcuts(&wg, &cfg).unwrap();
        let n = wg.graph().n() as f64;
        assert!(
            (out.phases as f64) <= n.log2().ceil() + 1.0,
            "phases {}",
            out.phases
        );
        // Fragment counts strictly decrease.
        let frags: Vec<usize> = out.phase_costs.iter().map(|p| p.fragments).collect();
        assert!(frags.windows(2).all(|w| w[1] < w[0]));
    }

    #[test]
    fn empty_and_singleton() {
        let empty = WeightedGraph::from_weighted_edges(0, &[]).unwrap();
        let out = mst_via_shortcuts(&empty, &MstConfig::default()).unwrap();
        assert_eq!(out.weight, 0);
        let single = WeightedGraph::from_weighted_edges(1, &[]).unwrap();
        let out = mst_via_shortcuts(&single, &MstConfig::default()).unwrap();
        assert!(out.edges.is_empty());
    }

    #[test]
    fn degraded_mst_excises_crashed_part_and_matches_kruskal_on_survivors() {
        use lcs_congest::Crash;
        // Highway graph: 3 paths hanging off a small core. Crash every
        // node of one non-root path at round 0 — the whole part dies.
        let hw = HighwayGraph::new(HighwayParams {
            num_paths: 3,
            path_len: 16,
            diameter: 4,
        })
        .unwrap();
        let parts = hw.path_parts();
        let mut dead_part: Vec<NodeId> = parts[1].clone();
        dead_part.sort_unstable();
        assert!(!dead_part.contains(&0), "crash a non-root part");
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let wg = WeightedGraph::with_random_weights(hw.graph().clone(), 1000, &mut rng);
        let cfg = MstConfig {
            diameter: Some(4),
            faults: Some(FaultPlan {
                drop_rate: 0.05,
                delay_rate: 0.05,
                max_delay: 2,
                corrupt_rate: 0.05,
                crashes: dead_part
                    .iter()
                    .map(|&v| Crash {
                        node: v,
                        at_round: 0,
                        recover_at: None,
                    })
                    .collect(),
                fault_seed: 0xDEAD,
            }),
            ..MstConfig::default()
        };
        let out = mst_via_shortcuts(&wg, &cfg).unwrap();
        let deg = out
            .degraded
            .as_ref()
            .expect("faulty run reports degradation");
        assert!(deg.completed);
        assert_eq!(
            deg.excluded_nodes, dead_part,
            "excised exactly the dead part"
        );
        assert!(deg.extra_rounds > 0, "detection rounds are charged");
        // Reference: Kruskal on the surviving subgraph.
        let survivors: Vec<NodeId> = (0..wg.graph().n() as NodeId)
            .filter(|v| !dead_part.contains(v))
            .collect();
        let mut new_id = vec![u32::MAX; wg.graph().n()];
        for (i, &v) in survivors.iter().enumerate() {
            new_id[v as usize] = i as u32;
        }
        let sub_edges: Vec<(NodeId, NodeId, u64)> = wg
            .graph()
            .edges()
            .iter()
            .enumerate()
            .filter(|&(_, &(a, b))| {
                new_id[a as usize] != u32::MAX && new_id[b as usize] != u32::MAX
            })
            .map(|(e, &(a, b))| {
                (
                    new_id[a as usize],
                    new_id[b as usize],
                    wg.weight(EdgeId(e as u32)),
                )
            })
            .collect();
        let sub_wg = WeightedGraph::from_weighted_edges(survivors.len(), &sub_edges).unwrap();
        let k = kruskal(&sub_wg);
        assert_eq!(
            out.weight, k.weight,
            "MST weight on the surviving component"
        );
        assert_eq!(out.edges.len(), k.edges.len());
        // Same edges, modulo relabeling.
        let mapped: Vec<EdgeId> = {
            let mut v: Vec<EdgeId> = k
                .edges
                .iter()
                .map(|&e| {
                    let (a, b) = sub_wg.graph().edge_endpoints(e);
                    wg.graph()
                        .edge_between(survivors[a as usize], survivors[b as usize])
                        .unwrap()
                })
                .collect();
            v.sort_unstable();
            v
        };
        assert_eq!(out.edges, mapped);
        // No MST edge touches a dead node.
        for &e in &out.edges {
            let (a, b) = wg.graph().edge_endpoints(e);
            assert!(!dead_part.contains(&a) && !dead_part.contains(&b));
        }
    }

    #[test]
    fn degraded_mst_without_crashes_matches_fault_free() {
        let wg = highway_weighted(4, 3, 16, 4);
        let clean = mst_via_shortcuts(
            &wg,
            &MstConfig {
                diameter: Some(4),
                ..MstConfig::default()
            },
        )
        .unwrap();
        let cfg = MstConfig {
            diameter: Some(4),
            faults: Some(FaultPlan {
                drop_rate: 0.10,
                delay_rate: 0.10,
                max_delay: 2,
                corrupt_rate: 0.05,
                crashes: vec![],
                fault_seed: 5,
            }),
            ..MstConfig::default()
        };
        let out = mst_via_shortcuts(&wg, &cfg).unwrap();
        assert_eq!(out.edges, clean.edges, "drops/delays never change the MST");
        assert_eq!(out.weight, clean.weight);
        let deg = out.degraded.unwrap();
        assert!(deg.completed && deg.excluded_nodes.is_empty());
        assert!(
            out.total_rounds > clean.total_rounds,
            "detection is charged"
        );
    }

    #[test]
    fn crashing_the_root_is_rejected() {
        use lcs_congest::Crash;
        let wg = highway_weighted(4, 3, 16, 4);
        let cfg = MstConfig {
            diameter: Some(4),
            faults: Some(FaultPlan {
                crashes: vec![Crash {
                    node: 0,
                    at_round: 0,
                    recover_at: None,
                }],
                ..FaultPlan::default()
            }),
            ..MstConfig::default()
        };
        match mst_via_shortcuts(&wg, &cfg) {
            Err(MstError::Sim(SimError::FaultConfig { reason })) => {
                assert!(reason.contains("node 0"));
            }
            other => panic!("expected FaultConfig rejection, got {other:?}"),
        }
    }

    #[test]
    fn encoding_roundtrip_and_overflow() {
        let e = EdgeId(12345);
        let w = 999_999u64;
        let word = encode(w, e).unwrap();
        assert_eq!(decode(word), e);
        assert!(encode(1 << 40, e).is_none());
        assert!(encode(1, EdgeId(1 << 27)).is_none());
    }
}
