//! Shortcut-accelerated single-source shortest paths (demonstration of
//! Corollary 4.2's mechanism).
//!
//! On a weighted constant-diameter graph, plain distributed Bellman–Ford
//! needs as many rounds as the shortest-path **hop** diameter, which can
//! be `Θ(n)` even when the unweighted diameter is `O(1)`. The paper's
//! Corollary 4.2 plugs the shortcuts into Haeupler–Li's machinery; the
//! full hopset construction is out of scope (see DESIGN.md
//! substitutions). What we build instead isolates the primitive the
//! corollary relies on: interleaving Bellman–Ford edge relaxations with
//! **partwise tree relaxations** — each part tree broadcasts
//! `A_i = min_{v∈S_i}(dist(v) + wdepth_i(v))` and every member updates
//! `dist(u) ← min(dist(u), A_i + wdepth_i(u))`, a valid distance bound
//! realized along tree paths.
//!
//! The result is an *upper bound* on true distances whose stretch
//! depends on the weight of the tree detours; the experiment (E11)
//! reports both the round reduction and the realized stretch against
//! Dijkstra.

use lcs_congest::{ceil_log2, AggOp, FaultPlan, ScheduleCost, Session, SimConfig, SimError};
use lcs_core::{detect_and_excise, DegradedOutcome};
use lcs_graph::{dijkstra, NodeId, WeightedGraph, W_UNREACHABLE};
use lcs_shortcut::{AggregationSetup, Partition, ShortcutSet};
use std::collections::HashMap;

/// Result of the SSSP computation.
#[derive(Debug, Clone)]
pub struct SsspOutcome {
    /// Distance upper bounds per node.
    pub dist: Vec<u64>,
    /// Outer iterations until fixpoint.
    pub iterations: u32,
    /// Rounds charged: one per edge relaxation plus the scheduled
    /// aggregation cost per tree relaxation.
    pub total_rounds: u64,
    /// Max multiplicative stretch vs. exact distances.
    pub max_stretch: f64,
    /// Mean multiplicative stretch over reachable nodes.
    pub mean_stretch: f64,
}

/// Plain distributed Bellman–Ford baseline: exact distances; the round
/// count is the number of synchronous relaxation sweeps until fixpoint
/// (= shortest-path hop radius from the source).
pub fn bellman_ford_rounds(wg: &WeightedGraph, source: NodeId) -> (Vec<u64>, u64) {
    let g = wg.graph();
    let mut dist = vec![W_UNREACHABLE; g.n()];
    dist[source as usize] = 0;
    let mut rounds = 0u64;
    loop {
        rounds += 1;
        let mut changed = false;
        let mut next = dist.clone();
        for e in g.edge_ids() {
            let (u, v) = g.edge_endpoints(e);
            let w = wg.weight(e);
            if dist[u as usize] != W_UNREACHABLE && dist[u as usize] + w < next[v as usize] {
                next[v as usize] = dist[u as usize] + w;
                changed = true;
            }
            if dist[v as usize] != W_UNREACHABLE && dist[v as usize] + w < next[u as usize] {
                next[u as usize] = dist[v as usize] + w;
                changed = true;
            }
        }
        dist = next;
        if !changed {
            break;
        }
    }
    (dist, rounds)
}

/// Weighted depths of every tree node from the tree root, per part tree.
fn weighted_depths(wg: &WeightedGraph, setup: &AggregationSetup) -> Vec<HashMap<NodeId, u64>> {
    let g = wg.graph();
    setup
        .trees
        .iter()
        .map(|tree| {
            // Members carry parent pointers in arbitrary order: build
            // children lists and BFS down from the root.
            let mut children: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
            for &(v, parent) in &tree.members {
                if let Some(p) = parent {
                    children.entry(p).or_default().push(v);
                }
            }
            let mut depth: HashMap<NodeId, u64> = HashMap::new();
            depth.insert(tree.root, 0);
            let mut queue = std::collections::VecDeque::from([tree.root]);
            while let Some(p) = queue.pop_front() {
                let dp = depth[&p];
                for &v in children.get(&p).map(|c| c.as_slice()).unwrap_or(&[]) {
                    let e = g.edge_between(p, v).expect("tree edge");
                    depth.insert(v, dp + wg.weight(e));
                    queue.push_back(v);
                }
            }
            depth
        })
        .collect()
}

/// Runs the interleaved relaxation. `max_iterations` caps the outer
/// loop (pass `n` for guaranteed convergence to the fixpoint of the
/// combined relaxation).
pub fn shortcut_sssp(
    wg: &WeightedGraph,
    partition: &Partition,
    shortcuts: &ShortcutSet,
    source: NodeId,
    max_iterations: u32,
) -> SsspOutcome {
    let g = wg.graph();
    let n = g.n();
    let setup = AggregationSetup::build(g, partition, shortcuts);
    let depths = weighted_depths(wg, &setup);
    let agg_rounds = ScheduleCost {
        congestion: setup.tree_congestion as u64,
        dilation: setup.tree_depth as u64 + 1,
    }
    .rounds_no_precompute(n.max(2))
        * 2; // convergecast + broadcast
    let _ = ceil_log2(n.max(2));

    let mut dist = vec![W_UNREACHABLE; n];
    dist[source as usize] = 0;
    let mut total_rounds = 0u64;
    let mut iterations = 0u32;
    loop {
        iterations += 1;
        let mut changed = false;
        // (a) one Bellman-Ford sweep: 1 round.
        total_rounds += 1;
        let snapshot = dist.clone();
        for e in g.edge_ids() {
            let (u, v) = g.edge_endpoints(e);
            let w = wg.weight(e);
            if snapshot[u as usize] != W_UNREACHABLE && snapshot[u as usize] + w < dist[v as usize]
            {
                dist[v as usize] = snapshot[u as usize] + w;
                changed = true;
            }
            if snapshot[v as usize] != W_UNREACHABLE && snapshot[v as usize] + w < dist[u as usize]
            {
                dist[u as usize] = snapshot[v as usize] + w;
                changed = true;
            }
        }
        // (b) partwise tree relaxation: one scheduled aggregation.
        total_rounds += agg_rounds;
        for (tree, depth) in setup.trees.iter().zip(depths.iter()) {
            let mut a = W_UNREACHABLE;
            for &(v, _) in &tree.members {
                if partition.part_of(v) == Some(tree.part as u32)
                    && dist[v as usize] != W_UNREACHABLE
                {
                    a = a.min(dist[v as usize] + depth[&v]);
                }
            }
            if a == W_UNREACHABLE {
                continue;
            }
            for &(v, _) in &tree.members {
                if partition.part_of(v) == Some(tree.part as u32) {
                    let cand = a + depth[&v];
                    if cand < dist[v as usize] {
                        dist[v as usize] = cand;
                        changed = true;
                    }
                }
            }
        }
        if !changed || iterations >= max_iterations {
            break;
        }
    }

    // Stretch against Dijkstra.
    let exact = dijkstra(wg, source);
    let mut max_stretch = 1.0f64;
    let mut sum = 0.0f64;
    let mut count = 0usize;
    for v in 0..n {
        if exact[v] == W_UNREACHABLE || exact[v] == 0 {
            continue;
        }
        debug_assert!(dist[v] >= exact[v], "estimates are upper bounds");
        let s = dist[v] as f64 / exact[v] as f64;
        max_stretch = max_stretch.max(s);
        sum += s;
        count += 1;
    }
    SsspOutcome {
        dist,
        iterations,
        total_rounds,
        max_stretch,
        mean_stretch: if count == 0 { 1.0 } else { sum / count as f64 },
    }
}

/// Result of [`shortcut_sssp_simulated`]: the accounted outcome plus
/// the engine-measured cost of the tree relaxations.
#[derive(Debug, Clone)]
pub struct SimulatedSsspOutcome {
    /// The SSSP result (distances, iterations, stretch); its
    /// `total_rounds` counts the *simulated* aggregation rounds plus
    /// one per Bellman–Ford sweep.
    pub outcome: SsspOutcome,
    /// Messages actually exchanged by the tree-relaxation phases (plus,
    /// under a fault plan, the detection phases).
    pub messages: u64,
    /// Per-phase engine statistics from the session (one aggregation
    /// phase per outer iteration).
    pub phase_rounds: Vec<u64>,
    /// Present iff the run was configured with a
    /// [`FaultPlan`](SimConfig::faults): what graceful degradation
    /// excised and cost.
    pub degraded: Option<DegradedOutcome>,
}

/// [`shortcut_sssp`] with the partwise tree relaxations executed
/// **through the CONGEST engine**: one [`Session`] hosts every
/// iteration's aggregation phase (the paper's partwise-aggregation
/// primitive, message for message), so the outcome carries measured
/// rounds and messages instead of only scheduled charges. The
/// Bellman–Ford edge sweeps remain charged at one round each, as in
/// the accounted variant; distances are identical to
/// [`shortcut_sssp`].
///
/// With a [`FaultPlan`](SimConfig::faults) attached, crash-stopped
/// nodes are detected and excised first (see
/// [`lcs_core::degrade`]) and the relaxation runs on the surviving
/// subgraph over its part *fragments*; excised nodes report
/// [`W_UNREACHABLE`] and the outcome carries a [`DegradedOutcome`].
///
/// # Errors
///
/// Propagates engine errors from the aggregation phases;
/// [`SimError::FaultConfig`] when the detection root (node 0) or the
/// SSSP source crashes permanently.
pub fn shortcut_sssp_simulated(
    wg: &WeightedGraph,
    partition: &Partition,
    shortcuts: &ShortcutSet,
    source: NodeId,
    max_iterations: u32,
    cfg: &SimConfig,
) -> Result<SimulatedSsspOutcome, SimError> {
    if let Some(plan) = &cfg.faults {
        return degraded_sssp(
            wg,
            partition,
            shortcuts,
            source,
            max_iterations,
            cfg,
            &plan.clone(),
        );
    }
    let g = wg.graph();
    let n = g.n();
    let setup = AggregationSetup::build(g, partition, shortcuts);
    let depths = weighted_depths(wg, &setup);
    let mut session = Session::new(g, cfg.clone());

    let mut dist = vec![W_UNREACHABLE; n];
    dist[source as usize] = 0;
    let mut total_rounds = 0u64;
    let mut iterations = 0u32;
    loop {
        iterations += 1;
        let mut changed = false;
        // (a) one Bellman-Ford sweep: 1 round (edge exchange).
        total_rounds += 1;
        let snapshot = dist.clone();
        for e in g.edge_ids() {
            let (u, v) = g.edge_endpoints(e);
            let w = wg.weight(e);
            if snapshot[u as usize] != W_UNREACHABLE && snapshot[u as usize] + w < dist[v as usize]
            {
                dist[v as usize] = snapshot[u as usize] + w;
                changed = true;
            }
            if snapshot[v as usize] != W_UNREACHABLE && snapshot[v as usize] + w < dist[u as usize]
            {
                dist[u as usize] = snapshot[v as usize] + w;
                changed = true;
            }
        }
        // (b) partwise tree relaxation, simulated: every part computes
        // A_i = min over its members of dist(v) + wdepth_i(v) by one
        // convergecast + broadcast over all trees at once.
        let value = |v: NodeId, part: usize| -> u64 {
            match depths[part].get(&v) {
                Some(&d)
                    if partition.part_of(v) == Some(part as u32)
                        && dist[v as usize] != W_UNREACHABLE =>
                {
                    dist[v as usize].saturating_add(d)
                }
                _ => AggOp::Min.identity(),
            }
        };
        let (_, agg) = setup.aggregate_in_session(&mut session, AggOp::Min, &value, true)?;
        total_rounds += agg.stats.rounds;
        for (tree, depth) in setup.trees.iter().zip(depths.iter()) {
            let Some(a) = agg.result_at(tree.root, tree.part as u32) else {
                continue;
            };
            if a == AggOp::Min.identity() {
                continue;
            }
            for &(v, _) in &tree.members {
                if partition.part_of(v) == Some(tree.part as u32) {
                    let cand = a + depth[&v];
                    if cand < dist[v as usize] {
                        dist[v as usize] = cand;
                        changed = true;
                    }
                }
            }
        }
        if !changed || iterations >= max_iterations {
            break;
        }
    }

    let exact = dijkstra(wg, source);
    let mut max_stretch = 1.0f64;
    let mut sum = 0.0f64;
    let mut count = 0usize;
    for v in 0..n {
        if exact[v] == W_UNREACHABLE || exact[v] == 0 {
            continue;
        }
        debug_assert!(dist[v] >= exact[v], "estimates are upper bounds");
        let s = dist[v] as f64 / exact[v] as f64;
        max_stretch = max_stretch.max(s);
        sum += s;
        count += 1;
    }
    Ok(SimulatedSsspOutcome {
        outcome: SsspOutcome {
            dist,
            iterations,
            total_rounds,
            max_stretch,
            mean_stretch: if count == 0 { 1.0 } else { sum / count as f64 },
        },
        messages: session.stats().messages,
        phase_rounds: session.phases().iter().map(|p| p.rounds).collect(),
        degraded: None,
    })
}

/// Fault-tolerant wrapper: detect crash-stops on the faulty network,
/// excise the dead, and run the interleaved relaxation on the surviving
/// subgraph. Parts are split into their surviving fragments and the
/// shortcut set is restricted to surviving edges; detection rounds are
/// charged on top (`extra_rounds`). Distances of excised nodes are
/// [`W_UNREACHABLE`]; the stretch statistics compare against Dijkstra
/// **on the survivors** — the honest reference once the dead are gone.
#[allow(clippy::too_many_arguments)]
fn degraded_sssp(
    wg: &WeightedGraph,
    partition: &Partition,
    shortcuts: &ShortcutSet,
    source: NodeId,
    max_iterations: u32,
    cfg: &SimConfig,
    plan: &FaultPlan,
) -> Result<SimulatedSsspOutcome, SimError> {
    let g = wg.graph();
    let exc = detect_and_excise(g, plan, cfg.seed, cfg.shards)?;
    let inner_cfg = SimConfig {
        faults: None,
        ..cfg.clone()
    };

    if exc.is_trivial() {
        // Drops, delays, corruption, and transient crashes were all
        // absorbed by the reliable detection layer: relax on the whole
        // graph, charging only the detection overhead.
        let mut out =
            shortcut_sssp_simulated(wg, partition, shortcuts, source, max_iterations, &inner_cfg)?;
        out.outcome.total_rounds += exc.extra_rounds;
        out.messages += exc.messages;
        out.degraded = Some(exc.outcome());
        return Ok(out);
    }

    if exc.new_id[source as usize] == u32::MAX {
        return Err(SimError::FaultConfig {
            reason: format!(
                "SSSP source {source} was excised (crashed or disconnected from the \
                 detection root) — every distance would be unreachable"
            ),
        });
    }

    let sub_wg = exc.induced_weighted(wg);
    let (sub_partition, sub_to_orig) = exc.split_partition(sub_wg.graph(), partition);
    let sub_shortcuts = exc.restrict_shortcuts(g, sub_wg.graph(), shortcuts, &sub_to_orig);
    let sub_source = exc.new_id[source as usize];
    let sub = shortcut_sssp_simulated(
        &sub_wg,
        &sub_partition,
        &sub_shortcuts,
        sub_source,
        max_iterations,
        &inner_cfg,
    )?;

    let mut dist = vec![W_UNREACHABLE; g.n()];
    for (i, &v) in exc.survivors.iter().enumerate() {
        dist[v as usize] = sub.outcome.dist[i];
    }
    Ok(SimulatedSsspOutcome {
        outcome: SsspOutcome {
            dist,
            iterations: sub.outcome.iterations,
            total_rounds: sub.outcome.total_rounds + exc.extra_rounds,
            max_stretch: sub.outcome.max_stretch,
            mean_stretch: sub.outcome.mean_stretch,
        },
        messages: sub.messages + exc.messages,
        phase_rounds: sub.phase_rounds,
        degraded: Some(exc.outcome()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_core::{centralized_shortcuts, prune_to_trees, KpParams, LargenessRule, OracleMode};
    use lcs_graph::{HighwayGraph, HighwayParams};

    /// Highway instance with light path edges and heavy highway edges:
    /// true shortest paths hug the paths (many hops).
    fn fixture() -> (WeightedGraph, Partition, ShortcutSet) {
        let hw = HighwayGraph::new(HighwayParams {
            num_paths: 3,
            path_len: 40,
            diameter: 4,
        })
        .unwrap();
        let g = hw.graph().clone();
        let weights: Vec<u64> = g
            .edge_ids()
            .map(|e| {
                let (u, v) = g.edge_endpoints(e);
                if u < hw.highway_first() && v < hw.highway_first() {
                    1 // path edge
                } else {
                    50 // highway edge
                }
            })
            .collect();
        let wg = WeightedGraph::new(g.clone(), weights).unwrap();
        let p = Partition::new(&g, hw.path_parts()).unwrap();
        let params = KpParams::new(g.n(), 4, 1.0).unwrap();
        let raw = centralized_shortcuts(
            &g,
            &p,
            params,
            3,
            LargenessRule::Radius,
            OracleMode::PerPart,
        );
        let pruned = prune_to_trees(&g, &p, &raw.shortcuts, params.depth_limit());
        (wg, p, pruned.shortcuts)
    }

    #[test]
    fn estimates_are_sound_upper_bounds() {
        let (wg, p, s) = fixture();
        let out = shortcut_sssp(&wg, &p, &s, 0, 64);
        let exact = dijkstra(&wg, 0);
        for (v, &exact_d) in exact.iter().enumerate() {
            if exact_d != W_UNREACHABLE {
                assert!(out.dist[v] >= exact_d, "node {v}");
                assert_ne!(out.dist[v], W_UNREACHABLE, "node {v} must be reached");
            }
        }
        assert!(out.max_stretch >= 1.0);
    }

    #[test]
    fn anytime_stretch_beats_truncated_bellman_ford() {
        let (wg, p, s) = fixture();
        let (bf_dist, bf_rounds) = bellman_ford_rounds(&wg, 0);
        // Bellman-Ford is exact but needs hop-diameter sweeps.
        let exact = dijkstra(&wg, 0);
        assert_eq!(bf_dist, exact);
        assert!(bf_rounds > 8, "workload must have long hop chains");
        // A small budget (below the hop diameter) of shortcut iterations
        // yields *finite* estimates for every node — the tree relaxation
        // floods whole parts at once — while plain Bellman-Ford at the
        // same budget still misses nodes and is never better pointwise.
        let budget = 3;
        let accel = shortcut_sssp(&wg, &p, &s, 0, budget);
        assert!(
            accel.dist.iter().all(|&d| d != W_UNREACHABLE),
            "every node must have a finite estimate at budget {budget}"
        );
        let truncated = lcs_graph::bounded_hop_distances(&wg, 0, budget as usize);
        let mut strictly_better = false;
        for (v, &trunc_d) in truncated.iter().enumerate() {
            assert!(accel.dist[v] <= trunc_d, "node {v}");
            strictly_better |= accel.dist[v] < trunc_d;
        }
        assert!(strictly_better, "tree relaxation must help somewhere");
        // And exactness arrives as iterations continue.
        let exact_run = shortcut_sssp(&wg, &p, &s, 0, 4096);
        assert!(
            (exact_run.max_stretch - 1.0).abs() < 1e-9,
            "converges to exact, stretch {}",
            exact_run.max_stretch
        );
    }

    #[test]
    fn converges_to_exact_when_trees_are_paths() {
        // Trivial shortcuts on path parts: tree = the path itself, so
        // the tree relaxation is exact within parts.
        let (wg, p, _) = fixture();
        let trivial = lcs_shortcut::trivial_shortcuts(&p);
        let out = shortcut_sssp(&wg, &p, &trivial, 0, 256);
        let exact = dijkstra(&wg, 0);
        assert_eq!(out.dist, exact, "path trees relax exactly");
        assert!((out.max_stretch - 1.0).abs() < 1e-9);
    }

    #[test]
    fn simulated_relaxation_converges_and_measures_messages() {
        let (wg, p, s) = fixture();
        let out = shortcut_sssp_simulated(&wg, &p, &s, 0, 4096, &SimConfig::default()).unwrap();
        let exact = dijkstra(&wg, 0);
        // Same fixpoint as the accounted variant: exact once converged.
        assert!(
            (out.outcome.max_stretch - 1.0).abs() < 1e-9
                || out
                    .outcome
                    .dist
                    .iter()
                    .zip(exact.iter())
                    .all(|(&a, &b)| a >= b),
            "sound upper bounds"
        );
        for (v, &e) in exact.iter().enumerate() {
            if e != W_UNREACHABLE {
                assert!(out.outcome.dist[v] >= e, "node {v}");
            }
        }
        // The engine actually carried the tree relaxations.
        assert!(out.messages > 0, "simulated mode must exchange messages");
        assert_eq!(
            out.phase_rounds.len() as u32,
            out.outcome.iterations,
            "one aggregation phase per iteration"
        );
        // Sharded execution is bit-identical (outcome-level check).
        let sharded = shortcut_sssp_simulated(
            &wg,
            &p,
            &s,
            0,
            4096,
            &SimConfig {
                shards: 3,
                ..SimConfig::default()
            },
        )
        .unwrap();
        assert_eq!(sharded.outcome.dist, out.outcome.dist);
        assert_eq!(sharded.messages, out.messages);
        assert_eq!(sharded.phase_rounds, out.phase_rounds);
    }

    #[test]
    fn source_distance_is_zero() {
        let (wg, p, s) = fixture();
        let out = shortcut_sssp(&wg, &p, &s, 5, 32);
        assert_eq!(out.dist[5], 0);
    }

    #[test]
    fn degraded_sssp_matches_dijkstra_on_survivors() {
        use lcs_congest::Crash;
        let (wg, p, s) = fixture();
        // Byzantine-tier plan: lossy + corrupting links, one permanent
        // crash in the middle of a path part (splitting it into two
        // fragments), one transient crash that the rejoin handshake
        // absorbs.
        let plan = FaultPlan {
            drop_rate: 0.08,
            corrupt_rate: 0.04,
            crashes: vec![
                Crash {
                    node: 20,
                    at_round: 0,
                    recover_at: None,
                },
                Crash {
                    node: 57,
                    at_round: 2,
                    recover_at: Some(30),
                },
            ],
            ..FaultPlan::default()
        };
        let cfg = SimConfig {
            faults: Some(plan),
            ..SimConfig::default()
        };
        let out = shortcut_sssp_simulated(&wg, &p, &s, 0, 4096, &cfg).unwrap();
        let deg = out
            .degraded
            .as_ref()
            .expect("fault plan reports degradation");
        assert!(deg.completed);
        assert!(deg.excluded_nodes.contains(&20), "the crash is excised");
        assert!(
            !deg.excluded_nodes.contains(&57),
            "transient crashes recover; the reliable layer absorbs them"
        );
        assert!(deg.extra_rounds > 0, "detection overhead is charged");

        // Differential reference: Dijkstra on the survivors' induced
        // subgraph, built independently here.
        let g = wg.graph();
        let excluded: std::collections::HashSet<NodeId> =
            deg.excluded_nodes.iter().copied().collect();
        let survivors: Vec<NodeId> = (0..g.n() as NodeId)
            .filter(|v| !excluded.contains(v))
            .collect();
        let mut new_id = vec![u32::MAX; g.n()];
        for (i, &v) in survivors.iter().enumerate() {
            new_id[v as usize] = i as u32;
        }
        let sub_edges: Vec<(NodeId, NodeId, u64)> = g
            .edge_ids()
            .filter_map(|e| {
                let (a, b) = g.edge_endpoints(e);
                (new_id[a as usize] != u32::MAX && new_id[b as usize] != u32::MAX)
                    .then(|| (new_id[a as usize], new_id[b as usize], wg.weight(e)))
            })
            .collect();
        let sub_wg = WeightedGraph::from_weighted_edges(survivors.len(), &sub_edges).unwrap();
        let exact = dijkstra(&sub_wg, 0);
        for (i, &v) in survivors.iter().enumerate() {
            assert_eq!(out.outcome.dist[v as usize], exact[i], "survivor {v}");
        }
        for &v in &deg.excluded_nodes {
            assert_eq!(out.outcome.dist[v as usize], W_UNREACHABLE, "excised {v}");
        }
        assert!(
            (out.outcome.max_stretch - 1.0).abs() < 1e-9,
            "converged run is exact on the survivors"
        );
        // Sharded execution of the whole degraded path is bit-identical.
        let sharded = shortcut_sssp_simulated(
            &wg,
            &p,
            &s,
            0,
            4096,
            &SimConfig {
                shards: 3,
                ..cfg.clone()
            },
        )
        .unwrap();
        assert_eq!(sharded.outcome.dist, out.outcome.dist);
        assert_eq!(sharded.messages, out.messages);
    }

    #[test]
    fn degraded_sssp_without_permanent_crashes_matches_fault_free() {
        let (wg, p, s) = fixture();
        let clean = shortcut_sssp_simulated(&wg, &p, &s, 0, 4096, &SimConfig::default()).unwrap();
        let plan = FaultPlan {
            drop_rate: 0.10,
            delay_rate: 0.05,
            max_delay: 3,
            corrupt_rate: 0.05,
            ..FaultPlan::default()
        };
        let out = shortcut_sssp_simulated(
            &wg,
            &p,
            &s,
            0,
            4096,
            &SimConfig {
                faults: Some(plan),
                ..SimConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.outcome.dist, clean.outcome.dist, "faults absorbed");
        let deg = out.degraded.expect("plan reports degradation");
        assert!(deg.excluded_nodes.is_empty());
        assert!(out.messages > clean.messages, "detection overhead charged");
    }

    #[test]
    fn degraded_sssp_rejects_excised_source() {
        use lcs_congest::Crash;
        let (wg, p, s) = fixture();
        let plan = FaultPlan {
            crashes: vec![Crash {
                node: 5,
                at_round: 0,
                recover_at: None,
            }],
            ..FaultPlan::default()
        };
        let err = shortcut_sssp_simulated(
            &wg,
            &p,
            &s,
            5,
            32,
            &SimConfig {
                faults: Some(plan),
                ..SimConfig::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, SimError::FaultConfig { .. }));
    }
}
