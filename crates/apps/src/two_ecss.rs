//! O(log n)-approximate minimum-weight two-edge-connected spanning
//! subgraph (Corollary 4.3; framework of Dory–Ghaffari, PODC 2019).
//!
//! Classic reduction: take the MST, then solve *weighted tree
//! augmentation* — pick non-tree edges so that every tree edge lies on a
//! cycle — with the greedy set-cover rule (cost per newly covered tree
//! edge), which is an `O(log n)`-approximation; `w(MST) + w(augmentation)`
//! is then an `O(log n)`-approximation of the optimal 2-ECSS, since both
//! the MST and the optimal augmentation are bounded by the optimum.
//!
//! Distributed cost: the MST comes from
//! [`mst_via_shortcuts`](crate::mst::mst_via_shortcuts()); each greedy
//! round is one partwise aggregation (fragments = tree components of
//! uncovered edges), charged accordingly.

use crate::mst::{mst_via_shortcuts, MstConfig, MstError};
use lcs_congest::{ceil_log2, FaultPlan, SimError};
use lcs_core::{detect_and_excise, DegradedOutcome};
use lcs_graph::{is_two_edge_connected, EdgeId, Graph, NodeId, WeightedGraph};
use std::collections::HashSet;
use std::fmt;

/// 2-ECSS failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TwoEcssError {
    /// The input graph is not two-edge-connected, so no 2-ECSS exists.
    NotTwoEdgeConnected,
    /// MST subroutine failure.
    Mst(MstError),
    /// Fault-handling failure (detection phase).
    Sim(SimError),
}

impl fmt::Display for TwoEcssError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TwoEcssError::NotTwoEdgeConnected => {
                write!(f, "input graph is not two-edge-connected")
            }
            TwoEcssError::Mst(e) => write!(f, "mst subroutine failed: {e}"),
            TwoEcssError::Sim(e) => write!(f, "fault handling failed: {e}"),
        }
    }
}

impl std::error::Error for TwoEcssError {}

impl From<MstError> for TwoEcssError {
    fn from(e: MstError) -> Self {
        TwoEcssError::Mst(e)
    }
}

/// Result of the 2-ECSS approximation.
#[derive(Debug, Clone)]
pub struct TwoEcssOutcome {
    /// Chosen edges (MST ∪ augmentation), sorted.
    pub edges: Vec<EdgeId>,
    /// Total weight.
    pub weight: u64,
    /// Weight of the MST part.
    pub mst_weight: u64,
    /// Weight of the augmentation part.
    pub augmentation_weight: u64,
    /// Greedy rounds used.
    pub greedy_rounds: u32,
    /// Total distributed rounds charged.
    pub total_rounds: u64,
    /// Present iff the run was configured with a
    /// [`FaultPlan`](MstConfig::faults): what graceful degradation
    /// excised and cost.
    pub degraded: Option<DegradedOutcome>,
}

/// Tree edges on the tree path between `u` and `v` (indices into
/// `tree_edges`).
fn tree_path_edges(n: usize, tree_edges: &[(NodeId, NodeId)], u: NodeId, v: NodeId) -> Vec<usize> {
    // Build adjacency with edge indices; BFS from u to v.
    let mut adj: Vec<Vec<(NodeId, usize)>> = vec![Vec::new(); n];
    for (i, &(a, b)) in tree_edges.iter().enumerate() {
        adj[a as usize].push((b, i));
        adj[b as usize].push((a, i));
    }
    let mut prev: Vec<Option<(NodeId, usize)>> = vec![None; n];
    let mut seen = vec![false; n];
    let mut queue = std::collections::VecDeque::new();
    seen[u as usize] = true;
    queue.push_back(u);
    while let Some(x) = queue.pop_front() {
        if x == v {
            break;
        }
        for &(y, i) in &adj[x as usize] {
            if !seen[y as usize] {
                seen[y as usize] = true;
                prev[y as usize] = Some((x, i));
                queue.push_back(y);
            }
        }
    }
    let mut out = Vec::new();
    let mut cur = v;
    while let Some((p, i)) = prev[cur as usize] {
        out.push(i);
        cur = p;
        if cur == u {
            break;
        }
    }
    out
}

/// Computes the O(log n)-approximate 2-ECSS.
///
/// The MST subroutine is session-backed: in simulated mode every
/// Boruvka aggregation runs through one engine
/// [`Session`](lcs_congest::Session) (see
/// [`mst_via_shortcuts`]), so `cfg.shards` sizes its worker pool.
///
/// With a [`FaultPlan`](MstConfig::faults) attached, crash-stopped
/// nodes are detected and excised first (see [`lcs_core::degrade`])
/// and the 2-ECSS is built for the **surviving** subgraph — which must
/// itself be two-edge-connected (it can be even when the full graph is
/// not, e.g. after a pendant component crashes away). Returned edges
/// carry original ids; the outcome carries a [`DegradedOutcome`].
///
/// # Errors
///
/// [`TwoEcssError::NotTwoEdgeConnected`] when no 2-ECSS exists (for
/// the survivors, under a fault plan); [`TwoEcssError::Sim`] when the
/// detection phase fails.
pub fn two_ecss(wg: &WeightedGraph, cfg: &MstConfig) -> Result<TwoEcssOutcome, TwoEcssError> {
    if let Some(plan) = &cfg.faults {
        return degraded_two_ecss(wg, cfg, &plan.clone());
    }
    let g = wg.graph();
    let n = g.n();
    if !is_two_edge_connected(g) {
        return Err(TwoEcssError::NotTwoEdgeConnected);
    }
    if n <= 1 {
        return Ok(TwoEcssOutcome {
            edges: vec![],
            weight: 0,
            mst_weight: 0,
            augmentation_weight: 0,
            greedy_rounds: 0,
            total_rounds: 0,
            degraded: None,
        });
    }
    let mst = mst_via_shortcuts(wg, cfg)?;
    let tree_set: HashSet<EdgeId> = mst.edges.iter().copied().collect();
    let tree_edges: Vec<(NodeId, NodeId)> =
        mst.edges.iter().map(|&e| g.edge_endpoints(e)).collect();

    // Precompute, for every non-tree edge, the tree edges it covers.
    let mut non_tree: Vec<(EdgeId, Vec<usize>)> = Vec::new();
    for e in g.edge_ids() {
        if tree_set.contains(&e) {
            continue;
        }
        let (u, v) = g.edge_endpoints(e);
        non_tree.push((e, tree_path_edges(n, &tree_edges, u, v)));
    }

    // Greedy weighted set cover over tree edges.
    let mut covered = vec![false; tree_edges.len()];
    let mut uncovered = tree_edges.len();
    let mut augmentation: Vec<EdgeId> = Vec::new();
    let mut augmentation_weight = 0u64;
    let mut greedy_rounds = 0u32;
    while uncovered > 0 {
        greedy_rounds += 1;
        let mut best: Option<(f64, EdgeId, usize)> = None;
        for (idx, (e, path)) in non_tree.iter().enumerate() {
            let gain = path.iter().filter(|&&i| !covered[i]).count();
            if gain == 0 {
                continue;
            }
            let ratio = wg.weight(*e) as f64 / gain as f64;
            if best.is_none_or(|(r, be, _)| ratio < r || (ratio == r && e.0 < be.0)) {
                best = Some((ratio, *e, idx));
            }
        }
        let Some((_, e, idx)) = best else {
            // No non-tree edge covers the rest: contradicts
            // 2-edge-connectivity of the input.
            unreachable!("two-edge-connected input always admits a cover");
        };
        for &i in &non_tree[idx].1 {
            if !covered[i] {
                covered[i] = true;
                uncovered -= 1;
            }
        }
        augmentation.push(e);
        augmentation_weight += wg.weight(e);
    }

    let mut edges: Vec<EdgeId> = mst.edges.clone();
    edges.extend_from_slice(&augmentation);
    edges.sort_unstable();
    // Each greedy round is one aggregation sweep over the fragments.
    let agg_round_cost = 2 * ceil_log2(n.max(2)) as u64 + n.isqrt() as u64;
    let total_rounds = mst.total_rounds + greedy_rounds as u64 * agg_round_cost;

    Ok(TwoEcssOutcome {
        weight: mst.weight + augmentation_weight,
        mst_weight: mst.weight,
        augmentation_weight,
        edges,
        greedy_rounds,
        total_rounds,
        degraded: None,
    })
}

/// Fault-tolerant wrapper: detect crash-stops on the faulty network,
/// excise the dead, and build the 2-ECSS of the surviving subgraph
/// (MST + greedy augmentation both run on the survivors, so every
/// surviving tree edge is covered by a surviving cycle). The inner MST
/// re-derives the diameter because excision can lengthen shortest
/// paths; detection rounds are charged on top.
fn degraded_two_ecss(
    wg: &WeightedGraph,
    cfg: &MstConfig,
    plan: &FaultPlan,
) -> Result<TwoEcssOutcome, TwoEcssError> {
    let g = wg.graph();
    let exc = detect_and_excise(g, plan, cfg.seed, cfg.shards).map_err(TwoEcssError::Sim)?;

    if exc.is_trivial() {
        let inner = MstConfig {
            faults: None,
            ..cfg.clone()
        };
        let mut out = two_ecss(wg, &inner)?;
        out.total_rounds += exc.extra_rounds;
        out.degraded = Some(exc.outcome());
        return Ok(out);
    }

    let inner = MstConfig {
        faults: None,
        diameter: None, // excision can stretch the diameter
        ..cfg.clone()
    };
    let sub_wg = exc.induced_weighted(wg);
    let sub = two_ecss(&sub_wg, &inner)?;
    let mut edges: Vec<EdgeId> = sub
        .edges
        .iter()
        .map(|&e| exc.original_edge(g, sub_wg.graph(), e))
        .collect();
    edges.sort_unstable();
    Ok(TwoEcssOutcome {
        edges,
        weight: sub.weight,
        mst_weight: sub.mst_weight,
        augmentation_weight: sub.augmentation_weight,
        greedy_rounds: sub.greedy_rounds,
        total_rounds: sub.total_rounds + exc.extra_rounds,
        degraded: Some(exc.outcome()),
    })
}

/// Verifies that the chosen edges form a two-edge-connected spanning
/// subgraph of `wg`'s topology.
pub fn verify_two_ecss(g: &Graph, edges: &[EdgeId]) -> bool {
    let sub_edges: Vec<(NodeId, NodeId)> = edges.iter().map(|&e| g.edge_endpoints(e)).collect();
    match Graph::from_edges(g.n(), &sub_edges) {
        Ok(sub) => is_two_edge_connected(&sub),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::generators::{complete, cycle};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn cycle_is_its_own_2ecss() {
        let g = cycle(8);
        let wg = WeightedGraph::new(g, vec![1; 8]).unwrap();
        let cfg = MstConfig {
            diameter: Some(4),
            ..MstConfig::default()
        };
        let out = two_ecss(&wg, &cfg).unwrap();
        assert_eq!(out.edges.len(), 8, "must keep the full cycle");
        assert_eq!(out.weight, 8);
        assert!(verify_two_ecss(wg.graph(), &out.edges));
    }

    #[test]
    fn dense_graph_prunes_most_edges() {
        let g = complete(10);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let wg = WeightedGraph::with_random_weights(g, 100, &mut rng);
        let cfg = MstConfig {
            diameter: Some(3),
            ..MstConfig::default()
        };
        let out = two_ecss(&wg, &cfg).unwrap();
        assert!(verify_two_ecss(wg.graph(), &out.edges));
        // n-1 tree edges + a modest augmentation, far below 45 edges.
        assert!(out.edges.len() < 2 * 10);
        assert_eq!(out.weight, out.mst_weight + out.augmentation_weight);
        assert!(out.total_rounds > 0);
    }

    #[test]
    fn rejects_bridged_graphs() {
        let wg =
            WeightedGraph::from_weighted_edges(4, &[(0, 1, 1), (1, 2, 1), (2, 0, 1), (2, 3, 1)])
                .unwrap();
        assert_eq!(
            two_ecss(&wg, &MstConfig::default()).unwrap_err(),
            TwoEcssError::NotTwoEdgeConnected
        );
    }

    #[test]
    fn degraded_two_ecss_matches_direct_run_on_survivors() {
        use lcs_congest::{Crash, FaultPlan};
        let g = complete(8);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let wg = WeightedGraph::with_random_weights(g, 60, &mut rng);
        let plan = FaultPlan {
            drop_rate: 0.05,
            corrupt_rate: 0.05,
            crashes: vec![Crash {
                node: 5,
                at_round: 0,
                recover_at: None,
            }],
            ..FaultPlan::default()
        };
        let cfg = MstConfig {
            diameter: Some(3),
            faults: Some(plan),
            ..MstConfig::default()
        };
        let out = two_ecss(&wg, &cfg).unwrap();
        let deg = out
            .degraded
            .as_ref()
            .expect("fault plan reports degradation");
        assert_eq!(deg.excluded_nodes, vec![5]);
        assert!(deg.extra_rounds > 0);

        // Independent reference: a direct run on the survivors'
        // subgraph, built by hand (complete(8) minus node 5).
        let g = wg.graph();
        let survivors: Vec<NodeId> = (0u32..8).filter(|&v| v != 5).collect();
        let mut new_id = [u32::MAX; 8];
        for (i, &v) in survivors.iter().enumerate() {
            new_id[v as usize] = i as u32;
        }
        let sub_edges: Vec<(NodeId, NodeId, u64)> = g
            .edge_ids()
            .filter_map(|e| {
                let (a, b) = g.edge_endpoints(e);
                (a != 5 && b != 5).then(|| (new_id[a as usize], new_id[b as usize], wg.weight(e)))
            })
            .collect();
        let sub_wg = WeightedGraph::from_weighted_edges(7, &sub_edges).unwrap();
        let reference = two_ecss(
            &sub_wg,
            &MstConfig {
                diameter: None,
                ..MstConfig::default()
            },
        )
        .unwrap();
        assert_eq!(out.weight, reference.weight);
        assert_eq!(out.mst_weight, reference.mst_weight);
        let mut mapped: Vec<EdgeId> = out
            .edges
            .iter()
            .map(|&e| {
                let (a, b) = g.edge_endpoints(e);
                sub_wg
                    .graph()
                    .edge_between(new_id[a as usize], new_id[b as usize])
                    .expect("surviving edge")
            })
            .collect();
        mapped.sort_unstable();
        assert_eq!(mapped, reference.edges, "same subgraph, edge for edge");
        assert!(verify_two_ecss(sub_wg.graph(), &reference.edges));
    }

    #[test]
    fn degraded_two_ecss_succeeds_when_survivors_are_two_edge_connected() {
        use lcs_congest::{Crash, FaultPlan};
        // cycle(6) plus a pendant node 6: NOT two-edge-connected (the
        // pendant edge is a bridge), so the plain run refuses.
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (0, 6)])
            .unwrap();
        let wg = WeightedGraph::new(g, vec![1; 7]).unwrap();
        let cfg_plain = MstConfig {
            diameter: Some(4),
            ..MstConfig::default()
        };
        assert_eq!(
            two_ecss(&wg, &cfg_plain).unwrap_err(),
            TwoEcssError::NotTwoEdgeConnected
        );
        // Crash the pendant: the survivors are exactly the cycle, which
        // IS two-edge-connected — graceful degradation succeeds where
        // the full graph could not.
        let plan = FaultPlan {
            crashes: vec![Crash {
                node: 6,
                at_round: 0,
                recover_at: None,
            }],
            ..FaultPlan::default()
        };
        let cfg = MstConfig {
            faults: Some(plan),
            ..cfg_plain.clone()
        };
        let out = two_ecss(&wg, &cfg).unwrap();
        assert_eq!(out.edges.len(), 6, "keeps the whole surviving cycle");
        assert_eq!(out.weight, 6);
        let deg = out.degraded.expect("plan reports degradation");
        assert_eq!(deg.excluded_nodes, vec![6]);
    }

    #[test]
    fn weight_is_within_log_factor_of_mst_lower_bound() {
        // w(2-ECSS optimum) >= w(MST); our output is MST + augmentation
        // where the augmentation is also bounded by opt * O(log n).
        let g = complete(12);
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let wg = WeightedGraph::with_random_weights(g, 50, &mut rng);
        let cfg = MstConfig {
            diameter: Some(3),
            ..MstConfig::default()
        };
        let out = two_ecss(&wg, &cfg).unwrap();
        let lg = (12f64).ln();
        assert!(
            (out.weight as f64) <= 2.0 * lg * out.mst_weight as f64 + out.mst_weight as f64,
            "weight {} vs mst {}",
            out.weight,
            out.mst_weight
        );
    }
}
