//! Criterion benchmarks for the ablation axes (probability constant and
//! quality-measurement mode) — timing counterpart of `--bin ablations`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_bench::highway_workload;
use lcs_core::{centralized_shortcuts, KpParams, LargenessRule, OracleMode};
use lcs_shortcut::{measure_quality, DilationMode};

fn bench_probability_constants(c: &mut Criterion) {
    let (hw, partition) = highway_workload(900, 4);
    let g = hw.graph().clone();
    let mut group = c.benchmark_group("probability_constant");
    for &pc in &[0.5f64, 1.0, 2.0] {
        let params = KpParams::new(g.n(), 4, pc).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(pc), &pc, |b, _| {
            b.iter(|| {
                let out = centralized_shortcuts(
                    &g,
                    &partition,
                    params,
                    1,
                    LargenessRule::Radius,
                    OracleMode::PerArc,
                );
                measure_quality(&g, &partition, &out.shortcuts, DilationMode::Estimate)
            })
        });
    }
    group.finish();
}

fn bench_quality_measurement(c: &mut Criterion) {
    let (hw, partition) = highway_workload(900, 4);
    let g = hw.graph().clone();
    let params = KpParams::new(g.n(), 4, 1.0).unwrap();
    let out = centralized_shortcuts(
        &g,
        &partition,
        params,
        1,
        LargenessRule::Radius,
        OracleMode::PerArc,
    );
    let mut group = c.benchmark_group("quality_measurement");
    group.bench_function("exact", |b| {
        b.iter(|| measure_quality(&g, &partition, &out.shortcuts, DilationMode::Exact))
    });
    group.bench_function("estimate", |b| {
        b.iter(|| measure_quality(&g, &partition, &out.shortcuts, DilationMode::Estimate))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_probability_constants,
    bench_quality_measurement
);
criterion_main!(benches);
