//! Criterion microbenchmarks: partwise aggregation (simulated vs
//! centralized) and the simulator engine.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_bench::highway_workload;
use lcs_congest::{AggOp, Bfs, Session, SimConfig};
use lcs_core::{centralized_shortcuts, prune_to_trees, KpParams, LargenessRule, OracleMode};
use lcs_shortcut::AggregationSetup;

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("partwise_aggregation");
    for &n in &[400usize, 1600] {
        let (hw, partition) = highway_workload(n, 4);
        let g = hw.graph().clone();
        let params = KpParams::new(g.n(), 4, 1.0).unwrap();
        let raw = centralized_shortcuts(
            &g,
            &partition,
            params,
            1,
            LargenessRule::Radius,
            OracleMode::PerArc,
        );
        let pruned = prune_to_trees(&g, &partition, &raw.shortcuts, params.depth_limit());
        let setup = AggregationSetup::build(&g, &partition, &pruned.shortcuts);
        let value = |v: lcs_graph::NodeId, _p: usize| v as u64;
        group.bench_with_input(BenchmarkId::new("centralized", n), &n, |b, _| {
            b.iter(|| setup.aggregate_centralized(AggOp::Min, &value))
        });
        group.bench_with_input(BenchmarkId::new("simulated", n), &n, |b, _| {
            b.iter(|| {
                setup
                    .aggregate_simulated(&g, AggOp::Min, &value, false, &SimConfig::default())
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("tree_build", n), &n, |b, _| {
            b.iter(|| AggregationSetup::build(&g, &partition, &pruned.shortcuts))
        });
    }
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let (hw, _) = highway_workload(1600, 4);
    let g = hw.graph().clone();
    c.bench_function("engine_bfs_n1600", |b| {
        b.iter(|| {
            Session::new(&g, SimConfig::default())
                .run(Bfs::new(0))
                .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_aggregation, bench_engine
}
criterion_main!(benches);
