//! Criterion benchmarks: the applications (MST per strategy, min cut,
//! SSSP).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_apps::{
    approximate_min_cut, mst_via_shortcuts, shortcut_sssp, MinCutConfig, MstConfig,
    ShortcutStrategy,
};
use lcs_bench::highway_workload;
use lcs_core::{centralized_shortcuts, prune_to_trees, KpParams, LargenessRule, OracleMode};
use lcs_graph::{gnp_connected, WeightedGraph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn bench_mst(c: &mut Criterion) {
    let mut group = c.benchmark_group("mst_accounted");
    for strategy in [
        ShortcutStrategy::KoganParter,
        ShortcutStrategy::GlobalTree,
        ShortcutStrategy::Trivial,
    ] {
        let (hw, _) = highway_workload(900, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let wg = WeightedGraph::with_random_weights(hw.graph().clone(), 1000, &mut rng);
        group.bench_with_input(
            BenchmarkId::new("strategy", format!("{strategy}")),
            &strategy,
            |b, &s| {
                let cfg = MstConfig {
                    strategy: s,
                    diameter: Some(4),
                    ..MstConfig::default()
                };
                b.iter(|| mst_via_shortcuts(&wg, &cfg).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_mincut(c: &mut Criterion) {
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let g = gnp_connected(60, 0.15, &mut rng);
    let wg = WeightedGraph::with_random_weights(g, 20, &mut rng);
    c.bench_function("mincut_n60", |b| {
        b.iter(|| approximate_min_cut(&wg, &MinCutConfig::default()).unwrap())
    });
}

fn bench_sssp(c: &mut Criterion) {
    let (hw, partition) = highway_workload(900, 4);
    let g = hw.graph().clone();
    let weights: Vec<u64> = g
        .edge_ids()
        .map(|e| {
            let (u, v) = g.edge_endpoints(e);
            if u < hw.highway_first() && v < hw.highway_first() {
                1
            } else {
                100
            }
        })
        .collect();
    let wg = WeightedGraph::new(g.clone(), weights).unwrap();
    let params = KpParams::new(g.n(), 4, 1.0).unwrap();
    let raw = centralized_shortcuts(
        &g,
        &partition,
        params,
        1,
        LargenessRule::Radius,
        OracleMode::PerArc,
    );
    let pruned = prune_to_trees(&g, &partition, &raw.shortcuts, params.depth_limit());
    c.bench_function("sssp_accelerated_n900", |b| {
        b.iter(|| shortcut_sssp(&wg, &partition, &pruned.shortcuts, 0, 128))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_mst, bench_mincut, bench_sssp
}
criterion_main!(benches);
