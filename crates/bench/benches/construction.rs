//! Criterion microbenchmarks: shortcut construction kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_bench::highway_workload;
use lcs_core::{
    centralized_shortcuts, prune_to_trees, KpParams, LargenessRule, OracleMode, SampleOracle,
};

fn bench_centralized(c: &mut Criterion) {
    let mut group = c.benchmark_group("centralized_construction");
    for &n in &[400usize, 1600] {
        let (hw, partition) = highway_workload(n, 4);
        let g = hw.graph().clone();
        let params = KpParams::new(g.n(), 4, 1.0).unwrap();
        group.bench_with_input(BenchmarkId::new("per_arc", n), &n, |b, _| {
            b.iter(|| {
                centralized_shortcuts(
                    &g,
                    &partition,
                    params,
                    1,
                    LargenessRule::Radius,
                    OracleMode::PerArc,
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("per_part", n), &n, |b, _| {
            b.iter(|| {
                centralized_shortcuts(
                    &g,
                    &partition,
                    params,
                    1,
                    LargenessRule::Radius,
                    OracleMode::PerPart,
                )
            })
        });
    }
    group.finish();
}

fn bench_pruning(c: &mut Criterion) {
    let (hw, partition) = highway_workload(1600, 4);
    let g = hw.graph().clone();
    let params = KpParams::new(g.n(), 4, 1.0).unwrap();
    let raw = centralized_shortcuts(
        &g,
        &partition,
        params,
        1,
        LargenessRule::Radius,
        OracleMode::PerArc,
    );
    c.bench_function("prune_to_trees_n1600", |b| {
        b.iter(|| prune_to_trees(&g, &partition, &raw.shortcuts, params.depth_limit()))
    });
}

fn bench_oracle(c: &mut Criterion) {
    let oracle = SampleOracle::new(1, 0.3, 4);
    c.bench_function("sample_oracle_prf", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            oracle.sampled_by(i % 1000, (i / 7) % 1000, i % 64, i % 4)
        })
    });
    c.bench_function("sample_oracle_picks", |b| {
        let mut i = 0u32;
        b.iter(|| {
            i = i.wrapping_add(1);
            oracle.picks_for_arc(i % 1000, (i / 7) % 1000, 0, 256)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_centralized, bench_pruning, bench_oracle
}
criterion_main!(benches);
