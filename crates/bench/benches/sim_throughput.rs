//! Criterion microbenchmarks of the CONGEST engine's throughput: the
//! raw arc-mailbox message path, multi-BFS (the acceptance workload of
//! the arc-indexed engine rewrite), and sharded round execution.
//!
//! The `sim_throughput` binary measures the same workloads at full scale
//! and emits `BENCH_sim.json`; these benches track the trend at
//! criterion-friendly sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_bench::sim_workloads::{multi_bfs_spec, Saturate};
use lcs_congest::{MultiBfs, MultiBfsSpec, Session, SimConfig};
use lcs_graph::generators;
use std::sync::Arc;

fn bench_engine_message_path(c: &mut Criterion) {
    let g = generators::grid(40, 40);
    c.bench_function("engine_saturate_n1600", |b| {
        b.iter(|| {
            lcs_congest::run(
                &g,
                (0..g.n()).map(|_| Saturate::new(30)).collect::<Vec<_>>(),
                &SimConfig::default(),
            )
            .unwrap()
        })
    });
}

fn run_bundle(g: &lcs_graph::Graph, spec: Arc<MultiBfsSpec>, cfg: &SimConfig) {
    Session::new(g, cfg.clone())
        .run(MultiBfs::new(spec))
        .unwrap();
}

fn bench_multi_bfs_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_multi_bfs");
    for &n_side in &[30usize, 50] {
        let g = generators::grid(n_side, n_side);
        let spec = multi_bfs_spec(g.n(), 16);
        group.bench_with_input(BenchmarkId::from_parameter(n_side * n_side), &g, |b, g| {
            b.iter(|| run_bundle(g, Arc::clone(&spec), &SimConfig::default()))
        });
    }
    group.finish();
}

fn bench_sharded_rounds(c: &mut Criterion) {
    let g = generators::grid(50, 50);
    let spec = multi_bfs_spec(g.n(), 16);
    let mut group = c.benchmark_group("sim_shards");
    for &shards in &[1usize, 2, 4, 8] {
        let cfg = SimConfig {
            shards,
            ..SimConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(shards), &cfg, |b, cfg| {
            b.iter(|| run_bundle(&g, Arc::clone(&spec), cfg))
        });
    }
    group.finish();
}

/// Shard-sweep of pure idle-round cost under the event-driven active
/// set: every node but one quiesces after round 0 and a single clock
/// node stays awake 100 rounds. An idle round runs O(1) work — and at
/// shards > 1 runs inline on the coordinator (no barrier crossing), so
/// the trace should be flat across shard counts. (The full-scan engine
/// this replaced paid O(n) node calls plus the barrier per round here.)
fn bench_pool_round_overhead(c: &mut Criterion) {
    use lcs_bench::sim_workloads::Clock;
    let g = generators::grid(40, 40);
    let mut group = c.benchmark_group("sim_pool_idle_rounds");
    for &shards in &[1usize, 2, 4, 8] {
        let cfg = SimConfig {
            shards,
            ..SimConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(shards), &cfg, |b, cfg| {
            b.iter(|| {
                let nodes = (0..g.n())
                    .map(|v| Clock::new(if v == 0 { 100 } else { 0 }))
                    .collect::<Vec<_>>();
                let out = lcs_congest::run(&g, nodes, cfg).unwrap();
                assert_eq!(out.stats.rounds, 100);
            })
        });
    }
    group.finish();
}

/// Sparse-frontier BFS down a long path: 1–2 active nodes per round for
/// n rounds. The event-driven engine's rounds cost O(active), so this
/// completes in O(n) total; the full-scan engine paid O(n) per round.
fn bench_sparse_path_bfs(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_sparse_bfs");
    for &n in &[1_000usize, 4_000] {
        let g = generators::path(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &g, |b, g| {
            b.iter(|| {
                let out = Session::new(g, SimConfig::default())
                    .run(lcs_congest::Bfs::new(0))
                    .unwrap();
                assert_eq!(out.depth() as usize, n - 1);
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_message_path,
    bench_multi_bfs_throughput,
    bench_sharded_rounds,
    bench_pool_round_overhead,
    bench_sparse_path_bfs
);
criterion_main!(benches);
