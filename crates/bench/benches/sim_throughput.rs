//! Criterion microbenchmarks of the CONGEST engine's throughput: the
//! raw arc-mailbox message path, multi-BFS (the acceptance workload of
//! the arc-indexed engine rewrite), and sharded round execution.
//!
//! The `sim_throughput` binary measures the same workloads at full scale
//! and emits `BENCH_sim.json`; these benches track the trend at
//! criterion-friendly sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lcs_bench::sim_workloads::{multi_bfs_spec, Saturate};
use lcs_congest::{MultiBfs, MultiBfsSpec, Session, SimConfig};
use lcs_graph::generators;
use std::sync::Arc;

fn bench_engine_message_path(c: &mut Criterion) {
    let g = generators::grid(40, 40);
    c.bench_function("engine_saturate_n1600", |b| {
        b.iter(|| {
            lcs_congest::run(
                &g,
                (0..g.n()).map(|_| Saturate::new(30)).collect::<Vec<_>>(),
                &SimConfig::default(),
            )
            .unwrap()
        })
    });
}

fn run_bundle(g: &lcs_graph::Graph, spec: Arc<MultiBfsSpec>, cfg: &SimConfig) {
    Session::new(g, cfg.clone())
        .run(MultiBfs::new(spec))
        .unwrap();
}

fn bench_multi_bfs_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_multi_bfs");
    for &n_side in &[30usize, 50] {
        let g = generators::grid(n_side, n_side);
        let spec = multi_bfs_spec(g.n(), 16);
        group.bench_with_input(BenchmarkId::from_parameter(n_side * n_side), &g, |b, g| {
            b.iter(|| run_bundle(g, Arc::clone(&spec), &SimConfig::default()))
        });
    }
    group.finish();
}

fn bench_sharded_rounds(c: &mut Criterion) {
    let g = generators::grid(50, 50);
    let spec = multi_bfs_spec(g.n(), 16);
    let mut group = c.benchmark_group("sim_shards");
    for &shards in &[1usize, 2, 4, 8] {
        let cfg = SimConfig {
            shards,
            ..SimConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(shards), &cfg, |b, cfg| {
            b.iter(|| run_bundle(&g, Arc::clone(&spec), cfg))
        });
    }
    group.finish();
}

/// Shard-sweep of pure per-round overhead: an idle protocol that never
/// sends isolates what a pooled round costs — two barrier crossings per
/// worker — against the sequential engine's bare node loop. This is the
/// quantity the persistent pool was built to shrink (the per-round
/// `thread::scope` spawn it replaced dominated here).
fn bench_pool_round_overhead(c: &mut Criterion) {
    #[derive(Debug)]
    struct Idle;
    impl lcs_congest::NodeAlgorithm for Idle {
        type Msg = u32;
        fn round(&mut self, _ctx: &mut lcs_congest::RoundCtx<'_, u32>) {}
        fn halted(&self) -> bool {
            false
        }
    }
    let g = generators::grid(40, 40);
    let mut group = c.benchmark_group("sim_pool_idle_rounds");
    for &shards in &[1usize, 2, 4, 8] {
        let cfg = SimConfig {
            shards,
            max_rounds: 100,
            ..SimConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(shards), &cfg, |b, cfg| {
            b.iter(|| {
                let err = lcs_congest::run(&g, (0..g.n()).map(|_| Idle).collect::<Vec<_>>(), cfg)
                    .unwrap_err();
                assert!(matches!(
                    err,
                    lcs_congest::SimError::RoundLimitExceeded { .. }
                ));
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_message_path,
    bench_multi_bfs_throughput,
    bench_sharded_rounds,
    bench_pool_round_overhead
);
criterion_main!(benches);
