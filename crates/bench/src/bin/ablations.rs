//! Ablations for the design choices called out in DESIGN.md §6:
//!
//! * repetition count (`D` independent repetitions vs 1 boosted one);
//! * sampling-probability constant;
//! * largeness rule (radius vs size);
//! * random start delays in the scheduled BFS (on vs off).

use lcs_bench::{f3, highway_workload, BenchArgs, Table};
use lcs_congest::{MultiBfs, MultiBfsInstance, MultiBfsSpec, Session, SimConfig};
use lcs_core::{
    centralized_shortcuts, classify_large, shared_delay, KpParams, LargenessRule, OracleMode,
    SampleOracle,
};
use lcs_shortcut::{measure_quality, DilationMode};
use std::sync::Arc;

fn main() {
    let args = BenchArgs::from_env();
    let nt = if args.quick { 600 } else { 2500 };
    let d = 4u32;
    let (hw, partition) = highway_workload(nt, d);
    let g = hw.graph();
    let n = g.n();

    // --- Ablation 1: repetitions. -------------------------------------
    let mut t1 = Table::new(
        "ablate_repetitions: D independent repetitions vs 1 boosted repetition",
        &["variant", "c", "dil", "c+d"],
    );
    {
        let paper = KpParams::new(n, d, 1.0).expect("params");
        let one_rep = {
            // Same marginal probability: 1 - (1-p)^D ≈ D·p, capped.
            let mut p = paper;
            p.p = (1.0 - (1.0 - paper.p).powi(paper.reps as i32)).min(1.0);
            p.with_reps(1)
        };
        for (name, params) in [("paper (reps=D)", paper), ("boosted (reps=1)", one_rep)] {
            let out = centralized_shortcuts(
                g,
                &partition,
                params,
                5,
                LargenessRule::Radius,
                OracleMode::PerArc,
            );
            let q = measure_quality(g, &partition, &out.shortcuts, DilationMode::Exact).quality;
            t1.row(vec![
                name.to_string(),
                q.congestion.to_string(),
                q.dilation.to_string(),
                q.total().to_string(),
            ]);
        }
    }
    t1.print();

    // --- Ablation 2: probability constant. ----------------------------
    let mut t2 = Table::new(
        "ablate_probability: quality vs sampling constant",
        &["constant", "p", "c", "dil", "c+d"],
    );
    for c in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let params = KpParams::new(n, d, c).expect("params");
        let out = centralized_shortcuts(
            g,
            &partition,
            params,
            5,
            LargenessRule::Radius,
            OracleMode::PerArc,
        );
        let q = measure_quality(g, &partition, &out.shortcuts, DilationMode::Exact).quality;
        t2.row(vec![
            f3(c),
            f3(params.p),
            q.congestion.to_string(),
            q.dilation.to_string(),
            q.total().to_string(),
        ]);
    }
    t2.print();

    // --- Ablation 3: largeness rule. ----------------------------------
    let mut t3 = Table::new(
        "ablate_largeness: radius rule vs size rule",
        &["rule", "large parts", "c+d"],
    );
    {
        let params = KpParams::new(n, d, 1.0).expect("params");
        for (name, rule) in [
            ("radius (distributed test)", LargenessRule::Radius),
            ("size (paper definition)", LargenessRule::Size),
        ] {
            let larges = classify_large(g, &partition, params.k_ceil, rule)
                .iter()
                .filter(|&&l| l)
                .count();
            let out = centralized_shortcuts(g, &partition, params, 5, rule, OracleMode::PerArc);
            let q = measure_quality(g, &partition, &out.shortcuts, DilationMode::Exact).quality;
            t3.row(vec![
                name.to_string(),
                larges.to_string(),
                q.total().to_string(),
            ]);
        }
    }
    t3.print();

    // --- Ablation 4: random start delays in the scheduled BFS. --------
    let mut t4 = Table::new(
        "ablate_scheduler: random start delays vs simultaneous starts",
        &["variant", "rounds", "max queue"],
    );
    {
        let params = KpParams::new(n, d, 1.0).expect("params");
        let oracle = SampleOracle::new(5, params.p, params.reps);
        let leaders: Vec<_> = (0..partition.num_parts())
            .map(|i| partition.leader(i))
            .collect();
        let part = Arc::new(partition.clone());
        let lead = Arc::new(leaders.clone());
        let reps = params.reps;
        let membership = lcs_congest::Membership::func(move |u, v, inst| {
            let pi = inst;
            if part.part_of(u) == Some(pi) || part.part_of(v) == Some(pi) {
                return true;
            }
            (0..reps).any(|r| oracle.sampled_by(u, v, lead[inst as usize], r))
        });
        for (name, delays) in [("delayed", true), ("bunched", false)] {
            let phase_len = lcs_congest::ceil_log2(n) as u64;
            let instances: Vec<MultiBfsInstance> = (0..partition.num_parts())
                .map(|i| MultiBfsInstance {
                    root: leaders[i],
                    start_round: if delays {
                        shared_delay(99, i as u32, params.k_ceil as u64) * phase_len
                    } else {
                        0
                    },
                    depth_limit: params.depth_limit(),
                })
                .collect();
            let spec = Arc::new(MultiBfsSpec {
                instances,
                membership: membership.clone(),
                queue_cap: 0,
            });
            let out = Session::new(g, SimConfig::default())
                .run(MultiBfs::new(spec))
                .expect("bfs bundle");
            t4.row(vec![
                name.to_string(),
                out.stats.rounds.to_string(),
                out.max_queue.to_string(),
            ]);
        }
    }
    t4.print();

    // --- Ablation 5: part shape (gamma sweep). ------------------------
    // Gamma = n^gexp paths of length ~n^(1-gexp): KP quality should be
    // ~flat across shapes (always Õ(k_D)) while the trivial baseline
    // pays the part length and the global tree pays the part count —
    // the framework's "good for every part collection" universality.
    let mut t5 = Table::new(
        "ablate_part_shape: quality vs part-count exponent (D=4, n≈2500)",
        &[
            "gamma exp",
            "paths",
            "path len",
            "KP c+d",
            "trivial c+d",
            "glob-tree c+d",
        ],
    );
    for gexp in [0.25f64, 0.4, 0.5, 0.6, 0.75] {
        let Ok(hw) = lcs_graph::HighwayGraph::with_gamma_exponent(2500, 4, gexp) else {
            continue;
        };
        let g = hw.graph();
        let Ok(partition) = lcs_shortcut::Partition::new(g, hw.path_parts()) else {
            continue;
        };
        let Ok(params) = KpParams::new(g.n(), 4, 1.0) else {
            continue;
        };
        let kp = centralized_shortcuts(
            g,
            &partition,
            params,
            9,
            LargenessRule::Radius,
            OracleMode::PerArc,
        );
        let kp_q = measure_quality(g, &partition, &kp.shortcuts, DilationMode::Exact).quality;
        let triv = measure_quality(
            g,
            &partition,
            &lcs_shortcut::trivial_shortcuts(&partition),
            DilationMode::Exact,
        )
        .quality;
        let glob = measure_quality(
            g,
            &partition,
            &lcs_shortcut::global_tree_shortcuts(g, &partition, 0, Some(1)),
            DilationMode::Exact,
        )
        .quality;
        let p = hw.params();
        t5.row(vec![
            format!("{gexp:.2}"),
            p.num_paths.to_string(),
            p.path_len.to_string(),
            kp_q.total().to_string(),
            triv.total().to_string(),
            glob.total().to_string(),
        ]);
    }
    t5.print();
    println!("reading: KP stays in one band across shapes; trivial blows up with\npath length (small gamma), global-tree with part count (large gamma).");
}
