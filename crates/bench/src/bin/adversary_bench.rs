//! Adversary benchmark: worst-case fault placement vs random.
//!
//! Emits `BENCH_adversary.json`. Every scenario runs the *same* fault
//! budget (drop/delay/corrupt rates and crash count) and varies only
//! **where** the faults land:
//!
//! * `*_fault_free` — the clean baseline the overhead columns divide by.
//! * `*_random` — crashes placed by a seeded hash on non-leader nodes,
//!   plus one transient crash that rejoins mid-detection.
//! * `*_leaders` — the adversarial placement: permanent crashes on the
//!   leaders of the largest parts, i.e. exactly the nodes every guess
//!   of the ladder roots its part-wise convergecasts at. Killing a
//!   leader forces the detection phase to excise it, fragments its part
//!   (UnionFind split), and makes the surviving pipeline re-elect.
//! * `sc_corrupt_storm` — no crashes, corruption cranked to 25% on
//!   every link (a uniform superset of "corrupt the heaviest links":
//!   fault fates are per-(arc, round), so the heavy links are hit at
//!   the same rate as everything else). Nothing may be excised and the
//!   output must be **byte-identical** to the fault-free run — the
//!   integrity-tag + ARQ layer turns corruption into pure round/message
//!   overhead. The bin asserts this.
//!
//! Families: `sc_*` drives the full shortcut-construction pipeline
//! ([`distributed_shortcuts`]); `mst_*` drives simulated Boruvka
//! ([`mst_via_shortcuts`]) on the same highway instance with
//! deterministic weights.
//!
//! Like `sim_throughput`, the bin doubles as a CI gate: every scenario
//! is run at each shard count of `--shards` and the process exits
//! nonzero if any sharded run's fingerprint, phase breakdown, or
//! excision set diverges from the 1-shard run's — graceful degradation
//! is inside the same determinism contract as the fault-free engine.

use std::collections::HashSet;
use std::time::Instant;

use lcs_apps::{mst_via_shortcuts, MstConfig, MstOutcome};
use lcs_bench::{f3, highway_workload, Table};
use lcs_congest::{Crash, ExecutionMode, FaultPlan};
use lcs_core::{distributed_shortcuts, splitmix64, DistributedConfig, DistributedOutcome};
use lcs_graph::{Graph, NodeId, WeightedGraph};
use lcs_shortcut::Partition;

/// Seed for crash placement, weights, and the fault layer's PRF.
const ADV_SEED: u64 = 0xADF0_0D5E;

#[derive(Debug, Clone)]
struct Measurement {
    name: String,
    n: usize,
    m: usize,
    shards: usize,
    rounds: u64,
    messages: u64,
    elapsed_s: f64,
    /// Nodes the detection phase excised (0 for fault-free runs).
    excluded: usize,
    /// Rounds charged to detection (0 for fault-free runs).
    extra_rounds: u64,
    /// Round/message overhead vs the same family's fault-free run at
    /// the same shard count (1.0 for the baselines themselves).
    overhead_rounds: f64,
    overhead_messages: f64,
    /// Cumulative engine fingerprint (shortcut family) or a fold over
    /// the full outcome (MST family — no session stats are exposed).
    stats_fingerprint: u64,
    /// `(label, rounds, messages, fingerprint)` per phase, detection
    /// phases included; empty for the MST family.
    phases: Vec<(String, u64, u64, u64)>,
}

impl Measurement {
    fn json(&self) -> String {
        let phases = if self.phases.is_empty() {
            String::new()
        } else {
            let body = self
                .phases
                .iter()
                .map(|(label, rounds, messages, fp)| {
                    format!(
                        concat!(
                            "{{\"label\":\"{}\",\"rounds\":{},",
                            "\"messages\":{},\"fingerprint\":\"{:#018x}\"}}"
                        ),
                        label, rounds, messages, fp
                    )
                })
                .collect::<Vec<_>>()
                .join(",");
            format!(",\"phases\":[{body}]")
        };
        format!(
            concat!(
                "{{\"name\":\"{}\",\"n\":{},\"m\":{},\"shards\":{},",
                "\"rounds\":{},\"messages\":{},\"elapsed_s\":{:.6},",
                "\"excluded\":{},\"extra_rounds\":{},",
                "\"overhead_rounds\":{:.4},\"overhead_messages\":{:.4},",
                "\"stats_fingerprint\":\"{:#018x}\"{}}}"
            ),
            self.name,
            self.n,
            self.m,
            self.shards,
            self.rounds,
            self.messages,
            self.elapsed_s,
            self.excluded,
            self.extra_rounds,
            self.overhead_rounds,
            self.overhead_messages,
            self.stats_fingerprint,
            phases,
        )
    }
}

fn fold(h: u64, x: u64) -> u64 {
    splitmix64(h ^ x)
}

/// Permanent crashes on the leaders of the `k` largest parts (never
/// node 0 — it roots the detection convergecast).
fn leader_crashes(partition: &Partition, k: usize) -> Vec<Crash> {
    let mut order: Vec<usize> = (0..partition.num_parts()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(partition.part(i).len()), i));
    let mut crashes = Vec::new();
    for &i in &order {
        if crashes.len() == k {
            break;
        }
        let leader = partition.leader(i);
        if leader == 0 {
            continue;
        }
        crashes.push(Crash {
            node: leader,
            at_round: 2,
            recover_at: None,
        });
    }
    assert_eq!(crashes.len(), k, "not enough non-root leaders to crash");
    crashes
}

/// Permanent crashes on `k` hash-picked nodes that are neither node 0
/// nor any part leader — the same budget as [`leader_crashes`], placed
/// blindly.
fn random_crashes(n: usize, partition: &Partition, k: usize) -> Vec<Crash> {
    let leaders: HashSet<NodeId> = (0..partition.num_parts())
        .map(|i| partition.leader(i))
        .collect();
    let mut picked: HashSet<NodeId> = HashSet::new();
    let mut crashes = Vec::new();
    let mut ctr = 0u64;
    while crashes.len() < k {
        let v = (splitmix64(ADV_SEED ^ ctr) % n as u64) as NodeId;
        ctr += 1;
        if v == 0 || leaders.contains(&v) || !picked.insert(v) {
            continue;
        }
        crashes.push(Crash {
            node: v,
            at_round: 2,
            recover_at: None,
        });
    }
    crashes
}

/// One transient crash (dies at round 2, rejoins at round 40) on a
/// node untouched by `crashes` — exercises the rejoin handshake inside
/// the detection phase: the node must NOT be excised.
fn add_transient(crashes: &mut Vec<Crash>, n: usize) {
    let down: HashSet<NodeId> = crashes.iter().map(|c| c.node).collect();
    let mut ctr = 0x7_1A5u64;
    loop {
        let v = (splitmix64(ADV_SEED ^ ctr) % n as u64) as NodeId;
        ctr += 1;
        if v != 0 && !down.contains(&v) {
            crashes.push(Crash {
                node: v,
                at_round: 2,
                recover_at: Some(40),
            });
            return;
        }
    }
}

/// The shared four-tier budget: every faulty scenario uses these rates
/// so the only variable across `random`/`leaders` is crash placement.
fn budget_plan(crashes: Vec<Crash>) -> FaultPlan {
    FaultPlan {
        drop_rate: 0.05,
        delay_rate: 0.03,
        max_delay: 2,
        corrupt_rate: 0.05,
        crashes,
        fault_seed: ADV_SEED,
    }
}

fn corrupt_storm_plan() -> FaultPlan {
    FaultPlan {
        drop_rate: 0.05,
        corrupt_rate: 0.25,
        fault_seed: ADV_SEED,
        ..FaultPlan::default()
    }
}

fn run_shortcuts(
    name: &str,
    g: &Graph,
    partition: &Partition,
    shards: usize,
    plan: Option<FaultPlan>,
) -> (Measurement, DistributedOutcome) {
    let cfg = DistributedConfig {
        shards,
        faults: plan,
        ..DistributedConfig::default()
    };
    let t = Instant::now();
    let out = distributed_shortcuts(g, partition, &cfg)
        .unwrap_or_else(|e| panic!("{name}: pipeline failed: {e}"));
    let secs = t.elapsed().as_secs_f64();
    let (excluded, extra_rounds) = match &out.degraded {
        Some(d) => (d.excluded_nodes.len(), d.extra_rounds),
        None => (0, 0),
    };
    let m = Measurement {
        name: name.to_string(),
        n: g.n(),
        m: g.m(),
        shards,
        rounds: out.total_rounds,
        messages: out.total_messages,
        elapsed_s: secs,
        excluded,
        extra_rounds,
        overhead_rounds: 1.0,
        overhead_messages: 1.0,
        stats_fingerprint: out.stats.fingerprint(),
        phases: out
            .phase_stats
            .iter()
            .map(|s| (s.label.clone(), s.rounds, s.messages, s.fingerprint()))
            .collect(),
    };
    (m, out)
}

/// MST outcomes expose no session stats, so the gate fingerprint is a
/// fold over everything the run decided: edges, weight, phase count,
/// costs, and the excision set.
fn mst_fingerprint(out: &MstOutcome) -> u64 {
    let mut h = 0x4D57_0E55u64;
    h = fold(h, out.weight);
    h = fold(h, out.phases as u64);
    h = fold(h, out.total_rounds);
    h = fold(h, out.messages);
    for e in &out.edges {
        h = fold(h, e.0 as u64);
    }
    if let Some(d) = &out.degraded {
        h = fold(h, d.extra_rounds);
        for v in &d.excluded_nodes {
            h = fold(h, u64::from(*v) + 1);
        }
    }
    h
}

fn run_mst(name: &str, wg: &WeightedGraph, shards: usize, plan: Option<FaultPlan>) -> Measurement {
    let cfg = MstConfig {
        execution: ExecutionMode::Simulated,
        shards,
        faults: plan,
        ..MstConfig::default()
    };
    let t = Instant::now();
    let out = mst_via_shortcuts(wg, &cfg).unwrap_or_else(|e| panic!("{name}: Boruvka failed: {e}"));
    let secs = t.elapsed().as_secs_f64();
    let (excluded, extra_rounds) = match &out.degraded {
        Some(d) => (d.excluded_nodes.len(), d.extra_rounds),
        None => (0, 0),
    };
    Measurement {
        name: name.to_string(),
        n: wg.graph().n(),
        m: wg.graph().m(),
        shards,
        rounds: out.total_rounds,
        messages: out.messages,
        elapsed_s: secs,
        excluded,
        extra_rounds,
        overhead_rounds: 1.0,
        overhead_messages: 1.0,
        stats_fingerprint: mst_fingerprint(&out),
        phases: Vec::new(),
    }
}

/// Shortcut sets carry no `Eq`; compare the parts pairwise.
fn assert_same_shortcuts(name: &str, a: &DistributedOutcome, b: &DistributedOutcome) {
    assert_eq!(
        a.accepted_guess, b.accepted_guess,
        "{name}: accepted guess changed under corruption"
    );
    assert_eq!(a.is_large, b.is_large, "{name}: largeness changed");
    assert_eq!(a.shortcuts.num_parts(), b.shortcuts.num_parts());
    for i in 0..a.shortcuts.num_parts() {
        assert_eq!(
            a.shortcuts.edges(i),
            b.shortcuts.edges(i),
            "{name}: shortcut edges of part {i} changed under corruption"
        );
    }
}

fn parse_args() -> (bool, Vec<usize>, String) {
    let mut quick = false;
    let mut shards = vec![1, 4];
    let mut out_path = "BENCH_adversary.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--shards" => {
                let Some(spec) = args.next() else {
                    eprintln!("--shards needs a comma-separated list, e.g. --shards 1,4");
                    std::process::exit(2);
                };
                shards = spec
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("bad shard count {s:?}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
                if shards.is_empty() || shards[0] != 1 {
                    // The 1-shard run is the determinism baseline.
                    shards.retain(|&s| s != 1);
                    shards.insert(0, 1);
                }
            }
            "--out" => {
                if let Some(p) = args.next() {
                    out_path = p;
                }
            }
            _ => {}
        }
    }
    (quick, shards, out_path)
}

fn main() {
    let (quick, shard_sweep, out_path) = parse_args();
    let (n_target, k_crashes) = if quick { (300, 2) } else { (1500, 3) };

    let (hw, partition) = highway_workload(n_target, 4);
    let g = hw.graph();
    let weighted: Vec<(NodeId, NodeId, u64)> = g
        .edges()
        .iter()
        .enumerate()
        .map(|(e, &(u, v))| (u, v, splitmix64(ADV_SEED ^ e as u64) % 1_000 + 1))
        .collect();
    let wg = WeightedGraph::from_weighted_edges(g.n(), &weighted).expect("weighted highway");

    let adversarial = leader_crashes(&partition, k_crashes);
    let blind = random_crashes(g.n(), &partition, k_crashes);
    let mut adversarial_t = adversarial.clone();
    add_transient(&mut adversarial_t, g.n());
    let mut blind_t = blind.clone();
    add_transient(&mut blind_t, g.n());

    let mut all: Vec<Measurement> = Vec::new();
    for &shards in &shard_sweep {
        let (base, base_out) = run_shortcuts("sc_fault_free", g, &partition, shards, None);
        let (random, random_out) = run_shortcuts(
            "sc_random",
            g,
            &partition,
            shards,
            Some(budget_plan(blind_t.clone())),
        );
        let (leaders, leaders_out) = run_shortcuts(
            "sc_leaders",
            g,
            &partition,
            shards,
            Some(budget_plan(adversarial_t.clone())),
        );
        let (storm, storm_out) = run_shortcuts(
            "sc_corrupt_storm",
            g,
            &partition,
            shards,
            Some(corrupt_storm_plan()),
        );

        // Graceful-degradation contracts, checked at every shard count.
        for (m, out, crashes) in [
            (&random, &random_out, &blind_t),
            (&leaders, &leaders_out, &adversarial_t),
        ] {
            let d = out.degraded.as_ref().expect("faulty run reports outcome");
            assert!(d.completed, "{}: survivors did not complete", m.name);
            for c in crashes {
                let excised = d.excluded_nodes.contains(&c.node);
                match c.recover_at {
                    None => assert!(excised, "{}: dead node {} kept", m.name, c.node),
                    Some(_) => assert!(!excised, "{}: rejoined node {} excised", m.name, c.node),
                }
            }
        }
        let storm_d = storm_out.degraded.as_ref().expect("storm reports outcome");
        assert!(
            storm_d.excluded_nodes.is_empty(),
            "corrupt storm excised nodes"
        );
        assert_same_shortcuts("sc_corrupt_storm", &storm_out, &base_out);
        drop(base_out);

        let mst_base = run_mst("mst_fault_free", &wg, shards, None);
        let mst_random = run_mst(
            "mst_random",
            &wg,
            shards,
            Some(budget_plan(blind_t.clone())),
        );
        let mst_leaders = run_mst(
            "mst_leaders",
            &wg,
            shards,
            Some(budget_plan(adversarial_t.clone())),
        );

        let over = |m: &mut Measurement, b: &Measurement| {
            m.overhead_rounds = m.rounds as f64 / b.rounds.max(1) as f64;
            m.overhead_messages = m.messages as f64 / b.messages.max(1) as f64;
        };
        let mut batch = vec![
            base,
            random,
            leaders,
            storm,
            mst_base,
            mst_random,
            mst_leaders,
        ];
        let (sc_base, mst_base) = (batch[0].clone(), batch[4].clone());
        for m in &mut batch[1..4] {
            over(m, &sc_base);
        }
        for m in &mut batch[5..7] {
            over(m, &mst_base);
        }
        all.extend(batch);
    }

    // Shard-determinism gate: fingerprints, phase breakdowns, costs,
    // and excision sets must be bit-identical to the 1-shard baseline.
    let mut diverged = Vec::new();
    let baseline: Vec<Measurement> = all.iter().filter(|m| m.shards == 1).cloned().collect();
    for m in all.iter().filter(|m| m.shards != 1) {
        let b = baseline
            .iter()
            .find(|b| b.name == m.name)
            .expect("baseline scenario");
        if (
            m.stats_fingerprint,
            &m.phases,
            m.rounds,
            m.messages,
            m.excluded,
        ) != (
            b.stats_fingerprint,
            &b.phases,
            b.rounds,
            b.messages,
            b.excluded,
        ) {
            diverged.push(format!("{} @ {} shards", m.name, m.shards));
        }
    }

    let mut table = Table::new(
        "Adversarial vs random fault placement",
        &[
            "scenario",
            "shards",
            "rounds",
            "messages",
            "excised",
            "detect_rounds",
            "x rounds",
            "x msgs",
        ],
    );
    for m in &all {
        table.row(vec![
            m.name.clone(),
            m.shards.to_string(),
            m.rounds.to_string(),
            m.messages.to_string(),
            m.excluded.to_string(),
            m.extra_rounds.to_string(),
            f3(m.overhead_rounds),
            f3(m.overhead_messages),
        ]);
    }
    table.print();

    let determinism = if diverged.is_empty() {
        "ok".to_string()
    } else {
        format!("DIVERGED: {}", diverged.join(", "))
    };
    let body = all
        .iter()
        .map(Measurement::json)
        .collect::<Vec<_>>()
        .join(",\n    ");
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"adversary_bench\",\n  \"mode\": \"{}\",\n",
            "  \"shard_sweep\": {:?},\n  \"determinism\": \"{}\",\n",
            "  \"scenarios\": [\n    {}\n  ]\n}}\n"
        ),
        if quick { "quick" } else { "full" },
        shard_sweep,
        determinism,
        body,
    );
    std::fs::write(&out_path, &json).expect("write BENCH_adversary.json");
    println!("{json}");
    if !diverged.is_empty() {
        eprintln!("DETERMINISM FAILURE: {determinism}");
        std::process::exit(1);
    }
}
