//! E10 — §3.2 odd-diameter reduction: the subdivision construction
//! (per-half `√p` sampling) vs running the even-case formulas directly
//! at odd `D`. Both should meet the `Õ(k_D)` bounds with comparable
//! constants.

use lcs_bench::{highway_workload, BenchArgs, Table};
use lcs_core::{
    centralized_shortcuts, odd_shortcuts_subdivision, KpParams, LargenessRule, OracleMode,
};
use lcs_shortcut::{measure_quality, DilationMode};

fn main() {
    let args = BenchArgs::from_env();
    let sizes = args.sizes(&[400, 900, 1600, 3600], &[400, 900]);

    for d in [5u32, 7] {
        let mut t = Table::new(
            &format!("E10 (D={d}): odd-diameter strategies"),
            &[
                "n",
                "bound c",
                "bound d",
                "subdiv c",
                "subdiv dil",
                "direct c",
                "direct dil",
            ],
        );
        for &nt in sizes {
            let (hw, partition) = highway_workload(nt, d);
            let g = hw.graph();
            let params = match KpParams::new(g.n(), d, 1.0) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let sub = odd_shortcuts_subdivision(g, &partition, params, 3, LargenessRule::Radius);
            let dir = centralized_shortcuts(
                g,
                &partition,
                params,
                3,
                LargenessRule::Radius,
                OracleMode::PerArc,
            );
            let mode = if g.n() > 3000 {
                DilationMode::Estimate
            } else {
                DilationMode::Exact
            };
            let sq = measure_quality(g, &partition, &sub.shortcuts, mode).quality;
            let dq = measure_quality(g, &partition, &dir.shortcuts, mode).quality;
            t.row(vec![
                g.n().to_string(),
                params.congestion_bound().to_string(),
                params.dilation_bound().to_string(),
                sq.congestion.to_string(),
                sq.dilation.to_string(),
                dq.congestion.to_string(),
                dq.dilation.to_string(),
            ]);
        }
        t.print();
    }
    println!("claim check: both strategies stay within the bounds; the subdivision\nconstruction (the paper's reduction) tracks the direct one within small\nconstants, confirming the (√p)² = p marginal argument.");
}
