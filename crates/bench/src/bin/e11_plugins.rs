//! E11 — Corollaries 4.2 / 4.3: the SSSP and 2-ECSS plug-ins.
//!
//! SSSP: iterations/rounds of the shortcut-accelerated relaxation vs
//! plain distributed Bellman–Ford, plus realized stretch (our substitute
//! mechanism, see DESIGN.md). 2-ECSS: weight vs the MST lower bound and
//! validity.

use lcs_apps::{bellman_ford_rounds, shortcut_sssp, two_ecss, verify_two_ecss, MstConfig};
use lcs_bench::{f3, highway_workload, BenchArgs, Table};
use lcs_core::{centralized_shortcuts, prune_to_trees, KpParams, LargenessRule, OracleMode};
use lcs_graph::{complete, WeightedGraph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let args = BenchArgs::from_env();
    let sizes = args.sizes(&[400, 900, 1600], &[400]);

    let mut t = Table::new(
        "E11a (Cor 4.2 mechanism): anytime SSSP — stretch after few shortcut\niterations vs exact Bellman-Ford's hop count (D=4 highway,\nlight path edges / heavy highway edges)",
        &[
            "n",
            "BF rounds (exact)",
            "stretch@2 iters",
            "stretch@4",
            "stretch@8",
            "iters to exact",
        ],
    );
    for &nt in sizes {
        let (hw, partition) = highway_workload(nt, 4);
        let g = hw.graph().clone();
        let weights: Vec<u64> = g
            .edge_ids()
            .map(|e| {
                let (u, v) = g.edge_endpoints(e);
                if u < hw.highway_first() && v < hw.highway_first() {
                    1
                } else {
                    100
                }
            })
            .collect();
        let wg = WeightedGraph::new(g.clone(), weights).expect("weights sized");
        let params = KpParams::new(g.n(), 4, 1.0).expect("params");
        let raw = centralized_shortcuts(
            &g,
            &partition,
            params,
            11,
            LargenessRule::Radius,
            OracleMode::PerArc,
        );
        let pruned = prune_to_trees(&g, &partition, &raw.shortcuts, params.depth_limit());
        let (_, bf_rounds) = bellman_ford_rounds(&wg, 0);
        let s2 = shortcut_sssp(&wg, &partition, &pruned.shortcuts, 0, 2);
        let s4 = shortcut_sssp(&wg, &partition, &pruned.shortcuts, 0, 4);
        let s8 = shortcut_sssp(&wg, &partition, &pruned.shortcuts, 0, 8);
        let exact = shortcut_sssp(&wg, &partition, &pruned.shortcuts, 0, 4096);
        t.row(vec![
            g.n().to_string(),
            bf_rounds.to_string(),
            f3(s2.max_stretch),
            f3(s4.max_stretch),
            f3(s8.max_stretch),
            exact.iterations.to_string(),
        ]);
    }
    t.print();

    let mut t2 = Table::new(
        "E11b (Cor 4.3): O(log n)-approx 2-ECSS on weighted cliques",
        &["n", "mst w", "2ecss w", "w/mst", "greedy rounds", "valid"],
    );
    let ns2: &[usize] = if args.quick {
        &[12, 20]
    } else {
        &[12, 20, 32, 48]
    };
    for &n in ns2 {
        let g = complete(n);
        let mut rng = ChaCha8Rng::seed_from_u64(n as u64);
        let wg = WeightedGraph::with_random_weights(g, 100, &mut rng);
        let cfg = MstConfig {
            diameter: Some(3),
            ..MstConfig::default()
        };
        let out = two_ecss(&wg, &cfg).expect("clique is 2EC");
        let valid = verify_two_ecss(wg.graph(), &out.edges);
        t2.row(vec![
            n.to_string(),
            out.mst_weight.to_string(),
            out.weight.to_string(),
            f3(out.weight as f64 / out.mst_weight as f64),
            out.greedy_rounds.to_string(),
            valid.to_string(),
        ]);
    }
    t2.print();
    println!("claim check: after a handful of shortcut iterations the distance\nestimates are already near-exact (stretch@8 ≈ 1), while exact Bellman-Ford\nneeds hop-diameter rounds growing with the path lengths — the anytime\nspeedup the corollary's hopset machinery industrializes. The 2-ECSS\noutput is always bridgeless with weight a small multiple of the MST\nlower bound (O(log n) in theory).");
}
