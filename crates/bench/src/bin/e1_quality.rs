//! E1 — Theorem 1.1: shortcut quality `c + d = Õ(k_D)`.
//!
//! Sweeps `n` for each `D ∈ {3..8}` on the balanced highway hard
//! instances, builds the centralized KP shortcuts, measures quality, and
//! fits the log-log slope of `c + d` against `n`, comparing it to the
//! claimed exponent `(D−2)/(2D−2)`.

use lcs_bench::{f3, highway_workload, loglog_slope, BenchArgs, Table};
use lcs_core::{centralized_shortcuts, k_d, KpParams, LargenessRule, OracleMode};
use lcs_shortcut::{global_tree_shortcuts, measure_quality, trivial_shortcuts, DilationMode};

fn main() {
    let args = BenchArgs::from_env();
    let sizes_full: &[usize] = &[400, 900, 1600, 3600, 6400, 12800];
    let sizes_quick: &[usize] = &[400, 900, 1600];
    let sizes = args.sizes(sizes_full, sizes_quick);
    let seed = args.seed.unwrap_or(1);

    let mut summary = Table::new(
        "E1 summary: measured exponent of (c+d) vs n against (D-2)/(2D-2)",
        &["D", "claimed exp", "measured exp", "points"],
    );

    for d in 3..=8u32 {
        let mut t = Table::new(
            &format!("E1 (D={d}): quality vs n on highway instances"),
            &[
                "n",
                "k_D",
                "c",
                "dil",
                "c+d",
                "(c+d)/(k_D·lg²n)",
                "trivial c+d",
                "glob-tree c+d",
            ],
        );
        let mut points: Vec<(f64, f64)> = Vec::new();
        for &nt in sizes {
            let (hw, partition) = highway_workload(nt, d);
            let g = hw.graph();
            let n = g.n();
            let params = match KpParams::new(n, d, 1.0) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let out = centralized_shortcuts(
                g,
                &partition,
                params,
                seed,
                LargenessRule::Radius,
                OracleMode::PerArc,
            );
            let mode = if n > 3000 {
                DilationMode::Estimate
            } else {
                DilationMode::Exact
            };
            let q = measure_quality(g, &partition, &out.shortcuts, mode).quality;
            let triv = measure_quality(g, &partition, &trivial_shortcuts(&partition), mode).quality;
            let glob = measure_quality(
                g,
                &partition,
                &global_tree_shortcuts(g, &partition, 0, Some(1)),
                mode,
            )
            .quality;
            let k = k_d(n, d);
            let lg = (n as f64).log2();
            points.push((n as f64, q.total() as f64));
            t.row(vec![
                n.to_string(),
                f3(k),
                q.congestion.to_string(),
                q.dilation.to_string(),
                q.total().to_string(),
                f3(q.total() as f64 / (k * lg * lg)),
                triv.total().to_string(),
                glob.total().to_string(),
            ]);
        }
        t.print();
        let claimed = (d as f64 - 2.0) / (2.0 * d as f64 - 2.0);
        let measured = loglog_slope(&points).unwrap_or(f64::NAN);
        summary.row(vec![
            d.to_string(),
            f3(claimed),
            f3(measured),
            points.len().to_string(),
        ]);
    }
    summary.print();
    println!(
        "note: at simulatable n the log-factors are comparable to k_D, so the\n\
         measured exponent should sit near (but above is acceptable) the claim;\n\
         the normalized column (c+d)/(k_D·lg²n) staying O(1) is the bound check.\n\
         'who wins': the trivial and global-tree baselines both pay ~sqrt(n)\n\
         on the balanced family, so the KP column dropping below them (first\n\
         at D=3, then at growing D as n grows) is the paper's separation."
    );

    // E1b: large-n streaming sweep (congestion exact, dilation sampled)
    // reaching the regime where the D=3 exponent approaches 1/4.
    if !args.quick {
        use lcs_core::{streamed_quality, LargenessRule as LR};
        let mut t = Table::new(
            "E1b (D=3, streamed): quality to n ≈ 50k",
            &["n", "k_D", "c", "dil (lo..hi)", "c+hi", "sqrt(n)"],
        );
        let mut points = Vec::new();
        for &nt in &[6400usize, 12800, 25600, 51200] {
            let (hw, partition) = highway_workload(nt, 3);
            let g = hw.graph();
            let n = g.n();
            let params = match KpParams::new(n, 3, 1.0) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let s = streamed_quality(g, &partition, params, seed, LR::Radius, 3);
            let total = s.congestion as u64 + s.dilation_upper as u64;
            points.push((n as f64, total as f64));
            t.row(vec![
                n.to_string(),
                f3(k_d(n, 3)),
                s.congestion.to_string(),
                format!("{}..{}", s.dilation_lower, s.dilation_upper),
                total.to_string(),
                f3((n as f64).sqrt()),
            ]);
        }
        t.print();
        println!(
            "   streamed D=3 exponent (c+d vs n): {}",
            f3(loglog_slope(&points).unwrap_or(f64::NAN))
        );
    }
}
