//! E2 — §2 congestion argument: max per-edge congestion is
//! `O(D·k_D·log n)` w.h.p. (Chernoff).
//!
//! Measures max and mean per-edge congestion across seeds, reports the
//! ratio to the bound and the tail histogram.

use lcs_bench::{f3, geomean, highway_workload, BenchArgs, Table};
use lcs_core::{centralized_shortcuts, KpParams, LargenessRule, OracleMode};
use lcs_shortcut::{measure_quality, DilationMode};

fn main() {
    let args = BenchArgs::from_env();
    let sizes = args.sizes(&[900, 1600, 3600, 6400], &[400, 900]);
    let seeds: u64 = if args.quick { 3 } else { 10 };

    for d in [3u32, 4, 6] {
        let mut t = Table::new(
            &format!("E2 (D={d}): per-edge congestion vs O(D·k_D·lg n) bound"),
            &[
                "n",
                "bound",
                "max c (worst seed)",
                "mean c",
                "max/bound",
                "violations",
            ],
        );
        for &nt in sizes {
            let (hw, partition) = highway_workload(nt, d);
            let g = hw.graph();
            let params = match KpParams::new(g.n(), d, 1.0) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let bound = params.congestion_bound();
            let mut worst = 0u32;
            let mut means = Vec::new();
            let mut violations = 0u32;
            for s in 0..seeds {
                let out = centralized_shortcuts(
                    g,
                    &partition,
                    params,
                    s,
                    LargenessRule::Radius,
                    OracleMode::PerArc,
                );
                let report = measure_quality(g, &partition, &out.shortcuts, DilationMode::Estimate);
                worst = worst.max(report.quality.congestion);
                means.push(report.mean_loaded_congestion());
                if (report.quality.congestion as u64) > bound {
                    violations += 1;
                }
            }
            t.row(vec![
                g.n().to_string(),
                bound.to_string(),
                worst.to_string(),
                f3(geomean(&means)),
                f3(worst as f64 / bound as f64),
                format!("{violations}/{seeds}"),
            ]);
        }
        t.print();
    }
    println!("claim check: zero violations and max/bound bounded away from 1 ⇒ the\nChernoff congestion bound holds with the constant 4 used in `congestion_bound`.");
}
