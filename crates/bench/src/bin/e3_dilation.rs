//! E3 — Theorem 3.1: dilation `O(k_D·log n)`, recursion depth
//! `O(log n)` (with `--trichotomy`, per-level Lemma-3.5 event counts —
//! the Figure 3 analog).

use lcs_bench::{f3, highway_workload, BenchArgs, Table};
use lcs_core::{
    centralized_shortcuts, certify_part, KpParams, LargenessRule, OracleMode, Trichotomy,
};
use lcs_shortcut::{measure_quality, DilationMode};

fn main() {
    let args = BenchArgs::from_env();
    let sizes = args.sizes(&[900, 1600, 3600, 6400], &[400, 900]);
    let seeds: u64 = if args.quick { 3 } else { 8 };

    for d in [4u32, 6] {
        let mut t = Table::new(
            &format!("E3 (D={d}): dilation vs O(k_D·lg n); Lemma 3.5 recursion"),
            &[
                "n",
                "bound",
                "max dil",
                "dil/bound",
                "max rec depth",
                "lg n",
                "violations",
            ],
        );
        let mut o1 = 0u64;
        let mut o2 = 0u64;
        let mut o3 = 0u64;
        let mut viol = 0u64;
        for &nt in sizes {
            let (hw, partition) = highway_workload(nt, d);
            let g = hw.graph();
            let params = match KpParams::new(g.n(), d, 1.0) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let bound = params.dilation_bound();
            let mut max_dil = 0u32;
            let mut max_depth = 0u32;
            let mut violations = 0u64;
            for s in 0..seeds {
                let out = centralized_shortcuts(
                    g,
                    &partition,
                    params,
                    s,
                    LargenessRule::Radius,
                    OracleMode::PerArc,
                );
                let mode = if g.n() > 3000 {
                    DilationMode::Estimate
                } else {
                    DilationMode::Exact
                };
                let q = measure_quality(g, &partition, &out.shortcuts, mode).quality;
                max_dil = max_dil.max(q.dilation);
                // Recursion trace on the first (longest) part with a
                // threshold of 4·k_D (the O(k_D) per-level budget).
                let trace = certify_part(g, &partition, &out.shortcuts, 0, 4 * params.k_ceil);
                max_depth = max_depth.max(trace.recursion_depth);
                violations += trace.violations as u64;
                for e in &trace.events {
                    match e {
                        Trichotomy::O1FirstHalf => o1 += 1,
                        Trichotomy::O2SecondHalf => o2 += 1,
                        Trichotomy::O3Whole => o3 += 1,
                        Trichotomy::Violation => viol += 1,
                    }
                }
            }
            t.row(vec![
                g.n().to_string(),
                bound.to_string(),
                max_dil.to_string(),
                f3(max_dil as f64 / bound as f64),
                max_depth.to_string(),
                f3((g.n() as f64).log2()),
                violations.to_string(),
            ]);
        }
        t.print();
        if args.trace {
            let mut f = Table::new(
                &format!("E3/F3 (D={d}): Lemma 3.5 trichotomy event counts"),
                &["O1 first-half", "O2 second-half", "O3 whole", "violations"],
            );
            f.row(vec![
                o1.to_string(),
                o2.to_string(),
                o3.to_string(),
                viol.to_string(),
            ]);
            f.print();
        }
    }
    println!("claim check: dil/bound ≤ 1 everywhere, recursion depth ≲ lg n,\nviolations ≈ 0 (the w.h.p. failure mass).");

    // Stress variant: at the paper's constant the sampling is dense at
    // simulatable n and O3 fires immediately; a sparse constant makes
    // the recursion (and the O1/O2 shortcut events) actually carry the
    // argument — the regime Figure 3 depicts.
    let mut t = Table::new(
        "E3 stress (D=4, prob_constant=0.05): recursion carries the bound",
        &[
            "n",
            "max dil",
            "max rec depth",
            "lg n",
            "O1",
            "O2",
            "O3",
            "violations",
        ],
    );
    for &nt in args.sizes(&[900, 1600, 3600], &[400, 900]) {
        let (hw, partition) = highway_workload(nt, 4);
        let g = hw.graph();
        let params = match KpParams::new(g.n(), 4, 0.05) {
            Ok(p) => p,
            Err(_) => continue,
        };
        let (mut o1, mut o2, mut o3, mut viol) = (0u64, 0u64, 0u64, 0u64);
        let mut max_dil = 0u32;
        let mut max_depth = 0u32;
        for s in 0..seeds {
            let out = centralized_shortcuts(
                g,
                &partition,
                params,
                s,
                LargenessRule::Radius,
                OracleMode::PerArc,
            );
            let report = measure_quality(g, &partition, &out.shortcuts, DilationMode::Exact);
            max_dil = max_dil.max(report.quality.dilation);
            // Trace the worst part with a tight per-level budget so the
            // recursion is forced to do the work.
            let worst_part = report
                .per_part_dilation
                .iter()
                .enumerate()
                .max_by_key(|&(_, &d)| d)
                .map(|(i, _)| i)
                .unwrap_or(0);
            let trace = certify_part(g, &partition, &out.shortcuts, worst_part, params.k_ceil);
            max_depth = max_depth.max(trace.recursion_depth);
            for e in &trace.events {
                match e {
                    Trichotomy::O1FirstHalf => o1 += 1,
                    Trichotomy::O2SecondHalf => o2 += 1,
                    Trichotomy::O3Whole => o3 += 1,
                    Trichotomy::Violation => viol += 1,
                }
            }
        }
        t.row(vec![
            g.n().to_string(),
            max_dil.to_string(),
            max_depth.to_string(),
            format!("{:.1}", (g.n() as f64).log2()),
            o1.to_string(),
            o2.to_string(),
            o3.to_string(),
            viol.to_string(),
        ]);
    }
    t.print();
}
