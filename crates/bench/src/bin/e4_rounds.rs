//! E4 — Theorem 1.1 round complexity: the distributed construction runs
//! in `Õ(k_D)` rounds, including the unknown-diameter guess ladder.

use lcs_bench::{f3, highway_workload, BenchArgs, Table};
use lcs_core::{distributed_shortcuts, k_d, DistributedConfig};

fn main() {
    let args = BenchArgs::from_env();
    let sizes = args.sizes(&[300, 600, 1000, 1600], &[300, 600]);

    let mut t = Table::new(
        "E4: distributed construction rounds vs k_D·lg²n (D=4, highway)",
        &[
            "n",
            "k_D",
            "rounds (known D)",
            "rounds (guessing)",
            "guesses",
            "rounds/(k·lg²n)",
            "max queue",
        ],
    );
    for &nt in sizes {
        let (hw, partition) = highway_workload(nt, 4);
        let g = hw.graph();
        let known = distributed_shortcuts(
            g,
            &partition,
            &DistributedConfig {
                known_diameter: Some(4),
                ..DistributedConfig::default()
            },
        )
        .expect("construction succeeds");
        let guessing = distributed_shortcuts(g, &partition, &DistributedConfig::default())
            .expect("construction succeeds");
        let k = k_d(g.n(), 4);
        let lg = (g.n() as f64).log2();
        t.row(vec![
            g.n().to_string(),
            f3(k),
            known.total_rounds.to_string(),
            guessing.total_rounds.to_string(),
            guessing.guesses.len().to_string(),
            f3(known.total_rounds as f64 / (k * lg * lg)),
            known
                .guesses
                .last()
                .map(|gr| gr.max_queue.to_string())
                .unwrap_or_default(),
        ]);
    }
    t.print();
    println!("claim check: the normalized column is O(1); guessing costs only the\nextra (cheaper) failed guesses below the true diameter.");
}
