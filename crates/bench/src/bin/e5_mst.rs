//! E5 — Corollary 1.2 (MST): `Õ(k_D)` rounds via KP shortcuts vs the
//! `O(D + √n)` global-tree baseline vs trivial shortcuts, on the hard
//! family. The crossover and the winner's margin are the reproducible
//! "shape" of the corollary.

use lcs_apps::{assert_matches_kruskal, mst_via_shortcuts, MstConfig, ShortcutStrategy};
use lcs_bench::{f3, highway_workload, BenchArgs, Table};
use lcs_core::k_d;
use lcs_graph::WeightedGraph;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let args = BenchArgs::from_env();
    let sizes = args.sizes(&[400, 900, 1600, 3600, 6400], &[400, 900]);

    for d in [4u32, 6] {
        let mut t = Table::new(
            &format!("E5 (D={d}): MST rounds by shortcut strategy (accounted)"),
            &[
                "n",
                "k_D",
                "sqrt(n)",
                "KP rounds",
                "global-tree rounds",
                "trivial rounds",
                "agg-only K/G/T",
                "phases",
            ],
        );
        for &nt in sizes {
            let (hw, _) = highway_workload(nt, d);
            let g = hw.graph().clone();
            let n = g.n();
            let mut rng = ChaCha8Rng::seed_from_u64(nt as u64);
            let wg = WeightedGraph::with_random_weights(g, 1 << 20, &mut rng);
            let mut rounds = Vec::new();
            let mut phases = 0u32;
            let mut agg_only = Vec::new();
            for strategy in [
                ShortcutStrategy::KoganParter,
                ShortcutStrategy::GlobalTree,
                ShortcutStrategy::Trivial,
            ] {
                let cfg = MstConfig {
                    strategy,
                    diameter: Some(d),
                    seed: nt as u64,
                    ..MstConfig::default()
                };
                let out = mst_via_shortcuts(&wg, &cfg).expect("mst succeeds");
                assert_matches_kruskal(&wg, &out);
                phases = out.phases;
                rounds.push(out.total_rounds);
                agg_only.push(
                    out.phase_costs
                        .iter()
                        .map(|p| p.aggregation_rounds)
                        .sum::<u64>(),
                );
            }
            t.row(vec![
                n.to_string(),
                f3(k_d(n, d)),
                f3((n as f64).sqrt()),
                rounds[0].to_string(),
                rounds[1].to_string(),
                rounds[2].to_string(),
                format!("{}/{}/{}", agg_only[0], agg_only[1], agg_only[2]),
                phases.to_string(),
            ]);
        }
        t.print();
    }
    println!(
        "claim check: every run's tree equals Kruskal's. Asymptotically KP's\n\
         Õ(k_D) beats the baselines, but the explicit lg²n constants in the\n\
         per-phase construction budget dominate below n ~ 10^9, so at bench\n\
         scales total KP rounds exceed the baselines — the honest regime\n\
         report. The separation that IS visible at these n is the shortcut\n\
         QUALITY (E1/E7: KP c+d < sqrt(n) baselines from n≈1600 at D=3) and\n\
         the agg-only column (what repeated queries pay after construction)."
    );
}
