//! E6 — Corollary 1.2 (min cut): (1+ε)-approximation quality and round
//! budget of the tree-packing pipeline, verified against Stoer–Wagner.

use lcs_apps::{approximate_min_cut, approximation_ratio, MinCutConfig, MstConfig};
use lcs_bench::{f3, geomean, BenchArgs, Table};
use lcs_graph::{gnp_connected, stoer_wagner, WeightedGraph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let args = BenchArgs::from_env();
    let sizes = args.sizes(&[40, 80, 120, 200], &[30, 60]);
    let seeds: u64 = if args.quick { 3 } else { 8 };

    for eps in [0.1f64, 0.25, 0.5] {
        let mut t = Table::new(
            &format!("E6 (eps={eps}): approx min cut vs Stoer-Wagner"),
            &[
                "n",
                "exact cut (s0)",
                "approx cut (s0)",
                "worst ratio",
                "geomean ratio",
                "trees",
                "rounds",
            ],
        );
        for &n in sizes {
            let mut worst: f64 = 1.0;
            let mut ratios = Vec::new();
            let mut first: Option<(u64, u64, usize, u64)> = None;
            for s in 0..seeds {
                let mut rng = ChaCha8Rng::seed_from_u64(s * 1000 + n as u64);
                let g = gnp_connected(n, 0.15, &mut rng);
                let wg = WeightedGraph::with_random_weights(g, 30, &mut rng);
                let cfg = MinCutConfig {
                    epsilon: eps,
                    seed: s,
                    mst: MstConfig {
                        seed: s,
                        ..MstConfig::default()
                    },
                    ..MinCutConfig::default()
                };
                let out = approximate_min_cut(&wg, &cfg).expect("cuttable");
                let r = approximation_ratio(&wg, &out);
                worst = worst.max(r);
                ratios.push(r);
                if first.is_none() {
                    let exact = stoer_wagner(&wg).unwrap().weight;
                    first = Some((exact, out.weight, out.trees_packed, out.total_rounds));
                }
            }
            let (exact, approx, trees, rounds) = first.unwrap();
            t.row(vec![
                n.to_string(),
                exact.to_string(),
                approx.to_string(),
                f3(worst),
                f3(geomean(&ratios)),
                trees.to_string(),
                rounds.to_string(),
            ]);
        }
        t.print();
    }
    println!("claim check: worst ratio ≤ 1 + eps for every eps row (it is usually\nexactly 1 — the packing finds the true min cut).");
}
