//! E7 — D ∈ {3, 4}: the regime where Kitamura et al. (DISC 2019) already
//! matched the Lotker et al. lower bounds (`Ω̃(n^{1/4})`, `Ω̃(n^{1/3})`).
//! Compares KP shortcuts against the Kitamura-style baselines and the
//! lower-bound curve.

use lcs_bench::{f3, highway_workload, loglog_slope, BenchArgs, Table};
use lcs_core::{centralized_shortcuts, k_d, KpParams, LargenessRule, OracleMode};
use lcs_shortcut::{kitamura_style_shortcuts, measure_quality, DilationMode};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let args = BenchArgs::from_env();
    let sizes = args.sizes(&[400, 900, 1600, 3600, 6400], &[400, 900]);

    for d in [3u32, 4] {
        let mut t = Table::new(
            &format!(
                "E7 (D={d}): KP vs Kitamura-style quality (lower bound exp = {})",
                f3((d as f64 - 2.0) / (2.0 * d as f64 - 2.0))
            ),
            &["n", "k_D", "KP c+d", "Kitamura c+d", "KP/k_D·lg²n"],
        );
        let mut kp_points = Vec::new();
        for &nt in sizes {
            let (hw, partition) = highway_workload(nt, d);
            let g = hw.graph();
            let n = g.n();
            let params = match KpParams::new(n, d, 1.0) {
                Ok(p) => p,
                Err(_) => continue,
            };
            let kp = centralized_shortcuts(
                g,
                &partition,
                params,
                7,
                LargenessRule::Radius,
                OracleMode::PerArc,
            );
            let mode = if n > 3000 {
                DilationMode::Estimate
            } else {
                DilationMode::Exact
            };
            let kp_q = measure_quality(g, &partition, &kp.shortcuts, mode).quality;
            let mut rng = ChaCha8Rng::seed_from_u64(7);
            let kita = kitamura_style_shortcuts(g, &partition, d, 1.0, &mut rng);
            let kita_q = measure_quality(g, &partition, &kita, mode).quality;
            let k = k_d(n, d);
            let lg = (n as f64).log2();
            kp_points.push((n as f64, kp_q.total() as f64));
            t.row(vec![
                n.to_string(),
                f3(k),
                kp_q.total().to_string(),
                kita_q.total().to_string(),
                f3(kp_q.total() as f64 / (k * lg * lg)),
            ]);
        }
        t.print();
        println!(
            "   measured KP exponent (D={d}): {}\n",
            f3(loglog_slope(&kp_points).unwrap_or(f64::NAN))
        );
    }
    println!("claim check: at D=3 the two constructions coincide in shape (the paper\nnotes its D=3 case is Kitamura-like); at D=4 KP matches the n^(1/3) curve\nwith the full D-repetition analysis rather than a bespoke construction.");
}
