//! E8 — Lemma 3.3 / Observation 3.1 (the Figure 1–2 analog): measured
//! (i,k)-walk lengths per target level vs the `(c·k_D/N)^{−k+2}` bound,
//! plus the distinctness of level-`k` nodes along walks.

use lcs_bench::{f3, highway_workload, BenchArgs, Table};
use lcs_core::{KpParams, SampleOracle, ShortcutTree, WalkEnd};
use lcs_graph::NodeId;

fn main() {
    let args = BenchArgs::from_env();
    let nt = if args.quick { 600 } else { 2500 };
    let d = 6u32; // even, deep enough for multi-level walks
    let (hw, partition) = highway_workload(nt, d);
    let g = hw.graph();
    let n = g.n();
    let params = KpParams::new(n, d, 1.0).expect("valid params");
    let ell = (d / 2) as usize; // budget for P x Q distances

    // P = longest path part; Q = the subtree roots (distance <= D/2
    // from every path node through the leaf level).
    let path: Vec<NodeId> = partition.part(0).to_vec();
    let q: Vec<NodeId> = (0..hw.params().path_len)
        .map(|c| hw.column_leaf(c))
        .collect();

    let mut t = Table::new(
        "E8: greedy (i,k)-walk lengths vs Lemma 3.3 bound (D=6 highway)",
        &[
            "target level",
            "bound (N/k)^{t-2}",
            "max len",
            "mean len",
            "reachedT",
            "distinct ok",
        ],
    );
    let seeds: u64 = if args.quick { 3 } else { 10 };
    for target in 2..=(ell + 1).min((d as usize / 2) + 1) {
        let mut max_len = 0usize;
        let mut sum = 0usize;
        let mut count = 0usize;
        let mut reached_t = 0usize;
        let mut distinct_ok = true;
        for seed in 0..seeds {
            let oracle = SampleOracle::new(seed, params.p, params.reps);
            let tree = ShortcutTree::new(g, &path, &q, ell, &oracle, partition.leader(0), 0)
                .expect("Q within distance ell of P");
            let step = (path.len() / 8).max(1);
            for i in (0..path.len()).step_by(step) {
                if let Some(m) = tree.walk_to_level(i, target) {
                    max_len = max_len.max(m.length);
                    sum += m.length;
                    count += 1;
                    if m.end == WalkEnd::ReachedT {
                        reached_t += 1;
                    }
                    distinct_ok &= m.level_nodes_distinct;
                }
            }
        }
        let ratio = params.big_n as f64 / (params.k * (n as f64).ln());
        let bound = ratio.max(2.0).powi(target as i32 - 2).max(1.0);
        t.row(vec![
            target.to_string(),
            f3(bound),
            max_len.to_string(),
            f3(sum as f64 / count.max(1) as f64),
            format!("{reached_t}/{count}"),
            distinct_ok.to_string(),
        ]);
    }
    t.print();

    if args.trace {
        // Figure 1/2 analog: one concrete walk trace.
        let oracle = SampleOracle::new(0, params.p, params.reps);
        let tree = ShortcutTree::new(g, &path, &q, ell, &oracle, partition.leader(0), 0)
            .expect("valid tree");
        println!(
            "trace: aux graph has {} nodes, ell = {ell}",
            tree.aux_size()
        );
        for target in 2..=ell + 1 {
            if let Some(m) = tree.walk_to_level(0, target) {
                println!(
                    "  walk from p_0 to level {target}: length {}, {} units, end {:?}",
                    m.length, m.units, m.end
                );
            }
        }
    }
    println!("claim check: max walk length stays within the geometric bound per level\nand every measured walk satisfies Observation 3.1 (distinct level-k tops).");

    // Lemma 3.2: either dist_T*(s, t) = O(k_D), or dist_T*(s, L_j) =
    // O(k_D) for every reachable layer j <= min(ell+1, D/2+1). Measured
    // as realized T* distances from s to each layer.
    let mut t2 = Table::new(
        "E8b (Lemma 3.2): dist_T*(s, layer j) across seeds",
        &["layer j", "max dist", "mean dist", "unreachable", "k_D"],
    );
    for j in 2..=ell + 1 {
        let mut maxd = 0u32;
        let mut sum = 0u64;
        let mut cnt = 0u64;
        let mut unreach = 0u64;
        for seed in 0..seeds {
            let oracle = SampleOracle::new(seed, params.p, params.reps);
            let tree = ShortcutTree::new(g, &path, &q, ell, &oracle, partition.leader(0), 0)
                .expect("valid tree");
            match tree.tstar_dist_to_layer(0, j) {
                Some(d) => {
                    maxd = maxd.max(d);
                    sum += d as u64;
                    cnt += 1;
                }
                None => unreach += 1,
            }
        }
        t2.row(vec![
            j.to_string(),
            maxd.to_string(),
            f3(sum as f64 / cnt.max(1) as f64),
            unreach.to_string(),
            f3(params.k),
        ]);
    }
    t2.print();
    println!("claim check: layer distances stay O(k_D) (here tiny: at the paper's p\nthe forest is dense), with no unreachable layers - Lemma 3.2's disjunction\nnever falls to the fallback branch at these parameters.");
}
