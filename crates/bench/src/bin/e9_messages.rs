//! E9 — §1 open problem: the construction's message complexity is
//! `Õ(m·k_D)`. Measures total simulator messages of the distributed
//! construction against `m·k_D·lg n`.

use lcs_bench::{f3, highway_workload, BenchArgs, Table};
use lcs_core::{distributed_shortcuts, k_d, DistributedConfig};

fn main() {
    let args = BenchArgs::from_env();
    let sizes = args.sizes(&[300, 600, 1000, 1600], &[300, 600]);

    let mut t = Table::new(
        "E9: distributed-construction messages vs m·k_D·lg n (D=4)",
        &[
            "n",
            "m",
            "k_D",
            "messages",
            "msgs/(m·k_D)",
            "msgs/(m·k_D·lg n)",
        ],
    );
    for &nt in sizes {
        let (hw, partition) = highway_workload(nt, 4);
        let g = hw.graph();
        let out = distributed_shortcuts(
            g,
            &partition,
            &DistributedConfig {
                known_diameter: Some(4),
                ..DistributedConfig::default()
            },
        )
        .expect("construction succeeds");
        let m = g.m() as f64;
        let k = k_d(g.n(), 4);
        let lg = (g.n() as f64).log2();
        t.row(vec![
            g.n().to_string(),
            g.m().to_string(),
            f3(k),
            out.total_messages.to_string(),
            f3(out.total_messages as f64 / (m * k)),
            f3(out.total_messages as f64 / (m * k * lg)),
        ]);
    }
    t.print();
    println!("claim check: the msgs/(m·k_D·lg n) column is O(1) and flat-ish in n —\nthe paper's Õ(m·k_D) total; improving it to Õ(m) is the stated open problem.");
}
