//! Cross-backend shortcut **quality bench**: every registered
//! [`lcs_shortcut::ShortcutBuilder`] backend × every graph family in the zoo, emitted
//! as `BENCH_quality.json` so congestion/dilation/rounds/messages are
//! tracked per-PR next to the paper's `k(D)` reference line.
//!
//! Usage: `quality_bench [--quick] [--out PATH] [--check PATH]
//! [--family NAME] [--backend NAME]`
//!
//! `--family` / `--backend` restrict the sweep to cells whose family /
//! backend name contains the given substring (case-sensitive) — handy
//! when iterating on one backend without paying for the full grid. The
//! default remains the full sweep. Filtered runs refuse `--check` (a
//! partial grid cannot be compared against the committed full
//! fingerprint) and only write a file when `--out` is explicit, so a
//! filtered run can never clobber the committed `BENCH_quality.json`.
//!
//! Every cell is deterministic: the build RNG is seeded from the cell's
//! `(family, backend)` names, each cell is **built twice in-run** and
//! must match bit for bit, and the emitted fingerprint folds only
//! integer results (never timings). `--check PATH` re-runs the bench
//! and compares its fingerprint against a previously committed
//! `BENCH_quality.json`, exiting nonzero on divergence — CI runs
//! `--quick --check BENCH_quality.json` as the quality regression gate
//! (the quality_bench analogue of the `sim_throughput --shards 1,4`
//! determinism gate).
//!
//! Every cell passes the independent verifier against the backend's
//! declared bound; in particular the Kogan–Parter cells are checked
//! against the paper's `O(D·k_D·log n)` / `O(k_D·log n)` targets with
//! `k_D = n^((D−2)/(2D−2))` — the `reference` block records those
//! values per family.

use lcs_bench::quality::{families, fingerprint, registry, run_cell, Cell, Family};
use lcs_core::{k_d, KpParams};

const SEED: u64 = 0xC0DE;

fn reference_json(f: &Family) -> String {
    let params = KpParams::new(f.graph.n(), f.d.max(3), 1.0).expect("bench graphs have n >= 2");
    format!(
        concat!(
            "{{\"family\":\"{}\",\"n\":{},\"m\":{},\"d\":{},",
            "\"k_d\":{:.3},\"kp_congestion_bound\":{},\"kp_dilation_bound\":{}}}"
        ),
        f.name,
        f.graph.n(),
        f.graph.m(),
        f.d,
        k_d(f.graph.n(), f.d.max(3)),
        params.congestion_bound(),
        params.dilation_bound(),
    )
}

fn cell_json(c: &Cell) -> String {
    let declared = c.declared.map_or_else(
        || "null,\"declared_dilation\":null".to_string(),
        |(con, dil)| format!("{con},\"declared_dilation\":{dil}"),
    );
    format!(
        concat!(
            "{{\"family\":\"{}\",\"backend\":\"{}\",\"params\":\"{}\",",
            "\"n\":{},\"m\":{},\"num_parts\":{},\"shortcut_edges\":{},",
            "\"congestion\":{},\"dilation\":{},\"declared_congestion\":{},",
            "\"rounds\":{},\"messages\":{}}}"
        ),
        c.family,
        c.backend,
        c.params,
        c.n,
        c.m,
        c.num_parts,
        c.shortcut_edges,
        c.congestion,
        c.dilation,
        declared,
        c.rounds,
        c.messages,
    )
}

/// Extracts `"key": "value"` from the hand-rolled JSON this bench
/// emits (no JSON dependency in the workspace — same approach as the
/// sim_throughput gate).
fn extract_str<'a>(json: &'a str, key: &str) -> Option<&'a str> {
    let needle = format!("\"{key}\": \"");
    let start = json.find(&needle)? + needle.len();
    let end = json[start..].find('"')? + start;
    Some(&json[start..end])
}

/// Parses `--flag VALUE`, rejecting a bare `--flag` (a missing value
/// must not silently behave like "no filter").
fn parse_value_flag(args: &[String], flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    match args.get(pos + 1) {
        Some(v) if !v.starts_with("--") => Some(v.clone()),
        _ => {
            eprintln!("quality_bench: {flag} requires a value");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let explicit_out = parse_value_flag(&args, "--out");
    let out_path = explicit_out
        .clone()
        .unwrap_or_else(|| "BENCH_quality.json".to_string());
    let check_path = parse_value_flag(&args, "--check");
    let family_filter = parse_value_flag(&args, "--family");
    let backend_filter = parse_value_flag(&args, "--backend");
    let filtered = family_filter.is_some() || backend_filter.is_some();
    if filtered && check_path.is_some() {
        eprintln!(
            "quality_bench: --family/--backend cannot be combined with --check \
             (a partial grid cannot be compared against the committed full fingerprint)"
        );
        std::process::exit(2);
    }

    let fams = families(quick, SEED);
    let mut cells: Vec<Cell> = Vec::new();
    for fam in &fams {
        if family_filter
            .as_deref()
            .is_some_and(|f| !fam.name.contains(f))
        {
            continue;
        }
        for backend in registry(fam.d) {
            if backend_filter
                .as_deref()
                .is_some_and(|f| !backend.name().contains(f))
            {
                continue;
            }
            if !backend.applicable(&fam.graph, &fam.partition) {
                eprintln!(
                    "{:>12} / {:<18} skipped (inapplicable at D={})",
                    fam.name,
                    backend.name(),
                    fam.d
                );
                continue;
            }
            let cell = run_cell(fam, backend.as_ref());
            eprintln!(
                "{:>12} / {:<18} congestion={:<4} dilation={:<4} rounds={:<5} \
                 messages={:<7} edges={}",
                cell.family,
                cell.backend,
                cell.congestion,
                cell.dilation,
                cell.rounds,
                cell.messages,
                cell.shortcut_edges,
            );
            cells.push(cell);
        }
    }

    let fp = fingerprint(&cells);
    let mode = if quick { "quick" } else { "full" };
    let refs = fams
        .iter()
        .map(reference_json)
        .collect::<Vec<_>>()
        .join(",\n    ");
    let body = cells
        .iter()
        .map(cell_json)
        .collect::<Vec<_>>()
        .join(",\n    ");
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"quality\",\n  \"mode\": \"{}\",\n",
            "  \"fingerprint\": \"{:#018x}\",\n",
            "  \"reference\": [\n    {}\n  ],\n",
            "  \"cells\": [\n    {}\n  ]\n}}\n"
        ),
        mode, fp, refs, body
    );

    if let Some(path) = check_path {
        // Gate mode: compare against the committed results instead of
        // overwriting them.
        let committed = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("quality_bench --check: cannot read {path}: {e}"));
        let want_mode = extract_str(&committed, "mode").unwrap_or("?");
        let want_fp = extract_str(&committed, "fingerprint").unwrap_or("?");
        if want_mode != mode {
            eprintln!(
                "quality_bench: committed {path} is a \"{want_mode}\" run; \
                 this is a \"{mode}\" run — modes must match to compare"
            );
            std::process::exit(2);
        }
        let got_fp = format!("{fp:#018x}");
        if want_fp != got_fp {
            eprintln!(
                "QUALITY REGRESSION: fingerprint {got_fp} does not match \
                 committed {want_fp} in {path}"
            );
            eprintln!("(regenerate with `quality_bench --quick --out {path}` if intentional)");
            std::process::exit(1);
        }
        eprintln!("quality fingerprint check: ok ({got_fp})");
    } else if !filtered || explicit_out.is_some() {
        std::fs::write(&out_path, &json).expect("write BENCH_quality.json");
        eprintln!("wrote {out_path}");
    } else {
        eprintln!("filtered run: results to stdout only (pass --out PATH to write a file)");
    }
    println!("{json}");
    if filtered && cells.is_empty() {
        eprintln!("quality_bench: the --family/--backend filters matched no cells");
        std::process::exit(2);
    }
}
