//! Service-layer throughput benchmark: queries/sec of the
//! [`ServePool`] front-end as a function of pool
//! size and batch size, plus the **build-vs-query amortization curve**
//! — the wall-clock case for preprocess-once, query-many — emitted as
//! `BENCH_serve.json`.
//!
//! Usage: `serve_throughput [--quick] [--pools K[,K2,...]] [--out PATH]`
//!
//! `--quick` shrinks the workload to CI scale. `--pools` takes a
//! comma-separated sweep of pool sizes (pool size 1 is always measured
//! first as the baseline). For every `(pool, batch)` cell the run
//! records the batch fingerprint, and **exits nonzero if any pool
//! size's results diverge from the 1-worker run's** — CI runs `--quick`
//! and relies on that exit code as the serve determinism gate.
//!
//! The amortization section times, for N ∈ {1, 4, 16, ...}:
//!
//! * `one_shot_s` — N × (full distributed construction + one answer),
//!   the cost of treating every request as a fresh pipeline run;
//! * `indexed_s`  — 1 × construction + N index-served answers.
//!
//! Serving N ≥ 16 mixed queries from one index must beat N one-shot
//! runs by ≥ 5× (the construction is repaid once instead of N times).

use lcs_congest::AggOp;
use lcs_core::{build_index_distributed, DistributedConfig};
use lcs_graph::{HighwayGraph, HighwayParams, NodeId, WeightedGraph};
use lcs_serve::{per_query_seed, Query, ServePool};
use lcs_shortcut::{Partition, ShortcutIndex};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;
use std::time::Instant;

/// The benchmark's mixed query stream: the four kinds round-robin, so
/// every cell exercises SSSP, aggregation, MST, and min-cut together.
fn mixed_queries(count: usize, n: usize) -> Vec<Query> {
    (0..count)
        .map(|i| match i % 4 {
            0 => Query::sssp(((i * 13) % n) as NodeId),
            1 => Query::Aggregate {
                op: if i % 8 == 1 { AggOp::Sum } else { AggOp::Max },
            },
            2 => Query::Mst,
            _ => Query::MinCut,
        })
        .collect()
}

#[derive(Debug, Clone)]
struct Cell {
    pool: usize,
    batch: usize,
    elapsed_s: f64,
    fingerprint: u64,
}

impl Cell {
    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"pool\":{},\"batch\":{},\"elapsed_s\":{:.6},",
                "\"queries_per_s\":{:.1},\"fingerprint\":\"{:#018x}\"}}"
            ),
            self.pool,
            self.batch,
            self.elapsed_s,
            self.batch as f64 / self.elapsed_s,
            self.fingerprint,
        )
    }
}

#[derive(Debug, Clone)]
struct Amortization {
    n_queries: usize,
    one_shot_s: f64,
    indexed_s: f64,
}

impl Amortization {
    fn speedup(&self) -> f64 {
        self.one_shot_s / self.indexed_s
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"n_queries\":{},\"one_shot_s\":{:.6},",
                "\"indexed_s\":{:.6},\"speedup\":{:.2}}}"
            ),
            self.n_queries,
            self.one_shot_s,
            self.indexed_s,
            self.speedup(),
        )
    }
}

fn parse_pool_sweep(args: &[String]) -> Vec<usize> {
    let flag = args.iter().position(|a| a == "--pools");
    let raw = flag.and_then(|i| args.get(i + 1));
    if flag.is_some() && raw.is_none_or(|v| v.starts_with("--")) {
        eprintln!("serve_throughput: --pools requires a value (e.g. --pools 1,4)");
        std::process::exit(2);
    }
    let mut sweep = vec![1usize];
    if let Some(raw) = raw {
        for piece in raw.split(',') {
            match piece.trim().parse::<usize>() {
                Ok(k) if k >= 1 => {
                    if !sweep.contains(&k) {
                        sweep.push(k);
                    }
                }
                _ => {
                    eprintln!("serve_throughput: bad --pools value {piece:?}");
                    std::process::exit(2);
                }
            }
        }
    } else {
        sweep.push(4);
    }
    sweep
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let pool_sweep = parse_pool_sweep(&args);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    // The constant-diameter highway workload the paper's lower bound
    // lives on: Γ vertex-disjoint paths through a D=4 core.
    let hw = HighwayGraph::new(HighwayParams {
        num_paths: if quick { 4 } else { 8 },
        path_len: if quick { 12 } else { 40 },
        diameter: 4,
    })
    .expect("highway fixture");
    let g = hw.graph().clone();
    let partition = Partition::new(&g, hw.path_parts()).expect("path partition");
    let mut rng = ChaCha8Rng::seed_from_u64(0x5EED);
    let wg = WeightedGraph::with_random_weights(g, 100, &mut rng);
    // No `known_diameter`: a cold pipeline run doesn't get told D, it
    // pays the guess ladder — exactly the cost the index amortizes.
    let cfg = DistributedConfig::default();

    // --- Build (preprocess-once) ---
    let t = Instant::now();
    let (index, _) = build_index_distributed(wg.graph(), wg.weights(), &partition, &cfg)
        .expect("construction on the highway fixture");
    let build_s = t.elapsed().as_secs_f64();
    let index = Arc::new(index);

    // Serialization sanity on the real artifact: save → load must be
    // byte-exact (the persisted index is what a deployment would mmap).
    let bytes = index.to_bytes();
    let reloaded = ShortcutIndex::from_bytes(&bytes).expect("reload");
    assert_eq!(reloaded, *index, "save/load must round-trip");
    eprintln!(
        "build: n={} m={} parts={} elapsed={build_s:.3}s index={} bytes",
        wg.graph().n(),
        wg.graph().m(),
        partition.num_parts(),
        bytes.len()
    );

    // --- Throughput grid: pool sizes × batch sizes ---
    let batch_sizes: &[usize] = if quick { &[4, 16, 64] } else { &[16, 64, 256] };
    let batch_seed = 0x5EED_BA7C;
    let mut cells: Vec<Cell> = Vec::new();
    let mut diverged = false;
    for &pool_size in &pool_sweep {
        let pool = ServePool::new(Arc::clone(&index), pool_size);
        for &batch in batch_sizes {
            let queries = mixed_queries(batch, wg.graph().n());
            // Warm once (thread spawn, allocator), then measure.
            pool.serve(&queries, batch_seed);
            let t = Instant::now();
            let served = pool.serve(&queries, batch_seed);
            let cell = Cell {
                pool: pool_size,
                batch,
                elapsed_s: t.elapsed().as_secs_f64(),
                fingerprint: served.fingerprint,
            };
            eprintln!(
                "pool={:>2} batch={:>4}  {:>9.1} queries/s  fingerprint={:#018x}",
                cell.pool,
                cell.batch,
                cell.batch as f64 / cell.elapsed_s,
                cell.fingerprint
            );
            cells.push(cell);
        }
    }
    // Serve determinism gate: every (pool > 1, batch) fingerprint must
    // equal the 1-worker fingerprint for the same batch.
    for cell in cells.iter().filter(|c| c.pool != 1) {
        let base = cells
            .iter()
            .find(|b| b.pool == 1 && b.batch == cell.batch)
            .expect("1-worker baseline measured first");
        if cell.fingerprint != base.fingerprint {
            diverged = true;
            eprintln!(
                "DETERMINISM VIOLATION: batch {} fingerprint {:#018x} at pool {} \
                 != {:#018x} at pool 1",
                cell.batch, cell.fingerprint, cell.pool, base.fingerprint
            );
        }
    }

    // --- Amortization curve: N one-shot pipelines vs 1 build + N serves ---
    // Min-cut is excluded from this mix: its per-request tree packing
    // costs more than construction itself, so including it would
    // measure the query, not the construction the index repays. (It
    // stays in the throughput grid and the determinism gate above.)
    let amortized_queries = |count: usize, n: usize| -> Vec<Query> {
        (0..count)
            .map(|i| match i % 3 {
                0 => Query::sssp(((i * 13) % n) as NodeId),
                1 => Query::Aggregate { op: AggOp::Sum },
                _ => Query::Mst,
            })
            .collect()
    };
    let amortize_pool = ServePool::new(Arc::clone(&index), *pool_sweep.last().unwrap());
    let mut amortization: Vec<Amortization> = Vec::new();
    for &n_queries in &[1usize, 4, 16] {
        let queries = amortized_queries(n_queries, wg.graph().n());
        // One-shot: every request pays the full distributed
        // construction before it can answer anything.
        let session = amortize_pool.session();
        let t = Instant::now();
        for (i, q) in queries.iter().enumerate() {
            let (one_shot_index, _) =
                build_index_distributed(wg.graph(), wg.weights(), &partition, &cfg)
                    .expect("one-shot construction");
            let one_pool = ServePool::new(Arc::new(one_shot_index), 1);
            one_pool.serve(std::slice::from_ref(q), per_query_seed(batch_seed, i));
        }
        let one_shot_s = t.elapsed().as_secs_f64();
        // Indexed: construction repaid once, then served answers only.
        let t = Instant::now();
        let (rebuilt, _) = build_index_distributed(wg.graph(), wg.weights(), &partition, &cfg)
            .expect("amortized construction");
        drop(rebuilt); // charged, then the prebuilt shared index serves
        for (i, q) in queries.iter().enumerate() {
            session.answer(q, per_query_seed(batch_seed, i));
        }
        let indexed_s = t.elapsed().as_secs_f64();
        let a = Amortization {
            n_queries,
            one_shot_s,
            indexed_s,
        };
        eprintln!(
            "amortization N={:>3}: one-shot {:.3}s vs indexed {:.3}s  ({:.1}x)",
            a.n_queries,
            a.one_shot_s,
            a.indexed_s,
            a.speedup()
        );
        amortization.push(a);
    }

    let json = format!(
        concat!(
            "{{\n  \"bench\": \"serve_throughput\",\n  \"mode\": \"{}\",\n",
            "  \"graph\": {{\"n\": {}, \"m\": {}, \"parts\": {}}},\n",
            "  \"build_s\": {:.6},\n  \"index_bytes\": {},\n",
            "  \"pool_sweep\": {:?},\n  \"determinism\": \"{}\",\n",
            "  \"throughput\": [\n    {}\n  ],\n",
            "  \"amortization\": [\n    {}\n  ]\n}}\n"
        ),
        if quick { "quick" } else { "full" },
        wg.graph().n(),
        wg.graph().m(),
        partition.num_parts(),
        build_s,
        bytes.len(),
        pool_sweep,
        if diverged { "DIVERGED" } else { "ok" },
        cells
            .iter()
            .map(Cell::json)
            .collect::<Vec<_>>()
            .join(",\n    "),
        amortization
            .iter()
            .map(Amortization::json)
            .collect::<Vec<_>>()
            .join(",\n    "),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    eprintln!("wrote {out_path}");
    println!("{json}");
    if diverged {
        eprintln!("serve_throughput: served results diverged across pool sizes");
        std::process::exit(1);
    }
    eprintln!("serve determinism check: ok");
}
