//! Simulator throughput benchmark: rounds/sec and messages/sec of the
//! CONGEST engine on three standard workloads (flood, multi-BFS,
//! partwise aggregation), emitted as `BENCH_sim.json` so the engine's
//! perf trajectory is tracked per-PR.
//!
//! Usage: `sim_throughput [--quick] [--shards K] [--out PATH]`
//!
//! `--quick` shrinks the workloads to CI scale; `--shards K` additionally
//! measures the sharded engine at `K` threads (the default run always
//! measures the sequential engine, which is the configuration the
//! acceptance numbers are recorded at).

use lcs_bench::sim_workloads::{multi_bfs_spec, Saturate};
use lcs_congest::{
    distributed_bfs, run, run_multi_aggregate, run_multi_bfs, AggOp, NodeAlgorithm, Participation,
    RoundCtx, RunStats, SimConfig,
};
use lcs_graph::{generators, Graph};
use std::time::Instant;

/// Flood protocol (same shape as the engine's own smoke test): node 0
/// fires a token that everyone forwards once. Message-light, round-heavy
/// — measures per-round engine overhead.
#[derive(Debug, Default)]
struct Flood {
    seen: bool,
    fired: bool,
}

impl NodeAlgorithm for Flood {
    type Msg = u32;
    fn round(&mut self, ctx: &mut RoundCtx<'_, u32>) {
        if ctx.round() == 0 && ctx.node() == 0 {
            self.seen = true;
        }
        if !self.seen && !ctx.inbox().is_empty() {
            self.seen = true;
        }
        if self.seen && !self.fired {
            self.fired = true;
            for i in 0..ctx.degree() {
                ctx.send(ctx.neighbors()[i], 1);
            }
        }
    }
    fn halted(&self) -> bool {
        self.fired || !self.seen
    }
}

#[derive(Debug, Clone)]
struct Measurement {
    name: String,
    n: usize,
    m: usize,
    shards: usize,
    rounds: u64,
    messages: u64,
    elapsed_s: f64,
}

impl Measurement {
    fn from_stats(name: &str, g: &Graph, shards: usize, stats: &RunStats, secs: f64) -> Self {
        Measurement {
            name: name.to_string(),
            n: g.n(),
            m: g.m(),
            shards,
            rounds: stats.rounds,
            messages: stats.messages,
            elapsed_s: secs,
        }
    }

    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"name\":\"{}\",\"n\":{},\"m\":{},\"shards\":{},",
                "\"rounds\":{},\"messages\":{},\"elapsed_s\":{:.6},",
                "\"rounds_per_s\":{:.1},\"messages_per_s\":{:.1}}}"
            ),
            self.name,
            self.n,
            self.m,
            self.shards,
            self.rounds,
            self.messages,
            self.elapsed_s,
            self.rounds as f64 / self.elapsed_s,
            self.messages as f64 / self.elapsed_s,
        )
    }
}

fn cfg_with(shards: usize, max_rounds: u64) -> SimConfig {
    SimConfig {
        max_rounds,
        shards,
        ..SimConfig::default()
    }
}

fn bench_flood(g: &Graph, shards: usize) -> Measurement {
    let t = Instant::now();
    let out = run(
        g,
        (0..g.n()).map(|_| Flood::default()).collect(),
        &cfg_with(shards, 1_000_000),
    )
    .expect("flood");
    Measurement::from_stats("flood", g, shards, &out.stats, t.elapsed().as_secs_f64())
}

fn bench_multi_bfs(g: &Graph, instances: usize, shards: usize) -> Measurement {
    let spec = multi_bfs_spec(g.n(), instances);
    let t = Instant::now();
    let out = run_multi_bfs(g, spec, &cfg_with(shards, 10_000_000)).expect("multi_bfs");
    Measurement::from_stats(
        "multi_bfs",
        g,
        shards,
        &out.stats,
        t.elapsed().as_secs_f64(),
    )
}

fn bench_multi_aggregate(g: &Graph, instances: usize, shards: usize) -> Measurement {
    let bfs = distributed_bfs(g, 0, &SimConfig::default()).expect("bfs tree");
    let parts: Vec<Vec<Participation>> = (0..g.n())
        .map(|v| {
            (0..instances as u32)
                .map(|inst| Participation {
                    inst,
                    parent: bfs.parent[v],
                    children: bfs.children[v].clone(),
                    value: v as u64 + inst as u64,
                })
                .collect()
        })
        .collect();
    let t = Instant::now();
    let out = run_multi_aggregate(g, parts, AggOp::Sum, true, &cfg_with(shards, 10_000_000))
        .expect("multi_aggregate");
    Measurement::from_stats(
        "multi_aggregate",
        g,
        shards,
        &out.stats,
        t.elapsed().as_secs_f64(),
    )
}

/// Never sends, never halts: isolates the engine's fixed per-node-round
/// overhead (run hits the round limit by design).
#[derive(Debug)]
struct Idle;

impl NodeAlgorithm for Idle {
    type Msg = u32;
    fn round(&mut self, _ctx: &mut RoundCtx<'_, u32>) {}
    fn halted(&self) -> bool {
        false
    }
}

fn bench_idle(g: &Graph, rounds: u64, shards: usize) -> Measurement {
    let cfg = SimConfig {
        max_rounds: rounds,
        shards,
        ..SimConfig::default()
    };
    let t = Instant::now();
    let err = run(g, (0..g.n()).map(|_| Idle).collect(), &cfg).unwrap_err();
    assert!(matches!(
        err,
        lcs_congest::SimError::RoundLimitExceeded { .. }
    ));
    let secs = t.elapsed().as_secs_f64();
    Measurement {
        name: "idle".to_string(),
        n: g.n(),
        m: g.m(),
        shards,
        rounds,
        messages: 0,
        elapsed_s: secs,
    }
}

fn bench_saturate(g: &Graph, rounds: u64, shards: usize) -> Measurement {
    let t = Instant::now();
    let out = run(
        g,
        (0..g.n()).map(|_| Saturate::new(rounds)).collect(),
        &cfg_with(shards, 10_000_000),
    )
    .expect("saturate");
    Measurement::from_stats("saturate", g, shards, &out.stats, t.elapsed().as_secs_f64())
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let shards_extra: Option<usize> = args
        .iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok());
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sim.json".to_string());

    let side = if quick { 40 } else { 100 };
    let instances = args
        .iter()
        .position(|a| a == "--instances")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 8 } else { 32 });
    let g = generators::grid(side, side);

    let mut all: Vec<Measurement> = Vec::new();
    let mut shard_counts = vec![1usize];
    if let Some(k) = shards_extra {
        if k > 1 {
            shard_counts.push(k);
        }
    }
    for &k in &shard_counts {
        eprintln!("== shards = {k} ==");
        for m in [
            bench_idle(&g, if quick { 200 } else { 1000 }, k),
            bench_saturate(&g, if quick { 50 } else { 200 }, k),
            bench_flood(&g, k),
            bench_multi_bfs(&g, instances, k),
            bench_multi_aggregate(&g, instances / 2, k),
        ] {
            eprintln!(
                "{:>16}  n={} rounds={} messages={} elapsed={:.3}s  ({:.0} rounds/s, {:.0} msgs/s)",
                m.name,
                m.n,
                m.rounds,
                m.messages,
                m.elapsed_s,
                m.rounds as f64 / m.elapsed_s,
                m.messages as f64 / m.elapsed_s,
            );
            all.push(m);
        }
    }

    let body = all
        .iter()
        .map(Measurement::json)
        .collect::<Vec<_>>()
        .join(",\n    ");
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"sim_throughput\",\n  \"mode\": \"{}\",\n",
            "  \"workloads\": [\n    {}\n  ]\n}}\n"
        ),
        if quick { "quick" } else { "full" },
        body
    );
    std::fs::write(&out_path, &json).expect("write BENCH_sim.json");
    eprintln!("wrote {out_path}");
    // A machine-readable copy for CI logs.
    println!("{json}");
}
