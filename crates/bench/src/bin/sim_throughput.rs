//! Simulator throughput benchmark: rounds/sec and messages/sec of the
//! CONGEST engine on standard workloads (idle rounds, saturated
//! message path, flood, sparse long-path BFS, multi-BFS, partwise
//! aggregation, a composed session pipeline), emitted as
//! `BENCH_sim.json` so the engine's perf trajectory is tracked per-PR.
//!
//! Usage: `sim_throughput [--quick] [--shards K[,K2,...]] [--reps N]
//! [--out PATH]`
//!
//! `--quick` shrinks the workloads to CI scale. `--shards` takes a
//! comma-separated sweep of shard counts (e.g. `--shards 1,2,4,8`);
//! shard count 1 is always measured first as the baseline. `--reps N`
//! repeats every workload `N` times and records the median elapsed
//! time (recommended: `--reps 3` when regenerating `BENCH_sim.json`,
//! so a scheduler hiccup on the bench host cannot masquerade as a
//! regression); statistics must be identical across repetitions or the
//! run aborts. For every workload the run records a
//! [`RunStats::fingerprint`] and a speedup relative to the 1-shard
//! baseline, and **exits nonzero if any sharded run's statistics
//! diverge from the sequential run's** — CI runs `--quick --shards
//! 1,4` and relies on that exit code as the shard determinism gate
//! (the gate covers the event-driven active-set engine's sparsest
//! workloads — `idle` and `sparse_bfs` — alongside the dense ones, so
//! an active-set scheduling divergence fails the build).
//!
//! Two workloads run at **large scale** — `large_bfs` and
//! `large_flood` on a 10⁶-node grid (40 000 nodes under `--quick`, so
//! the CI determinism gate exercises the same code path at CI cost) —
//! covering the memory-lean u32/CSR representations at the graph sizes
//! the shortcut-quality experiments need.

use lcs_bench::sim_workloads::{multi_bfs_spec, Clock, Saturate};
use lcs_congest::{
    positions_from_tree, run, AggOp, Bfs, MultiAggregate, MultiBfs, NodeAlgorithm, Participation,
    RoundCtx, RunStats, Session, SimConfig, TreeAggregate,
};
use lcs_graph::{generators, Graph};
use std::time::Instant;

/// Flood protocol (same shape as the engine's own smoke test): node 0
/// fires a token that everyone forwards once. Message-light, round-heavy
/// — measures per-round engine overhead.
#[derive(Debug, Default)]
struct Flood {
    seen: bool,
    fired: bool,
}

impl NodeAlgorithm for Flood {
    type Msg = u32;
    fn round(&mut self, ctx: &mut RoundCtx<'_, u32>) {
        if ctx.round() == 0 && ctx.node() == 0 {
            self.seen = true;
        }
        if !self.seen && !ctx.inbox().is_empty() {
            self.seen = true;
        }
        if self.seen && !self.fired {
            self.fired = true;
            for i in 0..ctx.degree() {
                ctx.send(ctx.neighbors()[i], 1);
            }
        }
    }
    fn halted(&self) -> bool {
        self.fired || !self.seen
    }
}

#[derive(Debug, Clone)]
struct Measurement {
    name: String,
    n: usize,
    m: usize,
    shards: usize,
    rounds: u64,
    messages: u64,
    elapsed_s: f64,
    /// [`RunStats::fingerprint`] of the run (the cumulative session
    /// fingerprint for composed workloads).
    stats_fingerprint: u64,
    /// Wall-clock speedup over the 1-shard run of the same workload
    /// (filled in after the sweep; 1.0 for the baseline itself).
    speedup_vs_1shard: f64,
    /// Per-phase breakdown for composed (Session) workloads:
    /// `(label, rounds, messages, fingerprint)`; empty for
    /// single-protocol workloads.
    phases: Vec<(String, u64, u64, u64)>,
}

impl Measurement {
    fn from_stats(name: &str, g: &Graph, shards: usize, stats: &RunStats, secs: f64) -> Self {
        Measurement {
            name: name.to_string(),
            n: g.n(),
            m: g.m(),
            shards,
            rounds: stats.rounds,
            messages: stats.messages,
            elapsed_s: secs,
            stats_fingerprint: stats.fingerprint(),
            speedup_vs_1shard: 1.0,
            phases: Vec::new(),
        }
    }

    fn json(&self) -> String {
        let phases = if self.phases.is_empty() {
            String::new()
        } else {
            let body = self
                .phases
                .iter()
                .map(|(label, rounds, messages, fp)| {
                    format!(
                        concat!(
                            "{{\"label\":\"{}\",\"rounds\":{},",
                            "\"messages\":{},\"fingerprint\":\"{:#018x}\"}}"
                        ),
                        label, rounds, messages, fp
                    )
                })
                .collect::<Vec<_>>()
                .join(",");
            format!(",\"phases\":[{body}]")
        };
        format!(
            concat!(
                "{{\"name\":\"{}\",\"n\":{},\"m\":{},\"shards\":{},",
                "\"rounds\":{},\"messages\":{},\"elapsed_s\":{:.6},",
                "\"rounds_per_s\":{:.1},\"messages_per_s\":{:.1},",
                "\"stats_fingerprint\":\"{:#018x}\",\"speedup_vs_1shard\":{:.3}{}}}"
            ),
            self.name,
            self.n,
            self.m,
            self.shards,
            self.rounds,
            self.messages,
            self.elapsed_s,
            self.rounds as f64 / self.elapsed_s,
            self.messages as f64 / self.elapsed_s,
            self.stats_fingerprint,
            self.speedup_vs_1shard,
            phases,
        )
    }
}

fn cfg_with(shards: usize, max_rounds: u64) -> SimConfig {
    SimConfig {
        max_rounds,
        shards,
        ..SimConfig::default()
    }
}

fn bench_flood(name: &str, g: &Graph, shards: usize) -> Measurement {
    let t = Instant::now();
    let out = run(
        g,
        (0..g.n()).map(|_| Flood::default()).collect(),
        &cfg_with(shards, 1_000_000),
    )
    .expect("flood");
    Measurement::from_stats(name, g, shards, &out.stats, t.elapsed().as_secs_f64())
}

/// Single-source BFS on the large grid: the scale workload. Frontier
/// waves cross a graph whose slot/occupancy/adjacency arrays are far
/// bigger than the last-level cache, so this measures the engine's
/// memory behaviour (and the u32-id CSR layout) rather than its
/// per-round bookkeeping.
fn bench_large_bfs(g: &Graph, side: usize, shards: usize) -> Measurement {
    let t = Instant::now();
    let out = Session::new(g, cfg_with(shards, 10_000_000))
        .run(Bfs::new(0))
        .expect("large_bfs");
    assert_eq!(out.depth() as usize, 2 * (side - 1), "grid BFS depth");
    Measurement::from_stats(
        "large_bfs",
        g,
        shards,
        &out.stats,
        t.elapsed().as_secs_f64(),
    )
}

fn bench_multi_bfs(g: &Graph, instances: usize, shards: usize) -> Measurement {
    let spec = multi_bfs_spec(g.n(), instances);
    let t = Instant::now();
    let out = Session::new(g, cfg_with(shards, 10_000_000))
        .run(MultiBfs::new(spec))
        .expect("multi_bfs");
    Measurement::from_stats(
        "multi_bfs",
        g,
        shards,
        &out.stats,
        t.elapsed().as_secs_f64(),
    )
}

fn bench_multi_aggregate(g: &Graph, instances: usize, shards: usize) -> Measurement {
    let bfs = Session::new(g, SimConfig::default())
        .run(Bfs::new(0))
        .expect("bfs tree");
    let parts: Vec<Vec<Participation>> = (0..g.n())
        .map(|v| {
            (0..instances as u32)
                .map(|inst| Participation {
                    inst,
                    parent: bfs.parent[v],
                    children: bfs.children[v].clone(),
                    value: v as u64 + inst as u64,
                })
                .collect()
        })
        .collect();
    let t = Instant::now();
    let out = Session::new(g, cfg_with(shards, 10_000_000))
        .run(MultiAggregate::new(parts, AggOp::Sum, true))
        .expect("multi_aggregate");
    Measurement::from_stats(
        "multi_aggregate",
        g,
        shards,
        &out.stats,
        t.elapsed().as_secs_f64(),
    )
}

/// Composed-session workload: a sequential bfs → aggregate pipeline
/// through ONE engine (single pool spawn), reporting the cumulative
/// stats plus the per-phase breakdown. Its fingerprint feeds the shard
/// determinism gate, so *composition* — not just individual protocols —
/// is covered by the CI `--shards 1,4` check.
fn bench_session_pipeline(g: &Graph, shards: usize) -> Measurement {
    let t = Instant::now();
    let mut session = Session::new(g, cfg_with(shards, 10_000_000));
    let bfs = session.run(Bfs::new(0)).expect("pipeline bfs");
    let pos = positions_from_tree(0, &bfs.parent, &bfs.children);
    let values: Vec<u64> = (0..g.n() as u64).collect();
    let (res, _) = session
        .run(TreeAggregate::new(pos, &values, AggOp::Sum, true))
        .expect("pipeline aggregate");
    assert_eq!(res[0], Some((0..g.n() as u64).sum::<u64>()));
    let mut m = Measurement::from_stats(
        "session_pipeline",
        g,
        shards,
        session.stats(),
        t.elapsed().as_secs_f64(),
    );
    m.phases = session
        .phases()
        .iter()
        .map(|p| (p.label.clone(), p.rounds, p.messages, p.fingerprint()))
        .collect();
    m
}

/// Quiescent network + one awake clock node: the engine's pure
/// idle-round cost. Every node but node 0 sleeps after round 0 (the
/// event-driven active set never touches it again); node 0 stays awake
/// `rounds` rounds via the explicit wake contract, then the run
/// terminates normally. A round is O(1) — independent of `n`, and
/// independent of the shard count because near-quiescent rounds run
/// inline on the coordinator, skipping the worker barrier entirely.
/// (The previous engine invoked all `n` nodes every round here and paid
/// the barrier per round at shards > 1.)
fn bench_idle(g: &Graph, rounds: u64, shards: usize) -> Measurement {
    let t = Instant::now();
    let nodes = (0..g.n())
        .map(|v| Clock::new(if v == 0 { rounds } else { 0 }))
        .collect();
    let out = run(g, nodes, &cfg_with(shards, rounds + 10)).expect("idle");
    assert_eq!(out.stats.rounds, rounds);
    assert_eq!(out.stats.messages, 0);
    Measurement::from_stats("idle", g, shards, &out.stats, t.elapsed().as_secs_f64())
}

/// Sparse-frontier workload: BFS down a long path. The frontier is 1–2
/// nodes for `n` rounds, so the run isolates the O(active + messages)
/// round cost — the previous full-scan engine paid O(n) per round,
/// an O(n²) total that dwarfed the O(n) of useful work.
fn bench_sparse_bfs(n: usize, shards: usize) -> Measurement {
    let g = generators::path(n);
    let t = Instant::now();
    let out = Session::new(&g, cfg_with(shards, 10_000_000))
        .run(Bfs::new(0))
        .expect("sparse_bfs");
    assert_eq!(out.depth() as usize, n - 1);
    Measurement::from_stats(
        "sparse_bfs",
        &g,
        shards,
        &out.stats,
        t.elapsed().as_secs_f64(),
    )
}

/// Chaos workload: a drop×delay×crash sweep through ONE session — raw
/// BFS under a drop plan, a delay plan, and a mixed plan with mid-run
/// crashes (one recovering), plus a [`Reliable`](lcs_congest::Reliable)-wrapped BFS under
/// drops whose output must still be the exact fault-free tree. The
/// cumulative session fingerprint folds the fault counters
/// (dropped/delayed/crashed), so the CI `--shards 1,4` determinism gate
/// asserts the entire fault layer — fate hashing, reorder buffers,
/// crash windows, retransmission — is bit-identical across shard
/// counts.
fn bench_chaos(g: &Graph, side: usize, shards: usize) -> Measurement {
    use lcs_congest::{Crash, FaultPlan, Reliable};
    let n = g.n();
    let t = Instant::now();
    let mut session = Session::new(g, cfg_with(shards, 10_000_000));
    let drop_plan = FaultPlan::drops(0.10, 0xC0FFEE);
    let delay_plan = FaultPlan {
        drop_rate: 0.0,
        delay_rate: 0.20,
        max_delay: 2,
        corrupt_rate: 0.0,
        crashes: vec![],
        fault_seed: 0xC0FFEE,
    };
    let mix_plan = FaultPlan {
        drop_rate: 0.05,
        delay_rate: 0.10,
        max_delay: 3,
        corrupt_rate: 0.0,
        crashes: vec![
            Crash {
                node: (n / 3) as u32,
                at_round: 5,
                recover_at: None,
            },
            Crash {
                node: (n / 2) as u32,
                at_round: 10,
                recover_at: Some(64),
            },
            Crash {
                node: (2 * n / 3) as u32,
                at_round: 15,
                recover_at: None,
            },
        ],
        fault_seed: 0xBAD_F00D,
    };
    for (label, plan) in [
        ("chaos.drop", drop_plan.clone()),
        ("chaos.delay", delay_plan),
        ("chaos.mix", mix_plan),
    ] {
        session
            .run_configured(label, Bfs::new(0), |c| c.faults = Some(plan))
            .expect("chaos bfs");
    }
    // The grid diameter is known, so cap the synchronizer's quiet wave
    // at Θ(D) instead of the default Θ(n) termination tail.
    let reliable = Reliable::new(Bfs::new(0)).with_quiet_bound(2 * (side as u32 - 1));
    let out = session
        .run_configured("chaos.reliable", reliable, |c| c.faults = Some(drop_plan))
        .expect("chaos reliable bfs");
    // Reliability under drops is exact: the tree has true grid depth.
    assert_eq!(out.depth() as usize, 2 * (side - 1), "reliable BFS depth");
    let mut m = Measurement::from_stats(
        "chaos",
        g,
        shards,
        session.stats(),
        t.elapsed().as_secs_f64(),
    );
    m.phases = session
        .phases()
        .iter()
        .map(|p| (p.label.clone(), p.rounds, p.messages, p.fingerprint()))
        .collect();
    m
}

fn bench_saturate(g: &Graph, rounds: u64, shards: usize) -> Measurement {
    let t = Instant::now();
    let out = run(
        g,
        (0..g.n()).map(|_| Saturate::new(rounds)).collect(),
        &cfg_with(shards, 10_000_000),
    )
    .expect("saturate");
    Measurement::from_stats("saturate", g, shards, &out.stats, t.elapsed().as_secs_f64())
}

/// Parses `--shards 1,4` (comma-separated sweep) or `--shards 4`
/// (shorthand for `1,4`). Shard count 1 is always included as the
/// baseline and measured first.
fn parse_shard_sweep(args: &[String]) -> Vec<usize> {
    let flag = args.iter().position(|a| a == "--shards");
    let raw = flag.and_then(|i| args.get(i + 1));
    if flag.is_some() && raw.is_none_or(|v| v.starts_with("--")) {
        // A bare `--shards` must not silently degrade to a 1-shard run:
        // that would pass the determinism gate without testing anything.
        eprintln!("sim_throughput: --shards requires a value (e.g. --shards 1,4)");
        std::process::exit(2);
    }
    let mut sweep = vec![1usize];
    if let Some(raw) = raw {
        for piece in raw.split(',') {
            match piece.trim().parse::<usize>() {
                Ok(k) if k >= 1 => {
                    if !sweep.contains(&k) {
                        sweep.push(k);
                    }
                }
                _ => {
                    eprintln!("sim_throughput: bad --shards value {piece:?}");
                    std::process::exit(2);
                }
            }
        }
    }
    sweep
}

/// Runs `f` `reps` times and keeps the median-elapsed measurement.
/// Statistics must be identical across repetitions — the workloads are
/// deterministic, so a mismatch means the harness (not the host) is
/// broken and the numbers would be meaningless.
fn median_of(reps: usize, f: impl Fn() -> Measurement) -> Measurement {
    let mut runs: Vec<Measurement> = (0..reps.max(1)).map(|_| f()).collect();
    for r in &runs[1..] {
        assert_eq!(
            r.stats_fingerprint, runs[0].stats_fingerprint,
            "workload {} not deterministic across repetitions",
            runs[0].name
        );
    }
    runs.sort_by(|a, b| a.elapsed_s.total_cmp(&b.elapsed_s));
    runs.swap_remove(runs.len() / 2)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let shard_sweep = parse_shard_sweep(&args);
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sim.json".to_string());
    let reps = args
        .iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(1usize);

    let side = if quick { 40 } else { 100 };
    // 10⁶ nodes at full scale; still well past any cache under --quick.
    let big_side = if quick { 200 } else { 1000 };
    let instances = args
        .iter()
        .position(|a| a == "--instances")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .unwrap_or(if quick { 8 } else { 32 });
    let g = generators::grid(side, side);
    let big = generators::grid(big_side, big_side);

    let mut all: Vec<Measurement> = Vec::new();
    for &k in &shard_sweep {
        eprintln!("== shards = {k} ==");
        for m in [
            median_of(reps, || bench_idle(&g, if quick { 200 } else { 1000 }, k)),
            median_of(reps, || bench_saturate(&g, if quick { 50 } else { 200 }, k)),
            median_of(reps, || bench_flood("flood", &g, k)),
            median_of(reps, || {
                bench_sparse_bfs(if quick { 2_000 } else { 10_000 }, k)
            }),
            median_of(reps, || bench_multi_bfs(&g, instances, k)),
            median_of(reps, || bench_multi_aggregate(&g, instances / 2, k)),
            median_of(reps, || bench_session_pipeline(&g, k)),
            median_of(reps, || bench_chaos(&g, side, k)),
            median_of(reps, || bench_large_bfs(&big, big_side, k)),
            median_of(reps, || bench_flood("large_flood", &big, k)),
        ] {
            eprintln!(
                "{:>16}  n={} rounds={} messages={} elapsed={:.3}s  ({:.0} rounds/s, {:.0} msgs/s)",
                m.name,
                m.n,
                m.rounds,
                m.messages,
                m.elapsed_s,
                m.rounds as f64 / m.elapsed_s,
                m.messages as f64 / m.elapsed_s,
            );
            all.push(m);
        }
    }

    // Fill in speedups against the 1-shard baseline of each workload.
    let baselines: Vec<(String, f64)> = all
        .iter()
        .filter(|m| m.shards == 1)
        .map(|m| (m.name.clone(), m.elapsed_s))
        .collect();
    for m in &mut all {
        if let Some((_, base)) = baselines.iter().find(|(n, _)| *n == m.name) {
            m.speedup_vs_1shard = base / m.elapsed_s;
        }
    }
    for m in all.iter().filter(|m| m.shards != 1) {
        eprintln!(
            "speedup {:>16} @ {} shards: {:.2}x",
            m.name, m.shards, m.speedup_vs_1shard
        );
    }

    // Shard determinism gate: every sharded run's stats fingerprint
    // must equal the sequential run's for the same workload.
    let mut diverged = false;
    for m in all.iter().filter(|m| m.shards != 1) {
        let base = all
            .iter()
            .find(|b| b.shards == 1 && b.name == m.name)
            .expect("baseline measured first");
        if m.stats_fingerprint != base.stats_fingerprint {
            diverged = true;
            eprintln!(
                "DETERMINISM VIOLATION: {} stats fingerprint {:#018x} at {} shards \
                 != {:#018x} at 1 shard",
                m.name, m.stats_fingerprint, m.shards, base.stats_fingerprint
            );
        }
        if m.phases != base.phases {
            diverged = true;
            eprintln!(
                "DETERMINISM VIOLATION: {} per-phase breakdown at {} shards \
                 differs from the 1-shard run",
                m.name, m.shards
            );
        }
    }

    let body = all
        .iter()
        .map(Measurement::json)
        .collect::<Vec<_>>()
        .join(",\n    ");
    let json = format!(
        concat!(
            "{{\n  \"bench\": \"sim_throughput\",\n  \"mode\": \"{}\",\n",
            "  \"shard_sweep\": {:?},\n  \"determinism\": \"{}\",\n",
            "  \"workloads\": [\n    {}\n  ]\n}}\n"
        ),
        if quick { "quick" } else { "full" },
        shard_sweep,
        if diverged { "DIVERGED" } else { "ok" },
        body
    );
    std::fs::write(&out_path, &json).expect("write BENCH_sim.json");
    eprintln!("wrote {out_path}");
    // A machine-readable copy for CI logs.
    println!("{json}");
    if diverged {
        eprintln!("sim_throughput: sharded RunStats diverged from the sequential engine");
        std::process::exit(1);
    }
    eprintln!("shard determinism check: ok");
}
