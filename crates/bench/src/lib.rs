//! # lcs-bench
//!
//! Experiment harness reproducing every claim of *Kogan & Parter,
//! PODC 2021* as a measurable table. The paper is a theory paper — its
//! "tables and figures" are theorems and schematic figures — so each
//! experiment binary (`src/bin/e*.rs`) operationalizes one claim:
//! a parameter sweep whose measured scaling is compared against the
//! claimed bound. `EXPERIMENTS.md` records the outputs.
//!
//! Shared infrastructure: aligned table printing, log-log slope fits,
//! standard workload constructors, and a `--quick` switch for CI-scale
//! runs.

#![warn(missing_docs)]

pub mod quality;

use lcs_graph::{HighwayGraph, NodeId};
use lcs_shortcut::Partition;

/// A printed results table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders and prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

/// Least-squares slope of `log(y)` against `log(x)` — the measured
/// exponent of a power law. Returns `None` with fewer than two valid
/// points.
pub fn loglog_slope(points: &[(f64, f64)]) -> Option<f64> {
    let pts: Vec<(f64, f64)> = points
        .iter()
        .filter(|&&(x, y)| x > 0.0 && y > 0.0)
        .map(|&(x, y)| (x.ln(), y.ln()))
        .collect();
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

/// Standard benchmark workload: the balanced highway hard instance with
/// its path parts.
pub fn highway_workload(n_target: usize, diameter: u32) -> (HighwayGraph, Partition) {
    let hw = HighwayGraph::balanced(n_target, diameter).expect("valid workload parameters");
    let parts = hw.path_parts();
    let partition = Partition::new(hw.graph(), parts).expect("path parts are valid");
    (hw, partition)
}

/// Parses `--quick` / `--trace` style flags from `std::env::args`.
#[derive(Debug, Clone, Default)]
pub struct BenchArgs {
    /// CI-scale run.
    pub quick: bool,
    /// Verbose per-instance traces.
    pub trace: bool,
    /// Optional seed override.
    pub seed: Option<u64>,
}

impl BenchArgs {
    /// Reads flags from the process arguments.
    pub fn from_env() -> Self {
        let mut a = BenchArgs::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => a.quick = true,
                "--trace" | "--trichotomy" => a.trace = true,
                "--seed" => {
                    a.seed = args.next().and_then(|s| s.parse().ok());
                }
                _ => {}
            }
        }
        a
    }

    /// Picks between a full and a quick sweep.
    pub fn sizes<'a>(&self, full: &'a [usize], quick: &'a [usize]) -> &'a [usize] {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// Geometric mean of ratios (for summarizing bound slack).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Formats a float with 3 significant decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Per-part sizes of a partition (printing helper).
pub fn part_sizes(partition: &Partition) -> Vec<usize> {
    (0..partition.num_parts())
        .map(|i| partition.part(i).len())
        .collect()
}

/// All nodes of a partition's parts flattened (test helper).
pub fn covered_nodes(partition: &Partition) -> Vec<NodeId> {
    partition.parts().iter().flatten().copied().collect()
}

/// Shared simulator-throughput workloads, used by both the
/// `sim_throughput` binary (full scale, emits `BENCH_sim.json`) and the
/// `sim_throughput` criterion bench — one definition, so the two
/// trend lines measure the same thing.
pub mod sim_workloads {
    use lcs_congest::{MultiBfsInstance, MultiBfsSpec, NodeAlgorithm, RoundCtx, Wake};
    use lcs_graph::NodeId;
    use std::sync::Arc;

    /// A node that stays awake (explicit [`Wake`] contract — it gets no
    /// mail) for a fixed number of rounds, then sleeps. With one clock
    /// node and `n - 1` immediately-quiescent peers this is the
    /// engine's pure **idle-round** workload: under event-driven active
    /// sets each round costs O(1) — independent of `n`, and of the
    /// shard count too, because near-quiescent rounds run inline on the
    /// coordinator instead of crossing the worker barrier.
    #[derive(Debug)]
    pub struct Clock {
        ticks: u64,
    }

    impl Clock {
        /// A node that stays scheduled for `ticks` rounds (0 = sleep
        /// after round 0).
        pub fn new(ticks: u64) -> Self {
            Clock { ticks }
        }
    }

    impl NodeAlgorithm for Clock {
        type Msg = u32;
        fn round(&mut self, _ctx: &mut RoundCtx<'_, u32>) {
            if self.ticks > 0 {
                self.ticks -= 1;
            }
        }
        fn halted(&self) -> bool {
            true
        }
        fn wake(&self) -> Wake {
            if self.ticks > 0 {
                Wake::Stay
            } else {
                Wake::Sleep
            }
        }
    }

    /// Saturates every arc every round: the raw engine message path
    /// (send → slot → gather) with a trivial node program.
    #[derive(Debug)]
    pub struct Saturate {
        /// Rounds left to keep sending.
        pub rounds_left: u64,
        /// Checksum of everything heard (defeats dead-code elimination).
        pub sum: u64,
    }

    impl Saturate {
        /// A node that sends for `rounds` rounds.
        pub fn new(rounds: u64) -> Self {
            Saturate {
                rounds_left: rounds,
                sum: 0,
            }
        }
    }

    impl NodeAlgorithm for Saturate {
        type Msg = u32;
        fn round(&mut self, ctx: &mut RoundCtx<'_, u32>) {
            for &(_, m) in ctx.inbox() {
                self.sum = self.sum.wrapping_add(u64::from(m));
            }
            if self.rounds_left > 0 {
                self.rounds_left -= 1;
                for i in 0..ctx.degree() {
                    ctx.send_nth(i, ctx.round() as u32);
                }
            }
        }
        fn halted(&self) -> bool {
            self.rounds_left == 0
        }
    }

    /// The standard multi-BFS bundle: `instances` full-membership BFS
    /// roots spread evenly over `0..n`, staggered starts, unlimited
    /// depth.
    pub fn multi_bfs_spec(n: usize, instances: usize) -> Arc<MultiBfsSpec> {
        Arc::new(MultiBfsSpec {
            instances: (0..instances)
                .map(|i| MultiBfsInstance {
                    root: ((i * n) / instances) as NodeId,
                    start_round: (i as u64 * 3) % 16,
                    depth_limit: u32::MAX,
                })
                .collect(),
            membership: lcs_congest::Membership::All,
            queue_cap: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_exact_power_law() {
        let pts: Vec<(f64, f64)> = (1..20)
            .map(|i| {
                let x = i as f64 * 10.0;
                (x, 3.0 * x.powf(0.25))
            })
            .collect();
        let s = loglog_slope(&pts).unwrap();
        assert!((s - 0.25).abs() < 1e-9, "slope {s}");
    }

    #[test]
    fn slope_edge_cases() {
        assert!(loglog_slope(&[]).is_none());
        assert!(loglog_slope(&[(1.0, 2.0)]).is_none());
        assert!(loglog_slope(&[(0.0, 2.0), (-1.0, 3.0)]).is_none());
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["333".into(), "4".into()]);
        let s = t.render();
        assert!(s.contains("## demo"));
        assert!(s.lines().count() >= 4);
    }

    #[test]
    fn workload_construction() {
        let (hw, p) = highway_workload(500, 4);
        assert!(hw.n() >= 300);
        assert!(p.num_parts() >= 2);
    }

    #[test]
    fn geomean_values() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!(geomean(&[]).is_nan());
    }
}
