//! Shared machinery for the cross-backend shortcut **quality bench**
//! (`quality_bench` binary, the tier-2 registry proptest, and the CI
//! fingerprint gate): the backend registry, the graph-family zoo
//! instantiations, per-cell measurement, and the FNV-1a result
//! fingerprint.
//!
//! A *cell* is one `(family, backend)` pair: the backend builds its
//! shortcuts on the family instance, the independent verifier checks
//! them against the backend's declared bound, quality is measured
//! exactly, and a partwise aggregation is simulated on the CONGEST
//! engine for a rounds/messages cost. Cells are deterministic — the
//! build RNG is seeded from the cell's name pair, every cell is built
//! twice and must match bit for bit, and the run fingerprint folds only
//! integer results (never timings), so CI can gate on it.

use lcs_core::KoganParter;
use lcs_graph::{
    exact_diameter, grid_diagonals, k_chordal, k_tree, power_law, random_regular, Graph,
    HighwayGraph, HighwayParams,
};
use lcs_shortcut::{
    measure_quality, verify, AggregationSetup, DilationMode, GlobalTree, KitamuraSampling,
    Partition, ShortcutBuilder, Trivial,
};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// One graph-family instance of the bench: a named graph, a partition,
/// and the measured diameter the parameterized backends key on.
pub struct Family {
    /// Family name (stable; part of the fingerprint).
    pub name: &'static str,
    /// The instance graph.
    pub graph: Graph,
    /// The partition backends must shortcut.
    pub partition: Partition,
    /// Exact diameter of `graph`.
    pub d: u32,
}

fn balls(graph: &Graph, k: usize, seed: u64) -> Partition {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Partition::bfs_balls(graph, k, &mut rng)
}

/// The bench's graph families — the paper's highway hard instance plus
/// the structured zoo (`lcs_graph::generators::zoo`): planar,
/// bounded-treewidth, expander, power-law, and bounded-chordality
/// shapes, so each backend's family dependence is visible side by side.
/// Deterministic in `seed`.
pub fn families(quick: bool, seed: u64) -> Vec<Family> {
    let mut out = Vec::new();
    let mut push = |name: &'static str, graph: Graph, partition: Partition| {
        let d = exact_diameter(&graph).expect("bench families are connected");
        out.push(Family {
            name,
            graph,
            partition,
            d,
        });
    };

    let hw = HighwayGraph::new(HighwayParams {
        num_paths: 4,
        path_len: if quick { 12 } else { 40 },
        diameter: 4,
    })
    .expect("valid highway parameters");
    let g = hw.graph().clone();
    let p = Partition::new(&g, hw.path_parts()).expect("path parts are valid");
    push("highway_d4", g, p);

    let side = if quick { 8 } else { 16 };
    let g = grid_diagonals(side, side);
    let p = balls(&g, 6, seed ^ 1);
    push("grid_diag", g, p);

    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 2);
    let g = k_tree(if quick { 60 } else { 200 }, 3, &mut rng);
    let p = balls(&g, 6, seed ^ 2);
    push("k_tree", g, p);

    // d-regular graphs from the configuration model are connected whp;
    // retry the seed deterministically until one is (diameter defined).
    let n = if quick { 64 } else { 200 };
    let g = (0..64u64)
        .find_map(|attempt| {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 3 ^ (attempt << 32));
            let g = random_regular(n, 4, &mut rng);
            exact_diameter(&g).map(|_| g)
        })
        .expect("a connected 4-regular sample in 64 attempts");
    let p = balls(&g, 6, seed ^ 3);
    push("expander", g, p);

    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 4);
    let g = power_law(if quick { 80 } else { 250 }, 2, &mut rng);
    let p = balls(&g, 6, seed ^ 4);
    push("power_law", g, p);

    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 5);
    let g = k_chordal(if quick { 70 } else { 220 }, 5, &mut rng);
    let p = balls(&g, 6, seed ^ 5);
    push("k_chordal", g, p);

    out
}

/// Every registered backend, parameterized for an instance of diameter
/// `d`. Inapplicable backends (e.g. Kitamura sampling off `D ∈ {3,4}`)
/// are still returned — callers skip them via
/// [`ShortcutBuilder::applicable`], so skips are visible, not silent.
pub fn registry(d: u32) -> Vec<Box<dyn ShortcutBuilder>> {
    vec![
        Box::new(Trivial),
        Box::new(GlobalTree::default()),
        Box::new(KoganParter {
            diameter: Some(d.max(3)),
            prob_constant: 1.0,
            pruned: true,
        }),
        Box::new(lcs_shortcut::TreeSeparator::default()),
        Box::new(lcs_shortcut::CappedGrowth::default()),
        Box::new(KitamuraSampling {
            d,
            prob_constant: 1.0,
        }),
    ]
}

/// One measured `(family, backend)` cell.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Family name.
    pub family: String,
    /// Backend name.
    pub backend: String,
    /// Backend parameters, rendered `key=value`.
    pub params: String,
    /// Nodes / edges / parts of the instance.
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// Part count.
    pub num_parts: usize,
    /// Total shortcut edges across parts.
    pub shortcut_edges: usize,
    /// Measured congestion.
    pub congestion: u32,
    /// Measured dilation.
    pub dilation: u32,
    /// Declared (certified) bound, when the backend has one.
    pub declared: Option<(u32, u32)>,
    /// Simulated partwise-aggregation rounds on the CONGEST engine.
    pub rounds: u64,
    /// Simulated partwise-aggregation messages.
    pub messages: u64,
}

/// Runs one cell: double-builds (in-run determinism self-check),
/// verifies against the declared bound, measures exact quality, and
/// simulates one partwise Sum-aggregation with broadcast.
///
/// # Panics
///
/// Panics if the two builds diverge, verification fails, or the
/// aggregation simulation errors — a bench with a broken cell must not
/// emit a fingerprint.
pub fn run_cell(family: &Family, backend: &dyn ShortcutBuilder) -> Cell {
    let cell_seed = {
        let mut f = Fnv::new();
        f.str(family.name);
        f.str(backend.name());
        f.finish()
    };
    let mut r1 = ChaCha8Rng::seed_from_u64(cell_seed);
    let mut r2 = ChaCha8Rng::seed_from_u64(cell_seed);
    let shortcuts = backend.build(&family.graph, &family.partition, &mut r1);
    let again = backend.build(&family.graph, &family.partition, &mut r2);
    assert_eq!(
        shortcuts,
        again,
        "{}/{}: build is not deterministic",
        family.name,
        backend.name()
    );

    let declared = backend.declared_bound(&family.graph, &family.partition);
    verify(
        &family.graph,
        &family.partition,
        &shortcuts,
        declared,
        DilationMode::Exact,
    )
    .unwrap_or_else(|e| {
        panic!(
            "{}/{}: verification failed: {e:?}",
            family.name,
            backend.name()
        )
    });
    let report = measure_quality(
        &family.graph,
        &family.partition,
        &shortcuts,
        DilationMode::Exact,
    );

    let setup = AggregationSetup::build(&family.graph, &family.partition, &shortcuts);
    let cfg = lcs_congest::SimConfig {
        shards: 1,
        ..lcs_congest::SimConfig::default()
    };
    let (_, outcome) = setup
        .aggregate_simulated(
            &family.graph,
            lcs_congest::AggOp::Sum,
            &|v, _| u64::from(v),
            true,
            &cfg,
        )
        .expect("aggregation simulates");

    Cell {
        family: family.name.to_string(),
        backend: backend.name().to_string(),
        params: backend
            .params()
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(","),
        n: family.graph.n(),
        m: family.graph.m(),
        num_parts: family.partition.num_parts(),
        shortcut_edges: shortcuts.total_edges(),
        congestion: report.quality.congestion,
        dilation: report.quality.dilation,
        declared: declared.map(|q| (q.congestion, q.dilation)),
        rounds: outcome.stats.rounds,
        messages: outcome.stats.messages,
    }
}

/// FNV-1a 64-bit folder for the result fingerprint. Only integer
/// results and stable names go in — never timings — so equal code on
/// equal inputs reproduces the fingerprint on any host.
#[derive(Debug, Clone, Copy)]
pub struct Fnv(u64);

impl Fnv {
    /// Offset-basis start.
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Folds raw bytes.
    pub fn bytes(&mut self, bytes: &[u8]) -> &mut Self {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self
    }

    /// Folds a string.
    pub fn str(&mut self, s: &str) -> &mut Self {
        self.bytes(s.as_bytes())
    }

    /// Folds a u64 (little-endian).
    pub fn u64(&mut self, x: u64) -> &mut Self {
        self.bytes(&x.to_le_bytes())
    }

    /// The digest.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

impl Cell {
    /// Folds this cell's integer results into the run fingerprint.
    pub fn fold(&self, f: &mut Fnv) {
        f.str(&self.family).str(&self.backend).str(&self.params);
        f.u64(self.n as u64).u64(self.m as u64);
        f.u64(self.num_parts as u64).u64(self.shortcut_edges as u64);
        f.u64(u64::from(self.congestion))
            .u64(u64::from(self.dilation));
        let (dc, dd) = self
            .declared
            .map_or((u64::MAX, u64::MAX), |(c, d)| (u64::from(c), u64::from(d)));
        f.u64(dc).u64(dd);
        f.u64(self.rounds).u64(self.messages);
    }
}

/// Fingerprint of a full run: every cell folded in order.
pub fn fingerprint(cells: &[Cell]) -> u64 {
    let mut f = Fnv::new();
    for c in cells {
        c.fold(&mut f);
    }
    f.finish()
}
