//! Tier-2 property test over the **whole backend registry**: every
//! registered, applicable backend on a random connected graph with a
//! random BFS-ball partition must (a) pass the independent verifier
//! against its declared bound, and (b) be deterministic in the RNG
//! seed. Shrinking minimizes the graph on failure, so a registry-wide
//! property violation comes back as a small reproducible instance.

use lcs_bench::quality::registry;
use lcs_graph::{exact_diameter, gnp_connected};
use lcs_shortcut::{verify, DilationMode, Partition};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every applicable backend verifies within its declared bound on
    /// random instances, and rebuilding with an equal seed is
    /// bit-identical.
    #[cfg_attr(not(feature = "slow-tests"), ignore = "tier-2: run with --features slow-tests or -- --ignored")]
    #[test]
    fn registry_verifies_and_is_deterministic(
        seed in any::<u64>(),
        n in 8usize..40,
        k in 2usize..6,
        p_edge in 0.08f64..0.25,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = gnp_connected(n, p_edge, &mut rng);
        let p = Partition::bfs_balls(&g, k, &mut rng);
        let d = exact_diameter(&g).expect("gnp_connected is connected");

        for backend in registry(d) {
            if !backend.applicable(&g, &p) {
                continue;
            }
            let mut r1 = ChaCha8Rng::seed_from_u64(seed ^ 0x51);
            let mut r2 = ChaCha8Rng::seed_from_u64(seed ^ 0x51);
            let s = backend.build(&g, &p, &mut r1);
            let again = backend.build(&g, &p, &mut r2);
            prop_assert_eq!(
                &s, &again,
                "{} not deterministic in the seed", backend.name()
            );
            let bound = backend.declared_bound(&g, &p);
            let report = verify(&g, &p, &s, bound, DilationMode::Exact);
            prop_assert!(
                report.is_ok(),
                "{} failed verification: {:?}", backend.name(), report.err()
            );
        }
    }
}
