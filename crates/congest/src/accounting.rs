//! Round-cost accounting for scheduled executions.
//!
//! Theorem 2.1 of the paper (Ghaffari, PODC 2015, Theorem 1.3; after
//! Leighton–Maggs–Richa) states: `m` distributed algorithms, each with
//! dilation ≤ `d` and with total per-edge congestion ≤ `c`, can be run
//! together in `O(c + d·log n)` rounds after `O(d·log² n)` rounds of
//! pre-computation, using shared randomness.
//!
//! The simulator executes such schedules concretely (see
//! [`crate::multi_bfs`]); for large parameter sweeps where full
//! simulation is too slow, `lcs-core`/`lcs-apps` instead *account* rounds
//! with the explicit-constant formula here. Every experiment reports
//! which mode produced its numbers.

/// `⌈log₂ max(n, 2)⌉`.
pub fn ceil_log2(n: usize) -> u32 {
    usize::BITS - n.max(2).saturating_sub(1).leading_zeros()
}

/// Congestion+dilation pair describing a bundle of sub-algorithms to be
/// scheduled together.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleCost {
    /// Max total messages any edge must carry across all sub-algorithms.
    pub congestion: u64,
    /// Max dilation (rounds) of any single sub-algorithm.
    pub dilation: u64,
}

impl ScheduleCost {
    /// Round bound of the random-delay schedule, with all constants set
    /// to 1: `c + d·⌈log₂ n⌉` for the schedule itself plus
    /// `d·⌈log₂ n⌉²` of pre-computation.
    pub fn rounds(&self, n: usize) -> u64 {
        let lg = ceil_log2(n) as u64;
        self.congestion + self.dilation * lg + self.dilation * lg * lg
    }

    /// Schedule rounds without the pre-computation term (`c + d·log n`),
    /// for contexts where the pre-computation is shared across phases.
    pub fn rounds_no_precompute(&self, n: usize) -> u64 {
        let lg = ceil_log2(n) as u64;
        self.congestion + self.dilation * lg
    }
}

/// How a distributed computation's round count was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Every message exchanged through the simulator engine.
    Simulated,
    /// Rounds charged via [`ScheduleCost`] from measured congestion and
    /// dilation.
    Accounted,
}

impl std::fmt::Display for ExecutionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecutionMode::Simulated => write!(f, "simulated"),
            ExecutionMode::Accounted => write!(f, "accounted"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_values() {
        assert_eq!(ceil_log2(0), 1);
        assert_eq!(ceil_log2(1), 1);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(1024), 10);
        assert_eq!(ceil_log2(1025), 11);
    }

    #[test]
    fn schedule_rounds_scale() {
        let c = ScheduleCost {
            congestion: 100,
            dilation: 10,
        };
        // n = 1024: 100 + 10*10 + 10*100 = 1200.
        assert_eq!(c.rounds(1024), 1200);
        assert_eq!(c.rounds_no_precompute(1024), 200);
    }
}
