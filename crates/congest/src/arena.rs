//! Size-class slab arena recycling the engine's per-phase typed
//! allocations.
//!
//! The mailbox buffers of a [`Session`](crate::Session) phase are typed
//! by the phase's message type (`Vec<Slot<M>>`, one slot per directed
//! arc), so they cannot simply be stored in the persistent
//! [`EngineHost`](crate::sim::EngineHost) across phases of different
//! protocols. Reallocating them per phase costs two `num_arcs`-sized
//! allocations every phase — megabytes on the benchmark graphs, paid
//! once per pipeline stage.
//!
//! This arena recycles the raw allocations by **size class**: when a
//! phase ends, its buffers are cleared (dropping any residual messages)
//! and their allocations parked as untyped slabs keyed by `(element
//! size, element alignment)`; the next phase whose slot type has the
//! same size class adopts a parked slab instead of allocating. Phases
//! over the same graph always need the same element *count*, so in the
//! steady state a pipeline reuses two slabs per size class and
//! allocates nothing.
//!
//! # Soundness
//!
//! Rust's allocator contract requires deallocating with the same
//! [`Layout`] the memory was allocated with. A `Vec<T>` of capacity `c`
//! uses `Layout::array::<T>(c)` = `(size_of::<T>() * c,
//! align_of::<T>())`. The arena therefore:
//!
//! * records `(element size, alignment, capacity)` for every parked
//!   slab, verbatim from the donating `Vec`;
//! * hands a slab out **only** to a `Vec<U>` whose `U` has exactly the
//!   recorded element size and alignment, reconstructing it with the
//!   recorded capacity — so the eventual deallocation layout is
//!   byte-identical to the original allocation's;
//! * parks slabs only after `Vec::clear`, so no live `T` values cross
//!   the type boundary — the recipient sees spare capacity, never data;
//! * deallocates leftover slabs on drop with the recorded layout.

use std::alloc::Layout;
use std::mem::{align_of, size_of, ManuallyDrop};

/// One parked allocation: a raw buffer plus the exact parameters of the
/// `Vec` that donated it.
struct RawSlab {
    ptr: *mut u8,
    elem_size: usize,
    elem_align: usize,
    /// Capacity in elements (of the donating type).
    capacity: usize,
}

// SAFETY: a parked slab is plain owned memory with no live values; the
// arena is the unique owner until the slab is re-adopted or freed.
unsafe impl Send for RawSlab {}

impl RawSlab {
    fn layout(&self) -> Layout {
        // Infallible: this layout was already used for the original
        // allocation.
        Layout::from_size_align(self.elem_size * self.capacity, self.elem_align)
            .expect("layout of a live allocation")
    }
}

/// A pool of parked allocations, keyed by size class. See the
/// [module docs](self).
#[derive(Default)]
pub(crate) struct SlabArena {
    slabs: Vec<RawSlab>,
}

impl std::fmt::Debug for SlabArena {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SlabArena")
            .field("slabs", &self.slabs.len())
            .finish()
    }
}

impl SlabArena {
    /// Takes an empty `Vec<T>` with capacity for at least `len`
    /// elements, adopting a parked slab of `T`'s size class when one
    /// fits and allocating fresh otherwise.
    pub(crate) fn take<T>(&mut self, len: usize) -> Vec<T> {
        let (size, align) = (size_of::<T>(), align_of::<T>());
        let found = self
            .slabs
            .iter()
            .position(|s| s.elem_size == size && s.elem_align == align && s.capacity >= len);
        match found {
            Some(i) => {
                let slab = self.slabs.swap_remove(i);
                // SAFETY: the slab's allocation was made by a Vec whose
                // element type had exactly this size and alignment and
                // exactly this capacity, so `Layout::array::<T>(capacity)`
                // equals the original allocation layout; the buffer holds
                // no live values (parked post-`clear`), and the arena
                // uniquely owned it until this call.
                unsafe { Vec::from_raw_parts(slab.ptr.cast::<T>(), 0, slab.capacity) }
            }
            None => Vec::with_capacity(len),
        }
    }

    /// Parks `v`'s allocation for reuse by a later `take` of the same
    /// size class. Residual elements are dropped first; zero-capacity
    /// vectors are discarded (nothing to recycle).
    pub(crate) fn put<T>(&mut self, mut v: Vec<T>) {
        v.clear();
        // Zero-sized elements never allocate: their Vec reports
        // capacity usize::MAX over a dangling pointer, which must not
        // be parked (deallocating it would be UB) — there is nothing
        // to recycle anyway.
        if size_of::<T>() == 0 || v.capacity() == 0 {
            return;
        }
        let mut v = ManuallyDrop::new(v);
        self.slabs.push(RawSlab {
            ptr: v.as_mut_ptr().cast::<u8>(),
            elem_size: size_of::<T>(),
            elem_align: align_of::<T>(),
            capacity: v.capacity(),
        });
    }
}

impl Drop for SlabArena {
    fn drop(&mut self) {
        for slab in &self.slabs {
            // SAFETY: parked slabs hold no live values and the recorded
            // layout is exactly the allocation's (module docs).
            unsafe { std::alloc::dealloc(slab.ptr, slab.layout()) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_size_class_reuses_the_allocation() {
        let mut arena = SlabArena::default();
        let mut a: Vec<u64> = arena.take(100);
        a.extend(0..100u64);
        let ptr = a.as_ptr() as usize;
        arena.put(a);
        // u64, i64, and (on 64-bit) usize share a size class.
        let b: Vec<i64> = arena.take(80);
        assert_eq!(b.as_ptr() as usize, ptr, "slab must be adopted");
        assert!(b.is_empty() && b.capacity() >= 80);
        arena.put(b);
        let c: Vec<f64> = arena.take(100);
        assert_eq!(c.as_ptr() as usize, ptr);
        arena.put(c);
    }

    #[test]
    fn different_size_classes_do_not_mix() {
        let mut arena = SlabArena::default();
        let a: Vec<u64> = arena.take(64);
        let ptr = a.as_ptr() as usize;
        arena.put(a);
        // Same size, smaller alignment: must NOT adopt the u64 slab.
        let b: Vec<[u8; 8]> = arena.take(64);
        assert_ne!(b.as_ptr() as usize, ptr, "alignment classes must not mix");
        arena.put(b);
        // Different size entirely.
        let c: Vec<u16> = arena.take(64);
        assert_ne!(c.as_ptr() as usize, ptr);
        arena.put(c);
        // The original class still finds its slab afterwards.
        let d: Vec<u64> = arena.take(64);
        assert_eq!(d.as_ptr() as usize, ptr);
        arena.put(d);
    }

    #[test]
    fn undersized_slabs_are_skipped_and_residual_values_dropped() {
        use std::rc::Rc;
        let mut arena = SlabArena::default();
        let small: Vec<u64> = arena.take(8);
        arena.put(small);
        let big: Vec<u64> = arena.take(1024);
        assert!(big.capacity() >= 1024);
        arena.put(big);

        // Parking a vec with live elements drops them (observable via
        // refcount).
        let rc = Rc::new(());
        let mut v: Vec<Rc<()>> = Vec::with_capacity(4);
        v.push(Rc::clone(&rc));
        v.push(Rc::clone(&rc));
        assert_eq!(Rc::strong_count(&rc), 3);
        arena.put(v);
        assert_eq!(Rc::strong_count(&rc), 1, "put must drop residual values");
    }

    #[test]
    fn capacity_boundary_is_inclusive() {
        let mut arena = SlabArena::default();
        let v: Vec<u64> = arena.take(128);
        let cap = v.capacity();
        let ptr = v.as_ptr() as usize;
        arena.put(v);
        // A request for exactly the parked capacity adopts the slab…
        let w: Vec<u64> = arena.take(cap);
        assert_eq!(w.as_ptr() as usize, ptr, "len == capacity must adopt");
        arena.put(w);
        // …one element more must not: the slab is too small.
        let x: Vec<u64> = arena.take(cap + 1);
        assert_ne!(
            x.as_ptr() as usize,
            ptr,
            "len > capacity must allocate fresh"
        );
        assert!(x.capacity() > cap);
        arena.put(x);
        // The undersized slab stays parked and is still adoptable at
        // its own boundary afterwards.
        let y: Vec<u64> = arena.take(cap);
        assert_eq!(y.as_ptr() as usize, ptr);
        arena.put(y);
    }

    #[test]
    fn element_size_must_match_exactly() {
        // 7- and 8-byte elements with identical (byte) alignment:
        // adjacent size classes must not blur even though the 8-byte
        // slab could physically hold the smaller elements — the
        // deallocation layout would no longer match the allocation's.
        let mut arena = SlabArena::default();
        let v: Vec<[u8; 8]> = arena.take(64);
        let ptr = v.as_ptr() as usize;
        arena.put(v);
        let w: Vec<[u8; 7]> = arena.take(64);
        assert_ne!(
            w.as_ptr() as usize,
            ptr,
            "size classes differ byte-for-byte"
        );
        arena.put(w);
    }

    #[test]
    fn double_buffer_phase_cycle_reaches_steady_state() {
        // The engine's per-phase pattern: take two parity buffers at
        // phase start, park both at phase end. After the first phase
        // every later same-class phase must be served entirely from the
        // same two allocations — the arena never grows.
        let mut arena = SlabArena::default();
        let (a, b): (Vec<u64>, Vec<u64>) = (arena.take(256), arena.take(256));
        let ptrs = [a.as_ptr() as usize, b.as_ptr() as usize];
        arena.put(a);
        arena.put(b);
        for _ in 0..4 {
            let a: Vec<u64> = arena.take(256);
            let b: Vec<u64> = arena.take(256);
            assert!(
                ptrs.contains(&(a.as_ptr() as usize)),
                "phase must adopt a parked slab"
            );
            assert!(
                ptrs.contains(&(b.as_ptr() as usize)),
                "phase must adopt a parked slab"
            );
            assert_ne!(a.as_ptr(), b.as_ptr(), "parity buffers must be distinct");
            arena.put(a);
            arena.put(b);
        }
        assert_eq!(arena.slabs.len(), 2, "steady state holds exactly two slabs");
    }

    #[test]
    fn zero_capacity_and_zero_len_requests_are_fine() {
        let mut arena = SlabArena::default();
        let v: Vec<u32> = Vec::new();
        arena.put(v); // capacity 0: discarded
        let w: Vec<u32> = arena.take(0);
        assert!(w.is_empty());
        arena.put(w);
    }

    #[test]
    fn zero_sized_element_types_are_never_parked() {
        // A ZST Vec reports capacity usize::MAX over a dangling
        // pointer; parking it (and deallocating on drop) would be UB.
        #[derive(Debug)]
        struct Zst;
        let mut arena = SlabArena::default();
        let mut v: Vec<Zst> = arena.take(16);
        v.push(Zst);
        assert_eq!(v.capacity(), usize::MAX);
        arena.put(v);
        assert!(arena.slabs.is_empty(), "ZST allocations must be discarded");
        // Dropping the arena after a ZST put must not dealloc anything
        // (covered by running this test at all under the allocator).
    }
}
