//! Distributed single-source BFS tree construction.
//!
//! The classic flood protocol: the root emits a token at round 0; each
//! node joins the tree at the round equal to its BFS distance, picks the
//! smallest-id sender among its first tokens as parent, acknowledges so
//! the parent learns its children, and forwards. Completes in
//! `ecc(root) + 2` rounds.

use crate::message::Message;
use crate::node::{NodeAlgorithm, RoundCtx};
use crate::protocol::Protocol;
use crate::stats::RunStats;
use lcs_graph::{Graph, NodeId};

/// Messages of the BFS protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BfsMsg {
    /// "I am at distance `d`; you are at most at `d + 1`."
    Token {
        /// Sender's BFS distance.
        dist: u32,
    },
    /// "You are my parent."
    Child,
}

impl Message for BfsMsg {
    fn size_words(&self) -> u32 {
        match self {
            BfsMsg::Token { .. } => 1,
            BfsMsg::Child => 1,
        }
    }
}

/// Per-node state of the distributed BFS.
#[derive(Debug, Clone)]
pub struct BfsNode {
    is_root: bool,
    /// BFS distance once reached.
    pub dist: Option<u32>,
    /// Tree parent once reached (None for the root).
    pub parent: Option<NodeId>,
    /// Discovered children.
    pub children: Vec<NodeId>,
    fired: bool,
}

impl BfsNode {
    /// Creates the state for one node; exactly one node should be the
    /// root.
    pub fn new(is_root: bool) -> Self {
        BfsNode {
            is_root,
            dist: None,
            parent: None,
            children: Vec::new(),
            fired: false,
        }
    }
}

impl NodeAlgorithm for BfsNode {
    type Msg = BfsMsg;

    fn round(&mut self, ctx: &mut RoundCtx<'_, BfsMsg>) {
        if ctx.round() == 0 && self.is_root {
            self.dist = Some(0);
        }
        // Absorb tokens and child acks.
        let mut best: Option<(u32, NodeId)> = None;
        for &(from, ref msg) in ctx.inbox() {
            match msg {
                BfsMsg::Token { dist } => {
                    if self.dist.is_none() {
                        let cand = (*dist + 1, from);
                        if best.is_none_or(|b| cand < b) {
                            best = Some(cand);
                        }
                    }
                }
                BfsMsg::Child => self.children.push(from),
            }
        }
        if self.dist.is_none() {
            if let Some((d, p)) = best {
                self.dist = Some(d);
                self.parent = Some(p);
            }
        }
        // Fire once: ack parent, flood everyone else (indexed sends hit
        // the engine's zero-lookup arc-slot path).
        if let (Some(d), false) = (self.dist, self.fired) {
            self.fired = true;
            let parent_idx = self.parent.and_then(|p| ctx.neighbor_index(p));
            if let Some(pi) = parent_idx {
                ctx.send_nth(pi, BfsMsg::Child);
            }
            for i in 0..ctx.degree() {
                if Some(i) != parent_idx {
                    ctx.send_nth(i, BfsMsg::Token { dist: d });
                }
            }
        }
    }

    fn halted(&self) -> bool {
        self.fired || self.dist.is_none()
    }
}

/// Result of the [`Bfs`] protocol.
#[derive(Debug, Clone)]
pub struct DistBfsOutcome {
    /// Per-node distance (None when unreached).
    pub dist: Vec<Option<u32>>,
    /// Per-node parent.
    pub parent: Vec<Option<NodeId>>,
    /// Per-node children (sorted).
    pub children: Vec<Vec<NodeId>>,
    /// Simulator statistics for the run.
    pub stats: crate::stats::RunStats,
}

impl DistBfsOutcome {
    /// Depth of the constructed tree (max distance).
    pub fn depth(&self) -> u32 {
        self.dist.iter().flatten().copied().max().unwrap_or(0)
    }
}

/// Single-source BFS tree construction as a composable [`Protocol`]:
/// run it through a [`Session`](crate::session::Session), alone or joined with other protocols.
///
/// ```
/// use lcs_congest::{Bfs, Session, SimConfig};
///
/// let g = lcs_graph::generators::grid(3, 3);
/// let out = Session::new(&g, SimConfig::default()).run(Bfs::new(0)).unwrap();
/// assert_eq!(out.dist[8], Some(4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Bfs {
    root: NodeId,
}

impl Bfs {
    /// BFS rooted at `root`.
    pub fn new(root: NodeId) -> Self {
        Bfs { root }
    }
}

impl Protocol for Bfs {
    type Msg = BfsMsg;
    type State = BfsNode;
    type Output = DistBfsOutcome;

    fn label(&self) -> &str {
        "bfs"
    }

    fn init(&mut self, graph: &Graph) -> Vec<BfsNode> {
        (0..graph.n() as u32)
            .map(|v| BfsNode::new(v == self.root))
            .collect()
    }

    fn round(&self, state: &mut BfsNode, ctx: &mut RoundCtx<'_, BfsMsg>) {
        NodeAlgorithm::round(state, ctx);
    }

    // The default halted-derived `wake` signal is exact: an unreached
    // or fired (halted) node is a no-op without mail — tokens and child
    // acks re-activate it — and only a reached-but-unfired node needs
    // the next round.
    fn halted(&self, state: &BfsNode) -> bool {
        NodeAlgorithm::halted(state)
    }

    fn finish(self, _graph: &Graph, nodes: Vec<BfsNode>, stats: &RunStats) -> DistBfsOutcome {
        let mut children: Vec<Vec<NodeId>> = nodes.iter().map(|s| s.children.clone()).collect();
        for c in &mut children {
            c.sort_unstable();
        }
        DistBfsOutcome {
            dist: nodes.iter().map(|s| s.dist).collect(),
            parent: nodes.iter().map(|s| s.parent).collect(),
            children,
            stats: stats.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use crate::sim::SimConfig;
    use lcs_graph::bfs_distances;

    /// All protocol tests go through the first-class `Session` API.
    fn run_bfs(g: &Graph, root: NodeId, cfg: &SimConfig) -> DistBfsOutcome {
        Session::new(g, cfg.clone()).run(Bfs::new(root)).unwrap()
    }

    #[test]
    fn bfs_tree_matches_centralized_distances() {
        let g = lcs_graph::generators::grid(4, 5);
        let out = run_bfs(&g, 7, &SimConfig::default());
        let exact = bfs_distances(&g, 7);
        for v in g.nodes() {
            assert_eq!(out.dist[v as usize], Some(exact[v as usize]), "node {v}");
        }
        assert_eq!(out.parent[7], None);
        // rounds ≈ depth + constant.
        assert!(out.stats.rounds as u32 >= out.depth());
        assert!(out.stats.rounds as u32 <= out.depth() + 3);
    }

    #[test]
    fn children_lists_are_consistent_with_parents() {
        let g = lcs_graph::generators::gnp_connected(
            40,
            0.1,
            &mut <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(11),
        );
        let out = run_bfs(&g, 0, &SimConfig::default());
        for v in g.nodes() {
            if let Some(p) = out.parent[v as usize] {
                assert!(
                    out.children[p as usize].contains(&v),
                    "parent {p} must list child {v}"
                );
            }
        }
        let total_children: usize = out.children.iter().map(|c| c.len()).sum();
        assert_eq!(total_children, g.n() - 1);
    }

    #[test]
    fn disconnected_nodes_stay_unreached() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let out = run_bfs(&g, 0, &SimConfig::default());
        assert_eq!(out.dist[2], None);
        assert_eq!(out.dist[3], None);
        assert_eq!(out.dist[1], Some(1));
    }

    #[test]
    fn parent_choice_is_min_id() {
        // Diamond: 0-1, 0-2, 1-3, 2-3. Node 3 hears from 1 and 2
        // simultaneously; must pick 1.
        let g = Graph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let out = run_bfs(&g, 0, &SimConfig::default());
        assert_eq!(out.parent[3], Some(1));
    }

    #[test]
    fn message_complexity_is_linear_in_edges() {
        let g = lcs_graph::generators::complete(12);
        let out = run_bfs(&g, 0, &SimConfig::default());
        // Each edge carries at most 2 tokens + acks.
        assert!(out.stats.messages <= 3 * g.m() as u64);
    }
}
