//! Simulator error types.

use lcs_graph::NodeId;
use std::fmt;

/// A violation of the CONGEST model or of run limits, detected by the
/// simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// A node addressed a non-neighbor.
    InvalidDestination {
        /// Sender.
        from: NodeId,
        /// Intended recipient (not adjacent to `from`).
        to: NodeId,
        /// Round at which the send was attempted.
        round: u64,
    },
    /// A node sent two messages over the same edge direction in one
    /// round.
    ChannelOverflow {
        /// Sender.
        from: NodeId,
        /// Recipient.
        to: NodeId,
        /// Round of the violation.
        round: u64,
    },
    /// A message exceeded the bandwidth cap.
    MessageTooLarge {
        /// Declared message size in words.
        words: u32,
        /// Configured cap in words.
        cap: u32,
        /// Round of the violation.
        round: u64,
    },
    /// The run did not quiesce within the configured round limit.
    RoundLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
    /// The [`FaultPlan`](crate::FaultPlan) attached to the
    /// configuration is inconsistent (rate outside `[0, 1]`, delay
    /// bound at or past the round limit, crash scheduled beyond the
    /// round budget, …). Detected **eagerly**, at
    /// [`Session`](crate::Session) dispatch / [`run`](crate::run)
    /// entry, before any round executes.
    FaultConfig {
        /// What is wrong and how to fix it.
        reason: String,
    },
    /// A [`Reliable`](crate::Reliable) node observed inner-protocol
    /// traffic after its quiet-wave stop: the bound passed to
    /// [`Reliable::with_quiet_bound`](crate::Reliable::with_quiet_bound)
    /// underestimates the network diameter, so the early termination it
    /// licensed would have silently produced wrong output. Raise the
    /// bound (or drop it and let the default full-quiescence rule run).
    QuietBoundViolated {
        /// The node that saw post-stop data.
        node: NodeId,
        /// Transport round of the detection.
        round: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidDestination { from, to, round } => {
                write!(f, "round {round}: node {from} sent to non-neighbor {to}")
            }
            SimError::ChannelOverflow { from, to, round } => {
                write!(
                    f,
                    "round {round}: node {from} sent two messages to {to} in one round"
                )
            }
            SimError::MessageTooLarge { words, cap, round } => {
                write!(
                    f,
                    "round {round}: message of {words} words exceeds bandwidth of {cap} words"
                )
            }
            SimError::RoundLimitExceeded { limit } => {
                write!(f, "run did not terminate within {limit} rounds")
            }
            SimError::FaultConfig { reason } => {
                write!(f, "invalid fault plan: {reason}")
            }
            SimError::QuietBoundViolated { node, round } => {
                write!(
                    f,
                    "round {round}: node {node} observed inner traffic after its quiet-wave \
                     stop — the Reliable::with_quiet_bound bound underestimates the diameter; \
                     raise it"
                )
            }
        }
    }
}

impl std::error::Error for SimError {}
