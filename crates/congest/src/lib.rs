//! # lcs-congest
//!
//! A deterministic, synchronous **CONGEST-model simulator** plus the
//! distributed primitives used by the Kogan–Parter shortcut construction
//! (PODC 2021) and its applications.
//!
//! The CONGEST model (Peleg 2000): `n` processors, one per graph node,
//! communicate in synchronous rounds; per round each node may send one
//! `O(log n)`-bit message to each neighbor. The engine in [`sim`]
//! enforces exactly that (message sizes are accounted in `⌈log₂ n⌉`-bit
//! words, at most [`message::DEFAULT_BANDWIDTH_WORDS`] per message) and
//! reports rounds, message totals, and per-edge traffic. Scheduling is
//! **event-driven** ([`Wake`]): a node runs only when it has mail, asked
//! to stay awake, or the phase just started, so a round costs
//! `O(active nodes + delivered messages)` rather than `O(n)` — with
//! outcomes bit-identical to polling every node every round.
//!
//! Provided protocols:
//!
//! * [`bfs`] — single-source BFS tree with child discovery;
//! * [`tree`] — convergecast / broadcast / prefix numbering on a rooted
//!   tree (`O(depth)` rounds);
//! * [`multi_bfs`] — `N` truncated BFS instances over overlapping
//!   subgraphs, multiplexed through per-edge FIFO queues with random
//!   start delays (the executable form of the paper's use of the
//!   Ghaffari'15 scheduler);
//! * [`multi_aggregate`] — partwise aggregation over many overlapping
//!   trees (the primitive consumed by MST / min-cut / verification).
//!
//! Every protocol is a first-class [`Protocol`] value, run through a
//! [`Session`] — one engine instance (worker pool, reverse-arc tables,
//! cumulative statistics) hosting any number of phases, sequentially
//! ([`Session::run`]) or concurrently in shared rounds
//! ([`Session::join`]).
//!
//! ## Example
//!
//! ```
//! use lcs_congest::{Bfs, Session, SimConfig};
//!
//! let g = lcs_graph::generators::grid(3, 3);
//! let mut session = Session::new(&g, SimConfig::default());
//! let out = session.run(Bfs::new(0)).unwrap();
//! assert_eq!(out.dist[8], Some(4));
//! // The session keeps cumulative + per-phase statistics.
//! assert_eq!(session.stats().rounds, out.stats.rounds);
//! assert_eq!(session.phases()[0].label, "bfs");
//! ```

#![warn(missing_docs)]

pub mod accounting;
mod arena;
pub mod bfs;
pub mod error;
pub mod message;
pub mod multi_aggregate;
pub mod multi_bfs;
pub mod node;
pub mod pool;
pub mod protocol;
pub mod reliable;
pub mod session;
pub mod sim;
pub mod stats;
pub mod tree;

pub use accounting::{ceil_log2, ExecutionMode, ScheduleCost};
pub use bfs::{Bfs, BfsMsg, BfsNode, DistBfsOutcome};
pub use error::SimError;
pub use message::{Message, DEFAULT_BANDWIDTH_WORDS};
pub use multi_aggregate::{
    MultiAggMsg, MultiAggNode, MultiAggOutcome, MultiAggregate, Participation,
};
pub use multi_bfs::{
    Membership, MembershipFn, MultiBfs, MultiBfsInstance, MultiBfsMsg, MultiBfsNode,
    MultiBfsOutcome, MultiBfsSpec, Reached,
};
pub use node::{NodeAlgorithm, RoundCtx, Wake};
pub use pool::{Control, Pool};
pub use protocol::{Join, JoinMsg, Protocol};
pub use reliable::{Reliable, ReliableMsg};
pub use session::Session;
pub use sim::{run, Crash, FaultPlan, RunOutcome, SimConfig};
pub use stats::RunStats;
pub use tree::{
    positions_from_tree, AggOp, ConvergecastNode, PrefixNumber, PrefixNumberNode, TreeAggregate,
    TreeMsg, TreePosition,
};
