//! Message sizing for the CONGEST bandwidth model.
//!
//! In the CONGEST model a node may send one `O(log n)`-bit message per
//! neighbor per round. We account message sizes in **words**, where one
//! word stands for one `⌈log₂ n⌉`-bit quantity (a node id, an edge id, a
//! hop counter, a weight of polynomial magnitude). The simulator enforces
//! a per-message cap of [`SimConfig::bandwidth_words`] words
//! (default [`DEFAULT_BANDWIDTH_WORDS`]), i.e. messages stay `O(log n)`
//! bits with an explicit constant.
//!
//! [`SimConfig::bandwidth_words`]: crate::sim::SimConfig::bandwidth_words

/// Default per-message budget, in `⌈log₂ n⌉`-bit words.
pub const DEFAULT_BANDWIDTH_WORDS: u32 = 4;

/// A CONGEST message: cloneable payload with a declared size in words.
///
/// Implementations must report an honest upper bound on their wire size
/// counted in `⌈log₂ n⌉`-bit words. The simulator rejects messages whose
/// declared size exceeds the configured bandwidth.
pub trait Message: Clone + std::fmt::Debug {
    /// Size of this message in `⌈log₂ n⌉`-bit words.
    fn size_words(&self) -> u32;
}

impl Message for () {
    fn size_words(&self) -> u32 {
        0
    }
}

impl Message for u32 {
    fn size_words(&self) -> u32 {
        1
    }
}

impl Message for u64 {
    /// A `u64` carries e.g. a polynomially-bounded weight: 2 words.
    fn size_words(&self) -> u32 {
        2
    }
}

impl<A: Message, B: Message> Message for (A, B) {
    fn size_words(&self) -> u32 {
        self.0.size_words() + self.1.size_words()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(().size_words(), 0);
        assert_eq!(7u32.size_words(), 1);
        assert_eq!(7u64.size_words(), 2);
        assert_eq!((1u32, 2u64).size_words(), 3);
    }
}
