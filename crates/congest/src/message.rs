//! Message sizing for the CONGEST bandwidth model.
//!
//! In the CONGEST model a node may send one `O(log n)`-bit message per
//! neighbor per round. We account message sizes in **words**, where one
//! word stands for one `⌈log₂ n⌉`-bit quantity (a node id, an edge id, a
//! hop counter, a weight of polynomial magnitude). The simulator enforces
//! a per-message cap of [`SimConfig::bandwidth_words`] words
//! (default [`DEFAULT_BANDWIDTH_WORDS`]), i.e. messages stay `O(log n)`
//! bits with an explicit constant.
//!
//! [`SimConfig::bandwidth_words`]: crate::sim::SimConfig::bandwidth_words

/// Default per-message budget, in `⌈log₂ n⌉`-bit words.
pub const DEFAULT_BANDWIDTH_WORDS: u32 = 4;

/// A CONGEST message: cloneable payload with a declared size in words.
///
/// Implementations must report an honest upper bound on their wire size
/// counted in `⌈log₂ n⌉`-bit words. The simulator rejects messages whose
/// declared size exceeds the configured bandwidth.
pub trait Message: Clone + std::fmt::Debug {
    /// Size of this message in `⌈log₂ n⌉`-bit words.
    fn size_words(&self) -> u32;

    /// Return a corrupted copy of this message, deterministically derived
    /// from `stream` (a splitmix64 draw). The Byzantine corruption tier of
    /// [`FaultPlan`](crate::sim::FaultPlan) calls this on in-flight
    /// messages; the same `(fault_seed, round, arc)` fate always yields the
    /// same `stream`, so corrupted runs stay bit-identical at every shard
    /// count.
    ///
    /// Implementations must flip at least one observable bit for every
    /// `stream` value (the adversary never wastes a corruption), and must
    /// not panic. The default keeps the message unchanged — protocols whose
    /// payloads carry no overridable bits (e.g. `()`) are immune by
    /// construction.
    #[must_use]
    fn corrupted(self, stream: u64) -> Self {
        let _ = stream;
        self
    }

    /// A deterministic 64-bit digest of the payload, used by integrity
    /// tags (e.g. [`Reliable`](crate::reliable::Reliable) frames) to
    /// detect corruption. The default hashes the `Debug` rendering with
    /// FNV-1a — valid for any `Message` since `Debug` is a supertrait,
    /// and stable because `Debug` output is deterministic for the plain
    /// data types used as CONGEST payloads. Override with a cheaper
    /// field-wise hash where throughput matters.
    fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        use std::fmt::Write;
        struct Fnv(u64);
        impl Write for Fnv {
            fn write_str(&mut self, s: &str) -> std::fmt::Result {
                for b in s.bytes() {
                    self.0 = (self.0 ^ u64::from(b)).wrapping_mul(PRIME);
                }
                Ok(())
            }
        }
        let mut h = Fnv(OFFSET);
        write!(h, "{self:?}").expect("Debug formatting never fails");
        h.0
    }
}

impl Message for () {
    fn size_words(&self) -> u32 {
        0
    }

    // A unit payload has no bits to flip: immune to corruption.

    fn digest(&self) -> u64 {
        0
    }
}

impl Message for u32 {
    fn size_words(&self) -> u32 {
        1
    }

    fn corrupted(self, stream: u64) -> Self {
        // `| 1` guarantees at least one flipped bit for every stream.
        self ^ ((stream as u32) | 1)
    }

    fn digest(&self) -> u64 {
        u64::from(*self)
    }
}

impl Message for u64 {
    /// A `u64` carries e.g. a polynomially-bounded weight: 2 words.
    fn size_words(&self) -> u32 {
        2
    }

    fn corrupted(self, stream: u64) -> Self {
        self ^ (stream | 1)
    }

    fn digest(&self) -> u64 {
        *self
    }
}

impl<A: Message, B: Message> Message for (A, B) {
    fn size_words(&self) -> u32 {
        self.0.size_words() + self.1.size_words()
    }

    fn corrupted(self, stream: u64) -> Self {
        // Corrupt one component, chosen by the low bit; re-derive the
        // component's stream so the flipped bits differ from the chooser.
        let next = crate::sim::splitmix64(stream);
        if stream & 1 == 0 {
            (self.0.corrupted(next), self.1)
        } else {
            (self.0, self.1.corrupted(next))
        }
    }

    fn digest(&self) -> u64 {
        self.0
            .digest()
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(17)
            ^ self.1.digest()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(().size_words(), 0);
        assert_eq!(7u32.size_words(), 1);
        assert_eq!(7u64.size_words(), 2);
        assert_eq!((1u32, 2u64).size_words(), 3);
    }
}
