//! Multi-instance tree aggregation: convergecast (and optional broadcast)
//! over many overlapping trees at once, multiplexed through per-edge
//! FIFO queues.
//!
//! This is the **partwise aggregation** primitive of the shortcut
//! framework: once each part `S_i` has its `O(k_D log n)`-depth tree in
//! `G[S_i] ∪ H_i`, applications (MST's minimum-weight-outgoing-edge,
//! min-cut counters, verification bits) aggregate one value per part by
//! running all the convergecasts together. Congestion over shared edges
//! turns into queueing delay, exactly as in [`crate::multi_bfs`].

use crate::message::Message;
use crate::node::{NodeAlgorithm, RoundCtx};
use crate::protocol::Protocol;
use crate::stats::RunStats;
use crate::tree::AggOp;
use lcs_graph::{Graph, NodeId};
use std::collections::{HashMap, VecDeque};

/// One node's membership in one instance tree.
#[derive(Debug, Clone)]
pub struct Participation {
    /// Instance id.
    pub inst: u32,
    /// Parent in this instance's tree (None = root of the instance).
    pub parent: Option<NodeId>,
    /// Children in this instance's tree.
    pub children: Vec<NodeId>,
    /// This node's contribution to the aggregate.
    pub value: u64,
}

/// Messages of the multi-aggregation protocol.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MultiAggMsg {
    /// Partial aggregate flowing up in `inst`.
    Up {
        /// Instance id.
        inst: u32,
        /// Partial aggregate.
        value: u64,
    },
    /// Final aggregate flowing down in `inst`.
    Down {
        /// Instance id.
        inst: u32,
        /// Final aggregate.
        value: u64,
    },
}

impl Message for MultiAggMsg {
    fn size_words(&self) -> u32 {
        3 // instance id (1 word) + u64 value (2 words)
    }
}

#[derive(Debug)]
struct InstState {
    parent: Option<NodeId>,
    children: Vec<NodeId>,
    /// Neighbor index of `parent`, resolved on the first round.
    parent_idx: Option<usize>,
    /// Neighbor indices of `children`, resolved on the first round.
    children_idx: Vec<usize>,
    pending: usize,
    acc: u64,
    sent_up: bool,
    sent_down: bool,
    result: Option<u64>,
}

/// Per-node state of the multi-aggregation protocol.
#[derive(Debug)]
pub struct MultiAggNode {
    op: AggOp,
    broadcast: bool,
    /// Instance states sorted by instance id (deterministic iteration,
    /// binary-searchable on message arrival).
    insts: Vec<(u32, InstState)>,
    queues: Vec<VecDeque<MultiAggMsg>>,
    /// Longest queue observed.
    pub max_queue: usize,
    initialized: bool,
}

impl MultiAggNode {
    /// Creates the node state from this node's participations.
    pub fn new(participations: Vec<Participation>, op: AggOp, broadcast: bool) -> Self {
        // BTreeMap construction: sorted by instance id, duplicate
        // participations collapse to the last one given.
        let insts: Vec<(u32, InstState)> = participations
            .into_iter()
            .map(|p| {
                let pending = p.children.len();
                (
                    p.inst,
                    InstState {
                        parent: p.parent,
                        children: p.children,
                        parent_idx: None,
                        children_idx: Vec::new(),
                        pending,
                        acc: p.value,
                        sent_up: false,
                        sent_down: false,
                        result: None,
                    },
                )
            })
            .collect::<std::collections::BTreeMap<u32, InstState>>()
            .into_iter()
            .collect();
        MultiAggNode {
            op,
            broadcast,
            insts,
            queues: Vec::new(),
            max_queue: 0,
            initialized: false,
        }
    }

    fn inst_mut(&mut self, inst: u32) -> Option<&mut InstState> {
        self.insts
            .binary_search_by_key(&inst, |&(i, _)| i)
            .ok()
            .map(|i| &mut self.insts[i].1)
    }
}

impl NodeAlgorithm for MultiAggNode {
    type Msg = MultiAggMsg;

    fn round(&mut self, ctx: &mut RoundCtx<'_, MultiAggMsg>) {
        if !self.initialized {
            self.initialized = true;
            self.queues = vec![VecDeque::new(); ctx.degree()];
            for (_, st) in &mut self.insts {
                (st.parent_idx, st.children_idx) = ctx.tree_indices(st.parent, &st.children);
            }
        }
        // Absorb arrivals.
        let op = self.op;
        for &(_from, ref msg) in ctx.inbox() {
            match *msg {
                MultiAggMsg::Up { inst, value } => {
                    let st = self.inst_mut(inst).expect("Up for unknown instance");
                    st.acc = op.apply(st.acc, value);
                    st.pending = st.pending.saturating_sub(1);
                }
                MultiAggMsg::Down { inst, value } => {
                    self.inst_mut(inst)
                        .expect("Down for unknown instance")
                        .result = Some(value);
                }
            }
        }
        // Progress each instance; sorted order keeps queue contents
        // deterministic. Field-split borrows: `insts` drives, `queues`
        // and `max_queue` absorb, with no per-round clones.
        let broadcast = self.broadcast;
        let queues = &mut self.queues;
        let max_queue = &mut self.max_queue;
        for &mut (inst, ref mut st) in &mut self.insts {
            if st.pending == 0 && !st.sent_up {
                st.sent_up = true;
                match st.parent_idx {
                    None => st.result = Some(st.acc),
                    Some(pi) => {
                        let q = &mut queues[pi];
                        q.push_back(MultiAggMsg::Up {
                            inst,
                            value: st.acc,
                        });
                        *max_queue = (*max_queue).max(q.len());
                    }
                }
            }
            if broadcast && !st.sent_down {
                if let Some(r) = st.result {
                    st.sent_down = true;
                    for &ci in &st.children_idx {
                        let q = &mut queues[ci];
                        q.push_back(MultiAggMsg::Down { inst, value: r });
                        *max_queue = (*max_queue).max(q.len());
                    }
                }
            }
        }
        // Drain one message per neighbor.
        for idx in 0..self.queues.len() {
            if let Some(msg) = self.queues[idx].pop_front() {
                ctx.send_nth(idx, msg);
            }
        }
    }

    fn halted(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }
}

/// Result of the [`MultiAggregate`] protocol.
#[derive(Debug)]
pub struct MultiAggOutcome {
    /// `results[v]` maps instance id to the aggregate known at `v`
    /// (roots always; everyone in the instance when broadcast was on).
    pub results: Vec<HashMap<u32, Option<u64>>>,
    /// Longest queue observed.
    pub max_queue: usize,
    /// Engine statistics.
    pub stats: crate::stats::RunStats,
}

impl MultiAggOutcome {
    /// The aggregate of instance `inst` as known by node `v`.
    pub fn result_at(&self, v: NodeId, inst: u32) -> Option<u64> {
        self.results[v as usize].get(&inst).copied().flatten()
    }
}

/// Partwise aggregation over many overlapping trees as a composable
/// [`Protocol`] — the primitive the paper's applications are built on.
/// Run it through a [`Session`](crate::session::Session), alone or joined with other protocols.
#[derive(Debug, Clone)]
pub struct MultiAggregate {
    participations: Vec<Vec<Participation>>,
    op: AggOp,
    broadcast: bool,
}

impl MultiAggregate {
    /// A bundle of per-instance convergecasts (plus broadcast when
    /// requested) described by each node's participations.
    pub fn new(participations: Vec<Vec<Participation>>, op: AggOp, broadcast: bool) -> Self {
        MultiAggregate {
            participations,
            op,
            broadcast,
        }
    }
}

impl Protocol for MultiAggregate {
    type Msg = MultiAggMsg;
    type State = MultiAggNode;
    type Output = MultiAggOutcome;

    fn label(&self) -> &str {
        "multi_aggregate"
    }

    fn init(&mut self, graph: &Graph) -> Vec<MultiAggNode> {
        assert_eq!(self.participations.len(), graph.n());
        std::mem::take(&mut self.participations)
            .into_iter()
            .map(|p| MultiAggNode::new(p, self.op, self.broadcast))
            .collect()
    }

    fn round(&self, state: &mut MultiAggNode, ctx: &mut RoundCtx<'_, MultiAggMsg>) {
        NodeAlgorithm::round(state, ctx);
    }

    // The default halted-derived `wake` signal is exact: a node stays
    // awake exactly while queued messages remain to drain (= !halted);
    // instance progression is otherwise driven by Up/Down arrivals, so
    // on the partwise workloads most nodes are asleep most rounds —
    // the active-frontier cost model this protocol was the motivating
    // case for.
    fn halted(&self, state: &MultiAggNode) -> bool {
        NodeAlgorithm::halted(state)
    }

    fn finish(self, _graph: &Graph, nodes: Vec<MultiAggNode>, stats: &RunStats) -> MultiAggOutcome {
        let max_queue = nodes.iter().map(|s| s.max_queue).max().unwrap_or(0);
        let results = nodes
            .into_iter()
            .map(|s| {
                s.insts
                    .into_iter()
                    .map(|(i, st)| (i, st.result))
                    .collect::<HashMap<_, _>>()
            })
            .collect();
        MultiAggOutcome {
            results,
            max_queue,
            stats: stats.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::Bfs;
    use crate::session::Session;
    use crate::sim::SimConfig;

    /// All protocol tests go through the first-class `Session` API.
    fn aggregate(
        g: &Graph,
        parts: Vec<Vec<Participation>>,
        op: AggOp,
        broadcast: bool,
    ) -> MultiAggOutcome {
        Session::new(g, SimConfig::default())
            .run(MultiAggregate::new(parts, op, broadcast))
            .unwrap()
    }

    /// Builds participations for a single instance from a BFS tree.
    fn single_tree_participation(
        g: &Graph,
        root: NodeId,
        values: &[u64],
    ) -> Vec<Vec<Participation>> {
        let bfs = Session::new(g, SimConfig::default())
            .run(Bfs::new(root))
            .unwrap();
        (0..g.n())
            .map(|v| {
                if bfs.dist[v].is_none() {
                    return Vec::new();
                }
                vec![Participation {
                    inst: 0,
                    parent: bfs.parent[v],
                    children: bfs.children[v].clone(),
                    value: values[v],
                }]
            })
            .collect()
    }

    #[test]
    fn single_instance_sum_and_broadcast() {
        let g = lcs_graph::generators::grid(4, 4);
        let values: Vec<u64> = (0..16u64).collect();
        let parts = single_tree_participation(&g, 0, &values);
        let out = aggregate(&g, parts, AggOp::Sum, true);
        let expected: u64 = (0..16u64).sum();
        for v in g.nodes() {
            assert_eq!(out.result_at(v, 0), Some(expected), "node {v}");
        }
    }

    #[test]
    fn min_without_broadcast_only_root_knows() {
        let g = lcs_graph::generators::path(6);
        let values = vec![9, 4, 7, 2, 8, 6];
        let parts = single_tree_participation(&g, 0, &values);
        let out = aggregate(&g, parts, AggOp::Min, false);
        assert_eq!(out.result_at(0, 0), Some(2));
        assert_eq!(out.result_at(3, 0), None);
    }

    #[test]
    fn many_overlapping_instances() {
        // Star graph; 6 instances, each a 2-level tree rooted at a
        // distinct leaf through the hub to every other leaf.
        let g = lcs_graph::generators::star(8);
        let leaves: Vec<NodeId> = (1..8).collect();
        let mut parts: Vec<Vec<Participation>> = vec![Vec::new(); 8];
        for (i, &r) in leaves.iter().take(6).enumerate() {
            let inst = i as u32;
            // Root r -> hub 0 -> other leaves.
            parts[r as usize].push(Participation {
                inst,
                parent: None,
                children: vec![0],
                value: 100 + r as u64,
            });
            let others: Vec<NodeId> = leaves.iter().copied().filter(|&w| w != r).collect();
            parts[0].push(Participation {
                inst,
                parent: Some(r),
                children: others.clone(),
                value: 50,
            });
            for &w in &others {
                parts[w as usize].push(Participation {
                    inst,
                    parent: Some(0),
                    children: vec![],
                    value: w as u64,
                });
            }
        }
        let out = aggregate(&g, parts, AggOp::Sum, true);
        for (i, &r) in leaves.iter().take(6).enumerate() {
            let inst = i as u32;
            let others_sum: u64 = leaves
                .iter()
                .copied()
                .filter(|&w| w != r)
                .map(|w| w as u64)
                .sum();
            let expected = 100 + r as u64 + 50 + others_sum;
            assert_eq!(out.result_at(r, inst), Some(expected), "instance {inst}");
            // Broadcast reached the leaves too.
            for &w in leaves.iter().filter(|&&w| w != r) {
                assert_eq!(out.result_at(w, inst), Some(expected));
            }
        }
        assert!(out.max_queue >= 2, "hub must queue with 6 instances");
    }

    #[test]
    fn empty_participation_is_inert() {
        let g = lcs_graph::generators::path(3);
        let parts = vec![Vec::new(), Vec::new(), Vec::new()];
        let out = aggregate(&g, parts, AggOp::Sum, true);
        assert_eq!(out.stats.messages, 0);
        assert!(out.results.iter().all(|m| m.is_empty()));
    }
}
