//! Scheduled parallel BFS: many BFS instances over (possibly
//! overlapping) subgraphs of the same network, multiplexed through
//! per-edge FIFO queues with randomly delayed start rounds.
//!
//! This is the executable form of the paper's use of the random-delay
//! scheduler (Theorem 2.1 / Ghaffari'15): the `N` truncated BFS trees of
//! the shortcut construction all grow concurrently; each edge forwards
//! one queued token per direction per round, so per-edge congestion
//! translates into queueing delay rather than a model violation. Random
//! start offsets (chosen by the caller from shared randomness) spread the
//! load so that, w.h.p., queues stay short.
//!
//! Instance subgraph membership is supplied as a [`Membership`] oracle
//! evaluated at the *sending* endpoint (`may a token of instance i
//! traverse u → v?`) — exactly the local knowledge nodes have after the
//! sampling step (each node knows which of its incident edges it
//! sampled into which `H_i`). The whole-graph case ([`Membership::All`])
//! is recognised statically so the fan-out hot loop skips the dynamic
//! predicate call entirely.
//!
//! **Distance semantics.** Tokens are forwarded as fast as queues allow
//! (the Leighton–Maggs–Richa packet view of the schedule) and a node
//! adopts the *first* token per instance. Under contention a token that
//! travelled a longer route can win the race, so recorded distances are
//! sound *upper bounds* on the instance-subgraph BFS distances — exact
//! in the contention-free case — and the spanning/depth guarantees the
//! construction needs are preserved by its `O(k_D log n)` depth budget.

use crate::message::Message;
use crate::node::{NodeAlgorithm, RoundCtx};
use crate::protocol::Protocol;
use crate::stats::RunStats;
use lcs_graph::{Graph, NodeId};
use std::collections::VecDeque;
use std::sync::Arc;

/// One BFS instance of the bundle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiBfsInstance {
    /// Root node of this instance.
    pub root: NodeId,
    /// Round at which the root fires (the random delay).
    pub start_round: u64,
    /// Maximum BFS depth (tokens beyond this are not propagated).
    pub depth_limit: u32,
}

/// Symmetric membership predicate: is edge `{u, v}` part of instance
/// `i`'s subgraph? Implementations must answer identically for `(u, v)`
/// and `(v, u)`.
pub type MembershipFn = Arc<dyn Fn(NodeId, NodeId, u32) -> bool + Send + Sync>;

/// Edge-membership oracle of a multi-BFS bundle.
///
/// The common whole-graph case gets its own variant so the token
/// fan-out hot path pays a predictable enum branch instead of a dynamic
/// call per (token, neighbor) pair; arbitrary predicates use
/// [`Membership::Fn`] (or the [`Membership::func`] helper).
#[derive(Clone)]
pub enum Membership {
    /// Every edge belongs to every instance.
    All,
    /// Arbitrary symmetric predicate (see [`MembershipFn`]).
    Fn(MembershipFn),
}

impl Membership {
    /// Wraps a predicate closure (see [`MembershipFn`] for the
    /// symmetry requirement).
    pub fn func(f: impl Fn(NodeId, NodeId, u32) -> bool + Send + Sync + 'static) -> Self {
        Membership::Fn(Arc::new(f))
    }

    /// May a token of instance `inst` traverse the edge `u → v`?
    #[inline]
    pub fn allows(&self, u: NodeId, v: NodeId, inst: u32) -> bool {
        match self {
            Membership::All => true,
            Membership::Fn(f) => f(u, v, inst),
        }
    }
}

impl std::fmt::Debug for Membership {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Membership::All => f.write_str("Membership::All"),
            Membership::Fn(_) => f.write_str("Membership::Fn(..)"),
        }
    }
}

/// Shared specification of a multi-BFS bundle.
#[derive(Clone)]
pub struct MultiBfsSpec {
    /// The instances; index = instance id.
    pub instances: Vec<MultiBfsInstance>,
    /// Edge membership oracle.
    pub membership: Membership,
    /// Per-neighbor queue capacity; tokens beyond it are dropped and the
    /// node records an overflow (0 = unbounded). Mirrors the paper's
    /// congestion enforcement: an overloaded guess produces incomplete
    /// trees, which the verification step then rejects.
    pub queue_cap: usize,
}

impl std::fmt::Debug for MultiBfsSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MultiBfsSpec")
            .field("instances", &self.instances.len())
            .field("queue_cap", &self.queue_cap)
            .finish()
    }
}

/// Messages of the multi-BFS protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MultiBfsMsg {
    /// BFS token: "you are at distance `dist` in instance `inst`, whose
    /// root is `root`". Carrying the root id mirrors the paper, where
    /// "each edge `(u,v) ∈ H_i` learns the identity of `v_i` at the time
    /// at which the BFS token of `v_i` arrives" — receivers can relate
    /// instances to known node ids (e.g. their own part leader).
    Token {
        /// Instance id.
        inst: u32,
        /// Root node of the instance.
        root: NodeId,
        /// Receiver's distance.
        dist: u32,
    },
    /// Child acknowledgment in `inst`.
    Child {
        /// Instance id.
        inst: u32,
    },
}

impl Message for MultiBfsMsg {
    fn size_words(&self) -> u32 {
        match self {
            MultiBfsMsg::Token { .. } => 3,
            MultiBfsMsg::Child { .. } => 1,
        }
    }
}

/// How a node was reached in one instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reached {
    /// BFS distance in the instance subgraph (0 for the root).
    pub dist: u32,
    /// Tree parent (None for the root).
    pub parent: Option<NodeId>,
    /// Round at which the node joined.
    pub round: u64,
    /// Root of the instance, as learned from the token.
    pub root: NodeId,
}

/// Per-node state of the multi-BFS protocol.
///
/// Instance ids are dense (`0..instances.len()`), so per-instance state
/// is kept in flat vectors — token arrival is an index, not a hash.
///
/// The layout is split by temperature. The fields below are everything
/// the common per-round paths touch — token rejection reads
/// `reached_lo`, acceptance appends to `accepted`, the direct send
/// path reads `sent_lo`/`queued` — and `repr(C)` pins them into the
/// struct's first 64 bytes, so a typical active round costs one cache
/// line of node state. Queue machinery, root lists and diagnostics
/// live behind the `MultiBfsCold` box and are only dereferenced on
/// the slow paths that need them.
#[derive(Debug)]
#[repr(C)]
pub struct MultiBfsNode {
    spec: Arc<MultiBfsSpec>,
    /// Reached bits for instances `0..64` (bit `i` mirrors "instance
    /// `i` reached this node"). Token rejection — the common case
    /// under contention — tests this word, which lives in the node
    /// struct the engine already touched, instead of a per-instance
    /// heap block.
    reached_lo: u64,
    /// Neighbors `0..64` already sent to this round via the direct
    /// path (bit = neighbor index). The first message bound for an
    /// idle neighbor goes straight to the wire — it *is* the FIFO
    /// front the drain would pick — skipping the queue round-trip
    /// entirely; later same-round messages queue behind it. Reset at
    /// the end of every round.
    sent_lo: u64,
    /// Total queued messages across all neighbors.
    queued: u32,
    /// Instances rooted here whose start has not fired yet.
    pending_roots: u32,
    /// Reach records in arrival order, as `(instance, info)` pairs;
    /// scattered into an instance-indexed table at `finish`. During
    /// the run this is append-only — each accepted token touches the
    /// hot tail of one contiguous buffer instead of a cold
    /// instance-indexed slot in a `k × 24`-byte-per-node table (10 MB
    /// of scattered write traffic for the benchmark bundle). The
    /// reached bitmaps answer all mid-run queries.
    accepted: Vec<(u32, Reached)>,
    /// Rarely-touched state (queue machinery, roots, diagnostics).
    cold: Box<MultiBfsCold>,
}

/// The cold half of [`MultiBfsNode`]: state the hot per-round paths
/// never touch, boxed so it does not dilute the node's hot cache line.
#[derive(Debug, Default)]
struct MultiBfsCold {
    /// Children discovered, as `(instance, child)` pairs in arrival
    /// order; distributed into per-instance sorted lists at `finish`.
    /// One flat vector per node beats a `Vec<Vec<NodeId>>` — a child
    /// ack appends to one contiguous buffer instead of chasing a
    /// per-instance pointer.
    children: Vec<(u32, NodeId)>,
    /// Per-neighbor outgoing FIFO queues (indexed in neighbor order).
    /// Allocated on first use: with the direct send path, a node whose
    /// traffic never collides skips the allocation entirely.
    queues: Vec<VecDeque<MultiBfsMsg>>,
    /// Neighbor indices with a non-empty queue (unordered). Lets the
    /// drain loop touch only neighbors with traffic instead of
    /// scanning every queue each round.
    busy: Vec<u32>,
    /// Instance ids rooted at this node.
    roots_here: Vec<u32>,
    /// Reached bits for instances `≥ 64`, one word per 64 instances
    /// (empty for bundles of at most 64 instances).
    reached_hi: Vec<u64>,
    /// Longest queue ever observed (scheduling-quality diagnostic).
    max_queue: usize,
    /// Whether any token was dropped due to `queue_cap`.
    overflowed: bool,
}

impl MultiBfsNode {
    /// Creates the state for one node; `roots_here` lists the instance
    /// ids whose root is this node.
    pub fn new(spec: Arc<MultiBfsSpec>, roots_here: Vec<u32>) -> Self {
        let k = spec.instances.len();
        let pending_roots = roots_here.len() as u32;
        MultiBfsNode {
            spec,
            reached_lo: 0,
            sent_lo: 0,
            queued: 0,
            pending_roots,
            accepted: Vec::new(),
            cold: Box::new(MultiBfsCold {
                reached_hi: vec![0; k.saturating_sub(64).div_ceil(64)],
                roots_here,
                ..MultiBfsCold::default()
            }),
        }
    }

    /// Longest per-neighbor queue ever observed at this node.
    pub fn max_queue(&self) -> usize {
        self.cold.max_queue
    }

    /// Whether this node dropped tokens due to `queue_cap`.
    pub fn overflowed(&self) -> bool {
        self.cold.overflowed
    }

    #[inline]
    fn is_reached(&self, inst: u32) -> bool {
        if inst < 64 {
            self.reached_lo >> inst & 1 != 0
        } else {
            self.cold.reached_hi[(inst as usize - 64) >> 6] >> (inst & 63) & 1 != 0
        }
    }

    #[inline]
    fn mark_reached(&mut self, inst: u32) {
        if inst < 64 {
            self.reached_lo |= 1 << inst;
        } else {
            self.cold.reached_hi[(inst as usize - 64) >> 6] |= 1 << (inst & 63);
        }
    }

    /// Sends `msg` to neighbor `idx` this round if its FIFO is empty
    /// and nothing was sent to it yet (the message *is* the front the
    /// drain would pick, so the wire effect is identical); otherwise
    /// queues it. Only the first 64 neighbors are eligible for the
    /// direct path — higher indices always queue and drain normally.
    ///
    /// `deg` is the node's degree, used to size the lazily-allocated
    /// queue table on first collision. `queued == 0` proves every
    /// queue is empty, so the common direct path never dereferences
    /// the cold box at all.
    #[inline]
    fn send_or_enqueue(
        &mut self,
        ctx: &mut RoundCtx<'_, MultiBfsMsg>,
        deg: usize,
        idx: usize,
        msg: MultiBfsMsg,
    ) {
        if idx < 64
            && self.sent_lo >> idx & 1 == 0
            && (self.queued == 0 || self.cold.queues[idx].is_empty())
        {
            self.sent_lo |= 1 << idx;
            ctx.send_nth(idx, msg);
            return;
        }
        self.enqueue(deg, idx, msg);
    }

    /// The queueing slow path of [`Self::send_or_enqueue`].
    fn enqueue(&mut self, deg: usize, idx: usize, msg: MultiBfsMsg) {
        let cap = self.spec.queue_cap;
        let cold = &mut *self.cold;
        if cold.queues.is_empty() {
            cold.queues.resize_with(deg, VecDeque::new);
        }
        let q = &mut cold.queues[idx];
        if cap > 0 && q.len() >= cap {
            cold.overflowed = true;
            return;
        }
        if q.is_empty() {
            cold.busy.push(idx as u32);
        }
        q.push_back(msg);
        self.queued += 1;
        cold.max_queue = cold.max_queue.max(q.len());
    }

    fn fan_out(
        &mut self,
        ctx: &mut RoundCtx<'_, MultiBfsMsg>,
        inst: u32,
        root: NodeId,
        dist: u32,
        skip: Option<NodeId>,
    ) {
        let me = ctx.node();
        let neighbors = ctx.neighbors();
        let limit = self.spec.instances[inst as usize].depth_limit;
        if dist >= limit {
            return;
        }
        let token = MultiBfsMsg::Token {
            inst,
            root,
            dist: dist + 1,
        };
        for (idx, &w) in neighbors.iter().enumerate() {
            if Some(w) == skip {
                continue;
            }
            if self.spec.membership.allows(me, w, inst) {
                self.send_or_enqueue(ctx, neighbors.len(), idx, token);
            }
        }
    }
}

impl NodeAlgorithm for MultiBfsNode {
    type Msg = MultiBfsMsg;

    fn round(&mut self, ctx: &mut RoundCtx<'_, MultiBfsMsg>) {
        let me = ctx.node();
        let neighbors = ctx.neighbors();
        // Root activations scheduled for this round (indexed loop: no
        // per-round allocation; skipped entirely once every local root
        // has fired).
        if self.pending_roots > 0 {
            for r in 0..self.cold.roots_here.len() {
                let inst = self.cold.roots_here[r];
                if self.spec.instances[inst as usize].start_round != ctx.round()
                    || self.is_reached(inst)
                {
                    continue;
                }
                self.pending_roots -= 1;
                self.mark_reached(inst);
                self.accepted.push((
                    inst,
                    Reached {
                        dist: 0,
                        parent: None,
                        round: ctx.round(),
                        root: me,
                    },
                ));
                self.fan_out(ctx, inst, me, 0, None);
            }
        }
        // Process arrivals (no inbox copy — the slice outlives the ctx
        // borrow, so sends can interleave with iteration).
        let inbox = ctx.inbox();
        for &(from, ref msg) in inbox {
            match *msg {
                MultiBfsMsg::Token { inst, root, dist } => {
                    // Already-reached is by far the common rejection
                    // under contention: test the in-struct bit word
                    // before touching the shared spec or the reach
                    // records.
                    if self.is_reached(inst)
                        || dist > self.spec.instances[inst as usize].depth_limit
                    {
                        continue;
                    }
                    self.mark_reached(inst);
                    self.accepted.push((
                        inst,
                        Reached {
                            dist,
                            parent: Some(from),
                            round: ctx.round(),
                            root,
                        },
                    ));
                    let from_idx = ctx.neighbor_index(from).expect("sender is a neighbor");
                    self.send_or_enqueue(
                        ctx,
                        neighbors.len(),
                        from_idx,
                        MultiBfsMsg::Child { inst },
                    );
                    self.fan_out(ctx, inst, root, dist, Some(from));
                }
                MultiBfsMsg::Child { inst } => {
                    self.cold.children.push((inst, from));
                }
            }
        }
        // Drain the queued leftovers: one message per neighbor per
        // round, skipping neighbors the direct path already served.
        // Only busy neighbors are visited; the busy list is unordered,
        // but each send targets a distinct arc slot and the receiver
        // gathers in its own fixed arc order, so the iteration order
        // cannot affect outcomes. `queued == 0` skips the cold box
        // entirely — the common case with the direct path in play.
        if self.queued > 0 {
            let cold = &mut *self.cold;
            let mut i = 0;
            while i < cold.busy.len() {
                let idx = cold.busy[i] as usize;
                if idx < 64 && self.sent_lo >> idx & 1 != 0 {
                    // Sent to this neighbor directly this round; its
                    // queue waits for the next one.
                    i += 1;
                    continue;
                }
                let msg = cold.queues[idx]
                    .pop_front()
                    .expect("busy list tracks non-empty queues");
                self.queued -= 1;
                ctx.send_nth(idx, msg);
                if cold.queues[idx].is_empty() {
                    cold.busy.swap_remove(i);
                } else {
                    i += 1;
                }
            }
        }
        self.sent_lo = 0;
    }

    fn halted(&self) -> bool {
        // A root with a pending delayed start must keep the run alive
        // even when no messages are in flight yet. Both counters are
        // maintained incrementally, so this is O(1) — it runs for every
        // node after every active round.
        self.pending_roots == 0 && self.queued == 0
    }
}

/// Result of the [`MultiBfs`] protocol.
///
/// Instance ids are dense (`0..spec.instances.len()`), so per-node
/// per-instance data is stored in flat vectors indexed by instance id —
/// the node states are moved out verbatim, with no per-entry hashing.
#[derive(Debug)]
pub struct MultiBfsOutcome {
    /// Per-node reach info: `reached[v][inst]` is `Some` when instance
    /// `inst` reached node `v`.
    pub reached: Vec<Vec<Option<Reached>>>,
    /// Per-node children per instance (sorted): `children[v][inst]`.
    pub children: Vec<Vec<Vec<NodeId>>>,
    /// Longest per-neighbor queue observed anywhere.
    pub max_queue: usize,
    /// Whether any node dropped tokens (congestion-cap enforcement
    /// fired).
    pub overflowed: bool,
    /// Engine statistics.
    pub stats: crate::stats::RunStats,
}

impl MultiBfsOutcome {
    /// Nodes reached by instance `i`, with distances.
    pub fn instance_nodes(&self, inst: u32) -> Vec<(NodeId, Reached)> {
        self.reached
            .iter()
            .enumerate()
            .filter_map(|(v, m)| {
                m.get(inst as usize)
                    .copied()
                    .flatten()
                    .map(|r| (v as NodeId, r))
            })
            .collect()
    }

    /// Depth actually reached by instance `i` (0 for an unknown id).
    pub fn instance_depth(&self, inst: u32) -> u32 {
        self.reached
            .iter()
            .filter_map(|m| m.get(inst as usize).copied().flatten().map(|r| r.dist))
            .max()
            .unwrap_or(0)
    }
}

/// A bundle of scheduled BFS instances as a composable [`Protocol`]
/// (the executable form of the paper's random-delay scheduler): run it
/// through a [`Session`](crate::session::Session), alone or joined with other protocols.
#[derive(Debug, Clone)]
pub struct MultiBfs {
    spec: Arc<MultiBfsSpec>,
}

impl MultiBfs {
    /// A multi-BFS bundle over `spec`'s instances.
    pub fn new(spec: Arc<MultiBfsSpec>) -> Self {
        MultiBfs { spec }
    }
}

impl Protocol for MultiBfs {
    type Msg = MultiBfsMsg;
    type State = MultiBfsNode;
    type Output = MultiBfsOutcome;

    fn label(&self) -> &str {
        "multi_bfs"
    }

    fn init(&mut self, graph: &Graph) -> Vec<MultiBfsNode> {
        let mut roots_of: Vec<Vec<u32>> = vec![Vec::new(); graph.n()];
        for (i, inst) in self.spec.instances.iter().enumerate() {
            roots_of[inst.root as usize].push(i as u32);
        }
        roots_of
            .into_iter()
            .map(|r| MultiBfsNode::new(Arc::clone(&self.spec), r))
            .collect()
    }

    fn round(&self, state: &mut MultiBfsNode, ctx: &mut RoundCtx<'_, MultiBfsMsg>) {
        NodeAlgorithm::round(state, ctx);
    }

    // The default halted-derived `wake` signal is exact: both kinds of
    // time-driven work that must keep a node awake without mail — a
    // root instance whose random start delay has not fired yet, and
    // queued tokens still draining at one per neighbor per round — are
    // captured by `halted`; everything else (token arrival, child
    // acks) is mail-driven and sleeps.
    fn halted(&self, state: &MultiBfsNode) -> bool {
        NodeAlgorithm::halted(state)
    }

    fn finish(self, _graph: &Graph, nodes: Vec<MultiBfsNode>, stats: &RunStats) -> MultiBfsOutcome {
        let k = self.spec.instances.len();
        let max_queue = nodes.iter().map(|s| s.max_queue()).max().unwrap_or(0);
        let overflowed = nodes.iter().any(|s| s.overflowed());
        let mut reached = Vec::with_capacity(nodes.len());
        let mut children = Vec::with_capacity(nodes.len());
        for s in nodes {
            // Scatter the node's append-only reach log into the
            // instance-indexed table. Each instance appears at most
            // once (the reached bitmaps guard every push), so the
            // arrival order cannot matter.
            let mut m: Vec<Option<Reached>> = vec![None; k];
            for (inst, r) in s.accepted {
                m[inst as usize] = Some(r);
            }
            reached.push(m);
            // Distribute the node's flat (instance, child) log into
            // per-instance sorted lists; sorting erases the arrival
            // order, so the flat log yields the same output the old
            // per-instance accumulation did.
            let mut c: Vec<Vec<NodeId>> = vec![Vec::new(); k];
            for (inst, child) in s.cold.children {
                c[inst as usize].push(child);
            }
            for list in &mut c {
                list.sort_unstable();
            }
            children.push(c);
        }
        MultiBfsOutcome {
            reached,
            children,
            max_queue,
            overflowed,
            stats: stats.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::Session;
    use crate::sim::SimConfig;
    use lcs_graph::bfs_distances;

    fn full_membership() -> Membership {
        Membership::All
    }

    /// All protocol tests go through the first-class `Session` API.
    fn run_bundle(g: &Graph, spec: Arc<MultiBfsSpec>) -> MultiBfsOutcome {
        Session::new(g, SimConfig::default())
            .run(MultiBfs::new(spec))
            .unwrap()
    }

    #[test]
    fn single_instance_matches_plain_bfs() {
        let g = lcs_graph::generators::grid(5, 5);
        let spec = Arc::new(MultiBfsSpec {
            instances: vec![MultiBfsInstance {
                root: 0,
                start_round: 0,
                depth_limit: 100,
            }],
            membership: full_membership(),
            queue_cap: 0,
        });
        let out = run_bundle(&g, spec);
        let exact = bfs_distances(&g, 0);
        for v in g.nodes() {
            assert_eq!(
                out.reached[v as usize][0].map(|r| r.dist),
                Some(exact[v as usize]),
                "node {v}"
            );
        }
        assert!(!out.overflowed);
    }

    #[test]
    fn depth_limit_truncates() {
        let g = lcs_graph::generators::path(12);
        let spec = Arc::new(MultiBfsSpec {
            instances: vec![MultiBfsInstance {
                root: 0,
                start_round: 0,
                depth_limit: 4,
            }],
            membership: full_membership(),
            queue_cap: 0,
        });
        let out = run_bundle(&g, spec);
        assert_eq!(out.instance_depth(0), 4);
        assert_eq!(out.instance_nodes(0).len(), 5);
        assert!(out.reached[5][0].is_none());
    }

    #[test]
    fn disjoint_instances_do_not_interact() {
        // Two paths sharing no edges, as instances over node-partitioned
        // membership.
        let g = lcs_graph::generators::path(10);
        let membership = Membership::func(|u, v, i| {
            if i == 0 {
                u < 5 && v < 5
            } else {
                u >= 5 && v >= 5
            }
        });
        let spec = Arc::new(MultiBfsSpec {
            instances: vec![
                MultiBfsInstance {
                    root: 0,
                    start_round: 0,
                    depth_limit: 100,
                },
                MultiBfsInstance {
                    root: 9,
                    start_round: 0,
                    depth_limit: 100,
                },
            ],
            membership,
            queue_cap: 0,
        });
        let out = run_bundle(&g, spec);
        assert_eq!(out.instance_nodes(0).len(), 5);
        assert_eq!(out.instance_nodes(1).len(), 5);
        assert_eq!(out.reached[4][0].unwrap().dist, 4);
        assert_eq!(out.reached[5][1].unwrap().dist, 4);
        assert!(out.reached[4][1].is_none());
    }

    #[test]
    fn many_overlapping_instances_queue_but_complete() {
        // A star: every instance floods through the hub; queues must
        // serialize the tokens, one per round.
        let g = lcs_graph::generators::star(20);
        let instances: Vec<MultiBfsInstance> = (1..=10)
            .map(|i| MultiBfsInstance {
                root: i as NodeId,
                start_round: 0, // all at once: maximal contention
                depth_limit: 4,
            })
            .collect();
        let spec = Arc::new(MultiBfsSpec {
            instances,
            membership: full_membership(),
            queue_cap: 0,
        });
        let out = run_bundle(&g, spec);
        for i in 0..10u32 {
            assert_eq!(out.instance_nodes(i).len(), 20, "instance {i} spans");
        }
        assert!(out.max_queue >= 9, "hub must have queued");
        // Per-edge congestion: each of 10 instances crosses each edge at
        // most twice (token + child ack + fanout token).
        assert!(out.stats.max_edge_messages() <= 3 * 10);
    }

    #[test]
    fn random_delays_reduce_peak_queue() {
        let g = lcs_graph::generators::star(30);
        let mk = |delays: bool| {
            let instances: Vec<MultiBfsInstance> = (1..=15)
                .map(|i| MultiBfsInstance {
                    root: i as NodeId,
                    start_round: if delays { (i as u64 * 7) % 15 } else { 0 },
                    depth_limit: 3,
                })
                .collect();
            Arc::new(MultiBfsSpec {
                instances,
                membership: full_membership(),
                queue_cap: 0,
            })
        };
        let bunched = run_bundle(&g, mk(false));
        let spread = run_bundle(&g, mk(true));
        assert!(
            spread.max_queue < bunched.max_queue,
            "delays {} should beat bunched {}",
            spread.max_queue,
            bunched.max_queue
        );
    }

    #[test]
    fn queue_cap_drops_and_flags() {
        let g = lcs_graph::generators::star(12);
        let instances: Vec<MultiBfsInstance> = (1..=8)
            .map(|i| MultiBfsInstance {
                root: i as NodeId,
                start_round: 0,
                depth_limit: 4,
            })
            .collect();
        let spec = Arc::new(MultiBfsSpec {
            instances,
            membership: full_membership(),
            queue_cap: 2,
        });
        let out = run_bundle(&g, spec);
        assert!(out.overflowed);
        // Some instance failed to span.
        let spanned = (0..8u32)
            .filter(|&i| out.instance_nodes(i).len() == 12)
            .count();
        assert!(spanned < 8);
    }

    #[test]
    fn children_acks_match_parents() {
        let g = lcs_graph::generators::grid(4, 4);
        let spec = Arc::new(MultiBfsSpec {
            instances: vec![MultiBfsInstance {
                root: 5,
                start_round: 2,
                depth_limit: 50,
            }],
            membership: full_membership(),
            queue_cap: 0,
        });
        let out = run_bundle(&g, spec);
        for v in g.nodes() {
            if let Some(r) = out.reached[v as usize][0] {
                if let Some(p) = r.parent {
                    assert!(out.children[p as usize][0].contains(&v));
                }
            }
        }
    }
}
