//! Node-program interface: the [`NodeAlgorithm`] trait, the [`Wake`]
//! quiescence signal, and the per-round context handed to node programs.

use crate::error::SimError;
use crate::message::Message;
use crate::sim::WakeCell;
use lcs_graph::{Graph, NodeId};
use rand_chacha::ChaCha8Rng;

/// A node's scheduling request for the next round, reported by
/// [`NodeAlgorithm::wake`] / [`Protocol::wake`](crate::Protocol::wake)
/// after each executed round.
///
/// The engine is **event-driven**: a node's `round` hook runs only when
/// the node is *active* — the phase just started (round 0), mail
/// arrived this round, or the node requested [`Wake::Stay`] after its
/// previous round. A [`Wake::Sleep`] node is quiescent: it is not
/// invoked again until a message arrives (which re-activates it), so a
/// round costs `O(active nodes + delivered messages)` rather than
/// `O(n)`, and the run ends when no node stays awake and no messages
/// are in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wake {
    /// Run this node next round even if no mail arrives (the node has
    /// pending time-driven work: queued sends, a scheduled activation,
    /// a countdown).
    Stay,
    /// Do not invoke this node again until a message arrives. Sleeping
    /// is a promise: invoking the hook with an empty inbox would have
    /// been a no-op (no state change, no sends, no RNG draws).
    Sleep,
}

/// A distributed algorithm, as seen by one node.
///
/// The simulator owns one value of the implementing type per node and
/// drives all of them through synchronous rounds. A node sees only what
/// the CONGEST model allows: its own id and degree, its adjacency, the
/// messages that arrived this round, a private RNG, and (optionally) a
/// short shared-randomness string.
pub trait NodeAlgorithm {
    /// The message type exchanged by this algorithm.
    type Msg: Message;

    /// Executes one synchronous round. At round 0 the inbox is empty;
    /// from round `r ≥ 1` the inbox holds exactly the messages sent to
    /// this node at round `r − 1`. The engine only invokes this hook
    /// while the node is active (see [`Wake`]): round 0, rounds with
    /// incoming mail, and rounds following a [`Wake::Stay`] request.
    fn round(&mut self, ctx: &mut RoundCtx<'_, Self::Msg>);

    /// Whether this node has (tentatively) finished. The run ends when
    /// every node is quiescent **and** no messages are in flight; a
    /// quiescent node is re-activated (and may un-halt) when messages
    /// arrive.
    fn halted(&self) -> bool;

    /// The quiescence contract: after each executed round the engine
    /// asks whether to keep the node scheduled ([`Wake::Stay`]) or let
    /// it sleep until mail arrives ([`Wake::Sleep`]).
    ///
    /// The default derives the signal from [`NodeAlgorithm::halted`]:
    /// a halted node sleeps, a non-halted node stays awake. That is
    /// correct for every protocol whose `round` hook is a no-op when
    /// the node is halted and the inbox is empty — which the old
    /// poll-every-round engine already required for termination.
    /// Override it only when halting and scheduling diverge (e.g. a
    /// node that is "done" but must act again at a known later round
    /// must `Stay`, because a sleeping node is *not* invoked again
    /// without mail).
    fn wake(&self) -> Wake {
        if self.halted() {
            Wake::Sleep
        } else {
            Wake::Stay
        }
    }
}

/// The engine-side effects of a *wire* send: the receiver's mail flag
/// plus its activation for the next round's active set — either a
/// direct push into the sending shard's own next-active list or a
/// cross-shard wake enqueued for the destination shard to drain.
/// Capture contexts (the [`Join`](crate::Join) combinator) omit this:
/// their sends land in local queues and only touch the wire — and thus
/// the schedule — when really sent later.
pub(crate) struct WireFx<'a> {
    /// Per-node "has mail next round" flags (shared across shards; a
    /// relaxed store is enough, the round barrier orders it).
    pub(crate) mail: &'a [std::sync::atomic::AtomicBool],
    /// The sending shard's next-round active list.
    pub(crate) next_active: &'a mut Vec<u32>,
    /// Membership bitmap for `next_active`, indexed by
    /// `node - node_lo` (dedups insertions).
    pub(crate) in_set: &'a mut [bool],
    /// The sending shard's own node span.
    pub(crate) node_lo: u32,
    /// One past the sending shard's own node span.
    pub(crate) node_hi: u32,
    /// Shard start boundaries (one per shard), mapping a remote
    /// destination node to its shard.
    pub(crate) bounds: &'a [u32],
    /// This shard's row of cross-shard wake queues for the current
    /// round's parity, indexed by destination shard.
    pub(crate) wake_row: &'a [WakeCell],
}

impl WireFx<'_> {
    /// Records that `to` has mail next round and must therefore run:
    /// sets its mail flag and activates it (locally for an own-shard
    /// destination, via the parity wake queue for a remote one).
    #[inline]
    pub(crate) fn notify(&mut self, to: NodeId) {
        let flag = &self.mail[to as usize];
        if flag.load(std::sync::atomic::Ordering::Relaxed) {
            // Somebody already notified `to` this round, so a wake for
            // it is already enqueued (flags are consumed by the woken
            // node, so a set flag can only mean an earlier send of this
            // same round). Saturated senders hit this early exit on
            // every repeat target. Two shards racing on a first notify
            // may both enqueue; the drain dedups.
            return;
        }
        flag.store(true, std::sync::atomic::Ordering::Relaxed);
        if to >= self.node_lo && to < self.node_hi {
            crate::sim::activate(self.next_active, self.in_set, self.node_lo, to);
        } else {
            let dest = self.bounds.partition_point(|&lo| lo <= to) - 1;
            // SAFETY: queue `(parity, sender, dest)` is written only by
            // the sending shard during send phases of this parity, and
            // read (drained) only by the destination shard during send
            // phases of the opposite parity; the pool's barriers order
            // the phases (see the engine module docs).
            unsafe { (*self.wake_row[dest].0.get()).push(to) };
        }
    }
}

/// The send-side of a [`RoundCtx`]: this node's outgoing arc-indexed
/// mailbox slots plus the statistics and violation sinks the engine
/// threads through. A send is a direct slot write; the parallel
/// occupancy byte *is* the one-message-per-neighbor-per-round
/// discipline. Payloads are stored flat (`MaybeUninit<M>`, no `Option`
/// discriminant), so a mailbox buffer is exactly `num_arcs *
/// size_of::<M>()` bytes and a send never rewrites a discriminant.
pub(crate) struct TxState<'a, M> {
    /// This node's payload slots in the next-round mailbox array, one
    /// per neighbor, in neighbor (arc) order. A slot holds a live `M`
    /// iff the matching `occ` byte is set.
    pub(crate) slots: &'a mut [std::mem::MaybeUninit<M>],
    /// Occupancy bytes parallel to `slots`.
    pub(crate) occ: &'a mut [bool],
    /// Sorted neighbor list, parallel to `slots`.
    pub(crate) heads: &'a [NodeId],
    /// Global arc index of `slots[0]`.
    pub(crate) arc_base: u32,
    /// Wire effects of a send (mail flag + receiver activation); `None`
    /// for capture contexts, whose sends are queued, not wired.
    pub(crate) wire: Option<WireFx<'a>>,
    /// Global indices of slots written this round (the in-flight list).
    pub(crate) dirty: &'a mut Vec<u32>,
    /// Shard-accumulated message count.
    pub(crate) messages: &'a mut u64,
    /// Shard-accumulated word count.
    pub(crate) words: &'a mut u64,
    /// This node's per-arc message counts (parallel to `slots`; folded
    /// into per-edge stats at the end of the run).
    pub(crate) per_arc: &'a mut [u32],
    /// First model violation observed this round, if any.
    pub(crate) violation: &'a mut Option<SimError>,
    /// Per-message size cap in words.
    pub(crate) bandwidth: u32,
}

/// Per-round view and send interface for one node.
pub struct RoundCtx<'a, M> {
    pub(crate) node: NodeId,
    pub(crate) round: u64,
    pub(crate) graph: &'a Graph,
    pub(crate) inbox: &'a [(NodeId, M)],
    pub(crate) rng: &'a mut ChaCha8Rng,
    pub(crate) shared: &'a [u64],
    pub(crate) tx: TxState<'a, M>,
}

impl<'a, M> std::fmt::Debug for RoundCtx<'a, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoundCtx")
            .field("node", &self.node)
            .field("round", &self.round)
            .field("inbox_len", &self.inbox.len())
            .finish()
    }
}

impl<'a, M: Message> RoundCtx<'a, M> {
    /// This node's id.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current round number (0-based).
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of nodes in the network. Knowing `n` is a standard
    /// CONGEST assumption (and the paper's algorithm re-derives it with
    /// a BFS anyway).
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Degree of this node.
    #[inline]
    pub fn degree(&self) -> usize {
        self.tx.heads.len()
    }

    /// Sorted neighbor list of this node.
    #[inline]
    pub fn neighbors(&self) -> &'a [NodeId] {
        self.tx.heads
    }

    /// Messages delivered this round, as `(sender, message)` pairs,
    /// sorted by sender id.
    #[inline]
    pub fn inbox(&self) -> &'a [(NodeId, M)] {
        self.inbox
    }

    /// Index of `w` in this node's sorted neighbor list, if adjacent.
    /// Small lists are scanned (branch-predictable), larger ones binary
    /// searched.
    #[inline]
    pub fn neighbor_index(&self, w: NodeId) -> Option<usize> {
        let heads = self.tx.heads;
        if heads.len() <= 8 {
            heads.iter().position(|&x| x == w)
        } else {
            heads.binary_search(&w).ok()
        }
    }

    /// Resolves a tree position (parent and children node ids) into
    /// neighbor indices for [`RoundCtx::send_nth`]. Tree protocols call
    /// this once on their first round and send by index thereafter.
    ///
    /// A parent or child that is not actually a neighbor (a malformed
    /// tree) records an
    /// [`InvalidDestination`](crate::SimError::InvalidDestination)
    /// violation — the run aborts with that error and every later send
    /// this round is ignored, exactly as if the node had sent to the
    /// non-neighbor directly. The returned placeholder index is never
    /// dereferenced in that case.
    pub fn tree_indices(
        &mut self,
        parent: Option<NodeId>,
        children: &[NodeId],
    ) -> (Option<usize>, Vec<usize>) {
        let mut resolve = |w: NodeId| {
            self.neighbor_index(w).unwrap_or_else(|| {
                if self.tx.violation.is_none() {
                    *self.tx.violation = Some(SimError::InvalidDestination {
                        from: self.node,
                        to: w,
                        round: self.round,
                    });
                }
                0
            })
        };
        (
            parent.map(&mut resolve),
            children.iter().map(|&c| resolve(c)).collect(),
        )
    }

    /// Queues a message to a neighbor. Model compliance (adjacency, one
    /// message per edge direction per round, bandwidth) is checked at
    /// send time; the first violation aborts the run with a
    /// [`SimError`] when the round ends.
    #[inline]
    pub fn send(&mut self, to: NodeId, msg: M) {
        match self.neighbor_index(to) {
            Some(i) => self.send_nth(i, msg),
            None => {
                if self.tx.violation.is_none() {
                    *self.tx.violation = Some(SimError::InvalidDestination {
                        from: self.node,
                        to,
                        round: self.round,
                    });
                }
            }
        }
    }

    /// Zero-lookup fast path of [`RoundCtx::send`]: sends to the
    /// `i`-th neighbor (the neighbor at `self.neighbors()[i]`). Hot
    /// senders that already iterate neighbors by index should use this —
    /// delivery is a single mailbox-slot write with no adjacency lookup.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.degree()` (a programmer error, unlike the
    /// model violations, which are reported as [`SimError`]s).
    ///
    /// [`SimError`]: crate::SimError
    #[inline]
    pub fn send_nth(&mut self, i: usize, msg: M) {
        if self.tx.violation.is_some() {
            return; // the run is already doomed; preserve the first error
        }
        let to = self.tx.heads[i];
        let words = msg.size_words();
        if words > self.tx.bandwidth {
            *self.tx.violation = Some(SimError::MessageTooLarge {
                words,
                cap: self.tx.bandwidth,
                round: self.round,
            });
            return;
        }
        // `slots`, `occ`, and `per_arc` are all views of this node's arc
        // range, the same length as `heads` — the successful `heads[i]`
        // index above already proved `i` in bounds for all of them.
        debug_assert_eq!(self.tx.slots.len(), self.tx.heads.len());
        debug_assert_eq!(self.tx.occ.len(), self.tx.heads.len());
        debug_assert_eq!(self.tx.per_arc.len(), self.tx.heads.len());
        // SAFETY: `i < heads.len()` (checked above) and the parallel
        // views share that length.
        unsafe {
            let occ = self.tx.occ.get_unchecked_mut(i);
            if *occ {
                *self.tx.violation = Some(SimError::ChannelOverflow {
                    from: self.node,
                    to,
                    round: self.round,
                });
                return;
            }
            *occ = true;
            self.tx.slots.get_unchecked_mut(i).write(msg);
        }
        if let Some(wire) = &mut self.tx.wire {
            wire.notify(to);
        }
        self.tx.dirty.push(self.tx.arc_base + i as u32);
        *self.tx.messages += 1;
        *self.tx.words += u64::from(words);
        // SAFETY: same length argument as above.
        unsafe {
            let c = self.tx.per_arc.get_unchecked_mut(i);
            *c = c.saturating_add(1);
        };
    }

    /// This node's private RNG (deterministically seeded from the run
    /// seed and the node id).
    #[inline]
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        self.rng
    }

    /// Shared randomness visible to all nodes. The paper's scheduler
    /// (Ghaffari'15) uses `O(log² n)` shared random bits, which can be
    /// disseminated in `O(D + log n)` rounds; the simulator exposes them
    /// directly and the round accounting adds that dissemination cost
    /// explicitly where relevant.
    #[inline]
    pub fn shared_randomness(&self) -> &'a [u64] {
        self.shared
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{run, SimConfig};
    use crate::SimError;

    /// Probes `neighbor_index` / `tree_indices` from inside a real
    /// round and records what it saw (these helpers were previously
    /// only exercised indirectly through the tree protocols).
    #[derive(Debug, Default)]
    struct Probe {
        /// `(query, answer)` pairs from `neighbor_index`.
        lookups: Vec<(NodeId, Option<usize>)>,
        /// Result of a `tree_indices` call, when configured.
        tree: Option<(Option<usize>, Vec<usize>)>,
        /// Inputs for the `tree_indices` call.
        parent: Option<NodeId>,
        children: Vec<NodeId>,
        probe_tree: bool,
    }

    impl NodeAlgorithm for Probe {
        type Msg = u32;
        fn round(&mut self, ctx: &mut RoundCtx<'_, u32>) {
            if ctx.round() > 0 {
                return;
            }
            // Query every node in the graph plus one out-of-range id.
            for w in 0..ctx.n() as NodeId {
                self.lookups.push((w, ctx.neighbor_index(w)));
            }
            let ghost = ctx.n() as NodeId + 7;
            self.lookups.push((ghost, ctx.neighbor_index(ghost)));
            if self.probe_tree {
                self.tree = Some(ctx.tree_indices(self.parent, &self.children));
            }
        }
        fn halted(&self) -> bool {
            true
        }
    }

    fn probe_graph(g: &lcs_graph::Graph, configure: impl Fn(usize, &mut Probe)) -> Vec<Probe> {
        let nodes = (0..g.n())
            .map(|v| {
                let mut p = Probe::default();
                configure(v, &mut p);
                p
            })
            .collect();
        run(g, nodes, &SimConfig::default()).unwrap().nodes
    }

    #[test]
    fn neighbor_index_on_leaf_root_and_nonexistent_neighbor() {
        // Path 0-1-2: node 0 and 2 are leaves, 1 is internal.
        let g = lcs_graph::generators::path(3);
        let out = probe_graph(&g, |_, _| {});
        // Leaf 0: only neighbor is 1, at index 0; itself and 2 are not
        // neighbors; out-of-range ids resolve to None, never panic.
        assert_eq!(
            out[0].lookups,
            vec![(0, None), (1, Some(0)), (2, None), (10, None)]
        );
        // Internal node 1: sorted adjacency [0, 2].
        assert_eq!(
            out[1].lookups,
            vec![(0, Some(0)), (1, None), (2, Some(1)), (10, None)]
        );
        // Leaf 2 mirrors leaf 0.
        assert_eq!(
            out[2].lookups,
            vec![(0, None), (1, Some(0)), (2, None), (10, None)]
        );
    }

    #[test]
    fn neighbor_index_is_duplicate_free_and_consistent_on_high_degree() {
        // Star hub has degree 16 > 8, exercising the binary-search arm;
        // the leaves exercise the linear-scan arm.
        let g = lcs_graph::generators::star(17);
        let out = probe_graph(&g, |_, _| {});
        let hub = &out[0];
        let hits: Vec<usize> = hub.lookups.iter().filter_map(|&(_, i)| i).collect();
        // Every neighbor resolves, indices are exactly 0..degree with
        // no duplicates (sorted adjacency), self/ghost miss.
        assert_eq!(hits, (0..16).collect::<Vec<_>>());
        assert_eq!(hub.lookups[0], (0, None), "self is not a neighbor");
        assert_eq!(hub.lookups.last().unwrap().1, None, "ghost id misses");
        for leaf in &out[1..] {
            let hits: Vec<(NodeId, usize)> = leaf
                .lookups
                .iter()
                .filter_map(|&(w, i)| i.map(|i| (w, i)))
                .collect();
            assert_eq!(hits, vec![(0, 0)], "leaves see only the hub");
        }
    }

    #[test]
    fn tree_indices_on_root_internal_and_leaf_positions() {
        // Path 0-1-2-3 as a tree rooted at 0.
        let g = lcs_graph::generators::path(4);
        let out = probe_graph(&g, |v, p| {
            p.probe_tree = true;
            p.parent = (v > 0).then(|| v as NodeId - 1);
            p.children = if v < 3 { vec![v as NodeId + 1] } else { vec![] };
        });
        // Root: no parent, child 1 at neighbor index 0.
        assert_eq!(out[0].tree, Some((None, vec![0])));
        // Internal: parent 0 at index 0, child 2 at index 1.
        assert_eq!(out[1].tree, Some((Some(0), vec![1])));
        // Leaf: parent at index 0, no children.
        assert_eq!(out[3].tree, Some((Some(0), vec![])));
    }

    #[test]
    fn tree_indices_with_no_position_is_empty() {
        let g = lcs_graph::generators::path(2);
        let out = probe_graph(&g, |_, p| p.probe_tree = true);
        assert_eq!(out[0].tree, Some((None, vec![])));
    }

    #[test]
    fn tree_indices_nonexistent_child_aborts_with_invalid_destination() {
        let g = lcs_graph::generators::path(3);
        let nodes = (0..3)
            .map(|v| Probe {
                probe_tree: v == 0,
                children: if v == 0 { vec![2] } else { vec![] }, // 2 is not adjacent to 0
                ..Probe::default()
            })
            .collect();
        let err = run(&g, nodes, &SimConfig::default()).unwrap_err();
        assert_eq!(
            err,
            SimError::InvalidDestination {
                from: 0,
                to: 2,
                round: 0
            }
        );
    }

    #[test]
    fn tree_indices_nonexistent_parent_aborts_with_invalid_destination() {
        let g = lcs_graph::generators::path(3);
        let nodes = (0..3)
            .map(|v| Probe {
                probe_tree: v == 2,
                parent: (v == 2).then_some(0), // 0 is not adjacent to 2
                ..Probe::default()
            })
            .collect();
        let err = run(&g, nodes, &SimConfig::default()).unwrap_err();
        assert_eq!(
            err,
            SimError::InvalidDestination {
                from: 2,
                to: 0,
                round: 0
            }
        );
    }
}
