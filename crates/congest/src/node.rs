//! Node-program interface: the [`NodeAlgorithm`] trait and the per-round
//! context handed to it.

use crate::message::Message;
use lcs_graph::{Graph, NodeId};
use rand_chacha::ChaCha8Rng;

/// A distributed algorithm, as seen by one node.
///
/// The simulator owns one value of the implementing type per node and
/// drives all of them through synchronous rounds. A node sees only what
/// the CONGEST model allows: its own id and degree, its adjacency, the
/// messages that arrived this round, a private RNG, and (optionally) a
/// short shared-randomness string.
pub trait NodeAlgorithm {
    /// The message type exchanged by this algorithm.
    type Msg: Message;

    /// Executes one synchronous round. At round 0 the inbox is empty;
    /// from round `r ≥ 1` the inbox holds exactly the messages sent to
    /// this node at round `r − 1`.
    fn round(&mut self, ctx: &mut RoundCtx<'_, Self::Msg>);

    /// Whether this node has (tentatively) finished. The run ends when
    /// every node is halted **and** no messages are in flight; a halted
    /// node is still invoked each round and may un-halt when messages
    /// arrive.
    fn halted(&self) -> bool;
}

/// Per-round view and send interface for one node.
pub struct RoundCtx<'a, M> {
    pub(crate) node: NodeId,
    pub(crate) round: u64,
    pub(crate) graph: &'a Graph,
    pub(crate) inbox: &'a [(NodeId, M)],
    pub(crate) outbox: &'a mut Vec<(NodeId, M)>,
    pub(crate) rng: &'a mut ChaCha8Rng,
    pub(crate) shared: &'a [u64],
}

impl<'a, M> std::fmt::Debug for RoundCtx<'a, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RoundCtx")
            .field("node", &self.node)
            .field("round", &self.round)
            .field("inbox_len", &self.inbox.len())
            .finish()
    }
}

impl<'a, M> RoundCtx<'a, M> {
    /// This node's id.
    #[inline]
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Current round number (0-based).
    #[inline]
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Number of nodes in the network. Knowing `n` is a standard
    /// CONGEST assumption (and the paper's algorithm re-derives it with
    /// a BFS anyway).
    #[inline]
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Degree of this node.
    #[inline]
    pub fn degree(&self) -> usize {
        self.graph.degree(self.node)
    }

    /// Sorted neighbor list of this node.
    #[inline]
    pub fn neighbors(&self) -> &'a [NodeId] {
        self.graph.neighbors(self.node)
    }

    /// Messages delivered this round, as `(sender, message)` pairs.
    #[inline]
    pub fn inbox(&self) -> &'a [(NodeId, M)] {
        self.inbox
    }

    /// Queues a message to a neighbor. Model compliance (adjacency, one
    /// message per edge direction per round, bandwidth) is checked by
    /// the simulator when the round ends; violations abort the run with
    /// a [`SimError`](crate::SimError).
    #[inline]
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.outbox.push((to, msg));
    }

    /// This node's private RNG (deterministically seeded from the run
    /// seed and the node id).
    #[inline]
    pub fn rng(&mut self) -> &mut ChaCha8Rng {
        self.rng
    }

    /// Shared randomness visible to all nodes. The paper's scheduler
    /// (Ghaffari'15) uses `O(log² n)` shared random bits, which can be
    /// disseminated in `O(D + log n)` rounds; the simulator exposes them
    /// directly and the round accounting adds that dissemination cost
    /// explicitly where relevant.
    #[inline]
    pub fn shared_randomness(&self) -> &'a [u64] {
        self.shared
    }
}
