//! Persistent, barrier-synchronized worker pool for round-based
//! execution.
//!
//! [`run_rounds`] spawns one scoped thread per worker state **once**,
//! then drives all of them through synchronous rounds with a reusable
//! two-phase barrier — replacing the engine's previous per-round
//! [`std::thread::scope`] spawn, whose thread create/join cost dominated
//! sharded rounds at simulator scale (~1.2× at 4 shards where the work
//! itself parallelizes cleanly).
//!
//! # Round protocol
//!
//! Each round is two barrier phases:
//!
//! 1. **Send phase** — the coordinator publishes the round number and
//!    releases the *start* barrier; every worker runs `step` on its own
//!    state and posts a report, then arrives at the *done* barrier.
//! 2. **Deliver phase** — crossing the *done* barrier makes all of the
//!    round's effects (mailbox writes, reports) visible to the
//!    coordinator, which aggregates the reports and decides via
//!    `control` whether to run another round. Workers park at the
//!    *start* barrier until that decision.
//!
//! The two `std::sync::Barrier`s are reused for every round, so the
//! steady-state cost of a round is two barrier crossings per thread —
//! no thread creation, no channel allocation.
//!
//! # Panic safety
//!
//! A `step` that panics is caught in the worker (the worker still
//! arrives at both barriers, so no other participant can deadlock); its
//! payload is delivered to `control` as that worker's
//! [`Err`](std::thread::Result) entry, **in worker order alongside the
//! other reports** — so the coordinator can resolve a panic against
//! other same-round events exactly as a sequential execution would
//! (e.g. the simulator lets a model violation in a lower shard win over
//! a panic in a higher one, because the sequential engine would have
//! hit the violation first and never run the panicking node).
//! Returning [`Control::Abort`] shuts the pool down and re-raises the
//! payload on the calling thread. A panicking `control` closure
//! likewise shuts the pool down before propagating.
//!
//! # Determinism
//!
//! Results are handed to `control` in worker-index order regardless of
//! thread scheduling, and `step` receives disjoint `&mut` state, so any
//! reduction over the results that is order-independent — or that
//! explicitly resolves ties by worker index, as the simulator's
//! violation handling does — is bit-identical to a sequential
//! execution.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};

/// The coordinator's per-round decision, returned by the `control`
/// closure of [`run_rounds`].
pub enum Control<T> {
    /// Run another round (subject to the round limit).
    Continue,
    /// Stop the pool and make [`run_rounds`] return `Some(T)`.
    Stop(T),
    /// Stop the pool and re-raise this panic payload on the calling
    /// thread (the usual disposition for a worker's `Err` result).
    Abort(Box<dyn std::any::Any + Send>),
}

/// Shared coordinator/worker rendezvous state.
struct RoundSync {
    /// Released by the coordinator to start a round (or to shut down).
    start: Barrier,
    /// Crossed by everyone once a round's `step`s have completed.
    done: Barrier,
    /// Round number for the phase being started. Relaxed accesses are
    /// sufficient: every load/store is separated by a barrier crossing,
    /// which provides the happens-before edge.
    round: AtomicU64,
    /// Shutdown flag, read by workers right after the start barrier.
    stop: AtomicBool,
}

/// Runs up to `max_rounds` synchronous rounds over `states`, one
/// persistent worker thread per state (none at all for a single state —
/// the sequential fast path executes inline with identical semantics,
/// where a panicking `step` simply propagates).
///
/// Per round, every worker executes `step(worker_index, &mut state,
/// round)` concurrently; the per-worker results — `Ok(report)` or
/// `Err(panic_payload)` — are then passed, in worker order, to
/// `control(round, results)`, which decides whether to continue. A
/// worker whose `step` panicked keeps participating in later rounds
/// (its state may be logically inconsistent; callers that cannot
/// tolerate that should return [`Control::Abort`], as the simulator
/// does).
///
/// Returns the final states plus `Some(value)` from [`Control::Stop`],
/// or `None` if `max_rounds` elapsed without a stop.
///
/// # Panics
///
/// Re-raises the payload of [`Control::Abort`], or a panic of `control`
/// itself, after shutting down the pool — never deadlocks on a
/// panicking round.
pub fn run_rounds<S, R, T, Step, Ctl>(
    mut states: Vec<S>,
    max_rounds: u64,
    step: Step,
    mut control: Ctl,
) -> (Vec<S>, Option<T>)
where
    S: Send,
    R: Send,
    Step: Fn(usize, &mut S, u64) -> R + Sync,
    Ctl: FnMut(u64, Vec<std::thread::Result<R>>) -> Control<T>,
{
    assert!(!states.is_empty(), "pool needs at least one worker state");
    if states.len() == 1 {
        // Sequential fast path: no threads, no barriers, same protocol.
        for round in 0..max_rounds {
            let report = step(0, &mut states[0], round);
            match control(round, vec![Ok(report)]) {
                Control::Continue => {}
                Control::Stop(t) => return (states, Some(t)),
                Control::Abort(payload) => resume_unwind(payload),
            }
        }
        return (states, None);
    }

    let workers = states.len();
    let sync = RoundSync {
        start: Barrier::new(workers + 1),
        done: Barrier::new(workers + 1),
        round: AtomicU64::new(0),
        stop: AtomicBool::new(false),
    };
    // One report slot per worker; uncontended Mutexes (each slot is
    // touched by exactly one worker and the coordinator, in different
    // phases).
    let slots: Vec<Mutex<Option<std::thread::Result<R>>>> =
        (0..workers).map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for (index, mut state) in states.drain(..).enumerate() {
            let sync = &sync;
            let step = &step;
            let slot = &slots[index];
            handles.push(scope.spawn(move || loop {
                sync.start.wait();
                if sync.stop.load(Ordering::Relaxed) {
                    return state;
                }
                let round = sync.round.load(Ordering::Relaxed);
                let report = catch_unwind(AssertUnwindSafe(|| step(index, &mut state, round)));
                *slot.lock().expect("report slot") = Some(report);
                sync.done.wait();
            }));
        }

        let mut outcome: Option<T> = None;
        let mut fatal: Option<Box<dyn std::any::Any + Send>> = None;
        'rounds: for round in 0..max_rounds {
            sync.round.store(round, Ordering::Relaxed);
            sync.start.wait(); // send phase begins
            sync.done.wait(); // all steps done, all effects visible
            let results: Vec<std::thread::Result<R>> = slots
                .iter()
                .map(|slot| {
                    slot.lock()
                        .expect("report slot")
                        .take()
                        .expect("every worker posts a result per round")
                })
                .collect();
            match catch_unwind(AssertUnwindSafe(|| control(round, results))) {
                Ok(Control::Continue) => {}
                Ok(Control::Stop(t)) => {
                    outcome = Some(t);
                    break 'rounds;
                }
                Ok(Control::Abort(payload)) | Err(payload) => {
                    fatal = Some(payload);
                    break 'rounds;
                }
            }
        }

        // Shutdown: release the workers one last time with the stop
        // flag raised, collect their states back in worker order.
        sync.stop.store(true, Ordering::Relaxed);
        sync.start.wait();
        let final_states: Vec<S> = handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(state) => state,
                Err(payload) => resume_unwind(payload),
            })
            .collect();
        if let Some(payload) = fatal {
            resume_unwind(payload);
        }
        (final_states, outcome)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unwraps per-worker results for controls that expect no panics.
    fn oks<R>(results: Vec<std::thread::Result<R>>) -> Vec<R> {
        results
            .into_iter()
            .map(|r| r.expect("no worker panic expected"))
            .collect()
    }

    /// The default panic disposition: abort on the first (lowest worker
    /// index) panic, otherwise hand back the reports.
    fn reports_or_abort<R, T>(results: Vec<std::thread::Result<R>>) -> Result<Vec<R>, Control<T>> {
        let mut reports = Vec::with_capacity(results.len());
        for result in results {
            match result {
                Ok(report) => reports.push(report),
                Err(payload) => return Err(Control::Abort(payload)),
            }
        }
        Ok(reports)
    }

    /// Each worker folds `worker_index * round` into its accumulator:
    /// a deterministic quantity to compare across worker counts.
    fn accumulate(workers: usize, rounds: u64) -> (Vec<u64>, Option<u64>) {
        let states = vec![0u64; workers];
        let (states, out) = run_rounds(
            states,
            rounds,
            |i, acc, round| {
                *acc += (i as u64 + 1) * (round + 1);
                *acc
            },
            |_round, _results| Control::<u64>::Continue,
        );
        (states, out)
    }

    #[test]
    fn pooled_matches_sequential_and_reuses_barriers_across_many_rounds() {
        // 200 rounds through the same barrier pair: reuse must be sound.
        let (seq, seq_out) = accumulate(1, 200);
        assert_eq!(seq_out, None);
        assert_eq!(seq[0], (1..=200u64).sum::<u64>());
        let (par, par_out) = accumulate(4, 200);
        assert_eq!(par_out, None);
        for (i, acc) in par.iter().enumerate() {
            assert_eq!(*acc, (i as u64 + 1) * (1..=200u64).sum::<u64>());
        }
    }

    #[test]
    fn stop_value_is_returned_and_states_come_back_in_worker_order() {
        let states: Vec<u64> = (0..5).collect();
        let (states, out) = run_rounds(
            states,
            1000,
            |_i, s, _round| {
                *s += 10;
                *s
            },
            |round, results| {
                // Results arrive in worker order regardless of timing.
                let reports = oks(results);
                for w in reports.windows(2) {
                    assert!(w[0] < w[1], "reports out of worker order");
                }
                if round == 2 {
                    Control::Stop(reports[0])
                } else {
                    Control::Continue
                }
            },
        );
        assert_eq!(out, Some(30));
        assert_eq!(states, vec![30, 31, 32, 33, 34]);
    }

    #[test]
    fn round_limit_yields_none() {
        let (states, out) = run_rounds(
            vec![(); 3],
            7,
            |_i, _s, round| round,
            |_round, _results| Control::<()>::Continue,
        );
        assert_eq!(states.len(), 3);
        assert_eq!(out, None);
    }

    #[test]
    fn zero_rounds_never_invokes_step() {
        let (states, out) = run_rounds(
            vec![0u32; 4],
            0,
            |_i, _s, _round| panic!("step must not run"),
            |_round, _results: Vec<std::thread::Result<()>>| Control::<()>::Continue,
        );
        assert_eq!(states, vec![0; 4]);
        assert_eq!(out, None);
    }

    #[test]
    fn worker_panic_propagates_without_deadlocking_the_barrier() {
        let result = std::panic::catch_unwind(|| {
            run_rounds(
                vec![0u64; 3],
                1000,
                |i, s, round| {
                    if i == 1 && round == 2 {
                        panic!("injected worker panic");
                    }
                    *s += 1;
                },
                |_round, results| match reports_or_abort::<_, ()>(results) {
                    Ok(_) => Control::Continue,
                    Err(abort) => abort,
                },
            )
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("injected worker panic"), "payload: {msg}");
    }

    #[test]
    fn lowest_worker_panic_wins_when_several_fire() {
        let result = std::panic::catch_unwind(|| {
            run_rounds(
                vec![(); 4],
                10,
                |i, _s, _round| panic!("worker {i} panicked"),
                |_round, results| match reports_or_abort::<(), ()>(results) {
                    Ok(_) => Control::Continue,
                    Err(abort) => abort,
                },
            )
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(msg, "worker 0 panicked");
    }

    /// The reason results (not just reports) go to `control`: a
    /// same-round event in a *lower* worker can outrank a panic in a
    /// higher one, exactly as a sequential scan of the workers' nodes
    /// would have encountered it first.
    #[test]
    fn control_can_let_a_lower_workers_report_outrank_a_higher_panic() {
        let (_, out) = run_rounds(
            vec![(); 3],
            10,
            |i, _s, _round| {
                if i == 2 {
                    panic!("higher worker panics");
                }
                i
            },
            |_round, results| {
                for result in results {
                    match result {
                        Ok(0) => return Control::Stop("worker 0 event wins"),
                        Ok(_) => {}
                        Err(payload) => return Control::Abort(payload),
                    }
                }
                Control::Continue
            },
        );
        assert_eq!(out, Some("worker 0 event wins"));
    }

    #[test]
    fn control_panic_shuts_the_pool_down_cleanly() {
        let result = std::panic::catch_unwind(|| {
            run_rounds(
                vec![0u8; 2],
                10,
                |_i, _s, _round| (),
                |round, _results| -> Control<()> {
                    if round == 1 {
                        panic!("control blew up");
                    }
                    Control::Continue
                },
            )
        });
        assert!(result.is_err());
    }
}
