//! Persistent, barrier-synchronized worker pool for round-based
//! execution.
//!
//! A [`Pool`] spawns one thread per worker **once** and then drives any
//! number of *phases* over them — each phase being a round-synchronous
//! computation in the style of [`run_rounds`]. Phases are type-erased:
//! the pool's threads outlive any single phase's state type, which is
//! what lets a [`Session`](crate::Session) run a multi-protocol
//! pipeline (BFS, then aggregation, then multi-BFS, …) with exactly one
//! pool spawn. The free function [`run_rounds`] remains as the
//! single-phase convenience (spawn, run, tear down).
//!
//! # Round protocol
//!
//! Each round is two barrier phases:
//!
//! 1. **Send phase** — the coordinator publishes the round number and
//!    releases the *start* barrier; every worker runs the installed job
//!    on its own state and posts a report, then arrives at the *done*
//!    barrier.
//! 2. **Deliver phase** — crossing the *done* barrier makes all of the
//!    round's effects (mailbox writes, reports) visible to the
//!    coordinator, which aggregates the reports and decides via
//!    `control` whether to run another round. Workers park at the
//!    *start* barrier until that decision.
//!
//! The two [`std::sync::Barrier`]s are reused for every round of every
//! phase, so the steady-state cost of a round is two barrier crossings
//! per thread — no thread creation, no channel allocation, and across
//! phases not even a spawn.
//!
//! # Phase erasure and soundness
//!
//! A phase's per-worker job (step closure, state pointers, report
//! slots) lives on the coordinator's stack for the duration of
//! [`Pool::run_rounds`]; the pool stores only a lifetime-erased
//! `(data pointer, call thunk)` pair. Soundness rests on the phase
//! protocol:
//!
//! * the job is installed before the first *start* release of the phase
//!   and cleared before `run_rounds` returns (a drop guard clears it on
//!   unwind too);
//! * workers dereference the job only between the *start* and *done*
//!   barriers, and `run_rounds` does not return (or unwind past its
//!   frame) until every released worker has re-parked at *start*;
//! * workers check the shutdown flag **before** touching the job slot,
//!   so a pool drop never dereferences a stale phase.
//!
//! # Panic safety
//!
//! A `step` that panics is caught in the worker (the worker still
//! arrives at both barriers, so no other participant can deadlock); its
//! payload is delivered to `control` as that worker's
//! [`Err`](std::thread::Result) entry, **in worker order alongside the
//! other reports** — so the coordinator can resolve a panic against
//! other same-round events exactly as a sequential execution would
//! (e.g. the simulator lets a model violation in a lower shard win over
//! a panic in a higher one, because the sequential engine would have
//! hit the violation first and never run the panicking node).
//! Returning [`Control::Abort`] ends the phase and re-raises the
//! payload on the calling thread; the pool itself stays healthy and can
//! run further phases. A panicking `control` closure likewise
//! propagates after the phase is cleaned up.
//!
//! # Determinism
//!
//! Results are handed to `control` in worker-index order regardless of
//! thread scheduling, and each worker's job accesses disjoint `&mut`
//! state, so any reduction over the results that is order-independent —
//! or that explicitly resolves ties by worker index, as the simulator's
//! violation handling does — is bit-identical to a sequential
//! execution.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::thread::JoinHandle;

/// The coordinator's per-round decision, returned by the `control`
/// closure of [`Pool::run_rounds`].
pub enum Control<T> {
    /// Run another round (subject to the round limit).
    Continue,
    /// Run another round **inline on the coordinator thread**: every
    /// worker's step executes sequentially (in worker order) on the
    /// calling thread, without releasing the barrier. Semantically
    /// identical to [`Control::Continue`] — steps access disjoint state
    /// and the coordinator has exclusive access to all of it between
    /// barrier crossings — but a round whose total work is tiny skips
    /// the two barrier crossings entirely, so near-idle rounds cost
    /// `O(work)` instead of `O(threads)`. On a one-worker pool this is
    /// the same as [`Control::Continue`].
    ContinueInline,
    /// Stop the phase and make [`Pool::run_rounds`] return `Some(T)`.
    Stop(T),
    /// Stop the phase and re-raise this panic payload on the calling
    /// thread (the usual disposition for a worker's `Err` result).
    Abort(Box<dyn std::any::Any + Send>),
}

/// A lifetime-erased per-round job: `call(data, worker, round)` runs
/// one worker's share of one round. The pointee is a closure owned by
/// the coordinator's `run_rounds` frame; see the module docs for the
/// protocol that keeps the pointer valid whenever it is dereferenced.
#[derive(Clone, Copy)]
struct RawJob {
    data: *const (),
    call: unsafe fn(*const (), usize, u64),
}

// SAFETY: `RawJob` is two plain words; the *use* of the pointer is
// governed by the phase protocol (module docs), not by these impls.
unsafe impl Send for RawJob {}
unsafe impl Sync for RawJob {}

unsafe fn call_thunk<F: Fn(usize, u64) + Sync>(data: *const (), worker: usize, round: u64) {
    (*data.cast::<F>())(worker, round)
}

/// Erases a phase job closure to a [`RawJob`] (the only place the
/// closure's concrete type is known).
fn raw_job_of<F: Fn(usize, u64) + Sync>(f: &F) -> RawJob {
    RawJob {
        data: (f as *const F).cast(),
        call: call_thunk::<F>,
    }
}

/// Shared coordinator/worker rendezvous state.
struct Shared {
    /// Released by the coordinator to start a round (or to shut down).
    start: Barrier,
    /// Crossed by everyone once a round's jobs have completed.
    done: Barrier,
    /// Round number for the round being started. Relaxed accesses are
    /// sufficient: every load/store is separated by a barrier crossing,
    /// which provides the happens-before edge.
    round: AtomicU64,
    /// Shutdown flag, read by workers right after the start barrier and
    /// **before** the job slot.
    stop: AtomicBool,
    /// The current phase's erased job: a pointer to a [`RawJob`] living
    /// in the coordinator's `run_rounds` frame, or null between phases.
    /// Published before the start barrier and read after it, so (like
    /// `round`) relaxed accesses are ordered by the barrier crossing —
    /// workers never touch a lock on the per-round hot path.
    job: AtomicPtr<RawJob>,
}

/// A persistent pool of `workers` round-synchronized threads.
///
/// Construct once (e.g. per [`Session`](crate::Session)), then call
/// [`Pool::run_rounds`] any number of times — each call is one phase,
/// possibly with a completely different state type. A pool of one
/// worker spawns no threads at all: every phase executes inline on the
/// calling thread with identical semantics (a panicking `step` simply
/// propagates).
pub struct Pool {
    workers: usize,
    shared: Option<Arc<Shared>>,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("workers", &self.workers)
            .finish()
    }
}

/// Clears the job slot when a phase ends, including by unwind, so the
/// pool never retains a pointer into a dead stack frame.
struct JobGuard<'a>(&'a Shared);

impl Drop for JobGuard<'_> {
    fn drop(&mut self) {
        self.0.job.store(std::ptr::null_mut(), Ordering::Relaxed);
    }
}

impl Pool {
    /// Creates a pool of `workers` threads (none for `workers <= 1`).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> Self {
        assert!(workers > 0, "pool needs at least one worker");
        if workers == 1 {
            return Pool {
                workers,
                shared: None,
                handles: Vec::new(),
            };
        }
        let shared = Arc::new(Shared {
            start: Barrier::new(workers + 1),
            done: Barrier::new(workers + 1),
            round: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            job: AtomicPtr::new(std::ptr::null_mut()),
        });
        let handles = (0..workers)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || loop {
                    shared.start.wait();
                    if shared.stop.load(Ordering::Relaxed) {
                        return;
                    }
                    let round = shared.round.load(Ordering::Relaxed);
                    // SAFETY: the job pointer was published before the
                    // start barrier released this worker (non-null for
                    // any released, non-stopped round) and the
                    // coordinator keeps the phase frame alive until
                    // after the done barrier (module docs).
                    let job = unsafe { &*shared.job.load(Ordering::Relaxed) };
                    unsafe { (job.call)(job.data, index, round) };
                    shared.done.wait();
                })
            })
            .collect();
        Pool {
            workers,
            shared: Some(shared),
            handles,
        }
    }

    /// Number of workers (= threads for `workers > 1`).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs one phase: up to `max_rounds` synchronous rounds over
    /// `states`, one worker per state.
    ///
    /// Per round, every worker executes `step(worker_index, &mut state,
    /// round)` concurrently; the per-worker results — `Ok(report)` or
    /// `Err(panic_payload)` — are then passed, in worker order, to
    /// `control(round, results)`, which decides whether to continue. A
    /// worker whose `step` panicked keeps participating in later rounds
    /// (its state may be logically inconsistent; callers that cannot
    /// tolerate that should return [`Control::Abort`], as the simulator
    /// does).
    ///
    /// Returns the final states plus `Some(value)` from
    /// [`Control::Stop`], or `None` if `max_rounds` elapsed without a
    /// stop.
    ///
    /// # Panics
    ///
    /// Panics if `states.len() != self.workers()`. Re-raises the
    /// payload of [`Control::Abort`], or a panic of `control` itself,
    /// after parking the workers — never deadlocks on a panicking
    /// round, and the pool remains usable for further phases.
    pub fn run_rounds<S, R, T, Step, Ctl>(
        &mut self,
        mut states: Vec<S>,
        max_rounds: u64,
        step: Step,
        mut control: Ctl,
    ) -> (Vec<S>, Option<T>)
    where
        S: Send,
        R: Send,
        Step: Fn(usize, &mut S, u64) -> R + Sync,
        Ctl: FnMut(u64, Vec<std::thread::Result<R>>) -> Control<T>,
    {
        assert_eq!(
            states.len(),
            self.workers,
            "one state per pool worker required"
        );
        let Some(shared) = &self.shared else {
            // Sequential fast path: no threads, no barriers, same
            // protocol (inline and barrier rounds coincide).
            for round in 0..max_rounds {
                let report = step(0, &mut states[0], round);
                match control(round, vec![Ok(report)]) {
                    Control::Continue | Control::ContinueInline => {}
                    Control::Stop(t) => return (states, Some(t)),
                    Control::Abort(payload) => resume_unwind(payload),
                }
            }
            return (states, None);
        };

        let workers = self.workers;
        // One report slot per worker; uncontended Mutexes (each slot is
        // touched by exactly one worker and the coordinator, in
        // different barrier phases).
        let slots: Vec<Mutex<Option<std::thread::Result<R>>>> =
            (0..workers).map(|_| Mutex::new(None)).collect();
        // Disjoint-index access: worker `w` touches only `states[w]`.
        let states_ptr = SendPtr(states.as_mut_ptr());
        let slots = &slots;
        let step = &step;
        let job = move |worker: usize, round: u64| {
            // SAFETY: each worker index is used by exactly one thread
            // per round, and the coordinator does not touch `states`
            // between the start and done barriers.
            let state = unsafe { &mut *states_ptr.add(worker) };
            let report = catch_unwind(AssertUnwindSafe(|| step(worker, state, round)));
            *slots[worker].lock().expect("report slot") = Some(report);
        };
        let raw = raw_job_of(&job);
        shared
            .job
            .store(&raw as *const RawJob as *mut RawJob, Ordering::Relaxed);
        let _guard = JobGuard(shared);

        let mut outcome: Option<T> = None;
        let mut fatal: Option<Box<dyn std::any::Any + Send>> = None;
        let mut inline = false;
        for round in 0..max_rounds {
            if inline {
                // Inline round: the workers stay parked at the start
                // barrier while the coordinator — which has exclusive
                // access to all phase state between barrier crossings —
                // runs every worker's job itself, in worker order. The
                // next barrier release (of a later non-inline round or
                // the pool's shutdown) orders these writes for the
                // workers.
                for worker in 0..workers {
                    job(worker, round);
                }
            } else {
                shared.round.store(round, Ordering::Relaxed);
                shared.start.wait(); // send phase begins
                shared.done.wait(); // all jobs done, all effects visible
            }
            let results: Vec<std::thread::Result<R>> = slots
                .iter()
                .map(|slot| {
                    slot.lock()
                        .expect("report slot")
                        .take()
                        .expect("every worker posts a result per round")
                })
                .collect();
            match catch_unwind(AssertUnwindSafe(|| control(round, results))) {
                Ok(Control::Continue) => inline = false,
                Ok(Control::ContinueInline) => inline = true,
                Ok(Control::Stop(t)) => {
                    outcome = Some(t);
                    break;
                }
                Ok(Control::Abort(payload)) | Err(payload) => {
                    fatal = Some(payload);
                    break;
                }
            }
        }
        // Workers are parked at the start barrier; the phase frame
        // (job, slots, states) may now be reclaimed.
        drop(_guard);
        if let Some(payload) = fatal {
            resume_unwind(payload);
        }
        (states, outcome)
    }
}

/// A raw pointer that may be shared across the pool's threads (the
/// disjoint-index protocol in [`Pool::run_rounds`] is what makes the
/// sharing sound).
#[derive(Clone, Copy)]
struct SendPtr<S>(*mut S);
unsafe impl<S: Send> Send for SendPtr<S> {}
unsafe impl<S: Send> Sync for SendPtr<S> {}

impl<S> SendPtr<S> {
    /// Offset accessor; going through `&self` (rather than field `.0`)
    /// keeps closures capturing the whole `SendPtr`, preserving its
    /// `Sync` impl under edition-2021 disjoint field capture.
    ///
    /// # Safety
    ///
    /// Same contract as [`std::ptr::mut_ptr::add`] plus the pool's
    /// disjoint-index protocol.
    unsafe fn add(&self, i: usize) -> *mut S {
        self.0.add(i)
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        if let Some(shared) = &self.shared {
            shared.stop.store(true, Ordering::Relaxed);
            shared.start.wait();
            for handle in self.handles.drain(..) {
                // Workers never unwind out of their loop (jobs catch
                // panics), so join errors are impossible in practice;
                // swallow rather than double-panic in drop.
                let _ = handle.join();
            }
        }
    }
}

/// Single-phase convenience: spawns a throwaway [`Pool`] sized to
/// `states`, runs one phase, and tears the pool down. Semantics are
/// exactly [`Pool::run_rounds`].
///
/// # Panics
///
/// Panics if `states` is empty; otherwise as [`Pool::run_rounds`].
pub fn run_rounds<S, R, T, Step, Ctl>(
    states: Vec<S>,
    max_rounds: u64,
    step: Step,
    control: Ctl,
) -> (Vec<S>, Option<T>)
where
    S: Send,
    R: Send,
    Step: Fn(usize, &mut S, u64) -> R + Sync,
    Ctl: FnMut(u64, Vec<std::thread::Result<R>>) -> Control<T>,
{
    assert!(!states.is_empty(), "pool needs at least one worker state");
    Pool::new(states.len()).run_rounds(states, max_rounds, step, control)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unwraps per-worker results for controls that expect no panics.
    fn oks<R>(results: Vec<std::thread::Result<R>>) -> Vec<R> {
        results
            .into_iter()
            .map(|r| r.expect("no worker panic expected"))
            .collect()
    }

    /// The default panic disposition: abort on the first (lowest worker
    /// index) panic, otherwise hand back the reports.
    fn reports_or_abort<R, T>(results: Vec<std::thread::Result<R>>) -> Result<Vec<R>, Control<T>> {
        let mut reports = Vec::with_capacity(results.len());
        for result in results {
            match result {
                Ok(report) => reports.push(report),
                Err(payload) => return Err(Control::Abort(payload)),
            }
        }
        Ok(reports)
    }

    /// Each worker folds `worker_index * round` into its accumulator:
    /// a deterministic quantity to compare across worker counts.
    fn accumulate(workers: usize, rounds: u64) -> (Vec<u64>, Option<u64>) {
        let states = vec![0u64; workers];
        let (states, out) = run_rounds(
            states,
            rounds,
            |i, acc, round| {
                *acc += (i as u64 + 1) * (round + 1);
                *acc
            },
            |_round, _results| Control::<u64>::Continue,
        );
        (states, out)
    }

    #[test]
    fn pooled_matches_sequential_and_reuses_barriers_across_many_rounds() {
        // 200 rounds through the same barrier pair: reuse must be sound.
        let (seq, seq_out) = accumulate(1, 200);
        assert_eq!(seq_out, None);
        assert_eq!(seq[0], (1..=200u64).sum::<u64>());
        let (par, par_out) = accumulate(4, 200);
        assert_eq!(par_out, None);
        for (i, acc) in par.iter().enumerate() {
            assert_eq!(*acc, (i as u64 + 1) * (1..=200u64).sum::<u64>());
        }
    }

    #[test]
    fn stop_value_is_returned_and_states_come_back_in_worker_order() {
        let states: Vec<u64> = (0..5).collect();
        let (states, out) = run_rounds(
            states,
            1000,
            |_i, s, _round| {
                *s += 10;
                *s
            },
            |round, results| {
                // Results arrive in worker order regardless of timing.
                let reports = oks(results);
                for w in reports.windows(2) {
                    assert!(w[0] < w[1], "reports out of worker order");
                }
                if round == 2 {
                    Control::Stop(reports[0])
                } else {
                    Control::Continue
                }
            },
        );
        assert_eq!(out, Some(30));
        assert_eq!(states, vec![30, 31, 32, 33, 34]);
    }

    #[test]
    fn round_limit_yields_none() {
        let (states, out) = run_rounds(
            vec![(); 3],
            7,
            |_i, _s, round| round,
            |_round, _results| Control::<()>::Continue,
        );
        assert_eq!(states.len(), 3);
        assert_eq!(out, None);
    }

    #[test]
    fn zero_rounds_never_invokes_step() {
        let (states, out) = run_rounds(
            vec![0u32; 4],
            0,
            |_i, _s, _round| panic!("step must not run"),
            |_round, _results: Vec<std::thread::Result<()>>| Control::<()>::Continue,
        );
        assert_eq!(states, vec![0; 4]);
        assert_eq!(out, None);
    }

    #[test]
    fn worker_panic_propagates_without_deadlocking_the_barrier() {
        let result = std::panic::catch_unwind(|| {
            run_rounds(
                vec![0u64; 3],
                1000,
                |i, s, round| {
                    if i == 1 && round == 2 {
                        panic!("injected worker panic");
                    }
                    *s += 1;
                },
                |_round, results| match reports_or_abort::<_, ()>(results) {
                    Ok(_) => Control::Continue,
                    Err(abort) => abort,
                },
            )
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("<non-str payload>");
        assert!(msg.contains("injected worker panic"), "payload: {msg}");
    }

    #[test]
    fn lowest_worker_panic_wins_when_several_fire() {
        let result = std::panic::catch_unwind(|| {
            run_rounds(
                vec![(); 4],
                10,
                |i, _s, _round| panic!("worker {i} panicked"),
                |_round, results| match reports_or_abort::<(), ()>(results) {
                    Ok(_) => Control::Continue,
                    Err(abort) => abort,
                },
            )
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(msg, "worker 0 panicked");
    }

    /// The reason results (not just reports) go to `control`: a
    /// same-round event in a *lower* worker can outrank a panic in a
    /// higher one, exactly as a sequential scan of the workers' nodes
    /// would have encountered it first.
    #[test]
    fn control_can_let_a_lower_workers_report_outrank_a_higher_panic() {
        let (_, out) = run_rounds(
            vec![(); 3],
            10,
            |i, _s, _round| {
                if i == 2 {
                    panic!("higher worker panics");
                }
                i
            },
            |_round, results| {
                for result in results {
                    match result {
                        Ok(0) => return Control::Stop("worker 0 event wins"),
                        Ok(_) => {}
                        Err(payload) => return Control::Abort(payload),
                    }
                }
                Control::Continue
            },
        );
        assert_eq!(out, Some("worker 0 event wins"));
    }

    #[test]
    fn control_panic_shuts_the_pool_down_cleanly() {
        let result = std::panic::catch_unwind(|| {
            run_rounds(
                vec![0u8; 2],
                10,
                |_i, _s, _round| (),
                |round, _results| -> Control<()> {
                    if round == 1 {
                        panic!("control blew up");
                    }
                    Control::Continue
                },
            )
        });
        assert!(result.is_err());
    }

    /// The persistent-pool property the engine's `Session` relies on:
    /// one spawn, many phases, including phases of different state
    /// types and phases after an aborted (panicked) phase.
    #[test]
    fn one_pool_runs_many_phases_of_different_types() {
        let mut pool = Pool::new(3);
        // Phase 1: u64 accumulators.
        let (s1, out1) = pool.run_rounds(
            vec![0u64; 3],
            5,
            |i, s, r| {
                *s += i as u64 + r;
                *s
            },
            |round, results| {
                if round == 4 {
                    Control::Stop(oks(results))
                } else {
                    Control::Continue
                }
            },
        );
        assert_eq!(s1, vec![10, 15, 20]);
        assert_eq!(out1, Some(vec![10, 15, 20]));
        // Phase 2 (different state type): string builders.
        let (s2, out2) = pool.run_rounds(
            vec![String::new(); 3],
            3,
            |i, s, _r| {
                s.push((b'a' + i as u8) as char);
                s.len()
            },
            |_round, _results| Control::<()>::Continue,
        );
        assert_eq!(s2, vec!["aaa", "bbb", "ccc"]);
        assert_eq!(out2, None);
        // Phase 3: a panicking phase must not poison the pool...
        let panicked = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_rounds(
                vec![(); 3],
                10,
                |i, _s, _r| {
                    if i == 1 {
                        panic!("phase 3 worker panic");
                    }
                },
                |_round, results| match reports_or_abort::<(), ()>(results) {
                    Ok(_) => Control::Continue,
                    Err(abort) => abort,
                },
            )
        }));
        assert!(panicked.is_err());
        // ...phase 4 still runs on the same threads.
        let (s4, _) = pool.run_rounds(
            vec![1u32; 3],
            4,
            |_i, s, _r| {
                *s *= 2;
            },
            |_round, _results: Vec<std::thread::Result<()>>| Control::<()>::Continue,
        );
        assert_eq!(s4, vec![16, 16, 16]);
    }

    /// `ContinueInline` rounds run every worker's step on the
    /// coordinator thread (no barrier), interleave freely with barrier
    /// rounds, and leave per-worker state exactly as barrier rounds
    /// would.
    #[test]
    fn inline_rounds_run_on_the_coordinator_and_compose_with_barrier_rounds() {
        let main_thread = std::thread::current().id();
        // State: (accumulator, thread id of each observed round).
        let states: Vec<(u64, Vec<std::thread::ThreadId>)> = vec![(0, Vec::new()); 3];
        let (states, out) = run_rounds(
            states,
            8,
            |i, st, round| {
                st.0 += (i as u64 + 1) * (round + 1);
                st.1.push(std::thread::current().id());
                st.0
            },
            |round, results| {
                let reports = oks(results);
                assert_eq!(reports.len(), 3);
                if round == 7 {
                    Control::Stop(reports[0])
                } else if round % 2 == 0 {
                    Control::ContinueInline // odd rounds run inline
                } else {
                    Control::Continue
                }
            },
        );
        assert_eq!(out, Some((1..=8u64).sum::<u64>()));
        for (i, (acc, threads)) in states.iter().enumerate() {
            assert_eq!(*acc, (i as u64 + 1) * (1..=8u64).sum::<u64>());
            assert_eq!(threads.len(), 8);
            for (round, id) in threads.iter().enumerate() {
                // Rounds 1, 3, 5, 7 followed an even-round
                // ContinueInline decision: coordinator thread.
                if round % 2 == 1 {
                    assert_eq!(*id, main_thread, "round {round} must be inline");
                } else if round > 0 {
                    assert_ne!(*id, main_thread, "round {round} must be pooled");
                }
            }
        }
    }

    /// A panic inside an inline round propagates exactly like a worker
    /// panic (caught, reported in worker order, pool stays healthy).
    #[test]
    fn inline_round_panics_propagate_and_do_not_poison_the_pool() {
        let mut pool = Pool::new(2);
        let panicked = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_rounds(
                vec![(); 2],
                10,
                |i, _s, round| {
                    if round == 1 && i == 1 {
                        panic!("inline panic");
                    }
                },
                |_round, results| match reports_or_abort::<(), ()>(results) {
                    Ok(_) => Control::ContinueInline,
                    Err(abort) => abort,
                },
            )
        }));
        assert!(panicked.is_err());
        // The pool still runs a clean phase afterwards.
        let (s, _) = pool.run_rounds(
            vec![0u32; 2],
            3,
            |_i, s, _r| {
                *s += 1;
            },
            |_round, _results: Vec<std::thread::Result<()>>| Control::<()>::ContinueInline,
        );
        assert_eq!(s, vec![3, 3]);
    }
}
