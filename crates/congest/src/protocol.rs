//! The [`Protocol`] trait — a whole-network CONGEST protocol as a
//! first-class, composable value — and the [`Join`] combinator that
//! runs two protocols **concurrently in shared rounds**.
//!
//! # Why a protocol trait
//!
//! Low-congestion shortcuts exist precisely so that many part-wise
//! computations can run *concurrently* in shared CONGEST rounds
//! (Ghaffari–Haeupler SODA'16; Kogan–Parter PODC 2021). The engine's
//! low-level interface ([`NodeAlgorithm`](crate::NodeAlgorithm) +
//! [`run`](crate::run)) expresses one protocol per engine invocation;
//! [`Protocol`] packages the full lifecycle — building per-node states
//! ([`Protocol::init`]), executing rounds ([`Protocol::round`], with
//! quiescence declared via [`Protocol::halted`] / [`Protocol::wake`]),
//! and extracting a typed result ([`Protocol::finish`]) — so protocols
//! can be handed to a [`Session`](crate::Session) and composed:
//!
//! * **sequentially** — `session.run(p1)?` then `session.run(p2)?`
//!   share one engine (worker pool, reverse-arc tables) and accumulate
//!   into one cumulative [`RunStats`] with a per-phase breakdown;
//! * **concurrently** — `session.join(p1, p2)?` runs both protocols in
//!   the *same* rounds, multiplexing the per-edge bandwidth through an
//!   internally tagged wire message ([`JoinMsg`]) with round-robin
//!   arbitration, so `k` part-wise aggregations genuinely share rounds
//!   as the paper assumes ([`Join`] nests: `join(p1, join(p2, p3))`).
//!
//! # Writing a protocol
//!
//! A [`Protocol`] value owns the protocol's *global* inputs (roots,
//! tree positions, instance specs); its [`Protocol::State`] holds one
//! node's local state. `round` takes `&self` — shared, immutable
//! protocol-wide data — plus `&mut State`, which is exactly the split
//! that lets the engine execute node shards on parallel workers while
//! the protocol value is shared read-only.
//!
//! ```
//! use lcs_congest::{Message, Protocol, RoundCtx, RunStats, Session, SimConfig};
//! use lcs_graph::Graph;
//!
//! /// Every node learns the maximum node id by gossip flooding.
//! struct MaxGossip;
//!
//! #[derive(Clone)]
//! struct MaxState {
//!     best: u32,
//!     announced: u32,
//! }
//!
//! impl Protocol for MaxGossip {
//!     type Msg = u32;
//!     type State = MaxState;
//!     type Output = Vec<u32>;
//!
//!     fn label(&self) -> &str {
//!         "max_gossip"
//!     }
//!     fn init(&mut self, graph: &Graph) -> Vec<MaxState> {
//!         (0..graph.n() as u32)
//!             .map(|v| MaxState { best: v, announced: u32::MAX })
//!             .collect()
//!     }
//!     fn round(&self, st: &mut MaxState, ctx: &mut RoundCtx<'_, u32>) {
//!         for &(_, m) in ctx.inbox() {
//!             st.best = st.best.max(m);
//!         }
//!         if st.announced != st.best {
//!             st.announced = st.best;
//!             for i in 0..ctx.degree() {
//!                 ctx.send_nth(i, st.best);
//!             }
//!         }
//!     }
//!     fn halted(&self, st: &MaxState) -> bool {
//!         st.announced == st.best
//!     }
//!     fn finish(self, _: &Graph, states: Vec<MaxState>, _: &RunStats) -> Vec<u32> {
//!         states.into_iter().map(|s| s.best).collect()
//!     }
//! }
//!
//! let g = lcs_graph::generators::path(5);
//! let mut session = Session::new(&g, SimConfig::default());
//! let maxima = session.run(MaxGossip).unwrap();
//! assert_eq!(maxima, vec![4; 5]);
//! ```

use crate::message::Message;
use crate::node::{RoundCtx, TxState, Wake};
use crate::stats::RunStats;
use lcs_graph::{Graph, NodeId};
use std::collections::VecDeque;

/// A whole-network CONGEST protocol: per-node state construction, round
/// execution, and typed result extraction, as one composable value.
///
/// See the [module docs](self) for the design rationale and an example.
/// Run protocols through a [`Session`](crate::Session) — sequentially
/// ([`Session::run`](crate::Session::run)) or concurrently
/// ([`Session::join`](crate::Session::join)).
///
/// # The quiescence contract
///
/// The engine is **event-driven** (see [`Wake`]): a node's
/// [`Protocol::round`] hook runs only at round 0, on rounds where the
/// node has incoming mail, and on rounds following a [`Wake::Stay`]
/// request from [`Protocol::wake`]. A sleeping node's hook is *not*
/// polled — so a node whose `wake` answers [`Wake::Sleep`] promises
/// that invoking its hook with an empty inbox would have been a no-op
/// (no state change, no sends, no RNG draws).
///
/// ## Migrating from the `halted` scan
///
/// Older protocols only implemented [`Protocol::halted`], under an
/// engine that invoked every node every round. [`Protocol::wake`]
/// defaults to deriving the signal from `halted` (halted ⇒ sleep), so
/// such protocols keep working unchanged **iff** they already satisfied
/// the no-op promise above — which the termination rule (run ends when
/// all nodes are halted with nothing in flight) effectively required.
/// A protocol whose halted nodes still did time-driven work (e.g.
/// waiting for a specific round number without traffic) must override
/// `wake` to return [`Wake::Stay`] until that work is done; sleeping
/// would skip it.
pub trait Protocol: Sized {
    /// The message type exchanged on the wire.
    type Msg: Message + Send + Sync;
    /// One node's local state.
    type State: Send;
    /// The protocol's result, extracted by [`Protocol::finish`].
    type Output;

    /// A short label for per-phase statistics
    /// ([`RunStats::label`]); defaults to `"protocol"`.
    fn label(&self) -> &str {
        "protocol"
    }

    /// Builds the per-node states, one per node of `graph`, in node-id
    /// order. Called exactly once, before round 0.
    fn init(&mut self, graph: &Graph) -> Vec<Self::State>;

    /// Executes one synchronous round for `state`'s node. At round 0
    /// the inbox is empty; from round `r ≥ 1` the inbox holds exactly
    /// the messages sent to this node at round `r − 1`. Takes `&self`
    /// so protocol-wide data is shared read-only across the engine's
    /// worker shards. Invoked only while the node is active (see the
    /// [quiescence contract](Protocol#the-quiescence-contract)).
    fn round(&self, state: &mut Self::State, ctx: &mut RoundCtx<'_, Self::Msg>);

    /// Whether `state`'s node has (tentatively) finished. The run ends
    /// when every node is quiescent **and** no messages are in flight;
    /// a quiescent node is re-activated (and may un-halt) when messages
    /// arrive.
    fn halted(&self, state: &Self::State) -> bool;

    /// The quiescence contract: asked after each executed round whether
    /// the node must run again next round even without mail
    /// ([`Wake::Stay`]) or may sleep until a message arrives
    /// ([`Wake::Sleep`]). Defaults to deriving the signal from
    /// [`Protocol::halted`]; see the
    /// [migration notes](Protocol#migrating-from-the-halted-scan) for
    /// when an override is required.
    fn wake(&self, state: &Self::State) -> Wake {
        if self.halted(state) {
            Wake::Sleep
        } else {
            Wake::Stay
        }
    }

    /// Consumes the final per-node states into the protocol's output.
    /// `stats` is this phase's statistics (protocols that report
    /// engine costs clone what they need); under [`Join`] both sides
    /// receive the statistics of the *shared* phase.
    fn finish(self, graph: &Graph, states: Vec<Self::State>, stats: &RunStats) -> Self::Output;
}

/// Tagged wire message of a [`Join`] run: which side of the join the
/// payload belongs to. The one-bit side tag is absorbed into the word
/// constant (like the variant tags of the built-in protocol messages),
/// so a joined run's bandwidth accounting matches the standalone runs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinMsg<A, B> {
    /// A message of the join's first protocol.
    A(A),
    /// A message of the join's second protocol.
    B(B),
}

impl<A: Message, B: Message> Message for JoinMsg<A, B> {
    fn size_words(&self) -> u32 {
        match self {
            JoinMsg::A(m) => m.size_words(),
            JoinMsg::B(m) => m.size_words(),
        }
    }
}

/// Per-node state of a [`Join`]: both sides' states plus the per-side,
/// per-neighbor FIFO queues that multiplex the shared bandwidth, and
/// reusable capture scratch (see [`Join`]'s docs for the mechanism).
pub struct JoinState<P1: Protocol, P2: Protocol> {
    a: P1::State,
    b: P2::State,
    /// Pending outbound messages per neighbor, first protocol.
    qa: Vec<VecDeque<P1::Msg>>,
    /// Pending outbound messages per neighbor, second protocol.
    qb: Vec<VecDeque<P2::Msg>>,
    /// Untagged inbox views handed to the sub-protocols.
    inbox_a: Vec<(NodeId, P1::Msg)>,
    inbox_b: Vec<(NodeId, P2::Msg)>,
    /// Capture mailboxes: the sub-protocols' sends land here (one flat
    /// slot per neighbor, occupancy tracked in `occ_*`, mirroring the
    /// engine's wire mailboxes) and are moved into the queues.
    slots_a: Vec<std::mem::MaybeUninit<P1::Msg>>,
    slots_b: Vec<std::mem::MaybeUninit<P2::Msg>>,
    occ_a: Vec<bool>,
    occ_b: Vec<bool>,
    /// Scratch sinks for the capture contexts (indices of written
    /// slots; per-arc counters). Real statistics are recorded when the
    /// queued message is actually sent.
    dirty: Vec<u32>,
    per_arc: Vec<u32>,
    /// Total queued messages across both sides (kept in sync by the
    /// capture and drain paths so `halted` is O(1), not a per-round
    /// scan of every per-neighbor queue).
    pending: usize,
    initialized: bool,
}

/// Runs two protocols **concurrently in shared rounds**, multiplexing
/// the per-edge CONGEST bandwidth between them.
///
/// Each round, every node (1) splits its inbox by side tag, (2) runs
/// both sub-protocols' `round` hooks against *capture* contexts whose
/// sends land in per-neighbor queues instead of the wire, then
/// (3) drains at most one queued message per neighbor onto the wire,
/// tagged with its side ([`JoinMsg`]). Contention for a neighbor slot
/// is arbitrated **round-robin**: even rounds prefer the first
/// protocol's queue, odd rounds the second's, so neither side can
/// starve the other. Congestion between the two protocols therefore
/// turns into queueing delay — exactly the random-delay-scheduler view
/// of the paper — and the joint run typically finishes in
/// `≈ max(r1, r2)` rounds rather than `r1 + r2`.
///
/// The two sides share each node's RNG stream (the first protocol
/// draws before the second within a round) and the phase's
/// [`RunStats`]; [`Protocol::finish`] of both sides receives the joint
/// statistics. `Join` itself implements [`Protocol`], so joins nest:
/// `Join::new(p1, Join::new(p2, p3))` shares rounds three ways.
///
/// Construct via [`Session::join`](crate::Session::join) (or
/// [`Join::new`] for nesting).
pub struct Join<P1: Protocol, P2: Protocol> {
    a: P1,
    b: P2,
    label: String,
}

impl<P1: Protocol, P2: Protocol> Join<P1, P2> {
    /// Composes two protocols for concurrent execution.
    pub fn new(a: P1, b: P2) -> Self {
        let label = format!("{}+{}", a.label(), b.label());
        Join { a, b, label }
    }
}

impl<P1: Protocol, P2: Protocol> Protocol for Join<P1, P2> {
    type Msg = JoinMsg<P1::Msg, P2::Msg>;
    type State = JoinState<P1, P2>;
    type Output = (P1::Output, P2::Output);

    fn label(&self) -> &str {
        &self.label
    }

    fn init(&mut self, graph: &Graph) -> Vec<Self::State> {
        let a = self.a.init(graph);
        let b = self.b.init(graph);
        assert_eq!(a.len(), b.len(), "joined protocols must agree on n");
        a.into_iter()
            .zip(b)
            .map(|(a, b)| JoinState {
                a,
                b,
                qa: Vec::new(),
                qb: Vec::new(),
                inbox_a: Vec::new(),
                inbox_b: Vec::new(),
                slots_a: Vec::new(),
                slots_b: Vec::new(),
                occ_a: Vec::new(),
                occ_b: Vec::new(),
                dirty: Vec::new(),
                per_arc: Vec::new(),
                pending: 0,
                initialized: false,
            })
            .collect()
    }

    fn round(&self, st: &mut Self::State, ctx: &mut RoundCtx<'_, Self::Msg>) {
        let degree = ctx.degree();
        if !st.initialized {
            st.initialized = true;
            st.qa = (0..degree).map(|_| VecDeque::new()).collect();
            st.qb = (0..degree).map(|_| VecDeque::new()).collect();
            st.slots_a = (0..degree)
                .map(|_| std::mem::MaybeUninit::uninit())
                .collect();
            st.slots_b = (0..degree)
                .map(|_| std::mem::MaybeUninit::uninit())
                .collect();
            st.occ_a = vec![false; degree];
            st.occ_b = vec![false; degree];
            st.per_arc = vec![0; degree];
        }
        // 1. Split the tagged inbox into per-side untagged views.
        st.inbox_a.clear();
        st.inbox_b.clear();
        for &(from, ref msg) in ctx.inbox() {
            match msg {
                JoinMsg::A(m) => st.inbox_a.push((from, m.clone())),
                JoinMsg::B(m) => st.inbox_b.push((from, m.clone())),
            }
        }
        // 2. Run each side against a capture context (sends land in
        //    `slots_*`, then move into the queues) — but only when that
        //    side has traffic or asked to stay awake: the join extends
        //    the engine's event-driven scheduling *through* itself, so
        //    a quiescent side costs nothing even while the other side
        //    keeps the node active. Skipping is outcome-neutral by the
        //    quiescence contract (a sleeping side's hook would have
        //    been a no-op, drawing no RNG), which also preserves the
        //    documented RNG order: A draws before B within a round.
        let run_a = ctx.round() == 0 || !st.inbox_a.is_empty() || self.a.wake(&st.a) == Wake::Stay;
        if run_a
            && run_captured(
                &self.a,
                &mut st.a,
                &st.inbox_a,
                &mut st.slots_a,
                &mut st.occ_a,
                &mut st.qa,
                &mut st.dirty,
                &mut st.per_arc,
                &mut st.pending,
                ctx,
            )
        {
            return; // violation recorded; the run is aborting
        }
        let run_b = ctx.round() == 0 || !st.inbox_b.is_empty() || self.b.wake(&st.b) == Wake::Stay;
        if run_b
            && run_captured(
                &self.b,
                &mut st.b,
                &st.inbox_b,
                &mut st.slots_b,
                &mut st.occ_b,
                &mut st.qb,
                &mut st.dirty,
                &mut st.per_arc,
                &mut st.pending,
                ctx,
            )
        {
            return;
        }
        // 3. Drain at most one message per neighbor, round-robin: even
        //    rounds prefer side A, odd rounds side B.
        let prefer_b = ctx.round() % 2 == 1;
        for i in 0..degree {
            let msg = if prefer_b {
                st.qb[i]
                    .pop_front()
                    .map(JoinMsg::B)
                    .or_else(|| st.qa[i].pop_front().map(JoinMsg::A))
            } else {
                st.qa[i]
                    .pop_front()
                    .map(JoinMsg::A)
                    .or_else(|| st.qb[i].pop_front().map(JoinMsg::B))
            };
            if let Some(m) = msg {
                st.pending -= 1;
                ctx.send_nth(i, m);
            }
        }
    }

    fn halted(&self, st: &Self::State) -> bool {
        st.pending == 0 && self.a.halted(&st.a) && self.b.halted(&st.b)
    }

    fn wake(&self, st: &Self::State) -> Wake {
        // The joined node stays awake while either side does (a side
        // with time-driven work must keep running even without mail) or
        // while queued messages remain to drain.
        if st.pending > 0 || self.a.wake(&st.a) == Wake::Stay || self.b.wake(&st.b) == Wake::Stay {
            Wake::Stay
        } else {
            Wake::Sleep
        }
    }

    fn finish(self, graph: &Graph, states: Vec<Self::State>, stats: &RunStats) -> Self::Output {
        let mut sa = Vec::with_capacity(states.len());
        let mut sb = Vec::with_capacity(states.len());
        for s in states {
            sa.push(s.a);
            sb.push(s.b);
        }
        (
            self.a.finish(graph, sa, stats),
            self.b.finish(graph, sb, stats),
        )
    }
}

/// Runs one side's round hook against a capture context: its sends are
/// written into `slots` (one per neighbor, enforcing the one-message
/// discipline *per side per round* at capture time) and then moved
/// into the side's per-neighbor queues. Returns `true` when the side
/// committed a model violation (recorded into the real context; the
/// engine aborts the run at the end of the round).
#[allow(clippy::too_many_arguments)]
fn run_captured<P: Protocol, W: Message>(
    proto: &P,
    state: &mut P::State,
    inbox: &[(NodeId, P::Msg)],
    slots: &mut [std::mem::MaybeUninit<P::Msg>],
    occ: &mut [bool],
    queues: &mut [VecDeque<P::Msg>],
    dirty: &mut Vec<u32>,
    per_arc: &mut [u32],
    pending: &mut usize,
    ctx: &mut RoundCtx<'_, W>,
) -> bool {
    let mut violation = None;
    let (mut messages, mut words) = (0u64, 0u64);
    {
        let mut capture = RoundCtx {
            node: ctx.node,
            round: ctx.round,
            graph: ctx.graph,
            inbox,
            rng: &mut *ctx.rng,
            shared: ctx.shared,
            tx: TxState {
                slots,
                occ,
                heads: ctx.tx.heads,
                arc_base: 0,
                // No wire effects: a captured send is queued, not sent.
                // Mail flags and receiver activation happen when the
                // drain step really sends it (via the outer context),
                // so the engine's active sets see exactly the wire
                // traffic at any shard count.
                wire: None,
                dirty,
                messages: &mut messages,
                words: &mut words,
                per_arc,
                violation: &mut violation,
                bandwidth: ctx.tx.bandwidth,
            },
        };
        proto.round(state, &mut capture);
    }
    // Move captured sends into the queues (dirty holds neighbor
    // indices, since the capture context's arc base is 0). A dirty
    // entry's occupancy byte is always set — sends are the only writer
    // and the overflow check rules out duplicates — so every listed
    // slot holds a live payload to move out.
    for &i in dirty.iter() {
        let i = i as usize;
        debug_assert!(occ[i]);
        occ[i] = false;
        // SAFETY: `occ[i]` was set by a captured send, so `slots[i]`
        // holds an initialized message; clearing the byte first makes
        // the move-out unique.
        let m = unsafe { slots[i].assume_init_read() };
        queues[i].push_back(m);
        *pending += 1;
    }
    dirty.clear();
    if let Some(v) = violation {
        if ctx.tx.violation.is_none() {
            *ctx.tx.violation = Some(v);
        }
        return true;
    }
    false
}
