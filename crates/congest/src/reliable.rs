//! The [`Reliable`] combinator: runs any [`Protocol`] **unchanged** over
//! a lossy, reordering network and produces the exact fault-free output.
//!
//! # Mechanism
//!
//! `Reliable<P>` is an α-synchronizer with ARQ links. The inner protocol
//! advances in **virtual rounds**: each link carries one framed message
//! per virtual round (payload present or explicitly absent), tagged with
//! a per-link sequence number, and a node executes inner round `t` only
//! once it holds every live neighbor's frame for round `t − 1`. Frames
//! are delivered reliably by per-link cumulative acks (piggybacked on
//! data frames), an out-of-order stash, and timeout-driven
//! retransmission with deterministic exponential backoff
//! ([`RTO_BASE`] outer rounds, doubling to [`RTO_MAX`]). Retransmissions
//! travel through the ordinary send path, so they respect the CONGEST
//! bandwidth discipline and show up in [`RunStats`] — the measured
//! overhead of reliability.
//!
//! Because every node executes the same inner rounds with the same
//! inboxes in the same order as a fault-free synchronous run, the inner
//! protocol's output is **byte-identical** to its fault-free output — a
//! property the tier-1 tests in this module assert against the engine's
//! [`FaultPlan`](crate::FaultPlan) for BFS and tree aggregation.
//!
//! # Termination
//!
//! A synchronizer must decide when to stop exchanging frames. Each frame
//! carries a *quiet level*: `q = 0` on any virtual round where the node
//! acted (sent an inner payload, or asked to stay awake), else
//! `1 + min(own previous q, min over neighbors' previous q)`. When
//! `q > n` the node **stops**: by induction, every node at distance `d`
//! was inactive at virtual round `t − d`, and since (re)activation
//! requires an inner payload from an active neighbor one round earlier,
//! no inner activity can ever reach a node whose quiet cone covers the
//! whole graph. A stopped node still acks and retransmits until its
//! links drain, and *manufactures* empty frames on demand when a
//! not-yet-stopped neighbor's sequence numbers show it needs one more —
//! so nobody deadlocks waiting for a frame a stopped peer never
//! produced.
//!
//! # Crash-stops
//!
//! Reliable delivery cannot outlast a dead receiver: a crashed node
//! never acks, so its neighbors would retransmit forever. When the
//! attached [`FaultPlan`](crate::FaultPlan) crash-stops nodes
//! permanently, construct the combinator with [`Reliable::with_crashed`]
//! (a perfect failure detector, the standard assumption): dead links are
//! excised from the frame exchange and the inner protocol runs on the
//! surviving subgraph.
//!
//! # Integrity tags (payload corruption)
//!
//! The engine's Byzantine tier
//! ([`FaultPlan::corrupt_rate`](crate::FaultPlan::corrupt_rate)) flips
//! bits of in-flight messages.
//! Every wire frame therefore carries a deterministic 64-bit tag — a
//! splitmix64 chain over the frame's header fields, the payload digest
//! ([`Message::digest`]), and the link's `(from, to)` endpoints — which
//! the receiver recomputes on arrival. A mismatch means the frame was
//! forged in flight: it is ignored entirely (treated exactly like a
//! drop) and the ARQ machinery re-sends the original intact, so the
//! wrapped output stays byte-identical to the fault-free run under any
//! drop × delay × corrupt plan. This is the authenticated-channels
//! assumption, made concrete: the adversary can destroy or mutate
//! traffic but cannot forge a frame that *verifies*.
//!
//! # Transient crashes: the rejoin handshake
//!
//! A transiently crashed node
//! ([`Crash::recover_at`](crate::Crash::recover_at)) keeps its state
//! but loses every in-flight
//! inbound frame, and its neighbors' retransmission timers may have
//! backed off to [`RTO_MAX`] by the time it returns — a stall of up to
//! 64 rounds per link. A recovering node *knows* it was down (its hook
//! skipped engine rounds, or never ran at phase start), so it announces
//! itself with a tagged `Hello` on every live link; each neighbor
//! responds by re-arming the link — retransmission due immediately,
//! backoff reset, ack owed — and the link resyncs in ~1 round instead.
//! The handshake is enabled by default; [`Reliable::with_rejoin`]
//! disables it to measure the stall it removes. Without a crash plan
//! the detection can never fire, so fault-free and drop/delay-only runs
//! are untouched.

use crate::error::SimError;
use crate::message::Message;
use crate::node::{RoundCtx, TxState, Wake};
use crate::protocol::Protocol;
use crate::sim::splitmix64;
use crate::stats::RunStats;
use lcs_graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Initial retransmission timeout, in outer engine rounds.
pub const RTO_BASE: u64 = 4;
/// Retransmission timeout cap (deterministic exponential backoff).
pub const RTO_MAX: u64 = 64;

/// Domain separators keeping the three frame kinds' tag spaces disjoint.
const TAG_DATA: u64 = 0x7461_675F_6461_7461;
const TAG_ACK: u64 = 0x0074_6167_5F61_636B;
const TAG_HELLO: u64 = 0x7467_5F68_656C_6C6F;
/// Folded into a data tag in place of an absent payload's digest.
const NO_PAYLOAD: u64 = 0x6E6F_6E65;

/// Mixes a link's directed endpoints into a tag chain's seed.
#[inline]
fn link_id(from: NodeId, to: NodeId) -> u64 {
    (u64::from(from) << 32) | u64::from(to)
}

/// Integrity tag of a data frame: a splitmix64 chain over the link id,
/// every header field, and the payload digest. Deterministic, so sender
/// and receiver agree exactly; any in-flight mutation of a covered field
/// (including the ack — an uncovered ack could falsely advance ARQ
/// state) makes the recomputation mismatch.
fn frame_tag<M: Message>(
    from: NodeId,
    to: NodeId,
    seq: u64,
    ack: u64,
    quiet: u32,
    payload: &Option<M>,
) -> u64 {
    let pd = payload.as_ref().map_or(NO_PAYLOAD, Message::digest);
    let mut h = splitmix64(TAG_DATA ^ link_id(from, to));
    h = splitmix64(h ^ seq);
    h = splitmix64(h ^ ack);
    h = splitmix64(h ^ u64::from(quiet));
    splitmix64(h ^ pd)
}

/// Integrity tag of a standalone ack.
fn ack_tag(from: NodeId, to: NodeId, ack: u64) -> u64 {
    splitmix64(splitmix64(TAG_ACK ^ link_id(from, to)) ^ ack)
}

/// Integrity tag of a rejoin announcement.
fn hello_tag(from: NodeId, to: NodeId) -> u64 {
    splitmix64(TAG_HELLO ^ link_id(from, to))
}

/// Wire message of a [`Reliable`] run: a sequenced data frame with a
/// piggybacked cumulative ack, or a standalone ack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReliableMsg<M> {
    /// One virtual round's frame on one link.
    Data {
        /// Virtual round this frame belongs to (per-link sequence
        /// number; frames are produced and consumed in order).
        seq: u64,
        /// Cumulative ack: the sender has received every frame of this
        /// link below `ack`.
        ack: u64,
        /// The sender's quiet level at virtual round `seq` (see the
        /// [module docs](self) on termination).
        quiet: u32,
        /// The inner message sent on this link at virtual round `seq`,
        /// if any — `None` frames are what lets the receiver distinguish
        /// "no message this round" from "message still in flight".
        payload: Option<M>,
        /// Integrity tag over the link id, every header field, and the
        /// payload digest (see the [module docs](self)); a mismatch on
        /// arrival means the frame was corrupted in flight and it is
        /// dropped.
        tag: u64,
    },
    /// Standalone cumulative ack (sent when a frame arrives but no data
    /// frame travels back the same round).
    Ack {
        /// Cumulative ack, as in [`ReliableMsg::Data`].
        ack: u64,
        /// Integrity tag over the link id and `ack`.
        tag: u64,
    },
    /// Rejoin announcement of a transiently crashed node (see the
    /// [module docs](self)): "my inbound in-flight frames are gone —
    /// retransmit now instead of waiting out your backoff".
    Hello {
        /// Integrity tag over the link id.
        tag: u64,
    },
}

impl<M: Message> Message for ReliableMsg<M> {
    fn size_words(&self) -> u32 {
        // The seq/ack/quiet/tag header is absorbed into the word count
        // (like `JoinMsg`'s side tag): a frame costs what its payload
        // costs, with a one-word floor for empty frames, acks, and
        // hellos — so the tags change no message/word statistic.
        match self {
            ReliableMsg::Data {
                payload: Some(m), ..
            } => m.size_words().max(1),
            ReliableMsg::Data { payload: None, .. }
            | ReliableMsg::Ack { .. }
            | ReliableMsg::Hello { .. } => 1,
        }
    }

    fn corrupted(self, stream: u64) -> Self {
        // Flip a tag-covered field (or the tag itself), chosen by the
        // stream — every corruption is detectable by construction, and
        // the payload case exercises the digest path through the inner
        // message's own `corrupted`. (`| 1` guarantees a real flip.)
        let flip = stream | 1;
        match self {
            ReliableMsg::Data {
                seq,
                ack,
                quiet,
                payload,
                tag,
            } => match (stream >> 1) % 4 {
                0 => ReliableMsg::Data {
                    seq: seq ^ flip,
                    ack,
                    quiet,
                    payload,
                    tag,
                },
                1 => ReliableMsg::Data {
                    seq,
                    ack: ack ^ flip,
                    quiet,
                    payload,
                    tag,
                },
                2 if payload.is_some() => ReliableMsg::Data {
                    seq,
                    ack,
                    quiet,
                    payload: payload.map(|m| m.corrupted(splitmix64(stream))),
                    tag,
                },
                _ => ReliableMsg::Data {
                    seq,
                    ack,
                    quiet,
                    payload,
                    tag: tag ^ flip,
                },
            },
            ReliableMsg::Ack { ack, tag } => {
                if stream & 2 == 0 {
                    ReliableMsg::Ack {
                        ack: ack ^ flip,
                        tag,
                    }
                } else {
                    ReliableMsg::Ack {
                        ack,
                        tag: tag ^ flip,
                    }
                }
            }
            ReliableMsg::Hello { tag } => ReliableMsg::Hello { tag: tag ^ flip },
        }
    }

    fn digest(&self) -> u64 {
        match self {
            ReliableMsg::Data {
                seq,
                ack,
                quiet,
                payload,
                tag,
            } => {
                let pd = payload.as_ref().map_or(NO_PAYLOAD, Message::digest);
                splitmix64(splitmix64(*seq ^ *tag) ^ splitmix64(*ack ^ u64::from(*quiet)) ^ pd)
            }
            ReliableMsg::Ack { ack, tag } => splitmix64(*ack ^ tag.rotate_left(32)),
            ReliableMsg::Hello { tag } => splitmix64(*tag ^ TAG_HELLO),
        }
    }
}

/// Per-link ARQ + synchronizer state (one per neighbor).
struct Link<M> {
    /// The neighbor crashed permanently (perfect failure detector):
    /// nothing is sent on or expected from this link.
    dead: bool,
    /// Unacked frames, `(payload, quiet)`, covering seqs
    /// `[acked, produced)`; the front is seq `acked`.
    frames: VecDeque<(Option<M>, u32)>,
    /// Frames below this seq are acked by the peer.
    acked: u64,
    /// Frames below this seq have been produced.
    produced: u64,
    /// Next seq to transmit for the first time
    /// (`acked <= next_tx <= produced`).
    next_tx: u64,
    /// Earliest outer round at which the front unacked frame may be
    /// retransmitted.
    timer: u64,
    /// Current retransmission timeout (deterministic backoff).
    rto: u64,
    /// Frames below this seq have been received from the peer
    /// (contiguously).
    recv: u64,
    /// Received, not yet consumed frames in seq order (front is the
    /// frame the next inner round will consume).
    pending_in: VecDeque<(Option<M>, u32)>,
    /// Out-of-order stash: frames received past the contiguous prefix
    /// (delays reorder the wire), sorted by seq.
    ooo: Vec<(u64, Option<M>, u32)>,
    /// A frame arrived since the last ack we sent on this link.
    ack_owed: bool,
}

impl<M> Link<M> {
    fn new(dead: bool) -> Self {
        Link {
            dead,
            frames: VecDeque::new(),
            acked: 0,
            produced: 0,
            next_tx: 0,
            timer: 0,
            rto: RTO_BASE,
            recv: 0,
            pending_in: VecDeque::new(),
            ooo: Vec::new(),
            ack_owed: false,
        }
    }

    /// Applies a cumulative ack from the peer: drops acked frames and
    /// resets the retransmission backoff (progress restarts the clock).
    fn advance_ack(&mut self, ack: u64, now: u64) {
        if ack > self.acked {
            for _ in 0..(ack - self.acked) {
                self.frames.pop_front();
            }
            self.acked = ack;
            self.next_tx = self.next_tx.max(ack);
            self.rto = RTO_BASE;
            self.timer = now + self.rto;
        }
    }

    /// Accepts a data frame: advances the contiguous prefix (draining
    /// the out-of-order stash), stashes frames past it, ignores
    /// duplicates. Every arrival owes the peer an ack.
    fn accept(&mut self, seq: u64, payload: Option<M>, quiet: u32) {
        self.ack_owed = true;
        match seq.cmp(&self.recv) {
            std::cmp::Ordering::Less => {} // duplicate; re-ack only
            std::cmp::Ordering::Equal => {
                self.pending_in.push_back((payload, quiet));
                self.recv += 1;
                while let Some(pos) = self.ooo.iter().position(|&(s, ..)| s == self.recv) {
                    let (_, p, q) = self.ooo.swap_remove(pos);
                    self.pending_in.push_back((p, q));
                    self.recv += 1;
                }
            }
            std::cmp::Ordering::Greater => {
                if !self.ooo.iter().any(|&(s, ..)| s == seq) {
                    self.ooo.push((seq, payload, quiet));
                }
            }
        }
    }

    /// Whether this link still has frames to send, frames awaiting ack,
    /// or an ack to return — i.e. reasons to keep the node awake.
    fn busy(&self) -> bool {
        !self.dead && (self.acked < self.produced || self.ack_owed)
    }
}

/// Per-node state of a [`Reliable`] run: the inner protocol's state plus
/// the synchronizer/ARQ machinery and reusable capture scratch (the
/// inner hook's sends land in flat per-neighbor slots, mirroring
/// [`Join`](crate::Join)'s capture mechanism).
pub struct ReliableState<P: Protocol> {
    inner: P::State,
    /// This node itself is crashed (it never participates; the engine's
    /// fault layer silences it anyway).
    dead: bool,
    initialized: bool,
    /// Next virtual (inner) round to execute.
    vr: u64,
    /// Quiet level after the last executed virtual round.
    quiet: u32,
    /// The node's quiet cone covers the graph: no further inner rounds
    /// will be executed (see the module docs).
    stopped: bool,
    links: Vec<Link<P::Msg>>,
    // Capture scratch for the inner hook.
    inner_inbox: Vec<(NodeId, P::Msg)>,
    slots: Vec<std::mem::MaybeUninit<P::Msg>>,
    occ: Vec<bool>,
    dirty: Vec<u32>,
    per_arc: Vec<u32>,
    /// Last engine round this node's hook ran (rejoin detection: a
    /// [`Wake::Stay`] node whose hook skipped a round was crashed —
    /// nothing else removes a staying node from the active set).
    last_round: u64,
    /// Whether the last executed round ended in [`Wake::Stay`].
    stay: bool,
}

/// Runs protocol `P` to its exact fault-free output over a lossy,
/// reordering network (see the [module docs](self) for the mechanism and
/// its guarantees). Implements [`Protocol`], so it composes like any
/// other: run it through a [`Session`](crate::Session), even under
/// [`Join`](crate::Join).
pub struct Reliable<P: Protocol> {
    inner: P,
    label: String,
    /// Permanently crashed nodes (perfect failure detector), by id.
    crashed: Vec<bool>,
    /// Optional diameter upper bound capping the quiet wave (see
    /// [`Reliable::with_quiet_bound`]).
    quiet_bound: Option<u32>,
    /// Whether recovering nodes announce themselves (see the
    /// [module docs](self) on the rejoin handshake). On by default;
    /// [`Reliable::with_rejoin`] turns it off to expose the RTO stall
    /// the handshake removes.
    rejoin: bool,
}

impl<P: Protocol> Reliable<P> {
    /// Wraps `inner` for reliable execution under message drops and
    /// delays (no crash-stops).
    pub fn new(inner: P) -> Self {
        let label = format!("reliable({})", inner.label());
        Reliable {
            inner,
            label,
            crashed: Vec::new(),
            quiet_bound: None,
            rejoin: true,
        }
    }

    /// Enables or disables the rejoin handshake for transient crashes
    /// (default: enabled). With it off, a recovering node's links stall
    /// until each neighbor's backed-off retransmission timer (up to
    /// [`RTO_MAX`] rounds) fires — the output is still exact, just
    /// late. Exists so the stall the handshake removes is measurable.
    #[must_use]
    pub fn with_rejoin(mut self, enabled: bool) -> Self {
        self.rejoin = enabled;
        self
    }

    /// Caps the termination quiet wave at `diameter_bound + 1` levels
    /// instead of the default `n`: once a node's quiet cone covers the
    /// (bounded) diameter, no inner activity can reach it. With the
    /// default, termination costs `Θ(n)` empty virtual rounds after the
    /// inner protocol goes quiet; a tight diameter bound reduces that
    /// to `Θ(D)`.
    ///
    /// `diameter_bound` MUST be a true upper bound on the graph's
    /// diameter — an underestimate can stop the synchronizer while
    /// inner activity is still propagating, losing messages the inner
    /// protocol was owed. (Values `≥ n` are clamped; the default is
    /// always safe.)
    #[must_use]
    pub fn with_quiet_bound(mut self, diameter_bound: u32) -> Self {
        self.quiet_bound = Some(diameter_bound);
        self
    }

    /// Wraps `inner` with a perfect failure detector for permanently
    /// crashed nodes: links to `crashed` nodes are excised from the
    /// frame exchange and the inner protocol runs on the surviving
    /// subgraph. Required whenever the attached
    /// [`FaultPlan`](crate::FaultPlan) crash-stops nodes without
    /// recovery — a dead receiver never acks, so its neighbors would
    /// otherwise retransmit until the round limit.
    pub fn with_crashed(inner: P, crashed: &[NodeId]) -> Self {
        let mut this = Self::new(inner);
        let max = crashed.iter().copied().max().map_or(0, |m| m as usize + 1);
        this.crashed = vec![false; max];
        for &c in crashed {
            this.crashed[c as usize] = true;
        }
        this
    }

    fn is_crashed(&self, v: NodeId) -> bool {
        self.crashed.get(v as usize).copied().unwrap_or(false)
    }
}

impl<P: Protocol + Sync> Protocol for Reliable<P> {
    type Msg = ReliableMsg<P::Msg>;
    type State = ReliableState<P>;
    type Output = P::Output;

    fn label(&self) -> &str {
        &self.label
    }

    fn init(&mut self, graph: &Graph) -> Vec<Self::State> {
        self.inner
            .init(graph)
            .into_iter()
            .enumerate()
            .map(|(v, inner)| ReliableState {
                inner,
                dead: self.is_crashed(v as NodeId),
                initialized: false,
                vr: 0,
                quiet: 0,
                stopped: false,
                links: Vec::new(),
                inner_inbox: Vec::new(),
                slots: Vec::new(),
                occ: Vec::new(),
                dirty: Vec::new(),
                per_arc: Vec::new(),
                last_round: 0,
                stay: false,
            })
            .collect()
    }

    fn round(&self, st: &mut Self::State, ctx: &mut RoundCtx<'_, Self::Msg>) {
        if st.dead {
            return; // crashed: the engine silences it; be inert anyway
        }
        let degree = ctx.degree();
        let me = ctx.node();
        let now = ctx.round();
        // Rejoin detection, arm (a): the engine runs every node at round
        // 0 (phase start), so a first execution later means this node
        // was crashed through the start of the phase.
        let missed_start = !st.initialized && now > 0;
        if !st.initialized {
            st.initialized = true;
            st.links = ctx
                .neighbors()
                .iter()
                .map(|&w| Link::new(self.is_crashed(w)))
                .collect();
            st.slots = (0..degree)
                .map(|_| std::mem::MaybeUninit::uninit())
                .collect();
            st.occ = vec![false; degree];
            st.per_arc = vec![0; degree];
        }

        // 1. Process arrivals: verify integrity tags (a mismatch means
        //    the frame was corrupted in flight — ignore it; ARQ re-sends
        //    the original), advance acks, accept frames, and — when
        //    stopped — manufacture the empty frames a still-advancing
        //    peer shows it needs (its seq `s` implies it will next need
        //    our frame `s`; the gap is at most one, since it needed our
        //    frame `s − 1` to get there).
        for k in 0..ctx.inbox().len() {
            let (from, msg) = ctx.inbox()[k].clone();
            let Some(i) = ctx.neighbor_index(from) else {
                continue; // unreachable: the engine enforces adjacency
            };
            match msg {
                ReliableMsg::Data {
                    seq,
                    ack,
                    quiet,
                    payload,
                    tag,
                } => {
                    if frame_tag(from, me, seq, ack, quiet, &payload) != tag {
                        continue; // forged in flight: treat as dropped
                    }
                    if st.stopped && payload.is_some() && seq >= st.links[i].recv {
                        // New inner data after this node's quiet-wave
                        // stop (duplicates, seq < recv, were consumed
                        // before it): the `with_quiet_bound` value
                        // underestimated the diameter, and silent wrong
                        // output is the alternative. Abort the run.
                        if ctx.tx.violation.is_none() {
                            *ctx.tx.violation = Some(SimError::QuietBoundViolated {
                                node: me,
                                round: now,
                            });
                        }
                    }
                    let link = &mut st.links[i];
                    link.advance_ack(ack, now);
                    link.accept(seq, payload, quiet);
                    if st.stopped {
                        let stop_q = st.quiet;
                        let link = &mut st.links[i];
                        while link.produced <= seq {
                            link.frames.push_back((None, stop_q));
                            link.produced += 1;
                        }
                    }
                }
                ReliableMsg::Ack { ack, tag } => {
                    if ack_tag(from, me, ack) != tag {
                        continue; // forged in flight
                    }
                    st.links[i].advance_ack(ack, now);
                }
                ReliableMsg::Hello { tag } => {
                    if hello_tag(from, me) != tag {
                        continue; // forged in flight: peer falls back to RTO
                    }
                    // The peer transiently crashed and rejoined: its
                    // inbound in-flight frames are gone. Re-arm the link
                    // — retransmission due now instead of a backed-off
                    // timer, and an ack owed so the peer re-syncs even
                    // when nothing is pending our way.
                    let link = &mut st.links[i];
                    if !link.dead {
                        link.timer = now;
                        link.rto = RTO_BASE;
                        link.ack_owed = true;
                    }
                }
            }
        }

        // Rejoin, arm (b): a `Wake::Stay` node runs every round —
        // nothing but a crash window removes it from the active set —
        // so a gap in `last_round` means this node was down and its
        // in-flight inbound is gone. Announce on every live link (the
        // round's one wire message per link), re-arm own retransmission
        // clocks, and resume normal framing next round. Neither arm can
        // fire without a crash plan, so drop/delay-only runs (and their
        // committed fingerprints) are untouched.
        if self.rejoin && (missed_start || (st.stay && now > st.last_round + 1)) {
            for link in &mut st.links {
                if !link.dead {
                    link.timer = now + 1;
                    link.rto = RTO_BASE;
                }
            }
            for i in 0..degree {
                if !st.links[i].dead {
                    let peer = ctx.neighbors()[i];
                    let hello = ReliableMsg::Hello {
                        tag: hello_tag(me, peer),
                    };
                    ctx.send_nth(i, hello);
                }
            }
            st.last_round = now;
            st.stay = matches!(self.wake(st), Wake::Stay);
            return;
        }

        // 2. Execute at most one inner (virtual) round, once every live
        //    link has delivered the previous round's frame.
        let can_exec = !st.stopped && st.links.iter().all(|l| l.dead || l.recv >= st.vr);
        if can_exec {
            let t = st.vr;
            // Inner inbox: the frame each live link queued for this
            // round, in neighbor order — the same order the engine's
            // gather produces, so inbox-order-sensitive protocols
            // behave identically.
            st.inner_inbox.clear();
            let mut quiet_floor = u32::MAX;
            for (i, link) in st.links.iter_mut().enumerate() {
                if link.dead {
                    continue;
                }
                if t > 0 {
                    let (payload, q) = link.pending_in.pop_front().expect("synchronizer invariant");
                    quiet_floor = quiet_floor.min(q);
                    if let Some(m) = payload {
                        st.inner_inbox.push((ctx.neighbors()[i], m));
                    }
                }
            }
            // Gated inner hook, as in `Join`: a side that is asleep
            // with no mail promised its hook is a no-op (and draws no
            // RNG), so skipping it is outcome-neutral.
            let run =
                t == 0 || !st.inner_inbox.is_empty() || self.inner.wake(&st.inner) == Wake::Stay;
            let mut sent_any = false;
            if run {
                if run_inner_captured(
                    &self.inner,
                    &mut st.inner,
                    &st.inner_inbox,
                    &mut st.slots,
                    &mut st.occ,
                    &mut st.dirty,
                    &mut st.per_arc,
                    t,
                    ctx,
                ) {
                    // Violation recorded; the run is aborting. Drain
                    // any captured payloads so nothing leaks.
                    for i in 0..degree {
                        if st.occ[i] {
                            st.occ[i] = false;
                            // SAFETY: set occupancy ⇒ initialized slot.
                            unsafe { st.slots[i].assume_init_drop() };
                        }
                    }
                    st.dirty.clear();
                    return;
                }
                sent_any = !st.dirty.is_empty();
            }
            // Quiet-level update (module docs): active resets the cone,
            // inactivity grows it by one past the slowest visible
            // neighbor.
            let active = sent_any || (run && self.inner.wake(&st.inner) == Wake::Stay);
            st.quiet = if active {
                0
            } else {
                1 + st.quiet.min(quiet_floor)
            };
            let n = ctx.n() as u32;
            let lim = self.quiet_bound.map_or(n, |b| b.saturating_add(1).min(n));
            if st.quiet > lim {
                st.quiet = lim + 1; // saturate: cone already covers the graph
                st.stopped = true;
                // Satellite check: inner payloads already received for
                // virtual rounds this node will now never execute are
                // proof the quiet bound lied (under a true bound, every
                // node in the cone was provably inactive then). Surface
                // it instead of silently losing the data.
                let leftover = st.links.iter().any(|l| {
                    l.pending_in.iter().any(|f| f.0.is_some())
                        || l.ooo.iter().any(|f| f.1.is_some())
                });
                if leftover && ctx.tx.violation.is_none() {
                    *ctx.tx.violation = Some(SimError::QuietBoundViolated {
                        node: me,
                        round: now,
                    });
                }
            }
            // Frame this round's (possibly absent) payload for every
            // live link.
            st.dirty.clear();
            for (i, link) in st.links.iter_mut().enumerate() {
                let payload = if st.occ[i] {
                    st.occ[i] = false;
                    // SAFETY: the occupancy byte was set by a captured
                    // send, so the slot holds an initialized message;
                    // clearing it first makes the move-out unique.
                    Some(unsafe { st.slots[i].assume_init_read() })
                } else {
                    None
                };
                if !link.dead {
                    link.frames.push_back((payload, st.quiet));
                    link.produced += 1;
                }
            }
            st.vr += 1;
        }

        // 3. Transmit: per link, at most one wire message per round —
        //    a new frame first, else a due retransmission of the oldest
        //    unacked frame, else a standalone ack if one is owed.
        for i in 0..degree {
            let peer = ctx.neighbors()[i];
            let link = &mut st.links[i];
            if link.dead {
                continue;
            }
            if link.next_tx < link.produced {
                let idx = (link.next_tx - link.acked) as usize;
                let (payload, quiet) = link.frames[idx].clone();
                let frame = ReliableMsg::Data {
                    seq: link.next_tx,
                    ack: link.recv,
                    quiet,
                    tag: frame_tag(me, peer, link.next_tx, link.recv, quiet, &payload),
                    payload,
                };
                link.next_tx += 1;
                link.timer = now + link.rto;
                link.ack_owed = false;
                ctx.send_nth(i, frame);
            } else if link.acked < link.next_tx && now >= link.timer {
                let (payload, quiet) = link.frames[0].clone();
                let frame = ReliableMsg::Data {
                    seq: link.acked,
                    ack: link.recv,
                    quiet,
                    tag: frame_tag(me, peer, link.acked, link.recv, quiet, &payload),
                    payload,
                };
                link.timer = now + link.rto;
                link.rto = (link.rto * 2).min(RTO_MAX);
                link.ack_owed = false;
                ctx.send_nth(i, frame);
            } else if link.ack_owed {
                link.ack_owed = false;
                let ack = ReliableMsg::Ack {
                    ack: link.recv,
                    tag: ack_tag(me, peer, link.recv),
                };
                ctx.send_nth(i, ack);
            }
        }

        // Bookkeeping for rejoin arm (b): remember that this round ran
        // and whether it ended in `Stay` (a staying node's next hook is
        // guaranteed for round `now + 1` — unless a crash intervenes).
        st.last_round = now;
        st.stay = matches!(self.wake(st), Wake::Stay);
    }

    fn halted(&self, st: &Self::State) -> bool {
        st.dead || (st.stopped && st.links.iter().all(|l| !l.busy()))
    }

    fn wake(&self, st: &Self::State) -> Wake {
        if st.dead {
            return Wake::Sleep;
        }
        // Stay while any link has traffic to move (unsent or unacked
        // frames drive the retransmission clock; an owed ack must go
        // out), or while the next inner round is already executable —
        // no mail will arrive to trigger it. Otherwise sleep: the frame
        // we are waiting for will arrive as mail and re-activate us
        // (its sender retransmits until we ack).
        let busy = st.links.iter().any(Link::busy);
        let can_exec =
            st.initialized && !st.stopped && st.links.iter().all(|l| l.dead || l.recv >= st.vr);
        if busy || can_exec || !st.initialized {
            Wake::Stay
        } else {
            Wake::Sleep
        }
    }

    fn finish(self, graph: &Graph, states: Vec<Self::State>, stats: &RunStats) -> Self::Output {
        let inner_states = states.into_iter().map(|s| s.inner).collect();
        self.inner.finish(graph, inner_states, stats)
    }
}

/// Runs the inner protocol's hook for virtual round `t` against a
/// capture context (sends land in the per-neighbor slots; no wire
/// effects — the real sends happen when the frames are transmitted).
/// Returns `true` when the inner hook committed a model violation
/// (recorded into the real context; the engine aborts the run).
#[allow(clippy::too_many_arguments)]
fn run_inner_captured<P: Protocol, W: Message>(
    proto: &P,
    state: &mut P::State,
    inbox: &[(NodeId, P::Msg)],
    slots: &mut [std::mem::MaybeUninit<P::Msg>],
    occ: &mut [bool],
    dirty: &mut Vec<u32>,
    per_arc: &mut [u32],
    t: u64,
    ctx: &mut RoundCtx<'_, W>,
) -> bool {
    let mut violation = None;
    let (mut messages, mut words) = (0u64, 0u64);
    {
        let mut capture = RoundCtx {
            node: ctx.node,
            // The inner protocol lives in virtual time: it sees the
            // virtual round number, not the outer engine round.
            round: t,
            graph: ctx.graph,
            inbox,
            rng: &mut *ctx.rng,
            shared: ctx.shared,
            tx: TxState {
                slots,
                occ,
                heads: ctx.tx.heads,
                arc_base: 0,
                wire: None,
                dirty,
                messages: &mut messages,
                words: &mut words,
                per_arc,
                violation: &mut violation,
                bandwidth: ctx.tx.bandwidth,
            },
        };
        proto.round(state, &mut capture);
    }
    if let Some(v) = violation {
        if ctx.tx.violation.is_none() {
            *ctx.tx.violation = Some(v);
        }
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::Bfs;
    use crate::session::Session;
    use crate::sim::{Crash, FaultPlan, SimConfig};
    use crate::tree::{positions_from_tree, AggOp, TreeAggregate};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn gnp(n: usize, p: f64, seed: u64) -> Graph {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        lcs_graph::generators::gnp_connected(n, p, &mut rng)
    }

    fn lossy_cfg(shards: usize, fault_seed: u64) -> SimConfig {
        SimConfig {
            shards,
            max_rounds: 100_000,
            faults: Some(FaultPlan {
                drop_rate: 0.10,
                delay_rate: 0.10,
                max_delay: 2,
                corrupt_rate: 0.05,
                crashes: Vec::new(),
                fault_seed,
            }),
            ..SimConfig::default()
        }
    }

    /// `Reliable<Bfs>` over a 10% drop / 10% delay-≤2 network produces
    /// the exact fault-free BFS tree, and the reliability overhead
    /// (frames, retransmissions, acks) is visible in the statistics.
    #[test]
    fn reliable_bfs_matches_fault_free_output_under_drops_and_delays() {
        let g = gnp(48, 0.12, 0xFEED);
        let clean = Session::new(&g, SimConfig::default())
            .run(Bfs::new(0))
            .unwrap();
        for fault_seed in [1u64, 0xBAD_F00D] {
            let cfg = lossy_cfg(1, fault_seed);
            let mut session = Session::new(&g, cfg);
            let out = session.run(Reliable::new(Bfs::new(0))).unwrap();
            assert_eq!(out.dist, clean.dist, "seed {fault_seed:#x}");
            assert_eq!(out.parent, clean.parent);
            assert_eq!(out.children, clean.children);
            // Faults really fired, and reliability paid for them.
            assert!(out.stats.dropped > 0, "no drops at seed {fault_seed:#x}");
            assert!(out.stats.delayed > 0, "no delays at seed {fault_seed:#x}");
            assert!(
                out.stats.corrupted > 0,
                "no corruptions at seed {fault_seed:#x}"
            );
            assert!(
                out.stats.messages > clean.stats.messages,
                "reliability overhead must appear in message counts"
            );
            assert!(out.stats.rounds > clean.stats.rounds);
        }
    }

    /// Same guarantee for a convergecast protocol whose nodes always
    /// sleep between messages (`TreeAggregate`): the frame layer must
    /// wake them reliably.
    #[test]
    fn reliable_tree_aggregate_matches_fault_free_output() {
        let g = lcs_graph::generators::grid(6, 5);
        let clean_bfs = Session::new(&g, SimConfig::default())
            .run(Bfs::new(0))
            .unwrap();
        let positions = positions_from_tree(0, &clean_bfs.parent, &clean_bfs.children);
        let values: Vec<u64> = (0..g.n() as u64).map(|v| v * v + 1).collect();
        let clean = Session::new(&g, SimConfig::default())
            .run(TreeAggregate::new(
                positions.clone(),
                &values,
                AggOp::Sum,
                true,
            ))
            .unwrap();
        let mut session = Session::new(&g, lossy_cfg(1, 0xD1CE));
        let (results, stats) = session
            .run(Reliable::new(TreeAggregate::new(
                positions,
                &values,
                AggOp::Sum,
                true,
            )))
            .unwrap();
        assert_eq!(results, clean.0);
        assert!(stats.dropped > 0 && stats.delayed > 0);
        assert!(stats.messages > clean.1.messages);
    }

    /// The whole lossy run — fault fates, retransmissions, outputs,
    /// fingerprint — is bit-identical at every shard count.
    #[test]
    fn reliable_bfs_under_faults_is_shard_invariant() {
        let g = gnp(40, 0.15, 0x5EED);
        let base = Session::new(&g, lossy_cfg(1, 7))
            .run(Reliable::new(Bfs::new(0)))
            .unwrap();
        for shards in [2usize, 3, 8] {
            let out = Session::new(&g, lossy_cfg(shards, 7))
                .run(Reliable::new(Bfs::new(0)))
                .unwrap();
            assert_eq!(out.dist, base.dist, "shards={shards}");
            assert_eq!(out.parent, base.parent, "shards={shards}");
            assert_eq!(
                out.stats.fingerprint(),
                base.stats.fingerprint(),
                "shards={shards}"
            );
            assert_eq!(out.stats.dropped, base.stats.dropped);
            assert_eq!(out.stats.delayed, base.stats.delayed);
        }
    }

    /// A correct diameter bound shrinks the termination quiet wave
    /// without changing the output — and materially shortens the run.
    #[test]
    fn quiet_bound_preserves_output_and_shortens_termination() {
        let g = lcs_graph::generators::grid(8, 6);
        let clean = Session::new(&g, SimConfig::default())
            .run(Bfs::new(0))
            .unwrap();
        let unbounded = Session::new(&g, lossy_cfg(1, 99))
            .run(Reliable::new(Bfs::new(0)))
            .unwrap();
        let bounded = Session::new(&g, lossy_cfg(1, 99))
            .run(Reliable::new(Bfs::new(0)).with_quiet_bound(7 + 5))
            .unwrap();
        assert_eq!(bounded.dist, clean.dist);
        assert_eq!(bounded.parent, clean.parent);
        assert_eq!(unbounded.dist, clean.dist);
        assert!(
            bounded.stats.rounds < unbounded.stats.rounds,
            "quiet bound must cut the O(n) termination tail ({} vs {})",
            bounded.stats.rounds,
            unbounded.stats.rounds
        );
    }

    /// With a permanently crashed node and a perfect failure detector
    /// (`with_crashed`), the inner protocol completes on the surviving
    /// subgraph: distances match a fault-free BFS on the graph with the
    /// crashed node's edges removed.
    #[test]
    fn reliable_bfs_with_crashed_node_completes_on_survivors() {
        // A 6x5 grid; crash node 17 (an interior node, not the root).
        let g = lcs_graph::generators::grid(6, 5);
        let dead: NodeId = 17;
        let cfg = SimConfig {
            max_rounds: 100_000,
            faults: Some(FaultPlan {
                drop_rate: 0.10,
                delay_rate: 0.0,
                max_delay: 1,
                corrupt_rate: 0.05,
                crashes: vec![Crash {
                    node: dead,
                    at_round: 0,
                    recover_at: None,
                }],
                fault_seed: 3,
            }),
            ..SimConfig::default()
        };
        let out = Session::new(&g, cfg)
            .run(Reliable::with_crashed(Bfs::new(0), &[dead]))
            .unwrap();
        // Reference: fault-free BFS on the graph minus the dead node.
        let surviving: Vec<(NodeId, NodeId)> = g
            .edges()
            .iter()
            .copied()
            .filter(|&(a, b)| a != dead && b != dead)
            .collect();
        let gs = lcs_graph::Graph::from_edges(g.n(), &surviving).unwrap();
        let clean = Session::new(&gs, SimConfig::default())
            .run(Bfs::new(0))
            .unwrap();
        for v in 0..g.n() {
            if v as NodeId == dead {
                continue;
            }
            assert_eq!(out.dist[v], clean.dist[v], "node {v}");
        }
        assert_eq!(out.stats.crashed_nodes, 1);
    }

    /// A quiet bound that underestimates the diameter used to silently
    /// lose in-flight inner messages; now the first node that observes
    /// inner data after its stop aborts the run with a typed error. No
    /// faults needed: the bound alone breaks the termination argument.
    #[test]
    fn underestimated_quiet_bound_is_detected_not_silent() {
        let g = lcs_graph::generators::path(24); // diameter 23
        let err = Session::new(&g, SimConfig::default())
            .run(Reliable::new(Bfs::new(0)).with_quiet_bound(2))
            .expect_err("a bound of 2 on a diameter-23 path must be caught");
        assert!(
            matches!(err, crate::SimError::QuietBoundViolated { .. }),
            "wrong error: {err}"
        );
        // The same run with an honest bound completes exactly.
        let clean = Session::new(&g, SimConfig::default())
            .run(Bfs::new(0))
            .unwrap();
        let ok = Session::new(&g, SimConfig::default())
            .run(Reliable::new(Bfs::new(0)).with_quiet_bound(23))
            .unwrap();
        assert_eq!(ok.dist, clean.dist);
    }

    /// Transient crash windows (state intact, in-flight mail lost) are
    /// absorbed: with the rejoin handshake the output is byte-identical
    /// to fault-free, and the resync is measurably faster than waiting
    /// out the backed-off retransmission timers — the pinned stall
    /// comparison the handshake exists for.
    #[test]
    fn rejoin_handshake_cuts_transient_crash_stall() {
        let g = lcs_graph::generators::grid(6, 5);
        let clean = Session::new(&g, SimConfig::default())
            .run(Bfs::new(0))
            .unwrap();
        // Two outages: one node down from phase start (rejoin arm (a)),
        // one knocked out mid-run (arm (b)). Recovery well past the
        // point where neighbor RTOs have backed off.
        let faulty_cfg = || SimConfig {
            max_rounds: 100_000,
            faults: Some(FaultPlan {
                crashes: vec![
                    Crash {
                        node: 7,
                        at_round: 0,
                        recover_at: Some(40),
                    },
                    Crash {
                        node: 22,
                        at_round: 3,
                        recover_at: Some(40),
                    },
                ],
                ..FaultPlan::default()
            }),
            ..SimConfig::default()
        };
        let with = Session::new(&g, faulty_cfg())
            .run(Reliable::new(Bfs::new(0)))
            .unwrap();
        let without = Session::new(&g, faulty_cfg())
            .run(Reliable::new(Bfs::new(0)).with_rejoin(false))
            .unwrap();
        // Both are exact — the handshake buys latency, not correctness.
        assert_eq!(with.dist, clean.dist);
        assert_eq!(with.parent, clean.parent);
        assert_eq!(without.dist, clean.dist);
        // Pinned stall cut: without the handshake the recovered links
        // wait out their backed-off timers (up to RTO_MAX past the
        // recovery round); with it they resync in ~1 round.
        assert!(
            with.stats.rounds + 8 <= without.stats.rounds,
            "rejoin must measurably cut the stall ({} vs {})",
            with.stats.rounds,
            without.stats.rounds
        );
        // And rejoin stays shard-invariant like everything else.
        for shards in [2usize, 8] {
            let cfg = SimConfig {
                shards,
                ..faulty_cfg()
            };
            let out = Session::new(&g, cfg)
                .run(Reliable::new(Bfs::new(0)))
                .unwrap();
            assert_eq!(out.dist, with.dist, "shards={shards}");
            assert_eq!(
                out.stats.fingerprint(),
                with.stats.fingerprint(),
                "shards={shards}"
            );
        }
    }

    /// The full Byzantine-tier plan — drops, delays, *and* payload
    /// corruption — leaves `Reliable<Bfs>` byte-identical to fault-free
    /// at shard counts {1, 2, 8}: corrupted frames fail their integrity
    /// tags, are treated as drops, and ARQ re-sends them intact.
    #[test]
    fn reliable_bfs_is_exact_and_shard_invariant_under_corruption() {
        let g = gnp(40, 0.15, 0xC0DE);
        let clean = Session::new(&g, SimConfig::default())
            .run(Bfs::new(0))
            .unwrap();
        let base = Session::new(&g, lossy_cfg(1, 0xFACE))
            .run(Reliable::new(Bfs::new(0)))
            .unwrap();
        assert_eq!(base.dist, clean.dist);
        assert_eq!(base.parent, clean.parent);
        assert!(base.stats.corrupted > 0, "corruption tier must fire");
        for shards in [2usize, 8] {
            let out = Session::new(&g, lossy_cfg(shards, 0xFACE))
                .run(Reliable::new(Bfs::new(0)))
                .unwrap();
            assert_eq!(out.dist, base.dist, "shards={shards}");
            assert_eq!(out.stats, base.stats, "shards={shards}");
            assert_eq!(
                out.stats.fingerprint(),
                base.stats.fingerprint(),
                "shards={shards}"
            );
        }
    }
}
