//! The [`Session`] runner: one engine instance — graph, worker pool,
//! reverse-arc tables, cumulative statistics — shared by any number of
//! [`Protocol`] phases.
//!
//! Multi-phase CONGEST computations (the shortcut construction's
//! BFS → aggregation → numbering → multi-BFS → verification pipeline;
//! Boruvka's per-phase MWOE aggregations) previously paid full engine
//! setup per phase and could not overlap phases at all. A `Session`
//! fixes both:
//!
//! * **Sequential composition** — [`Session::run`] executes phases
//!   back-to-back on the *same* worker pool (spawned exactly once, at
//!   session creation) and the same precomputed reverse-arc table,
//!   absorbing every phase's [`RunStats`] into one cumulative total
//!   with a per-phase breakdown ([`Session::phases`]) and an optional
//!   cumulative round budget ([`Session::with_round_budget`]).
//! * **Concurrent composition** — [`Session::join`] runs two protocols
//!   in shared rounds via [`Join`], multiplexing per-edge bandwidth
//!   round-robin, so independent computations finish in roughly the
//!   rounds of the slower one instead of the sum.
//!
//! Determinism is inherited from the engine: outcomes, statistics, and
//! per-node RNG streams of every phase are bit-identical for any shard
//! count. Each phase reseeds its node RNGs from the phase's
//! [`SimConfig::seed`] (overridable per phase via
//! [`Session::run_configured`]), so a pipeline run through one session
//! is also bit-identical to the same phases run through separate
//! engines — sessions change the cost model, never the outcome.
//!
//! ```
//! use lcs_congest::{tree, Bfs, Session, SimConfig};
//! use lcs_congest::{positions_from_tree, AggOp};
//!
//! let g = lcs_graph::generators::grid(4, 4);
//! let mut session = Session::new(&g, SimConfig::default());
//!
//! // Phase 1: build a BFS tree from node 0.
//! let bfs = session.run(Bfs::new(0)).unwrap();
//! let pos = positions_from_tree(0, &bfs.parent, &bfs.children);
//!
//! // Phase 2 ∥ 3: count nodes and find the max value, in SHARED
//! // rounds (one joined phase, not two sequential ones).
//! let ones = vec![1u64; g.n()];
//! let ids: Vec<u64> = (0..g.n() as u64).collect();
//! let (count, max) = session
//!     .join(
//!         tree::TreeAggregate::new(pos.clone(), &ones, AggOp::Sum, true),
//!         tree::TreeAggregate::new(pos, &ids, AggOp::Max, true),
//!     )
//!     .unwrap();
//! assert_eq!(count.0[0], Some(16));
//! assert_eq!(max.0[0], Some(15));
//!
//! // Cumulative and per-phase accounting.
//! assert_eq!(session.phases().len(), 2);
//! assert_eq!(
//!     session.stats().rounds,
//!     session.phases().iter().map(|p| p.rounds).sum::<u64>(),
//! );
//! ```

use crate::error::SimError;
use crate::node::{RoundCtx, Wake};
use crate::protocol::{Join, Protocol};
use crate::sim::{run_phase, Driver, EngineHost, SimConfig};
use crate::stats::RunStats;
use lcs_graph::Graph;

/// Adapts a [`Protocol`] to the engine's internal dispatch trait.
struct ProtocolDriver<'p, P>(&'p P);

impl<P: Protocol + Sync> Driver for ProtocolDriver<'_, P> {
    type Msg = P::Msg;
    type State = P::State;
    #[inline]
    fn node_round(&self, state: &mut P::State, ctx: &mut RoundCtx<'_, P::Msg>) {
        self.0.round(state, ctx);
    }
    #[inline]
    fn node_wake(&self, state: &P::State) -> Wake {
        self.0.wake(state)
    }
}

/// One engine instance (worker pool, reverse-arc table, RNG seeding
/// discipline, cumulative statistics) hosting a pipeline of
/// [`Protocol`] phases over one graph. See the [module docs](self).
pub struct Session<'g> {
    graph: &'g Graph,
    cfg: SimConfig,
    host: EngineHost,
    cumulative: RunStats,
    phases: Vec<RunStats>,
    round_budget: Option<u64>,
    /// Rounds charged to the budget by phases that FAILED with
    /// [`SimError::RoundLimitExceeded`] (the engine reports no stats on
    /// failure, but those rounds really executed — a failed phase must
    /// not leave the budget untouched).
    charged_rounds: u64,
}

impl std::fmt::Debug for Session<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("n", &self.graph.n())
            .field("shards", &self.shards())
            .field("phases", &self.phases.len())
            .field("rounds_used", &self.cumulative.rounds)
            .field("round_budget", &self.round_budget)
            .finish()
    }
}

impl<'g> Session<'g> {
    /// Creates a session on `graph`. The worker pool is spawned here —
    /// once — with `cfg.shards` resolved per
    /// [`SimConfig::resolved_shards`]; every phase reuses it. `cfg` is
    /// the default configuration of each phase (see
    /// [`Session::run_configured`] for per-phase overrides; a phase
    /// override of `shards` is ignored, since the pool is fixed).
    pub fn new(graph: &'g Graph, cfg: SimConfig) -> Self {
        let host = EngineHost::new(graph, cfg.resolved_shards(graph.n()));
        Session {
            graph,
            cfg,
            host,
            cumulative: RunStats::new(graph),
            phases: Vec::new(),
            round_budget: None,
            charged_rounds: 0,
        }
    }

    /// Caps the session's **cumulative** rounds across all phases.
    /// Each subsequent phase runs with `max_rounds` clamped to the
    /// remaining budget; once the budget is spent, further phases fail
    /// with [`SimError::RoundLimitExceeded`] (reporting the budget as
    /// the limit). This is the session-level form of the paper's round
    /// accounting: a pipeline is one algorithm with one budget, not a
    /// sequence of independently-bounded runs.
    pub fn with_round_budget(mut self, budget: u64) -> Self {
        self.round_budget = Some(budget);
        self
    }

    /// The graph this session runs on.
    pub fn graph(&self) -> &'g Graph {
        self.graph
    }

    /// The session's base phase configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// The resolved shard count (= persistent pool workers).
    pub fn shards(&self) -> usize {
        self.host.pool.workers()
    }

    /// Cumulative statistics over all completed phases.
    pub fn stats(&self) -> &RunStats {
        &self.cumulative
    }

    /// Per-phase statistics, in execution order, each labeled with the
    /// phase's [`Protocol::label`] (or the explicit
    /// [`Session::run_labeled`] label).
    pub fn phases(&self) -> &[RunStats] {
        &self.phases
    }

    /// Rounds consumed so far, cumulative across phases — including
    /// rounds charged to phases that failed with
    /// [`SimError::RoundLimitExceeded`] (those executed to their cap
    /// even though the engine reports no statistics for them).
    pub fn rounds_used(&self) -> u64 {
        self.cumulative.rounds + self.charged_rounds
    }

    /// Rounds left in the budget (`None` when unbudgeted).
    pub fn rounds_remaining(&self) -> Option<u64> {
        self.round_budget
            .map(|b| b.saturating_sub(self.rounds_used()))
    }

    /// Runs one protocol phase to quiescence and returns its typed
    /// output; the phase's statistics are recorded under
    /// [`Protocol::label`].
    ///
    /// # Errors
    ///
    /// Returns a [`SimError`] on any CONGEST-model violation, when the
    /// phase exceeds `max_rounds`, or when the session's round budget
    /// is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if the protocol's `init` does not produce exactly one
    /// state per node, or propagates a panic from a protocol hook (on
    /// any shard — the pool never deadlocks on a panicking phase).
    pub fn run<P: Protocol + Sync>(&mut self, protocol: P) -> Result<P::Output, SimError> {
        let label = protocol.label().to_string();
        self.dispatch(label, protocol, |_| {})
    }

    /// [`Session::run`] with an explicit phase label (overriding
    /// [`Protocol::label`]) — useful when one pipeline runs the same
    /// protocol type several times.
    ///
    /// # Errors
    ///
    /// As [`Session::run`].
    pub fn run_labeled<P: Protocol + Sync>(
        &mut self,
        label: impl Into<String>,
        protocol: P,
    ) -> Result<P::Output, SimError> {
        self.dispatch(label.into(), protocol, |_| {})
    }

    /// [`Session::run`] with a per-phase configuration override
    /// (applied to a copy of the session config): seed, round limit,
    /// bandwidth. A `shards` override is ignored — the pool is fixed
    /// for the session's lifetime.
    ///
    /// # Errors
    ///
    /// As [`Session::run`].
    pub fn run_configured<P: Protocol + Sync>(
        &mut self,
        label: impl Into<String>,
        protocol: P,
        configure: impl FnOnce(&mut SimConfig),
    ) -> Result<P::Output, SimError> {
        self.dispatch(label.into(), protocol, configure)
    }

    /// Runs two protocols **concurrently in shared rounds** (see
    /// [`Join`]) and returns both outputs. The phase accounts rounds
    /// once — this is the whole point: `k` independent aggregations
    /// joined pairwise complete in roughly the rounds of the slowest,
    /// not the sum.
    ///
    /// # Errors
    ///
    /// As [`Session::run`].
    pub fn join<P1, P2>(
        &mut self,
        first: P1,
        second: P2,
    ) -> Result<(P1::Output, P2::Output), SimError>
    where
        P1: Protocol + Sync,
        P2: Protocol + Sync,
    {
        self.run(Join::new(first, second))
    }

    fn dispatch<P: Protocol + Sync>(
        &mut self,
        label: String,
        mut protocol: P,
        configure: impl FnOnce(&mut SimConfig),
    ) -> Result<P::Output, SimError> {
        let mut cfg = self.cfg.clone();
        configure(&mut cfg);
        if let Some(budget) = self.round_budget {
            let remaining = budget.saturating_sub(self.rounds_used());
            if remaining == 0 {
                return Err(SimError::RoundLimitExceeded { limit: budget });
            }
            cfg.max_rounds = cfg.max_rounds.min(remaining);
        }
        cfg.validate()?;
        let states = protocol.init(self.graph);
        let driver = ProtocolDriver(&protocol);
        let (states, stats) = match run_phase(self.graph, &mut self.host, &driver, states, &cfg) {
            Ok(done) => done,
            Err(e) => {
                if matches!(e, SimError::RoundLimitExceeded { .. }) {
                    // The phase ran all the way to its cap; debit the
                    // budget so a caller that catches the error and
                    // retries cannot execute unbounded rounds under it.
                    self.charged_rounds += cfg.max_rounds;
                }
                return Err(e);
            }
        };
        let stats = stats.labeled(label);
        self.cumulative.absorb(&stats);
        let output = protocol.finish(self.graph, states, &stats);
        self.phases.push(stats);
        Ok(output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::Bfs;
    use crate::tree::{positions_from_tree, AggOp, TreeAggregate, TreePosition};
    use lcs_graph::NodeId;

    fn path_positions(n: usize, root: NodeId) -> Vec<TreePosition> {
        // A path tree rooted at `root` (must be an endpoint: 0 or n-1).
        (0..n as NodeId)
            .map(|v| {
                let (parent, children) = if root == 0 {
                    (
                        (v > 0).then(|| v - 1),
                        if (v as usize) < n - 1 {
                            vec![v + 1]
                        } else {
                            vec![]
                        },
                    )
                } else {
                    (
                        ((v as usize) < n - 1).then(|| v + 1),
                        if v > 0 { vec![v - 1] } else { vec![] },
                    )
                };
                TreePosition {
                    parent,
                    children,
                    in_tree: true,
                    is_root: v == root,
                }
            })
            .collect()
    }

    #[test]
    fn sequential_phases_accumulate_stats_and_labels() {
        let g = lcs_graph::generators::grid(4, 4);
        let mut session = Session::new(&g, SimConfig::default());
        let bfs = session.run(Bfs::new(0)).unwrap();
        let pos = positions_from_tree(0, &bfs.parent, &bfs.children);
        let ones = vec![1u64; g.n()];
        let (res, agg_stats) = session
            .run(TreeAggregate::new(pos, &ones, AggOp::Sum, false))
            .unwrap();
        assert_eq!(res[0], Some(16));
        assert_eq!(session.phases().len(), 2);
        assert_eq!(session.phases()[0].label, "bfs");
        assert_eq!(session.phases()[1].label, "tree_aggregate");
        assert_eq!(session.phases()[1], agg_stats);
        assert_eq!(
            session.stats().rounds,
            bfs.stats.rounds + agg_stats.rounds,
            "cumulative = sum of phases"
        );
        assert_eq!(
            session.stats().messages,
            bfs.stats.messages + agg_stats.messages
        );
    }

    /// The acceptance property of `join`: two tree aggregations in one
    /// joined phase complete in STRICTLY fewer total rounds than the
    /// same two run back-to-back, because they share rounds.
    #[test]
    fn join_of_two_aggregations_beats_back_to_back_rounds() {
        let n = 24;
        let g = lcs_graph::generators::path(n);
        let values: Vec<u64> = (0..n as u64).collect();
        let mk_down = || TreeAggregate::new(path_positions(n, 0), &values, AggOp::Sum, true);
        let mk_up = || {
            TreeAggregate::new(
                path_positions(n, (n - 1) as NodeId),
                &values,
                AggOp::Max,
                true,
            )
        };

        // Back-to-back: two sequential phases.
        let mut seq = Session::new(&g, SimConfig::default());
        let (r1, _) = seq.run(mk_down()).unwrap();
        let (r2, _) = seq.run(mk_up()).unwrap();
        let sequential_rounds = seq.stats().rounds;

        // Joined: one shared phase.
        let mut joined = Session::new(&g, SimConfig::default());
        let ((j1, _), (j2, _)) = joined.join(mk_down(), mk_up()).unwrap();
        let joined_rounds = joined.stats().rounds;

        assert_eq!(j1, r1, "joined results must match standalone");
        assert_eq!(j2, r2);
        assert!(
            joined_rounds < sequential_rounds,
            "join must share rounds: joined {joined_rounds} vs sequential {sequential_rounds}"
        );
        assert_eq!(joined.phases().len(), 1);
        assert_eq!(joined.phases()[0].label, "tree_aggregate+tree_aggregate");
    }

    /// Joins nest: three aggregations in one phase, all correct.
    #[test]
    fn nested_join_shares_rounds_three_ways() {
        let n = 16;
        let g = lcs_graph::generators::path(n);
        let values: Vec<u64> = (0..n as u64).collect();
        let mk = |op| TreeAggregate::new(path_positions(n, 0), &values, op, true);
        let mut session = Session::new(&g, SimConfig::default());
        let (sum, (min, max)) = session
            .join(
                mk(AggOp::Sum),
                crate::protocol::Join::new(mk(AggOp::Min), mk(AggOp::Max)),
            )
            .unwrap();
        assert_eq!(sum.0[5], Some((0..16).sum::<u64>()));
        assert_eq!(min.0[5], Some(0));
        assert_eq!(max.0[5], Some(15));
    }

    /// Join halves must not corrupt each other's messages: results on
    /// every node match the standalone runs even under heavy sharing.
    #[test]
    fn joined_runs_are_bit_identical_to_standalone_runs() {
        let g = lcs_graph::generators::grid(5, 5);
        let bfs = Session::new(&g, SimConfig::default())
            .run(Bfs::new(0))
            .unwrap();
        let pos = positions_from_tree(0, &bfs.parent, &bfs.children);
        let a_vals: Vec<u64> = (0..g.n() as u64).map(|v| v * 3 + 1).collect();
        let b_vals: Vec<u64> = (0..g.n() as u64).map(|v| 1000 - v).collect();
        let mk_a = || TreeAggregate::new(pos.clone(), &a_vals, AggOp::Sum, true);
        let mk_b = || TreeAggregate::new(pos.clone(), &b_vals, AggOp::Min, true);
        let (a_alone, _) = Session::new(&g, SimConfig::default()).run(mk_a()).unwrap();
        let (b_alone, _) = Session::new(&g, SimConfig::default()).run(mk_b()).unwrap();
        let ((a, _), (b, _)) = Session::new(&g, SimConfig::default())
            .join(mk_a(), mk_b())
            .unwrap();
        assert_eq!(a, a_alone);
        assert_eq!(b, b_alone);
    }

    #[test]
    fn round_budget_is_cumulative_across_phases() {
        let g = lcs_graph::generators::path(12);
        let mut session = Session::new(&g, SimConfig::default()).with_round_budget(1000);
        let first = session.run(Bfs::new(0)).unwrap();
        assert_eq!(session.rounds_remaining(), Some(1000 - first.stats.rounds));
        // Exhaust the budget with a tiny one.
        let mut tight = Session::new(&g, SimConfig::default()).with_round_budget(3);
        let err = tight.run(Bfs::new(0)).unwrap_err();
        assert!(matches!(err, SimError::RoundLimitExceeded { .. }));
        // The failed phase executed to its cap and must be DEBITED:
        // a caller that catches the error and retries cannot run
        // unbounded rounds under the budget.
        assert_eq!(tight.rounds_used(), 3);
        assert_eq!(tight.rounds_remaining(), Some(0));
        let err = tight.run(Bfs::new(0)).unwrap_err();
        assert_eq!(err, SimError::RoundLimitExceeded { limit: 3 });
        let mut spent = Session::new(&g, SimConfig::default()).with_round_budget(0);
        let err = spent.run(Bfs::new(0)).unwrap_err();
        assert_eq!(err, SimError::RoundLimitExceeded { limit: 0 });
    }

    #[test]
    fn run_configured_overrides_seed_per_phase() {
        let g = lcs_graph::generators::grid(3, 3);
        // A protocol whose outcome depends on the node RNG stream.
        struct Coin;
        impl Protocol for Coin {
            type Msg = ();
            type State = u64;
            type Output = Vec<u64>;
            fn init(&mut self, graph: &Graph) -> Vec<u64> {
                vec![0; graph.n()]
            }
            fn round(&self, st: &mut u64, ctx: &mut RoundCtx<'_, ()>) {
                if ctx.round() == 0 {
                    *st = rand::Rng::gen(ctx.rng());
                }
            }
            fn halted(&self, _: &u64) -> bool {
                true
            }
            fn finish(self, _: &Graph, st: Vec<u64>, _: &RunStats) -> Vec<u64> {
                st
            }
        }
        let mut session = Session::new(&g, SimConfig::default());
        let a = session.run(Coin).unwrap();
        let b = session.run(Coin).unwrap();
        let c = session
            .run_configured("coin2", Coin, |cfg| cfg.seed ^= 0xDEAD)
            .unwrap();
        assert_eq!(a, b, "same phase seed, same streams");
        assert_ne!(a, c, "overridden seed must move the streams");
        assert_eq!(session.phases()[2].label, "coin2");
    }

    /// A model violation inside one side of a join aborts the run with
    /// the violation, exactly like a standalone run.
    #[test]
    fn join_propagates_model_violations() {
        let g = lcs_graph::generators::path(3);
        let bad = TreeAggregate::new(
            vec![
                TreePosition {
                    parent: None,
                    children: vec![2], // non-neighbor: violation
                    in_tree: true,
                    is_root: true,
                },
                TreePosition::default(),
                TreePosition::default(),
            ],
            &[1, 1, 1],
            AggOp::Sum,
            true,
        );
        let good = TreeAggregate::new(path_positions(3, 0), &[1, 1, 1], AggOp::Sum, false);
        let err = Session::new(&g, SimConfig::default())
            .join(bad, good)
            .unwrap_err();
        assert!(
            matches!(err, SimError::InvalidDestination { from: 0, to: 2, .. }),
            "{err:?}"
        );
    }

    /// Sessions change the cost model, never the outcome: a pipeline
    /// through one session equals the phases run in fresh engines.
    #[test]
    fn session_phases_match_fresh_engine_runs() {
        let g = lcs_graph::generators::gnp_connected(
            30,
            0.15,
            &mut <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(9),
        );
        let mut session = Session::new(&g, SimConfig::default());
        let b1 = session.run(Bfs::new(0)).unwrap();
        let pos = positions_from_tree(0, &b1.parent, &b1.children);
        let ones = vec![1u64; g.n()];
        let (r1, s1) = session
            .run(TreeAggregate::new(pos.clone(), &ones, AggOp::Sum, true))
            .unwrap();

        let b2 = Session::new(&g, SimConfig::default())
            .run(Bfs::new(0))
            .unwrap();
        let (r2, s2) = Session::new(&g, SimConfig::default())
            .run(TreeAggregate::new(pos, &ones, AggOp::Sum, true))
            .unwrap();
        assert_eq!(b1.dist, b2.dist);
        assert_eq!(b1.stats, b2.stats);
        assert_eq!(r1, r2);
        assert_eq!(s1, s2);
    }
}
