//! The synchronous CONGEST simulator engine.

use crate::error::SimError;
use crate::message::{Message, DEFAULT_BANDWIDTH_WORDS};
use crate::node::{NodeAlgorithm, RoundCtx};
use crate::stats::RunStats;
use lcs_graph::{Graph, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Configuration of a simulator run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Per-message size cap in `⌈log₂ n⌉`-bit words.
    pub bandwidth_words: u32,
    /// Abort with [`SimError::RoundLimitExceeded`] after this many
    /// rounds without quiescence.
    pub max_rounds: u64,
    /// Master seed; node RNGs and shared randomness derive from it.
    pub seed: u64,
    /// Number of shared-randomness words exposed to every node.
    pub shared_randomness_words: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            bandwidth_words: DEFAULT_BANDWIDTH_WORDS,
            max_rounds: 1_000_000,
            seed: 0xC0FFEE,
            shared_randomness_words: 64,
        }
    }
}

/// Outcome of a run: the final node states plus statistics.
#[derive(Debug)]
pub struct RunOutcome<A> {
    /// Final per-node algorithm states, indexed by node id.
    pub nodes: Vec<A>,
    /// Collected statistics.
    pub stats: RunStats,
}

/// Runs `nodes` (one [`NodeAlgorithm`] value per node of `graph`) to
/// quiescence: every node halted and no messages in flight.
///
/// Rounds are fully synchronous: messages sent at round `r` are delivered
/// at round `r + 1`. The engine enforces the CONGEST discipline — a node
/// may send at most one message per neighbor per round, each at most
/// `cfg.bandwidth_words` words, and only to adjacent nodes.
///
/// # Errors
///
/// Returns a [`SimError`] on any CONGEST-model violation or when
/// `cfg.max_rounds` is exceeded. The run is deterministic given
/// `cfg.seed`.
///
/// # Panics
///
/// Panics if `nodes.len() != graph.n()`.
pub fn run<A: NodeAlgorithm>(
    graph: &Graph,
    mut nodes: Vec<A>,
    cfg: &SimConfig,
) -> Result<RunOutcome<A>, SimError> {
    assert_eq!(
        nodes.len(),
        graph.n(),
        "need exactly one algorithm instance per node"
    );
    let n = graph.n();
    let mut stats = RunStats::new(graph);

    // Deterministic per-node RNGs and shared randomness.
    let mut master = ChaCha8Rng::seed_from_u64(cfg.seed);
    let shared: Vec<u64> = (0..cfg.shared_randomness_words)
        .map(|_| master.gen())
        .collect();
    let mut node_rngs: Vec<ChaCha8Rng> = (0..n)
        .map(|v| {
            ChaCha8Rng::seed_from_u64(
                cfg.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(v as u64 + 1),
            )
        })
        .collect();

    let mut inboxes: Vec<Vec<(NodeId, A::Msg)>> = (0..n).map(|_| Vec::new()).collect();
    let mut next_inboxes: Vec<Vec<(NodeId, A::Msg)>> = (0..n).map(|_| Vec::new()).collect();
    let mut outbox: Vec<(NodeId, A::Msg)> = Vec::new();
    // Double-send guard: `dest_stamp[to]` holds a value unique to the
    // current (round, sender) pair when `to` has already been addressed
    // by this sender this round. Uniqueness makes cross-sender and
    // cross-round cleanup unnecessary.
    let mut dest_stamp: Vec<u64> = vec![0; n];

    for round in 0..cfg.max_rounds {
        stats.rounds = round + 1;
        for v in 0..n as u32 {
            let inbox = std::mem::take(&mut inboxes[v as usize]);
            outbox.clear();
            {
                let mut ctx = RoundCtx {
                    node: v,
                    round,
                    graph,
                    inbox: &inbox,
                    outbox: &mut outbox,
                    rng: &mut node_rngs[v as usize],
                    shared: &shared,
                };
                nodes[v as usize].round(&mut ctx);
            }
            let stamp = round
                .wrapping_mul(n as u64)
                .wrapping_add(v as u64)
                .wrapping_add(1);
            for (to, msg) in outbox.drain(..) {
                let Some(edge) = graph.edge_between(v, to) else {
                    return Err(SimError::InvalidDestination { from: v, to, round });
                };
                let words = msg.size_words();
                if words > cfg.bandwidth_words {
                    return Err(SimError::MessageTooLarge {
                        words,
                        cap: cfg.bandwidth_words,
                        round,
                    });
                }
                if dest_stamp[to as usize] == stamp {
                    return Err(SimError::ChannelOverflow { from: v, to, round });
                }
                dest_stamp[to as usize] = stamp;
                stats.record(edge, words);
                next_inboxes[to as usize].push((v, msg));
            }
        }
        let in_flight: u64 = next_inboxes.iter().map(|b| b.len() as u64).sum();
        std::mem::swap(&mut inboxes, &mut next_inboxes);
        for b in &mut next_inboxes {
            b.clear();
        }
        if in_flight == 0 && nodes.iter().all(|a| a.halted()) {
            return Ok(RunOutcome { nodes, stats });
        }
    }
    Err(SimError::RoundLimitExceeded {
        limit: cfg.max_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Flood: node 0 starts; everyone forwards one token to each
    /// neighbor exactly once.
    #[derive(Debug, Default)]
    struct Flood {
        seen: bool,
        fired: bool,
        heard_at: Option<u64>,
    }

    impl NodeAlgorithm for Flood {
        type Msg = u32;
        fn round(&mut self, ctx: &mut RoundCtx<'_, u32>) {
            if ctx.round() == 0 && ctx.node() == 0 {
                self.seen = true;
                self.heard_at = Some(0);
            }
            if !self.seen && !ctx.inbox().is_empty() {
                self.seen = true;
                self.heard_at = Some(ctx.round());
            }
            if self.seen && !self.fired {
                self.fired = true;
                for &w in ctx.neighbors() {
                    ctx.send(w, 1);
                }
            }
        }
        fn halted(&self) -> bool {
            self.fired || !self.seen
        }
    }

    #[test]
    fn flood_reaches_everyone_in_ecc_rounds() {
        let g = lcs_graph::generators::path(6);
        let out = run(
            &g,
            (0..6).map(|_| Flood::default()).collect(),
            &SimConfig::default(),
        )
        .unwrap();
        for (v, node) in out.nodes.iter().enumerate() {
            assert_eq!(node.heard_at, Some(v as u64), "node {v}");
        }
        // 2 messages per internal edge (both directions), path has 5 edges.
        assert_eq!(out.stats.messages, 10);
        assert_eq!(out.stats.max_edge_messages(), 2);
    }

    /// A deliberately misbehaving node for violation tests.
    #[derive(Debug)]
    struct Misbehave {
        mode: u8,
    }

    impl NodeAlgorithm for Misbehave {
        type Msg = u64;
        fn round(&mut self, ctx: &mut RoundCtx<'_, u64>) {
            if ctx.round() == 0 && ctx.node() == 0 {
                match self.mode {
                    0 => ctx.send(2, 1), // non-neighbor on a path 0-1-2
                    1 => {
                        ctx.send(1, 1);
                        ctx.send(1, 2); // double send
                    }
                    _ => {}
                }
            }
        }
        fn halted(&self) -> bool {
            true
        }
    }

    #[test]
    fn invalid_destination_detected() {
        let g = lcs_graph::generators::path(3);
        let nodes = (0..3).map(|_| Misbehave { mode: 0 }).collect();
        let err = run(&g, nodes, &SimConfig::default()).unwrap_err();
        assert_eq!(
            err,
            SimError::InvalidDestination {
                from: 0,
                to: 2,
                round: 0
            }
        );
    }

    #[test]
    fn channel_overflow_detected() {
        let g = lcs_graph::generators::path(3);
        let nodes = (0..3).map(|_| Misbehave { mode: 1 }).collect();
        let err = run(&g, nodes, &SimConfig::default()).unwrap_err();
        assert_eq!(
            err,
            SimError::ChannelOverflow {
                from: 0,
                to: 1,
                round: 0
            }
        );
    }

    /// Sends an oversized message.
    #[derive(Debug)]
    struct Oversize;

    impl NodeAlgorithm for Oversize {
        type Msg = (u64, (u64, u64));
        fn round(&mut self, ctx: &mut RoundCtx<'_, Self::Msg>) {
            if ctx.round() == 0 && ctx.node() == 0 {
                ctx.send(1, (1, (2, 3))); // 6 words > default 4
            }
        }
        fn halted(&self) -> bool {
            true
        }
    }

    #[test]
    fn oversized_message_detected() {
        let g = lcs_graph::generators::path(2);
        let err = run(&g, vec![Oversize, Oversize], &SimConfig::default()).unwrap_err();
        assert_eq!(
            err,
            SimError::MessageTooLarge {
                words: 6,
                cap: 4,
                round: 0
            }
        );
    }

    /// Never halts.
    #[derive(Debug)]
    struct Spinner;

    impl NodeAlgorithm for Spinner {
        type Msg = ();
        fn round(&mut self, _ctx: &mut RoundCtx<'_, ()>) {}
        fn halted(&self) -> bool {
            false
        }
    }

    #[test]
    fn round_limit_enforced() {
        let g = lcs_graph::generators::path(2);
        let cfg = SimConfig {
            max_rounds: 10,
            ..SimConfig::default()
        };
        let err = run(&g, vec![Spinner, Spinner], &cfg).unwrap_err();
        assert_eq!(err, SimError::RoundLimitExceeded { limit: 10 });
    }

    /// Ping-pong: verifies messages are delivered exactly one round
    /// later and that per-node RNGs are deterministic.
    #[derive(Debug, Default)]
    struct PingPong {
        got: Vec<(u64, u32)>,
        sent: bool,
        coin: Option<u64>,
    }

    impl NodeAlgorithm for PingPong {
        type Msg = u32;
        fn round(&mut self, ctx: &mut RoundCtx<'_, u32>) {
            if self.coin.is_none() {
                self.coin = Some(ctx.rng().gen());
            }
            if ctx.node() == 0 && ctx.round() == 0 {
                ctx.send(1, 7);
                self.sent = true;
            }
            for &(_, m) in ctx.inbox() {
                self.got.push((ctx.round(), m));
                if ctx.node() == 1 && !self.sent {
                    ctx.send(0, m + 1);
                    self.sent = true;
                }
            }
        }
        fn halted(&self) -> bool {
            true
        }
    }

    #[test]
    fn delivery_latency_is_one_round_and_rng_deterministic() {
        let g = lcs_graph::generators::path(2);
        let mk = || vec![PingPong::default(), PingPong::default()];
        let out1 = run(&g, mk(), &SimConfig::default()).unwrap();
        let out2 = run(&g, mk(), &SimConfig::default()).unwrap();
        assert_eq!(out1.nodes[1].got, vec![(1, 7)]);
        assert_eq!(out1.nodes[0].got, vec![(2, 8)]);
        assert_eq!(out1.nodes[0].coin, out2.nodes[0].coin);
        assert_ne!(out1.nodes[0].coin, out1.nodes[1].coin);
        assert_eq!(out1.stats.rounds, 3);
    }
}
