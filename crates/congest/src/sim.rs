//! The synchronous CONGEST simulator engine.
//!
//! # Mailbox layout
//!
//! Delivery is **arc-indexed**: the engine preallocates one
//! `Option<Msg>` slot per directed arc of the graph, in CSR order. A
//! message sent over arc `a = (u → v)` is written into slot `a` — the
//! slot owned by the *sender's* adjacency range — so
//!
//! * delivery is a single slot write,
//! * the CONGEST one-message-per-neighbor-per-round discipline is a
//!   `slot.is_some()` check (no stamp array, no hash set),
//! * the undirected [`EdgeId`](lcs_graph::EdgeId) for stats is
//!   `arc_edges[a]` (no `edge_between` binary search per message), and
//! * the in-flight count is the length of the per-shard dirty lists
//!   (no `O(n)` scan per round).
//!
//! A receiver `v` gathers its inbox by walking its own arc range and
//! reading slot `rev[b]` for each arc `b = (v → u)` — the
//! opposite-direction arc of the same edge, precomputed once per run.
//! Two buffers (`cur`, `nxt`) are swapped each round; only dirty slots
//! are cleared, so quiet rounds cost `O(n)` node calls and nothing per
//! arc.
//!
//! # Sharded rounds
//!
//! Nodes are split into contiguous shards ([`SimConfig::shards`]), each
//! run on a [`std::thread::scope`] thread per round. A node's sends land
//! in its own arc range, so shard write regions are disjoint contiguous
//! slices of `nxt`; reads of `cur` are shared and immutable. Per-shard
//! statistics buffers are merged in shard order, and every per-run
//! quantity is an order-independent integer sum, so the outcome —
//! node states, RNG streams, and [`RunStats`] — is **bit-identical to
//! the sequential engine for any shard count**.

use crate::error::SimError;
use crate::message::DEFAULT_BANDWIDTH_WORDS;
use crate::node::{NodeAlgorithm, RoundCtx, TxState};
use crate::stats::RunStats;
use lcs_graph::{ArcId, Graph, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::sync::atomic::{AtomicBool, Ordering};

/// Configuration of a simulator run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Per-message size cap in `⌈log₂ n⌉`-bit words.
    pub bandwidth_words: u32,
    /// Abort with [`SimError::RoundLimitExceeded`] after this many
    /// rounds without quiescence.
    pub max_rounds: u64,
    /// Master seed; node RNGs and shared randomness derive from it.
    pub seed: u64,
    /// Number of shared-randomness words exposed to every node.
    pub shared_randomness_words: usize,
    /// Number of contiguous node shards executed on scoped threads each
    /// round. `1` (the default) runs fully sequentially; any value
    /// produces bit-identical outcomes.
    pub shards: usize,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            bandwidth_words: DEFAULT_BANDWIDTH_WORDS,
            max_rounds: 1_000_000,
            seed: 0xC0FFEE,
            shared_randomness_words: 64,
            shards: 1,
        }
    }
}

/// Outcome of a run: the final node states plus statistics.
#[derive(Debug)]
pub struct RunOutcome<A> {
    /// Final per-node algorithm states, indexed by node id.
    pub nodes: Vec<A>,
    /// Collected statistics.
    pub stats: RunStats,
}

/// Per-shard engine state: the shard's node/arc spans, its accumulated
/// statistics, its dirty-slot lists, and a reusable inbox buffer.
struct Shard<M> {
    node_lo: usize,
    node_hi: usize,
    arc_lo: usize,
    arc_hi: usize,
    messages: u64,
    words: u64,
    /// Per-arc message counts for the shard's own arc span (folded into
    /// per-edge counts once at the end of the run — a sequential store
    /// per send instead of a random per-edge access).
    per_arc: Vec<u64>,
    /// Slots of `cur` holding this round's deliveries (cleared at round
    /// end).
    dirty_in: Vec<u32>,
    /// Slots of `nxt` written this round; its length is the shard's
    /// contribution to the in-flight count.
    dirty_out: Vec<u32>,
    inbox: Vec<(NodeId, M)>,
}

/// `rev[a]` is the opposite-direction arc of the same undirected edge.
fn build_rev_arcs(g: &Graph) -> Vec<u32> {
    let mut first_arc_of_edge: Vec<u32> = vec![u32::MAX; g.m()];
    let mut rev = vec![0u32; g.num_arcs()];
    for a in 0..g.num_arcs() as u32 {
        let e = g.arc_edge(ArcId(a)).index();
        if first_arc_of_edge[e] == u32::MAX {
            first_arc_of_edge[e] = a;
        } else {
            let b = first_arc_of_edge[e];
            rev[a as usize] = b;
            rev[b as usize] = a;
        }
    }
    rev
}

/// Executes one round for one shard: gathers each node's inbox from
/// `cur`, runs the node, and applies its sends into the shard's slice of
/// `nxt`. Returns `(all_halted, first_violation)`.
#[allow(clippy::too_many_arguments)]
fn run_shard<A: NodeAlgorithm>(
    graph: &Graph,
    sh: &mut Shard<A::Msg>,
    nodes: &mut [A],
    rngs: &mut [ChaCha8Rng],
    cur: &[Option<A::Msg>],
    nxt: &mut [Option<A::Msg>],
    mail_cur: &[AtomicBool],
    mail_nxt: &[AtomicBool],
    rev: &[u32],
    shared: &[u64],
    round: u64,
    bandwidth: u32,
) -> (bool, Option<SimError>) {
    let mut all_halted = true;
    let mut violation: Option<SimError> = None;
    for v in sh.node_lo..sh.node_hi {
        let range = graph.arc_range(v as NodeId);
        sh.inbox.clear();
        // The mail flag makes quiet rounds cheap: only nodes somebody
        // actually addressed walk their arc range. (Relaxed is enough —
        // the flag was set before last round's thread join, which is a
        // happens-before edge.)
        if mail_cur[v].load(Ordering::Relaxed) {
            mail_cur[v].store(false, Ordering::Relaxed);
            for b in range.clone() {
                if let Some(m) = &cur[rev[b] as usize] {
                    sh.inbox.push((graph.arc_head(ArcId(b as u32)), m.clone()));
                }
            }
        }
        {
            let mut ctx = RoundCtx {
                node: v as NodeId,
                round,
                graph,
                inbox: &sh.inbox,
                rng: &mut rngs[v - sh.node_lo],
                shared,
                tx: TxState {
                    slots: &mut nxt[range.start - sh.arc_lo..range.end - sh.arc_lo],
                    heads: graph.neighbors(v as NodeId),
                    arc_base: range.start as u32,
                    mail: mail_nxt,
                    dirty: &mut sh.dirty_out,
                    messages: &mut sh.messages,
                    words: &mut sh.words,
                    per_arc: &mut sh.per_arc[range.start - sh.arc_lo..range.end - sh.arc_lo],
                    violation: &mut violation,
                    bandwidth,
                },
            };
            nodes[v - sh.node_lo].round(&mut ctx);
        }
        if violation.is_some() {
            return (all_halted, violation);
        }
        all_halted &= nodes[v - sh.node_lo].halted();
    }
    (all_halted, violation)
}

/// Runs `nodes` (one [`NodeAlgorithm`] value per node of `graph`) to
/// quiescence: every node halted and no messages in flight.
///
/// Rounds are fully synchronous: messages sent at round `r` are delivered
/// at round `r + 1`. The engine enforces the CONGEST discipline — a node
/// may send at most one message per neighbor per round, each at most
/// `cfg.bandwidth_words` words, and only to adjacent nodes.
///
/// With `cfg.shards > 1` the round is executed by that many scoped
/// threads over contiguous node ranges; the outcome (including
/// [`RunStats`] and per-node RNG streams) is bit-identical to the
/// sequential engine. The `Send`/`Sync` bounds exist solely to allow
/// this; every plain-data message/state type satisfies them.
///
/// # Errors
///
/// Returns a [`SimError`] on any CONGEST-model violation or when
/// `cfg.max_rounds` is exceeded. The run is deterministic given
/// `cfg.seed`.
///
/// # Panics
///
/// Panics if `nodes.len() != graph.n()`.
pub fn run<A: NodeAlgorithm + Send>(
    graph: &Graph,
    mut nodes: Vec<A>,
    cfg: &SimConfig,
) -> Result<RunOutcome<A>, SimError>
where
    A::Msg: Send + Sync,
{
    assert_eq!(
        nodes.len(),
        graph.n(),
        "need exactly one algorithm instance per node"
    );
    let n = graph.n();
    let mut stats = RunStats::new(graph);

    // Deterministic per-node RNGs and shared randomness.
    let mut master = ChaCha8Rng::seed_from_u64(cfg.seed);
    let shared: Vec<u64> = (0..cfg.shared_randomness_words)
        .map(|_| master.gen())
        .collect();
    let mut node_rngs: Vec<ChaCha8Rng> = (0..n)
        .map(|v| {
            ChaCha8Rng::seed_from_u64(
                cfg.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(v as u64 + 1),
            )
        })
        .collect();

    let num_arcs = graph.num_arcs();
    let rev = build_rev_arcs(graph);
    let mut cur: Vec<Option<A::Msg>> = std::iter::repeat_with(|| None).take(num_arcs).collect();
    let mut nxt: Vec<Option<A::Msg>> = std::iter::repeat_with(|| None).take(num_arcs).collect();
    let mut mail_cur: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();
    let mut mail_nxt: Vec<AtomicBool> = (0..n).map(|_| AtomicBool::new(false)).collect();

    let shard_count = cfg.shards.clamp(1, n.max(1));
    let mut shards: Vec<Shard<A::Msg>> = (0..shard_count)
        .map(|s| {
            let node_lo = s * n / shard_count;
            let node_hi = (s + 1) * n / shard_count;
            let arc_lo = if node_lo >= n {
                graph.num_arcs() // empty trailing shard (n = 0 only)
            } else {
                graph.arc_range(node_lo as NodeId).start
            };
            let arc_hi = if node_hi == node_lo {
                arc_lo
            } else {
                graph.arc_range((node_hi - 1) as NodeId).end
            };
            Shard {
                node_lo,
                node_hi,
                arc_lo,
                arc_hi,
                messages: 0,
                words: 0,
                per_arc: vec![0; arc_hi - arc_lo],
                // A shard can have at most one in-flight message per
                // owned arc; reserving that up front keeps the dirty
                // lists realloc-free for the whole run.
                dirty_in: Vec::with_capacity(arc_hi - arc_lo),
                dirty_out: Vec::with_capacity(arc_hi - arc_lo),
                inbox: Vec::new(),
            }
        })
        .collect();

    let mut prev_in_flight: u64 = 0;
    for round in 0..cfg.max_rounds {
        stats.rounds = round + 1;
        if prev_in_flight > 0 {
            stats.delivered_rounds += 1;
        }
        let results: Vec<(bool, Option<SimError>)> = if shard_count == 1 {
            vec![run_shard(
                graph,
                &mut shards[0],
                &mut nodes,
                &mut node_rngs,
                &cur,
                &mut nxt,
                &mail_cur,
                &mail_nxt,
                &rev,
                &shared,
                round,
                cfg.bandwidth_words,
            )]
        } else {
            let cur_ref: &[Option<A::Msg>] = &cur;
            let mail_cur_ref: &[AtomicBool] = &mail_cur;
            let mail_nxt_ref: &[AtomicBool] = &mail_nxt;
            let rev_ref: &[u32] = &rev;
            let shared_ref: &[u64] = &shared;
            std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(shard_count);
                let mut shards_rest: &mut [Shard<A::Msg>] = &mut shards;
                let mut nodes_rest: &mut [A] = &mut nodes;
                let mut rngs_rest: &mut [ChaCha8Rng] = &mut node_rngs;
                let mut nxt_rest: &mut [Option<A::Msg>] = &mut nxt;
                for _ in 0..shard_count {
                    let (sh, rest) = shards_rest.split_first_mut().expect("shard count");
                    shards_rest = rest;
                    let (node_chunk, rest) = nodes_rest.split_at_mut(sh.node_hi - sh.node_lo);
                    nodes_rest = rest;
                    let (rng_chunk, rest) = rngs_rest.split_at_mut(sh.node_hi - sh.node_lo);
                    rngs_rest = rest;
                    let (nxt_chunk, rest) = nxt_rest.split_at_mut(sh.arc_hi - sh.arc_lo);
                    nxt_rest = rest;
                    handles.push(scope.spawn(move || {
                        run_shard(
                            graph,
                            sh,
                            node_chunk,
                            rng_chunk,
                            cur_ref,
                            nxt_chunk,
                            mail_cur_ref,
                            mail_nxt_ref,
                            rev_ref,
                            shared_ref,
                            round,
                            cfg.bandwidth_words,
                        )
                    }));
                }
                handles
                    .into_iter()
                    .map(|h| match h.join() {
                        Ok(r) => r,
                        Err(p) => std::panic::resume_unwind(p),
                    })
                    .collect()
            })
        };

        // Merge in shard order: the lowest shard's violation is the one
        // the sequential engine would have hit first.
        let mut all_halted = true;
        for (halted, violation) in results {
            if let Some(e) = violation {
                return Err(e);
            }
            all_halted &= halted;
        }
        let in_flight: u64 = shards.iter().map(|sh| sh.dirty_out.len() as u64).sum();

        // End-of-round bookkeeping: wipe this round's delivered slots,
        // then promote `nxt` (and its dirty lists) to `cur`.
        for sh in &mut shards {
            for &i in &sh.dirty_in {
                cur[i as usize] = None;
            }
            sh.dirty_in.clear();
            std::mem::swap(&mut sh.dirty_in, &mut sh.dirty_out);
        }
        std::mem::swap(&mut cur, &mut nxt);
        std::mem::swap(&mut mail_cur, &mut mail_nxt);
        prev_in_flight = in_flight;

        if in_flight == 0 && all_halted {
            for sh in &shards {
                stats.messages += sh.messages;
                stats.words += sh.words;
                for (j, &x) in sh.per_arc.iter().enumerate() {
                    if x > 0 {
                        let e = graph.arc_edge(ArcId((sh.arc_lo + j) as u32));
                        stats.per_edge_messages[e.index()] += x;
                    }
                }
            }
            return Ok(RunOutcome { nodes, stats });
        }
    }
    Err(SimError::RoundLimitExceeded {
        limit: cfg.max_rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Flood: node 0 starts; everyone forwards one token to each
    /// neighbor exactly once.
    #[derive(Debug, Default, Clone, PartialEq, Eq)]
    struct Flood {
        seen: bool,
        fired: bool,
        heard_at: Option<u64>,
    }

    impl NodeAlgorithm for Flood {
        type Msg = u32;
        fn round(&mut self, ctx: &mut RoundCtx<'_, u32>) {
            if ctx.round() == 0 && ctx.node() == 0 {
                self.seen = true;
                self.heard_at = Some(0);
            }
            if !self.seen && !ctx.inbox().is_empty() {
                self.seen = true;
                self.heard_at = Some(ctx.round());
            }
            if self.seen && !self.fired {
                self.fired = true;
                for i in 0..ctx.degree() {
                    ctx.send_nth(i, 1);
                }
            }
        }
        fn halted(&self) -> bool {
            self.fired || !self.seen
        }
    }

    #[test]
    fn flood_reaches_everyone_in_ecc_rounds() {
        let g = lcs_graph::generators::path(6);
        let out = run(
            &g,
            (0..6).map(|_| Flood::default()).collect(),
            &SimConfig::default(),
        )
        .unwrap();
        for (v, node) in out.nodes.iter().enumerate() {
            assert_eq!(node.heard_at, Some(v as u64), "node {v}");
        }
        // 2 messages per internal edge (both directions), path has 5 edges.
        assert_eq!(out.stats.messages, 10);
        assert_eq!(out.stats.max_edge_messages(), 2);
        // Tokens travel forward in rounds 1..=5 and the end node's own
        // flood arrives back at round 6.
        assert_eq!(out.stats.delivered_rounds, 6);
    }

    /// Tier-1 determinism smoke: sharded runs are bit-identical to the
    /// sequential engine on a path and a clique.
    #[test]
    fn sharded_runs_bit_identical_on_path_and_clique() {
        for g in [
            lcs_graph::generators::path(23),
            lcs_graph::generators::complete(17),
        ] {
            let n = g.n();
            let mk = || (0..n).map(|_| Flood::default()).collect::<Vec<_>>();
            let base = run(&g, mk(), &SimConfig::default()).unwrap();
            for shards in [2, 4, 7, 64] {
                let cfg = SimConfig {
                    shards,
                    ..SimConfig::default()
                };
                let out = run(&g, mk(), &cfg).unwrap();
                assert_eq!(out.nodes, base.nodes, "shards={shards}");
                assert_eq!(out.stats, base.stats, "shards={shards}");
            }
        }
    }

    /// A deliberately misbehaving node for violation tests.
    #[derive(Debug)]
    struct Misbehave {
        mode: u8,
    }

    impl NodeAlgorithm for Misbehave {
        type Msg = u64;
        fn round(&mut self, ctx: &mut RoundCtx<'_, u64>) {
            if ctx.round() == 0 && ctx.node() == 0 {
                match self.mode {
                    0 => ctx.send(2, 1), // non-neighbor on a path 0-1-2
                    1 => {
                        ctx.send(1, 1);
                        ctx.send(1, 2); // double send
                    }
                    _ => {}
                }
            }
        }
        fn halted(&self) -> bool {
            true
        }
    }

    #[test]
    fn invalid_destination_detected() {
        let g = lcs_graph::generators::path(3);
        let nodes = (0..3).map(|_| Misbehave { mode: 0 }).collect();
        let err = run(&g, nodes, &SimConfig::default()).unwrap_err();
        assert_eq!(
            err,
            SimError::InvalidDestination {
                from: 0,
                to: 2,
                round: 0
            }
        );
    }

    #[test]
    fn channel_overflow_detected() {
        let g = lcs_graph::generators::path(3);
        let nodes = (0..3).map(|_| Misbehave { mode: 1 }).collect();
        let err = run(&g, nodes, &SimConfig::default()).unwrap_err();
        assert_eq!(
            err,
            SimError::ChannelOverflow {
                from: 0,
                to: 1,
                round: 0
            }
        );
    }

    #[test]
    fn violations_detected_identically_when_sharded() {
        let g = lcs_graph::generators::path(3);
        for (mode, expect) in [
            (
                0u8,
                SimError::InvalidDestination {
                    from: 0,
                    to: 2,
                    round: 0,
                },
            ),
            (
                1u8,
                SimError::ChannelOverflow {
                    from: 0,
                    to: 1,
                    round: 0,
                },
            ),
        ] {
            let cfg = SimConfig {
                shards: 3,
                ..SimConfig::default()
            };
            let nodes = (0..3).map(|_| Misbehave { mode }).collect();
            assert_eq!(run(&g, nodes, &cfg).unwrap_err(), expect);
        }
    }

    /// Sends an oversized message.
    #[derive(Debug)]
    struct Oversize;

    impl NodeAlgorithm for Oversize {
        type Msg = (u64, (u64, u64));
        fn round(&mut self, ctx: &mut RoundCtx<'_, Self::Msg>) {
            if ctx.round() == 0 && ctx.node() == 0 {
                ctx.send(1, (1, (2, 3))); // 6 words > default 4
            }
        }
        fn halted(&self) -> bool {
            true
        }
    }

    #[test]
    fn oversized_message_detected() {
        let g = lcs_graph::generators::path(2);
        let err = run(&g, vec![Oversize, Oversize], &SimConfig::default()).unwrap_err();
        assert_eq!(
            err,
            SimError::MessageTooLarge {
                words: 6,
                cap: 4,
                round: 0
            }
        );
    }

    /// Never halts.
    #[derive(Debug)]
    struct Spinner;

    impl NodeAlgorithm for Spinner {
        type Msg = ();
        fn round(&mut self, _ctx: &mut RoundCtx<'_, ()>) {}
        fn halted(&self) -> bool {
            false
        }
    }

    #[test]
    fn round_limit_enforced() {
        let g = lcs_graph::generators::path(2);
        let cfg = SimConfig {
            max_rounds: 10,
            ..SimConfig::default()
        };
        let err = run(&g, vec![Spinner, Spinner], &cfg).unwrap_err();
        assert_eq!(err, SimError::RoundLimitExceeded { limit: 10 });
    }

    /// Ping-pong: verifies messages are delivered exactly one round
    /// later and that per-node RNGs are deterministic.
    #[derive(Debug, Default)]
    struct PingPong {
        got: Vec<(u64, u32)>,
        sent: bool,
        coin: Option<u64>,
    }

    impl NodeAlgorithm for PingPong {
        type Msg = u32;
        fn round(&mut self, ctx: &mut RoundCtx<'_, u32>) {
            if self.coin.is_none() {
                self.coin = Some(ctx.rng().gen());
            }
            if ctx.node() == 0 && ctx.round() == 0 {
                ctx.send(1, 7);
                self.sent = true;
            }
            for &(_, m) in ctx.inbox() {
                self.got.push((ctx.round(), m));
                if ctx.node() == 1 && !self.sent {
                    ctx.send(0, m + 1);
                    self.sent = true;
                }
            }
        }
        fn halted(&self) -> bool {
            true
        }
    }

    #[test]
    fn delivery_latency_is_one_round_and_rng_deterministic() {
        let g = lcs_graph::generators::path(2);
        let mk = || vec![PingPong::default(), PingPong::default()];
        let out1 = run(&g, mk(), &SimConfig::default()).unwrap();
        let out2 = run(&g, mk(), &SimConfig::default()).unwrap();
        assert_eq!(out1.nodes[1].got, vec![(1, 7)]);
        assert_eq!(out1.nodes[0].got, vec![(2, 8)]);
        assert_eq!(out1.nodes[0].coin, out2.nodes[0].coin);
        assert_ne!(out1.nodes[0].coin, out1.nodes[1].coin);
        assert_eq!(out1.stats.rounds, 3);
        assert_eq!(out1.stats.delivered_rounds, 2);
    }

    /// `send_nth` out-of-range panics (programmer error, not a model
    /// violation — there is no node id to report).
    #[derive(Debug)]
    struct BadIndex;

    impl NodeAlgorithm for BadIndex {
        type Msg = u32;
        fn round(&mut self, ctx: &mut RoundCtx<'_, u32>) {
            if ctx.node() == 0 {
                ctx.send_nth(5, 1);
            }
        }
        fn halted(&self) -> bool {
            true
        }
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn send_nth_out_of_range_panics() {
        let g = lcs_graph::generators::path(2);
        let _ = run(&g, vec![BadIndex, BadIndex], &SimConfig::default());
    }

    #[test]
    fn rev_arcs_are_involutions() {
        let g = lcs_graph::generators::grid(3, 4);
        let rev = build_rev_arcs(&g);
        for a in 0..g.num_arcs() {
            let b = rev[a] as usize;
            assert_eq!(rev[b] as usize, a);
            assert_eq!(g.arc_edge(ArcId(a as u32)), g.arc_edge(ArcId(b as u32)));
            assert_ne!(a, b);
            assert_eq!(g.arc_head(ArcId(b as u32)), g.arc_tail(ArcId(a as u32)));
        }
    }
}
