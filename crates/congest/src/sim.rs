//! The synchronous CONGEST simulator engine.
//!
//! # Mailbox layout
//!
//! Delivery is **arc-indexed**: the engine preallocates one flat
//! payload slot (`MaybeUninit<Msg>` — no `Option` discriminant, so a
//! buffer is exactly `num_arcs · size_of::<Msg>()` bytes) per directed
//! arc of the graph, in CSR order, plus one occupancy byte per arc. A
//! message sent over arc `a = (u → v)` is written into slot `a` — the
//! slot owned by the *sender's* adjacency range — so
//!
//! * delivery is a single slot write plus an occupancy-byte store,
//! * the CONGEST one-message-per-neighbor-per-round discipline is an
//!   occupancy-byte check (no stamp array, no hash set),
//! * the undirected [`EdgeId`](lcs_graph::EdgeId) for stats is
//!   `arc_edges[a]` (no `edge_between` binary search per message), and
//! * the in-flight count is the length of the per-shard dirty lists
//!   (no `O(n)` scan per round).
//!
//! A receiver `v` gathers its inbox by walking its own arc range and
//! reading slot `rev[b]` for each arc `b = (v → u)` — the
//! opposite-direction arc of the same edge, precomputed once per run.
//!
//! Two buffers alternate roles by round parity: buffer `r mod 2` is
//! read (current round's deliveries) while buffer `(r + 1) mod 2` is
//! written (next round's deliveries). The buffers never move, so the
//! persistent workers below can hold their views for the whole run. A
//! slot written in round `r` is read in round `r + 1` and wiped by its
//! owning shard at the start of round `r + 2`, just before that buffer
//! becomes the write target again; only dirty slots are ever touched.
//!
//! # Event-driven active sets
//!
//! Rounds are **event-driven**: a node's `round` hook runs only while
//! the node is *active* — the phase just started (round 0), mail
//! arrived this round, or the node's previous round requested
//! [`Wake::Stay`] (see [`crate::Wake`]; the default derives the signal
//! from `halted`, so a halted node sleeps until mail arrives). Each
//! shard keeps a sorted active list plus a membership bitmap:
//!
//! * a **stay** decision re-enqueues the node locally;
//! * a **send** marks the receiver's mail flag and enqueues a wake —
//!   directly into the local active list when the receiver is in the
//!   sending shard, or into a per-`(sender, receiver)`-shard **wake
//!   queue** otherwise, which the receiving shard drains at the start
//!   of its next round. Wake queues alternate by round parity exactly
//!   like the mailbox buffers, so the writer (sender shard) and the
//!   reader (receiver shard) never touch the same queue in the same
//!   phase.
//!
//! A round therefore costs `O(active nodes + delivered messages)` —
//! independent of `n` — and the run ends when no shard has a stay or a
//! message in flight. When the upcoming round's total work (active
//! nodes + in-flight messages) is tiny, the coordinator runs it
//! **inline** ([`Control::ContinueInline`]) instead of releasing the
//! worker barrier, so an all-but-quiescent round costs `O(1)` at every
//! shard count — thin-frontier protocols no longer pay two barrier
//! crossings per round for idle workers.
//!
//! # All-active (dense) rounds
//!
//! The opposite extreme is a **saturated** round: when the previous
//! round put a message on *every* arc (`in_flight == num_arcs`) and no
//! node is isolated, every node is guaranteed to have mail, so the
//! active set is the full node span by construction. The coordinator
//! then switches the next round into **dense mode**: shards iterate
//! their whole span directly and skip all event bookkeeping — no wake
//! notifications per send, no active-list maintenance, no mail-flag
//! reads, no occupancy checks on gather (every reverse slot is
//! occupied). This restores the pre-event-driving raw message path for
//! workloads like `saturate` while producing bit-identical outcomes:
//! the set and order of executed nodes, their inboxes, and all
//! statistics match the normal path exactly. Leaving dense mode with
//! messages still in flight inserts one **resync** round that
//! reconstructs the mail flags and activations the skipped
//! notifications would have left (an `O(own arcs)` occupancy scan per
//! shard), after which normal event-driven scheduling resumes. The
//! mode decision is made once per round by the coordinator from the
//! global in-flight count, so it is identical at every shard count and
//! the determinism contract below is unaffected.
//!
//! # Persistent sharded rounds
//!
//! Nodes are split into contiguous shards ([`SimConfig::shards`]). The
//! shards are executed by a **persistent worker pool**
//! ([`crate::pool`]): one thread per shard, spawned once per engine
//! host (= per [`Session`](crate::Session)) and synchronized
//! by a reusable two-phase barrier — a *send phase* (every worker runs
//! its shard's active nodes and applies their sends) and a *deliver
//! phase* (the coordinator aggregates the shard reports, advances the
//! round, and decides termination). The host also keeps every untyped
//! per-run structure — mail flags, wake queues, per-shard cores (active
//! lists, dirty lists, per-arc counters) — across phases, and recycles
//! the message-typed mailbox buffers through a size-class slab arena,
//! so a steady-state pipeline phase allocates almost nothing.
//!
//! ## Safety protocol of the shared mailboxes
//!
//! The mailbox buffers are shared across workers through interior
//! mutability (`Slot`). Soundness rests on three invariants, enforced
//! structurally and ordered by the pool's barriers:
//!
//! 1. During a round's send phase, slot `a` of the **write** buffer is
//!    mutated only by the shard owning arc `a` (sends land in the
//!    sender's own arc range; the deferred wipe touches only the
//!    shard's own `dirty_in` list, which holds own-range arcs).
//! 2. The **read** buffer is never written during a send phase, and
//!    slot `rev[b]` is read only by the shard owning arc `b` — each
//!    slot has exactly one reader and one writer, in different phases.
//! 3. The barrier crossings between phases provide the happens-before
//!    edges that make writes of one phase visible to the next.
//!
//! The cross-shard wake queues obey the same discipline with parity in
//! place of buffer role: queue `(p, t, s)` is **written** only by shard
//! `t` during send phases of parity `p` and **drained** (read + cleared)
//! only by shard `s` during send phases of parity `1 − p`, with the
//! barriers ordering the phases. Inline rounds run every shard's step
//! on the coordinator between barrier crossings — a superset of each
//! worker's exclusive access, ordered against the workers by the next
//! barrier crossing.
//!
//! # Determinism contract
//!
//! Active lists are sorted before execution, so nodes run in ascending
//! id order — the sequential engine's order — regardless of the order
//! wakes arrived; a node's sends land in its own arc range, shard write
//! regions are disjoint, per-shard statistics are merged in shard
//! order, and every per-run quantity is an order-independent integer
//! sum. The outcome (node states, per-node RNG streams, and
//! [`RunStats`], including [`RunStats::per_edge_messages`] and
//! [`RunStats::delivered_rounds`]) is therefore **bit-identical to the
//! sequential engine for any shard count**, and — for protocols obeying
//! the [`Wake`] quiescence contract — bit-identical to the
//! retired full-scan engine, which invoked every node every round.
//! Model violations abort with exactly the error the sequential engine
//! would have reported first (lowest shard, then lowest node). This
//! contract is enforced by the tier-1 differential suite
//! (`tests/shard_equivalence.rs`), tier-2 proptests, and the
//! shard-sweep determinism check in the `sim_throughput` bench.

use crate::arena::SlabArena;
use crate::error::SimError;
use crate::message::{Message, DEFAULT_BANDWIDTH_WORDS};
use crate::node::{NodeAlgorithm, RoundCtx, TxState, Wake, WireFx};
use crate::pool::{Control, Pool};
use crate::stats::RunStats;
use lcs_graph::{ArcId, Graph, NodeId};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::cell::UnsafeCell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};

/// One scheduled crash-stop in a [`FaultPlan`]: the node falls silent
/// from `at_round` on — its `round` hook is not invoked, it sends
/// nothing, and every message delivered to it while down is destroyed
/// (counted in [`RunStats::dropped`]). With `recover_at = Some(r)` the
/// node resumes at round `r` with its state intact but its inbox lost
/// (messages that arrived while it was down stay dropped); it is
/// re-activated at `r` even without fresh mail.
#[derive(Debug, Clone, PartialEq)]
pub struct Crash {
    /// The node that crash-stops.
    pub node: NodeId,
    /// First round the node is down.
    pub at_round: u64,
    /// Round the node comes back up (`None`: crashed for good).
    pub recover_at: Option<u64>,
}

/// A deterministic adversarial fault schedule, attached to a run via
/// [`SimConfig::faults`].
///
/// Message fates are decided by a pure hash of
/// `(fault_seed, round, arc)` — no RNG stream is consumed — so a plan's
/// outcome is **bit-identical at every shard count**, exactly like the
/// rest of the engine (module docs, determinism contract). Fates are
/// applied on the receiving side at gather time: a doomed message still
/// occupies its wire slot and still counts in `messages`/`words`/
/// per-edge traffic (the send happened; the *delivery* fails), and the
/// send path is untouched, so a run without a plan pays nothing.
///
/// * **Drop** (probability [`FaultPlan::drop_rate`]): the message is
///   destroyed; [`RunStats::dropped`] counts it.
/// * **Delay** (probability [`FaultPlan::delay_rate`], evaluated after
///   the drop check): delivery is deferred `k ∈ [1, max_delay]` extra
///   rounds through a bounded per-shard reorder buffer;
///   [`RunStats::delayed`] counts it. A delayed delivery wakes its
///   receiver (the quiescence contract holds: the run cannot end while
///   deliveries are pending), and late messages are appended after the
///   round's fresh mail in a deterministic `(decided round, sender)`
///   order — so one neighbor may deliver *two* messages in one round,
///   which is precisely the reordering a reliability layer
///   ([`Reliable`](crate::Reliable)) must survive.
/// * **Crash-stop** ([`FaultPlan::crashes`]): see [`Crash`].
/// * **Corrupt** (probability [`FaultPlan::corrupt_rate`], evaluated on
///   deliveries that survive the drop check — both on-time and delayed
///   ones): the payload is replaced by
///   [`Message::corrupted`] with a
///   flip stream drawn from the same splitmix64 fate chain, so *which
///   bits flip* is as deterministic and shard-invariant as the fate
///   itself; [`RunStats::corrupted`] counts it. The raw engine delivers
///   the lie verbatim — detecting it is the job of an integrity-tagged
///   transport ([`Reliable`](crate::Reliable)).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Probability a delivery is destroyed, in `[0, 1]`.
    pub drop_rate: f64,
    /// Probability a surviving delivery is deferred, in `[0, 1]`.
    pub delay_rate: f64,
    /// Upper bound (inclusive) on the extra rounds a delayed message
    /// waits; must be ≥ 1 when `delay_rate > 0` and `< max_rounds`.
    pub max_delay: u64,
    /// Probability a surviving delivery's payload is corrupted in
    /// flight, in `[0, 1]`.
    pub corrupt_rate: f64,
    /// Scheduled crash-stops, at most one per node.
    pub crashes: Vec<Crash>,
    /// Seed of the fate hash — independent of [`SimConfig::seed`], so
    /// the same algorithm randomness can be replayed under different
    /// fault schedules and vice versa.
    pub fault_seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            drop_rate: 0.0,
            delay_rate: 0.0,
            max_delay: 1,
            corrupt_rate: 0.0,
            crashes: Vec::new(),
            fault_seed: 0xBAD_F00D,
        }
    }
}

impl FaultPlan {
    /// A drop-only plan (the common chaos knob).
    pub fn drops(rate: f64, fault_seed: u64) -> Self {
        FaultPlan {
            drop_rate: rate,
            fault_seed,
            ..FaultPlan::default()
        }
    }

    /// Checks the plan against a round limit; every inconsistency is a
    /// [`SimError::FaultConfig`] with an actionable message. Called
    /// eagerly by [`SimConfig::validate`] — before any round executes.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::FaultConfig`] naming the offending field.
    pub fn validate(&self, max_rounds: u64) -> Result<(), SimError> {
        let rate_ok = |r: f64| r.is_finite() && (0.0..=1.0).contains(&r);
        if !rate_ok(self.drop_rate) {
            return Err(SimError::FaultConfig {
                reason: format!(
                    "drop_rate {} is outside [0, 1]; pick a probability",
                    self.drop_rate
                ),
            });
        }
        if !rate_ok(self.delay_rate) {
            return Err(SimError::FaultConfig {
                reason: format!(
                    "delay_rate {} is outside [0, 1]; pick a probability",
                    self.delay_rate
                ),
            });
        }
        if !rate_ok(self.corrupt_rate) {
            return Err(SimError::FaultConfig {
                reason: format!(
                    "corrupt_rate {} is outside [0, 1]; pick a probability",
                    self.corrupt_rate
                ),
            });
        }
        if self.delay_rate > 0.0 && self.max_delay == 0 {
            return Err(SimError::FaultConfig {
                reason: "delay_rate > 0 with max_delay 0; a delayed message must wait \
                         at least one round — set max_delay >= 1"
                    .to_string(),
            });
        }
        if self.max_delay >= max_rounds {
            return Err(SimError::FaultConfig {
                reason: format!(
                    "max_delay {} is not below the round limit {}; a delivery could be \
                     deferred past the end of the run — lower max_delay or raise max_rounds",
                    self.max_delay, max_rounds
                ),
            });
        }
        let mut seen: Vec<NodeId> = Vec::with_capacity(self.crashes.len());
        for c in &self.crashes {
            if c.at_round >= max_rounds {
                return Err(SimError::FaultConfig {
                    reason: format!(
                        "crash of node {} at round {} is beyond the round budget {}; \
                         it could never fire — schedule it earlier or raise max_rounds",
                        c.node, c.at_round, max_rounds
                    ),
                });
            }
            if let Some(r) = c.recover_at {
                if r <= c.at_round {
                    return Err(SimError::FaultConfig {
                        reason: format!(
                            "node {} recovers at round {r} but crashes at round {}; \
                             recovery must be strictly later",
                            c.node, c.at_round
                        ),
                    });
                }
            }
            if seen.contains(&c.node) {
                return Err(SimError::FaultConfig {
                    reason: format!(
                        "node {} is listed twice in crashes; at most one crash per node",
                        c.node
                    ),
                });
            }
            seen.push(c.node);
        }
        Ok(())
    }
}

/// Configuration of a simulator run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Per-message size cap in `⌈log₂ n⌉`-bit words.
    pub bandwidth_words: u32,
    /// Abort with [`SimError::RoundLimitExceeded`] after this many
    /// rounds without quiescence.
    pub max_rounds: u64,
    /// Master seed; node RNGs and shared randomness derive from it.
    pub seed: u64,
    /// Number of shared-randomness words exposed to every node.
    pub shared_randomness_words: usize,
    /// Number of contiguous node shards executed by the persistent
    /// worker pool ([`crate::pool`]), one thread per shard. `0` (the
    /// default) resolves to [`std::thread::available_parallelism`]
    /// clamped to the node count, so multi-core hardware is used out of
    /// the box; `1` runs fully sequentially on the calling thread. Any
    /// value produces bit-identical outcomes (see the module docs'
    /// determinism contract), so the choice is purely about wall-clock.
    pub shards: usize,
    /// Deterministic adversarial fault schedule (`None`: a perfect
    /// network, at zero cost — the fault machinery is not even built).
    pub faults: Option<FaultPlan>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            bandwidth_words: DEFAULT_BANDWIDTH_WORDS,
            max_rounds: 1_000_000,
            seed: 0xC0FFEE,
            shared_randomness_words: 64,
            shards: 0,
            faults: None,
        }
    }
}

/// Minimum nodes per shard for auto-sizing (`shards = 0`): below this,
/// a shard's per-round work (~ns per active node) cannot amortize the
/// two barrier crossings a pooled round costs, so small graphs run
/// sequentially rather than paying thread overhead for nothing.
/// Explicit shard counts are honored regardless (clamped to `n` only).
const AUTO_MIN_NODES_PER_SHARD: usize = 4096;

/// When the upcoming round's total work (active nodes + in-flight
/// messages) is at most this, the coordinator executes the round inline
/// — all shard steps on its own thread — instead of releasing the
/// worker barrier. Running a handful of nodes costs well under the two
/// barrier crossings a pooled round pays, and keeping sparse rounds off
/// the barrier is what makes a quiescent network's rounds `O(1)` at
/// every shard count.
const INLINE_WORK_MAX: u64 = 64;

impl SimConfig {
    /// The effective shard count for an `n`-node run: `0` resolves to
    /// the machine's available parallelism, clamped so every shard gets
    /// at least `AUTO_MIN_NODES_PER_SHARD` (4096) nodes — tiny graphs
    /// run sequentially, where barrier crossings would dominate. Any
    /// explicit value is clamped to `[1, max(n, 1)]` (more shards than
    /// nodes would only idle).
    pub fn resolved_shards(&self, n: usize) -> usize {
        if self.shards == 0 {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
                .min(n / AUTO_MIN_NODES_PER_SHARD)
                .max(1)
        } else {
            self.shards.clamp(1, n.max(1))
        }
    }

    /// Eagerly checks the configuration — today that means the attached
    /// [`FaultPlan`], if any. Called by [`run`] and by every
    /// [`Session`](crate::Session) phase dispatch before any round
    /// executes, so an inconsistent plan fails fast with an actionable
    /// [`SimError::FaultConfig`] instead of corrupting a run.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::FaultConfig`] describing the inconsistency.
    pub fn validate(&self) -> Result<(), SimError> {
        if let Some(plan) = &self.faults {
            plan.validate(self.max_rounds)?;
        }
        Ok(())
    }
}

/// The splitmix64 finalizer: a high-quality pure 64-bit mix used to
/// decide message fates without consuming any RNG stream.
#[inline(always)]
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The fate hash of one delivery: a pure function of
/// `(fault_seed, round, arc)`, identical at every shard count.
#[inline(always)]
fn fate_hash(seed: u64, round: u64, arc: u64) -> u64 {
    splitmix64(
        seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ arc.wrapping_mul(0xD6E8_FEB8_6659_FD93),
    )
}

/// Converts a probability into a threshold for a uniform 64-bit hash.
fn rate_bar(rate: f64) -> u64 {
    if rate >= 1.0 {
        u64::MAX
    } else if rate <= 0.0 {
        0
    } else {
        (rate * u64::MAX as f64) as u64
    }
}

/// Per-shard fault machinery, built only when the run carries a
/// [`FaultPlan`]. Everything is **receiver-shard-local** — fates are
/// decided and delayed messages are parked on the shard that owns the
/// destination node — so no cross-shard synchronization is added and
/// the decisions (pure hashes) are shard-count-invariant.
struct FaultState<M> {
    drop_bar: u64,
    delay_bar: u64,
    corrupt_bar: u64,
    max_delay: u64,
    fault_seed: u64,
    /// Reorder buffer: bucket `r % ring.len()` holds the deliveries due
    /// at round `r`, as `(to, from, decided_round, payload)`.
    ring: Vec<Vec<(u32, NodeId, u64, M)>>,
    /// This round's due deliveries, sorted by `(to, decided_round,
    /// from)` and consumed front-to-back as the ascending active list
    /// reaches each receiver.
    due: std::collections::VecDeque<(u32, NodeId, u64, M)>,
    /// Total messages currently parked in `ring` (reported to the
    /// coordinator: the run must not quiesce while deliveries are
    /// pending).
    pending: u64,
    /// Crash state per own node, indexed `v - node_lo`; empty when the
    /// plan schedules no crashes in this shard's span.
    down: Vec<bool>,
    /// Crash/recovery events in this shard's span:
    /// `(round, node, is_recovery)`, sorted, consumed via `ecursor`.
    events: Vec<(u64, u32, bool)>,
    ecursor: usize,
    /// Recovery events not yet fired. Reported to the coordinator as
    /// pending work: a scheduled recovery must keep the run alive (the
    /// recovered node may resume sending), while a scheduled crash of an
    /// already-quiescent network is unobservable and must not.
    pending_recoveries: u64,
    dropped: u64,
    delayed: u64,
    corrupted: u64,
}

impl<M: Message> FaultState<M> {
    fn new(plan: &FaultPlan, node_lo: usize, node_hi: usize) -> Self {
        let delay_bar = rate_bar(plan.delay_rate);
        let buckets = if delay_bar > 0 {
            plan.max_delay as usize + 1
        } else {
            1
        };
        let mut events: Vec<(u64, u32, bool)> = Vec::new();
        for c in &plan.crashes {
            let v = c.node as usize;
            if v >= node_lo && v < node_hi {
                events.push((c.at_round, c.node, false));
                if let Some(r) = c.recover_at {
                    events.push((r, c.node, true));
                }
            }
        }
        events.sort_unstable();
        let pending_recoveries = events.iter().filter(|e| e.2).count() as u64;
        FaultState {
            drop_bar: rate_bar(plan.drop_rate),
            delay_bar,
            corrupt_bar: rate_bar(plan.corrupt_rate),
            max_delay: plan.max_delay.max(1),
            fault_seed: plan.fault_seed,
            ring: (0..buckets).map(|_| Vec::new()).collect(),
            due: std::collections::VecDeque::new(),
            pending: 0,
            down: if events.is_empty() {
                Vec::new()
            } else {
                vec![false; node_hi - node_lo]
            },
            events,
            ecursor: 0,
            pending_recoveries,
            dropped: 0,
            delayed: 0,
            corrupted: 0,
        }
    }

    /// Work the coordinator must not quiesce past: messages parked in
    /// the reorder ring plus recoveries still scheduled.
    #[inline]
    fn pending_work(&self) -> u64 {
        self.pending + self.pending_recoveries
    }

    /// Whether own node `v` is currently crashed.
    #[inline]
    fn is_down(&self, v: usize, node_lo: usize) -> bool {
        !self.down.is_empty() && self.down[v - node_lo]
    }

    /// Round-start fault processing: applies this round's crash and
    /// recovery events (a recovering node is re-activated — state
    /// intact, inbox lost), then pulls the round's due deliveries out
    /// of the reorder ring, orders them deterministically, and
    /// activates every receiver (a delayed delivery must wake its
    /// receiver). Runs before the active-list swap, so the activations
    /// land in **this** round's list; in a dense round they are
    /// subsumed by the full sweep and harmlessly discarded.
    fn begin_round(
        &mut self,
        round: u64,
        next_active: &mut Vec<u32>,
        in_set: &mut [bool],
        node_lo: u32,
    ) {
        while let Some(&(r, node, recovery)) = self.events.get(self.ecursor) {
            if r > round {
                break;
            }
            self.ecursor += 1;
            self.down[(node - node_lo) as usize] = !recovery;
            if recovery {
                self.pending_recoveries -= 1;
                activate(next_active, in_set, node_lo, node);
            }
        }
        debug_assert!(self.due.is_empty());
        let bucket = (round % self.ring.len() as u64) as usize;
        if !self.ring[bucket].is_empty() {
            let mut due = std::mem::take(&mut self.ring[bucket]);
            self.pending -= due.len() as u64;
            due.sort_unstable_by_key(|&(to, from, decided, _)| (to, decided, from));
            for &(to, ..) in &due {
                activate(next_active, in_set, node_lo, to);
            }
            self.due = due.into();
        }
    }

    /// Applies the fate of one delivery on arc `arc` gathered at
    /// `round` by node `to`: pushes it into `inbox` (delivered, possibly
    /// corrupted), parks it in the reorder ring (delayed, possibly
    /// corrupted), or destroys it (dropped).
    ///
    /// Fate chain: `h` decides drop; `h2 = splitmix64(h)` decides delay
    /// (and seeds the delay amount); `hc = splitmix64(h2 ^ CORRUPT_SALT)`
    /// decides corruption (and seeds the flip stream). Every draw chains
    /// from the previous one unconditionally, so a plan with
    /// `corrupt_rate: 0.0` reproduces bit-for-bit the fates of a plan
    /// without the field, and corruption never perturbs drop/delay
    /// decisions. Corruption applies *before* the delay branch, so
    /// delayed deliveries carry the lie too.
    #[inline]
    fn deliver(
        &mut self,
        round: u64,
        arc: usize,
        to: u32,
        from: NodeId,
        mut msg: M,
        inbox: &mut Vec<(NodeId, M)>,
    ) {
        /// Decorrelates the corrupt draw from the delay-amount draw
        /// (both chain from `h2`).
        const CORRUPT_SALT: u64 = 0x05EE_DC0D_EBAD_CAFE;
        let h = fate_hash(self.fault_seed, round, arc as u64);
        if h < self.drop_bar {
            self.dropped += 1;
            return;
        }
        let h2 = splitmix64(h);
        if self.corrupt_bar > 0 {
            let hc = splitmix64(h2 ^ CORRUPT_SALT);
            if hc < self.corrupt_bar {
                msg = msg.corrupted(splitmix64(hc));
                self.corrupted += 1;
            }
        }
        if self.delay_bar > 0 && h2 < self.delay_bar {
            let k = 1 + splitmix64(h2) % self.max_delay;
            let bucket = ((round + k) % self.ring.len() as u64) as usize;
            self.ring[bucket].push((to, from, round, msg));
            self.pending += 1;
            self.delayed += 1;
            return;
        }
        inbox.push((from, msg));
    }

    /// Appends node `v`'s due delayed deliveries to its inbox (called
    /// after the fresh gather; the due list is sorted by receiver and
    /// the active list ascends, so consumption is a front pop).
    #[inline]
    fn take_due(&mut self, v: u32, inbox: &mut Vec<(NodeId, M)>) {
        while let Some(&(to, ..)) = self.due.front() {
            if to != v {
                break;
            }
            let (_, from, _, msg) = self.due.pop_front().unwrap();
            inbox.push((from, msg));
        }
    }

    /// Destroys node `v`'s due delayed deliveries (the receiver is
    /// down; a delayed message to a crashed node is dropped).
    #[inline]
    fn drop_due(&mut self, v: u32) {
        while let Some(&(to, ..)) = self.due.front() {
            if to != v {
                break;
            }
            self.due.pop_front();
            self.dropped += 1;
        }
    }
}

/// Outcome of a run: the final node states plus statistics.
#[derive(Debug)]
pub struct RunOutcome<A> {
    /// Final per-node algorithm states, indexed by node id.
    pub nodes: Vec<A>,
    /// Collected statistics.
    pub stats: RunStats,
}

/// One arc-indexed mailbox payload slot, interior-mutable so the two
/// parity buffers can alternate read/write roles across the persistent
/// workers without re-borrowing each round. The payload is stored flat
/// (`MaybeUninit`, no `Option` discriminant); whether it is live is
/// tracked by the matching [`OccCell`] occupancy byte. See the module
/// docs for the ownership protocol that makes the `Sync` impl sound.
#[repr(transparent)]
struct Slot<M>(UnsafeCell<std::mem::MaybeUninit<M>>);

// SAFETY: slots are accessed under the engine's round protocol (module
// docs): per phase, each slot has at most one accessor — the owner of
// its arc for writes, the owner of the reverse arc for reads — and the
// pool's barriers order the phases.
unsafe impl<M: Send + Sync> Sync for Slot<M> {}

/// One arc-indexed occupancy byte, parallel to a [`Slot`]. A full byte
/// per arc rather than a bitset: a bitset word could straddle two
/// shards' arc ranges and turn the disjoint-span write protocol into a
/// data race, while bytes are distinct memory locations.
pub(crate) struct OccCell(UnsafeCell<bool>);

// SAFETY: same access protocol as the payload slot it describes.
unsafe impl Sync for OccCell {}

/// One cross-shard wake queue: destinations of messages a shard sent
/// into another shard's node span this round, drained by the owning
/// shard next round. Interior-mutable under the same parity protocol as
/// the mailbox slots (module docs).
pub(crate) struct WakeCell(pub(crate) UnsafeCell<Vec<u32>>);

// SAFETY: queue `(parity, sender, dest)` is written only by the sender
// shard in send phases of its parity and drained only by the dest shard
// in send phases of the opposite parity; barriers order the phases.
unsafe impl Sync for WakeCell {}

/// The full set of cross-shard wake queues: for each round parity, one
/// queue per `(sender shard, destination shard)` pair.
struct WakeMatrix {
    shards: usize,
    /// `bufs[parity][sender * shards + dest]`.
    bufs: [Vec<WakeCell>; 2],
}

impl WakeMatrix {
    fn new(shards: usize) -> Self {
        let mk = || {
            (0..shards * shards)
                .map(|_| WakeCell(UnsafeCell::new(Vec::new())))
                .collect()
        };
        WakeMatrix {
            shards,
            bufs: [mk(), mk()],
        }
    }

    /// Empties every queue (phase-start reset; queue capacity is kept).
    fn clear(&mut self) {
        for buf in &mut self.bufs {
            for cell in buf {
                cell.0.get_mut().clear();
            }
        }
    }
}

/// Inserts `v` into a shard's next-round active list iff absent,
/// maintaining the membership bitmap (indexed `v - node_lo`). Every
/// activation path — local wire sends ([`WireFx`]), cross-shard wake
/// drains, and [`Wake::Stay`] re-enqueues — goes through here: it is
/// the single owner of the duplicate-free invariant that the
/// dense-round fast path's list regeneration relies on.
#[inline]
pub(crate) fn activate(next_active: &mut Vec<u32>, in_set: &mut [bool], node_lo: u32, v: u32) {
    let off = (v - node_lo) as usize;
    if !in_set[off] {
        in_set[off] = true;
        next_active.push(v);
    }
}

/// Reborrows a shard's own contiguous arc span as plain mutable flat
/// slots (the form [`TxState`] consumes).
///
/// # Safety
///
/// The caller must hold exclusive access to every slot in `slots` for
/// the duration of the borrow — guaranteed by the engine protocol for a
/// shard's own arc span of the write buffer during its send phase.
/// Layout: `Slot<M>` is `repr(transparent)` over
/// `UnsafeCell<MaybeUninit<M>>`, which has the representation of `M`.
#[allow(clippy::mut_from_ref)]
unsafe fn own_slots_mut<M>(slots: &[Slot<M>]) -> &mut [std::mem::MaybeUninit<M>] {
    std::slice::from_raw_parts_mut(slots.as_ptr() as *mut std::mem::MaybeUninit<M>, slots.len())
}

/// Reborrows a shard's own contiguous arc span of occupancy bytes as a
/// plain mutable slice.
///
/// # Safety
///
/// Same exclusive-access requirement as [`own_slots_mut`], for the
/// matching occupancy array.
#[allow(clippy::mut_from_ref)]
unsafe fn own_occ_mut(occ: &[OccCell]) -> &mut [bool] {
    std::slice::from_raw_parts_mut(occ.as_ptr() as *mut bool, occ.len())
}

/// Requests an early cache fill of the line holding `p`. Purely a
/// performance hint — a no-op on architectures without a stable
/// prefetch intrinsic.
#[inline(always)]
fn prefetch_read<T>(p: &T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch has no memory effects; any address is allowed.
    unsafe {
        core::arch::x86_64::_mm_prefetch(
            std::ptr::from_ref(p).cast::<i8>(),
            core::arch::x86_64::_MM_HINT_T0,
        );
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

// Round execution modes, decided by the coordinator once per round
// from the global in-flight count (see the module docs' dense-rounds
// section). Workers read the mode through a relaxed atomic; the pool's
// barrier crossings provide the ordering.

/// Event-driven scheduling: only the active set runs.
const MODE_NORMAL: u8 = 0;
/// Every arc carried a message last round: run the full node span and
/// skip all event bookkeeping.
const MODE_DENSE: u8 = 1;
/// First round after leaving dense mode with messages still in flight:
/// reconstruct mail flags and activations from mailbox occupancy, then
/// proceed normally.
const MODE_RESYNC: u8 = 2;

/// The untyped (message-independent) per-shard engine state, persisted
/// across a session's phases by the [`EngineHost`]: the shard's
/// node/arc spans, its active-set bookkeeping, its dirty-slot lists,
/// and its per-arc statistics.
struct ShardCore {
    node_lo: usize,
    node_hi: usize,
    arc_lo: usize,
    /// Per-arc message counts for the shard's own arc span (folded into
    /// per-edge counts once at the end of the run — a sequential store
    /// per send instead of a random per-edge access). `u32` halves the
    /// array the send path does scattered read-modify-writes into; the
    /// count saturates rather than wraps in the (days-long) runs that
    /// would pass 2³² messages on one arc, keeping the fold sound.
    per_arc: Vec<u32>,
    /// Own-span slots delivered (read) this round; wiped at the start
    /// of the next round, when their buffer becomes the write target
    /// again.
    dirty_in: Vec<u32>,
    /// Own-span slots written this round; its length is the shard's
    /// contribution to the in-flight count.
    dirty_out: Vec<u32>,
    /// Nodes executing this round, sorted ascending.
    cur_active: Vec<u32>,
    /// Nodes scheduled for the next round: stays plus own-shard mail
    /// wakes (cross-shard wakes arrive through the wake queues).
    next_active: Vec<u32>,
    /// Membership bitmap for `next_active`, indexed by
    /// `node - node_lo`.
    in_set: Vec<bool>,
}

/// Builds the per-shard cores for `graph` split into `shards`
/// contiguous node ranges.
fn build_cores(graph: &Graph, shards: usize) -> Vec<ShardCore> {
    let n = graph.n();
    (0..shards)
        .map(|s| {
            let node_lo = s * n / shards;
            let node_hi = (s + 1) * n / shards;
            let arc_lo = if node_lo >= n {
                graph.num_arcs() // empty trailing shard (n = 0 only)
            } else {
                graph.arc_range(node_lo as NodeId).start
            };
            let arc_hi = if node_hi == node_lo {
                arc_lo
            } else {
                graph.arc_range((node_hi - 1) as NodeId).end
            };
            let span = node_hi - node_lo;
            ShardCore {
                node_lo,
                node_hi,
                arc_lo,
                per_arc: vec![0; arc_hi - arc_lo],
                // A shard can have at most one in-flight message per
                // owned arc; reserving that up front keeps the dirty
                // lists realloc-free for the whole run.
                dirty_in: Vec::with_capacity(arc_hi - arc_lo),
                dirty_out: Vec::with_capacity(arc_hi - arc_lo),
                cur_active: Vec::with_capacity(span),
                next_active: Vec::with_capacity(span),
                in_set: vec![false; span],
            }
        })
        .collect()
}

/// Per-phase shard state: the persistent core plus the phase's typed
/// inbox buffer, statistics accumulators, and (when the run carries a
/// [`FaultPlan`]) the receiver-side fault machinery.
struct Shard<M> {
    core: ShardCore,
    messages: u64,
    words: u64,
    inbox: Vec<(NodeId, M)>,
    faults: Option<FaultState<M>>,
}

/// A pool worker's state: its shard bookkeeping plus disjoint mutable
/// views of the node-state and RNG arrays.
struct ShardWorker<'a, D: Driver> {
    sh: Shard<D::Msg>,
    nodes: &'a mut [D::State],
    rngs: &'a mut [ChaCha8Rng],
}

/// What a shard reports to the coordinator after each send phase.
struct StepReport {
    violation: Option<SimError>,
    in_flight: u64,
    /// Nodes this shard has scheduled for the next round (stays plus
    /// own-shard mail wakes; cross-shard wakes are bounded by
    /// `in_flight`).
    next_active: u64,
    /// Fault-layer work still outstanding on this shard: messages
    /// parked in the reorder ring plus scheduled recoveries. Nonzero
    /// keeps the run from quiescing (a delayed delivery must still
    /// reach — and wake — its receiver). Always 0 without a
    /// [`FaultPlan`].
    fault_pending: u64,
}

/// The engine's per-node dispatch abstraction: how one node executes a
/// round and reports quiescence. Implemented for plain
/// [`NodeAlgorithm`] vectors (state *is* behavior) and for
/// [`Protocol`](crate::Protocol) runs (one shared protocol value drives
/// per-node states), so both APIs share one engine.
pub(crate) trait Driver: Sync {
    /// The wire message type.
    type Msg: Message + Send + Sync;
    /// Per-node state.
    type State: Send;
    /// One synchronous round for `state`'s node.
    fn node_round(&self, state: &mut Self::State, ctx: &mut RoundCtx<'_, Self::Msg>);
    /// The node's scheduling request after a round (the quiescence
    /// contract; see [`crate::Wake`]).
    fn node_wake(&self, state: &Self::State) -> Wake;
}

/// Driver for a vector of [`NodeAlgorithm`] values. `PhantomData` over
/// `fn() -> A` keeps the driver `Sync` without requiring `A: Sync` —
/// node states are only ever touched through disjoint `&mut`.
struct PlainDriver<A>(PhantomData<fn() -> A>);

impl<A> Driver for PlainDriver<A>
where
    A: NodeAlgorithm + Send,
    A::Msg: Send + Sync,
{
    type Msg = A::Msg;
    type State = A;
    #[inline]
    fn node_round(&self, state: &mut A, ctx: &mut RoundCtx<'_, A::Msg>) {
        state.round(ctx);
    }
    #[inline]
    fn node_wake(&self, state: &A) -> Wake {
        state.wake()
    }
}

/// The per-[`Session`](crate::Session) persistent half of the engine:
/// the worker pool (spawned once), the graph's reverse-arc table
/// (computed once), and every untyped per-run structure — mail flags,
/// cross-shard wake queues, per-shard cores — reset and reused each
/// phase. The message-typed mailbox buffers are recycled across phases
/// through a size-class [`SlabArena`].
pub(crate) struct EngineHost {
    pub(crate) pool: Pool,
    rev: Vec<u32>,
    /// Shard start boundaries (node span lower bounds, one per shard),
    /// for mapping a destination node to its shard.
    bounds: Vec<u32>,
    /// Parity mail flags (persistent; reset at phase start).
    mails: [Vec<AtomicBool>; 2],
    /// Parity mailbox occupancy bytes, one per arc (persistent —
    /// untyped, unlike the payload buffers; reset at phase start).
    occs: [Vec<OccCell>; 2],
    /// Whether dense (all-active) rounds are sound for this graph:
    /// `in_flight == num_arcs` implies *every* node has mail only when
    /// no node is isolated.
    dense_eligible: bool,
    /// Cross-shard wake queues (persistent; reset at phase start).
    wakes: WakeMatrix,
    /// Per-shard cores (persistent; reset at phase start). Emptied when
    /// a phase panics — `reset_for_phase` rebuilds them.
    cores: Vec<ShardCore>,
    /// Recycled storage for the message-typed mailbox buffers.
    arena: SlabArena,
}

impl EngineHost {
    /// Builds a host for `graph` with an already-resolved shard count
    /// (see [`SimConfig::resolved_shards`]).
    pub(crate) fn new(graph: &Graph, shards: usize) -> Self {
        let shards = shards.clamp(1, graph.n().max(1));
        let n = graph.n();
        let mk_flags = || (0..n).map(|_| AtomicBool::new(false)).collect();
        let mk_occ = || {
            (0..graph.num_arcs())
                .map(|_| OccCell(UnsafeCell::new(false)))
                .collect()
        };
        EngineHost {
            pool: Pool::new(shards),
            rev: build_rev_arcs(graph),
            bounds: (0..shards).map(|s| (s * n / shards) as u32).collect(),
            mails: [mk_flags(), mk_flags()],
            occs: [mk_occ(), mk_occ()],
            dense_eligible: graph.num_arcs() > 0 && (0..n as NodeId).all(|v| graph.degree(v) > 0),
            wakes: WakeMatrix::new(shards),
            cores: build_cores(graph, shards),
            arena: SlabArena::default(),
        }
    }

    /// Restores every persistent structure to its phase-start state:
    /// mail flags and wake queues empty, per-arc counters zero, and
    /// every shard's next-round active list seeded with its full node
    /// span (round 0 runs every node — protocols initialize there).
    fn reset_for_phase(&mut self, graph: &Graph) {
        for flags in &mut self.mails {
            for f in flags.iter_mut() {
                *f.get_mut() = false;
            }
        }
        for occ in &mut self.occs {
            for c in occ.iter_mut() {
                *c.0.get_mut() = false;
            }
        }
        self.wakes.clear();
        if self.cores.len() != self.pool.workers() {
            // A panicking phase unwound with the cores in flight;
            // rebuild them.
            self.cores = build_cores(graph, self.pool.workers());
        }
        for core in &mut self.cores {
            core.per_arc.fill(0);
            core.dirty_in.clear();
            core.dirty_out.clear();
            core.cur_active.clear();
            core.in_set.fill(false);
            core.next_active.clear();
            core.next_active
                .extend(core.node_lo as u32..core.node_hi as u32);
        }
    }
}

/// `rev[a]` is the opposite-direction arc of the same undirected edge.
fn build_rev_arcs(g: &Graph) -> Vec<u32> {
    let mut first_arc_of_edge: Vec<u32> = vec![u32::MAX; g.m()];
    let mut rev = vec![0u32; g.num_arcs()];
    for a in 0..g.num_arcs() as u32 {
        let e = g.arc_edge(ArcId(a)).index();
        if first_arc_of_edge[e] == u32::MAX {
            first_arc_of_edge[e] = a;
        } else {
            let b = first_arc_of_edge[e];
            rev[a as usize] = b;
            rev[b as usize] = a;
        }
    }
    rev
}

/// Executes one send phase for one shard: wipes the slots it delivered
/// last round (deferred deliver-phase cleanup), finalizes this round's
/// active list (stays + local wakes from last round, plus cross-shard
/// wakes drained from the parity queues), then runs each active node in
/// ascending id order — gathering its inbox from `cur`, applying its
/// sends into the shard's own span of `nxt`, and re-enqueuing it when
/// it asks to stay awake. In [`MODE_DENSE`] the active set is the full
/// node span by construction and all event bookkeeping is skipped; in
/// [`MODE_RESYNC`] the mail flags and activations the dense rounds
/// skipped are first rebuilt from mailbox occupancy (module docs).
/// Returns `(next_active_len, first_violation)`.
#[allow(clippy::too_many_arguments)]
fn run_shard<D: Driver>(
    graph: &Graph,
    driver: &D,
    sh: &mut Shard<D::Msg>,
    nodes: &mut [D::State],
    rngs: &mut [ChaCha8Rng],
    cur: &[Slot<D::Msg>],
    nxt: &[Slot<D::Msg>],
    occ_cur: &[OccCell],
    occ_nxt: &[OccCell],
    mail_cur: &[AtomicBool],
    mail_nxt: &[AtomicBool],
    rev: &[u32],
    shared: &[u64],
    round: u64,
    bandwidth: u32,
    me: usize,
    wakes: &WakeMatrix,
    bounds: &[u32],
    mode: u8,
) -> (u64, Option<SimError>) {
    let Shard {
        core,
        messages,
        words,
        inbox,
        faults,
    } = sh;
    let node_lo = core.node_lo;
    // Deferred cleanup: the slots this shard's messages were read from
    // last round live in its own span of what is now the write buffer;
    // wipe them before any send can find a stale occupant, then rotate
    // the dirty lists so `dirty_in` names this round's inbound slots.
    // Every dirty slot is occupied (sends are the only writer and the
    // overflow check rules out duplicates), so payload drops are exact.
    // SAFETY: own-span slots of the write buffer (invariant 1);
    // `occ_nxt[a]` was set by the send that initialized `nxt[a]`, and
    // dirty entries are own-range arc ids, so `a < num_arcs`.
    for &a in &core.dirty_in {
        let a = a as usize;
        debug_assert!(a < occ_nxt.len());
        unsafe {
            *occ_nxt.get_unchecked(a).0.get() = false;
            if std::mem::needs_drop::<D::Msg>() {
                (*nxt.get_unchecked(a).0.get()).assume_init_drop();
            }
        }
    }
    core.dirty_in.clear();
    std::mem::swap(&mut core.dirty_in, &mut core.dirty_out);

    // Fault round-start: apply crash/recovery events and surface this
    // round's delayed deliveries, activating their receivers. Runs
    // before the active-list swap (so the activations join this round's
    // list) and before the dense dispatch (a dense sweep subsumes them).
    if let Some(fs) = faults.as_mut() {
        fs.begin_round(
            round,
            &mut core.next_active,
            &mut core.in_set,
            node_lo as u32,
        );
    }

    if mode == MODE_DENSE {
        return run_shard_dense(
            graph, driver, core, messages, words, inbox, faults, nodes, rngs, cur, nxt, occ_cur,
            occ_nxt, mail_cur, rev, shared, round, bandwidth, me, wakes,
        );
    }

    if mode == MODE_RESYNC {
        // The previous rounds ran dense with wire effects skipped:
        // no mail flags were set and no wakes enqueued for this round.
        // Rebuild both from mailbox occupancy — a node has mail iff any
        // of its reverse slots is occupied. One O(own arcs) scan, paid
        // once per dense exit.
        #[allow(clippy::needless_range_loop)] // v indexes three parallel structures
        for v in node_lo..core.node_hi {
            for b in graph.arc_range(v as NodeId) {
                // SAFETY: read-buffer occupancy of slot `rev[b]`, read
                // only by the owner of arc `b` (invariant 2).
                if unsafe { *occ_cur[rev[b] as usize].0.get() } {
                    mail_cur[v].store(true, Ordering::Relaxed);
                    activate(
                        &mut core.next_active,
                        &mut core.in_set,
                        node_lo as u32,
                        v as u32,
                    );
                    break;
                }
            }
        }
    }

    // Drain the wake queues other shards filled for us last round (the
    // opposite parity; our own-shard wakes went straight into
    // `next_active` at send time).
    let drain_parity = ((round + 1) % 2) as usize;
    for t in 0..wakes.shards {
        if t == me {
            continue;
        }
        // SAFETY: queue `(parity, t, me)` is drained only by shard `me`
        // in send phases of the parity opposite to its writes (module
        // docs); the barrier crossing ordered shard `t`'s last-round
        // pushes before this read.
        let queue = unsafe { &mut *wakes.bufs[drain_parity][t * wakes.shards + me].0.get() };
        for &v in queue.iter() {
            activate(&mut core.next_active, &mut core.in_set, node_lo as u32, v);
        }
        queue.clear();
    }

    // Finalize this round's active list: sorted ascending, so execution
    // order (and thus violation precedence and inbox-order effects)
    // matches the sequential engine regardless of wake arrival order.
    std::mem::swap(&mut core.cur_active, &mut core.next_active);
    core.next_active.clear();
    let span = core.node_hi - node_lo;
    if core.cur_active.len() == span {
        // Dense round: the dedup invariant makes the list a permutation
        // of the whole span — regenerate it in order instead of paying
        // an O(span log span) sort (this keeps saturated rounds on the
        // raw message path).
        core.in_set.fill(false);
        core.cur_active.clear();
        core.cur_active.extend(node_lo as u32..core.node_hi as u32);
    } else if core.cur_active.len() >= (span / 8).max(1) {
        // Wide (but not full) frontier: rebuilding the sorted list by
        // scanning the membership bitmap is O(span) — cheaper than the
        // O(len log len) sort once len is a noticeable fraction of the
        // span — and yields the same ascending order (the bitmap *is*
        // the set).
        core.cur_active.clear();
        for (off, flag) in core.in_set.iter_mut().enumerate() {
            if *flag {
                *flag = false;
                core.cur_active.push(node_lo as u32 + off as u32);
            }
        }
    } else {
        for &v in &core.cur_active {
            core.in_set[v as usize - node_lo] = false;
        }
        core.cur_active.sort_unstable();
    }

    let wake_row = &wakes.bufs[(round % 2) as usize][me * wakes.shards..(me + 1) * wakes.shards];
    let mut violation: Option<SimError> = None;
    for idx in 0..core.cur_active.len() {
        let v = core.cur_active[idx] as usize;
        let range = graph.arc_range(v as NodeId);
        // Hide memory latency behind the current node's work: the
        // active list names the next node long before it is needed, so
        // start pulling its state, mail flag, and arc-table lines
        // while this node runs. The sparse activity pattern makes
        // these scattered (cache-cold) accesses; without the hint each
        // one stalls the round loop front-to-back.
        if let Some(&nv) = core.cur_active.get(idx + 1) {
            let nv = nv as usize;
            let nrange = graph.arc_range(nv as NodeId);
            prefetch_read(&nodes[nv - node_lo]);
            prefetch_read(&mail_cur[nv]);
            if nrange.start < nrange.end {
                prefetch_read(&rev[nrange.start]);
                prefetch_read(&occ_cur[nrange.start]);
            }
        }
        inbox.clear();
        // The mail flag gates the arc-range walk: only nodes somebody
        // actually addressed gather an inbox. (Relaxed is enough — the
        // flag was set before the previous round's barrier crossing,
        // which is a happens-before edge.)
        let had_mail = mail_cur[v].load(Ordering::Relaxed);
        if had_mail {
            mail_cur[v].store(false, Ordering::Relaxed);
        }
        if let Some(fs) = faults.as_mut() {
            if fs.is_down(v, node_lo) {
                // Crashed receiver: every inbound message (fresh or
                // delayed) is destroyed, and the node's hook never runs
                // — it is silent until (and unless) its recovery event
                // re-activates it.
                if had_mail {
                    let rev_span = &rev[range.clone()];
                    for &ra in rev_span {
                        // SAFETY: same read-side access as the gather
                        // below.
                        if unsafe { *occ_cur.get_unchecked(ra as usize).0.get() } {
                            fs.dropped += 1;
                        }
                    }
                }
                fs.drop_due(v as u32);
                continue;
            }
            if had_mail {
                let heads = graph.neighbors(v as NodeId);
                let rev_span = &rev[range.clone()];
                for (&h, &ra) in heads.iter().zip(rev_span) {
                    let ra = ra as usize;
                    // SAFETY: as in the fault-free gather below.
                    unsafe {
                        if *occ_cur.get_unchecked(ra).0.get() {
                            let m = (*cur.get_unchecked(ra).0.get()).assume_init_ref().clone();
                            fs.deliver(round, ra, v as u32, h, m, inbox);
                        }
                    }
                }
            }
            fs.take_due(v as u32, inbox);
        } else if had_mail {
            // Walk the node's reverse arcs alongside its neighbor list
            // (both parallel to the arc range — no per-arc bounds
            // checks or `arc_head` lookups).
            let heads = graph.neighbors(v as NodeId);
            let rev_span = &rev[range.clone()];
            inbox.extend(heads.iter().zip(rev_span).filter_map(|(&h, &ra)| {
                let ra = ra as usize;
                // SAFETY: read buffer, slot `rev[b]` is read only by
                // the owner of arc `b` (invariant 2); `ra < num_arcs`
                // by the reverse-arc table's construction; the
                // occupancy byte guards slot initialization.
                unsafe {
                    if *occ_cur.get_unchecked(ra).0.get() {
                        let m = (*cur.get_unchecked(ra).0.get()).assume_init_ref().clone();
                        Some((h, m))
                    } else {
                        None
                    }
                }
            }));
        }
        {
            // SAFETY: this shard's own arc span of the write buffer
            // (invariant 1); the borrow ends with `ctx`.
            let own = unsafe { own_slots_mut(&nxt[range.start..range.end]) };
            let occ = unsafe { own_occ_mut(&occ_nxt[range.start..range.end]) };
            let mut ctx = RoundCtx {
                node: v as NodeId,
                round,
                graph,
                inbox,
                rng: &mut rngs[v - node_lo],
                shared,
                tx: TxState {
                    slots: own,
                    occ,
                    heads: graph.neighbors(v as NodeId),
                    arc_base: range.start as u32,
                    wire: Some(WireFx {
                        mail: mail_nxt,
                        next_active: &mut core.next_active,
                        in_set: &mut core.in_set,
                        node_lo: node_lo as u32,
                        node_hi: core.node_hi as u32,
                        bounds,
                        wake_row,
                    }),
                    dirty: &mut core.dirty_out,
                    messages,
                    words,
                    per_arc: &mut core.per_arc[range.start - core.arc_lo..range.end - core.arc_lo],
                    violation: &mut violation,
                    bandwidth,
                },
            };
            driver.node_round(&mut nodes[v - node_lo], &mut ctx);
        }
        if violation.is_some() {
            return (core.next_active.len() as u64, violation);
        }
        if let Wake::Stay = driver.node_wake(&nodes[v - node_lo]) {
            activate(
                &mut core.next_active,
                &mut core.in_set,
                node_lo as u32,
                v as u32,
            );
        }
    }
    (core.next_active.len() as u64, violation)
}

/// The [`MODE_DENSE`] send phase: every node in the span runs, so all
/// event bookkeeping is skipped — pending wakes and activations are
/// discarded (subsumed by the full sweep), mail flags are cleared
/// unconditionally (so a later notify's early-exit cannot observe a
/// stale flag), the inbox gather reads every reverse slot without an
/// occupancy check (`in_flight == num_arcs` guarantees occupancy), and
/// sends carry no [`WireFx`]. Statistics and [`Wake::Stay`] handling
/// are identical to the normal path, so outcomes are bit-identical.
#[allow(clippy::too_many_arguments)]
fn run_shard_dense<D: Driver>(
    graph: &Graph,
    driver: &D,
    core: &mut ShardCore,
    messages: &mut u64,
    words: &mut u64,
    inbox: &mut Vec<(NodeId, D::Msg)>,
    faults: &mut Option<FaultState<D::Msg>>,
    nodes: &mut [D::State],
    rngs: &mut [ChaCha8Rng],
    cur: &[Slot<D::Msg>],
    nxt: &[Slot<D::Msg>],
    occ_cur: &[OccCell],
    occ_nxt: &[OccCell],
    mail_cur: &[AtomicBool],
    rev: &[u32],
    shared: &[u64],
    round: u64,
    bandwidth: u32,
    me: usize,
    wakes: &WakeMatrix,
) -> (u64, Option<SimError>) {
    let _ = occ_cur; // release builds compile the debug assertion away
    let node_lo = core.node_lo;
    // The wake queues other shards filled for us last round are
    // subsumed by the full sweep, but must still be emptied to keep the
    // parity protocol's "clean before reuse" invariant.
    let drain_parity = ((round + 1) % 2) as usize;
    for t in 0..wakes.shards {
        if t != me {
            // SAFETY: same drain-side access as the normal path.
            unsafe { (*wakes.bufs[drain_parity][t * wakes.shards + me].0.get()).clear() };
        }
    }
    // Pending activations are likewise subsumed; drop them (clearing
    // their bitmap bits preserves the dedup invariant for the stays
    // recorded below).
    for &v in &core.next_active {
        core.in_set[v as usize - node_lo] = false;
    }
    core.next_active.clear();

    let mut violation: Option<SimError> = None;
    for v in node_lo..core.node_hi {
        let range = graph.arc_range(v as NodeId);
        // Unconditional clear: entering the first dense round every
        // flag in this parity is set (the previous normal round's
        // notifies), in dense-to-dense rounds they are all clear — both
        // are handled without a read.
        mail_cur[v].store(false, Ordering::Relaxed);
        inbox.clear();
        // Gather every reverse slot without occupancy checks —
        // `in_flight == num_arcs` last round guarantees each is
        // occupied — walking the neighbor list and reverse-arc span in
        // lockstep (both parallel to the arc range).
        let heads = graph.neighbors(v as NodeId);
        let rev_span = &rev[range.clone()];
        if let Some(fs) = faults.as_mut() {
            if fs.is_down(v, node_lo) {
                // Crashed receiver in a dense round: every reverse slot
                // is occupied, so the whole degree's worth of inbound
                // messages is destroyed, plus any due delayed ones.
                fs.dropped += rev_span.len() as u64;
                fs.drop_due(v as u32);
                continue;
            }
            for (&h, &ra) in heads.iter().zip(rev_span) {
                let ra = ra as usize;
                // SAFETY: as in the fault-free gather below.
                let m = unsafe {
                    debug_assert!(*occ_cur.get_unchecked(ra).0.get());
                    (*cur.get_unchecked(ra).0.get()).assume_init_ref().clone()
                };
                fs.deliver(round, ra, v as u32, h, m, inbox);
            }
            fs.take_due(v as u32, inbox);
        } else {
            inbox.extend(heads.iter().zip(rev_span).map(|(&h, &ra)| {
                let ra = ra as usize;
                // SAFETY: read buffer (invariant 2); `ra < num_arcs` by
                // the reverse-arc table's construction; occupancy
                // guaranteed as above.
                unsafe {
                    debug_assert!(*occ_cur.get_unchecked(ra).0.get());
                    let m = (*cur.get_unchecked(ra).0.get()).assume_init_ref().clone();
                    (h, m)
                }
            }));
        }
        {
            // SAFETY: this shard's own arc span of the write buffer
            // (invariant 1); the borrow ends with `ctx`.
            let own = unsafe { own_slots_mut(&nxt[range.start..range.end]) };
            let occ = unsafe { own_occ_mut(&occ_nxt[range.start..range.end]) };
            let mut ctx = RoundCtx {
                node: v as NodeId,
                round,
                graph,
                inbox,
                rng: &mut rngs[v - node_lo],
                shared,
                tx: TxState {
                    slots: own,
                    occ,
                    heads: graph.neighbors(v as NodeId),
                    arc_base: range.start as u32,
                    wire: None,
                    dirty: &mut core.dirty_out,
                    messages,
                    words,
                    per_arc: &mut core.per_arc[range.start - core.arc_lo..range.end - core.arc_lo],
                    violation: &mut violation,
                    bandwidth,
                },
            };
            driver.node_round(&mut nodes[v - node_lo], &mut ctx);
        }
        if violation.is_some() {
            return (core.next_active.len() as u64, violation);
        }
        if let Wake::Stay = driver.node_wake(&nodes[v - node_lo]) {
            activate(
                &mut core.next_active,
                &mut core.in_set,
                node_lo as u32,
                v as u32,
            );
        }
    }
    (core.next_active.len() as u64, violation)
}

/// Runs `nodes` (one [`NodeAlgorithm`] value per node of `graph`) to
/// quiescence: no node awake and no messages in flight.
///
/// Rounds are fully synchronous: messages sent at round `r` are delivered
/// at round `r + 1`. The engine enforces the CONGEST discipline — a node
/// may send at most one message per neighbor per round, each at most
/// `cfg.bandwidth_words` words, and only to adjacent nodes. Scheduling
/// is event-driven (see the module docs and [`crate::Wake`]): a node's
/// `round` hook runs at round 0, on rounds with incoming mail, and on
/// rounds following a [`Wake::Stay`] request.
///
/// With `cfg.shards > 1` the rounds are executed by a persistent pool
/// of that many worker threads over contiguous node ranges (see
/// [`crate::pool`]); the outcome (including [`RunStats`] and per-node
/// RNG streams) is bit-identical to the sequential engine. The
/// `Send`/`Sync` bounds exist solely to allow this; every plain-data
/// message/state type satisfies them.
///
/// # Errors
///
/// Returns a [`SimError`] on any CONGEST-model violation or when
/// `cfg.max_rounds` is exceeded. The run is deterministic given
/// `cfg.seed`.
///
/// # Panics
///
/// Panics if `nodes.len() != graph.n()`. A panic inside a node's
/// `round` — on any shard — propagates to the caller after the pool
/// shuts down (it never deadlocks the barrier).
pub fn run<A: NodeAlgorithm + Send>(
    graph: &Graph,
    nodes: Vec<A>,
    cfg: &SimConfig,
) -> Result<RunOutcome<A>, SimError>
where
    A::Msg: Send + Sync,
{
    cfg.validate()?;
    let mut host = EngineHost::new(graph, cfg.resolved_shards(graph.n()));
    let (nodes, stats) = run_phase(graph, &mut host, &PlainDriver::<A>(PhantomData), nodes, cfg)?;
    Ok(RunOutcome { nodes, stats })
}

/// One engine phase: runs `states` (one per node) to quiescence on the
/// host's persistent pool, driven by `driver`. This is the shared core
/// of [`run`] (one-shot) and [`Session`](crate::Session) (many phases,
/// one pool spawn). `cfg.shards` is ignored here — the host's pool was
/// sized when it was built.
pub(crate) fn run_phase<D: Driver>(
    graph: &Graph,
    host: &mut EngineHost,
    driver: &D,
    mut nodes: Vec<D::State>,
    cfg: &SimConfig,
) -> Result<(Vec<D::State>, RunStats), SimError> {
    assert_eq!(
        nodes.len(),
        graph.n(),
        "need exactly one algorithm instance per node"
    );
    let n = graph.n();
    host.reset_for_phase(graph);
    let mut stats = RunStats::new(graph);

    // Deterministic per-node RNGs and shared randomness.
    let mut master = ChaCha8Rng::seed_from_u64(cfg.seed);
    let shared: Vec<u64> = (0..cfg.shared_randomness_words)
        .map(|_| master.gen())
        .collect();
    let mut node_rngs: Vec<ChaCha8Rng> = (0..n)
        .map(|v| {
            ChaCha8Rng::seed_from_u64(
                cfg.seed ^ 0x9E37_79B9_7F4A_7C15u64.wrapping_mul(v as u64 + 1),
            )
        })
        .collect();

    let num_arcs = graph.num_arcs();
    // Parity mailbox buffers (recycled through the host's size-class
    // arena) and mail flags: buffer `r % 2` is read in round `r`,
    // buffer `(r + 1) % 2` written. The payloads are `MaybeUninit`, so
    // adopting a recycled slab is a length bump — no per-slot
    // initialization; liveness is tracked by the host's occupancy
    // bytes, which `reset_for_phase` cleared.
    let bufs: [Vec<Slot<D::Msg>>; 2] = [0, 1].map(|_| {
        let mut buf: Vec<Slot<D::Msg>> = host.arena.take(num_arcs);
        // SAFETY: the arena guarantees `capacity >= num_arcs`, and a
        // `Slot` wraps `MaybeUninit`, for which any contents are valid.
        unsafe { buf.set_len(num_arcs) };
        buf
    });
    let dense_eligible = host.dense_eligible;

    let EngineHost {
        pool,
        rev,
        bounds,
        mails,
        occs,
        wakes,
        cores,
        arena,
        ..
    } = host;
    let shard_count = pool.workers();

    // Worker states: each owns its shard bookkeeping plus disjoint
    // mutable slices of the node and RNG arrays. The cores move out of
    // the host for the duration of the phase and return at the end.
    let mut workers: Vec<ShardWorker<'_, D>> = Vec::with_capacity(shard_count);
    {
        let mut nodes_rest: &mut [D::State] = &mut nodes;
        let mut rngs_rest: &mut [ChaCha8Rng] = &mut node_rngs;
        for core in std::mem::take(cores) {
            let span = core.node_hi - core.node_lo;
            let (node_chunk, rest) = nodes_rest.split_at_mut(span);
            nodes_rest = rest;
            let (rng_chunk, rest) = rngs_rest.split_at_mut(span);
            rngs_rest = rest;
            let faults = cfg
                .faults
                .as_ref()
                .map(|plan| FaultState::new(plan, core.node_lo, core.node_hi));
            workers.push(ShardWorker {
                sh: Shard {
                    core,
                    messages: 0,
                    words: 0,
                    inbox: Vec::new(),
                    faults,
                },
                nodes: node_chunk,
                rngs: rng_chunk,
            });
        }
    }

    let bufs_ref = &bufs;
    let mails_ref: &[Vec<AtomicBool>; 2] = mails;
    let occs_ref: &[Vec<OccCell>; 2] = occs;
    let wakes_ref: &WakeMatrix = wakes;
    let bounds_ref: &[u32] = bounds;
    let rev_ref: &[u32] = rev;
    let shared_ref: &[u64] = &shared;
    let bandwidth = cfg.bandwidth_words;
    // Round mode, written by the coordinator (in `control`) and read by
    // the workers at the start of the next round's step; the pool's
    // barrier crossings provide the happens-before edge, so relaxed
    // atomics suffice.
    let mode = std::sync::atomic::AtomicU8::new(MODE_NORMAL);
    let mode_ref = &mode;
    let step = move |w: usize, st: &mut ShardWorker<'_, D>, round: u64| -> StepReport {
        let parity = (round % 2) as usize;
        let (next_active, violation) = run_shard(
            graph,
            driver,
            &mut st.sh,
            st.nodes,
            st.rngs,
            &bufs_ref[parity],
            &bufs_ref[1 - parity],
            &occs_ref[parity],
            &occs_ref[1 - parity],
            &mails_ref[parity],
            &mails_ref[1 - parity],
            rev_ref,
            shared_ref,
            round,
            bandwidth,
            w,
            wakes_ref,
            bounds_ref,
            mode_ref.load(Ordering::Relaxed),
        );
        StepReport {
            violation,
            in_flight: st.sh.core.dirty_out.len() as u64,
            next_active,
            fault_pending: st.sh.faults.as_ref().map_or(0, FaultState::pending_work),
        }
    };

    let mut prev_in_flight = 0u64;
    // Coordinator-side mirror of the mode the round just executed under
    // (the atomic already holds the *next* round's mode once stored).
    let mut mode_used = MODE_NORMAL;
    let num_arcs_u64 = num_arcs as u64;
    let stats_ref = &mut stats;
    let control = move |round: u64,
                        results: Vec<std::thread::Result<StepReport>>|
          -> Control<Result<(), SimError>> {
        stats_ref.rounds = round + 1;
        if prev_in_flight > 0 {
            stats_ref.delivered_rounds += 1;
        }
        // Aggregate in shard order — which is node order, so the first
        // abnormal event encountered below (a model violation or a
        // protocol panic) is exactly the one the sequential engine
        // would have hit first: a violation in a lower shard outranks a
        // panic in a higher one, and vice versa.
        let mut next_active = 0u64;
        let mut in_flight = 0u64;
        let mut fault_pending = 0u64;
        for result in results {
            match result {
                Ok(report) => {
                    if let Some(e) = report.violation {
                        return Control::Stop(Err(e));
                    }
                    next_active += report.next_active;
                    in_flight += report.in_flight;
                    fault_pending += report.fault_pending;
                }
                Err(payload) => return Control::Abort(payload),
            }
        }
        prev_in_flight = in_flight;
        // Decide the next round's mode (module docs, dense rounds): a
        // message on every arc makes the full span active by
        // construction; leaving dense mode with traffic still in flight
        // takes one resync round to rebuild the skipped wire effects.
        let next_mode = if dense_eligible && in_flight == num_arcs_u64 {
            MODE_DENSE
        } else if mode_used == MODE_DENSE && in_flight > 0 {
            MODE_RESYNC
        } else {
            MODE_NORMAL
        };
        mode_ref.store(next_mode, Ordering::Relaxed);
        mode_used = next_mode;
        if in_flight == 0 && next_active == 0 && fault_pending == 0 {
            // Quiescence: no node awake, nothing on the wire, nothing
            // parked in a fault-layer reorder ring, no recovery still
            // scheduled.
            Control::Stop(Ok(()))
        } else if next_mode == MODE_NORMAL
            && next_active + in_flight + fault_pending <= INLINE_WORK_MAX
        {
            // A near-quiescent round: run it on the coordinator instead
            // of paying the barrier for idle workers.
            Control::ContinueInline
        } else {
            Control::Continue
        }
    };

    let (workers, outcome) = pool.run_rounds(workers, cfg.max_rounds, step, control);
    // Flat slots carry no discriminant, so payloads still parked in the
    // mailboxes when the run stops (quiescence leaves last-delivered
    // slots, a violation or round limit leaves in-flight ones) must be
    // dropped here for non-trivial message types. At any stop point the
    // occupied slots are exactly the union of every shard's `dirty_in`
    // (slots read in the final round `R`, in buffer `R % 2`) and
    // `dirty_out` (slots written in round `R`, in buffer `(R+1) % 2`).
    // A panicking phase unwinds past this and leaks payloads, which is
    // sound. POD messages skip the walk entirely.
    if std::mem::needs_drop::<D::Msg>() && stats.rounds > 0 {
        let last = stats.rounds - 1;
        let buf_in = &bufs[(last % 2) as usize];
        let buf_out = &bufs[((last + 1) % 2) as usize];
        for w in &workers {
            // SAFETY: the pool has stopped; this thread has exclusive
            // access, and every dirty slot is occupied (wipe protocol).
            for &a in &w.sh.core.dirty_in {
                unsafe { (*buf_in[a as usize].0.get()).assume_init_drop() };
            }
            for &a in &w.sh.core.dirty_out {
                unsafe { (*buf_out[a as usize].0.get()).assume_init_drop() };
            }
        }
    }
    let fold_stats = matches!(outcome, Some(Ok(())));
    for w in workers {
        if fold_stats {
            stats.messages += w.sh.messages;
            stats.words += w.sh.words;
            if let Some(fs) = &w.sh.faults {
                stats.dropped += fs.dropped;
                stats.delayed += fs.delayed;
                stats.corrupted += fs.corrupted;
            }
            for (j, &x) in w.sh.core.per_arc.iter().enumerate() {
                if x > 0 {
                    let e = graph.arc_edge(ArcId((w.sh.core.arc_lo + j) as u32));
                    stats.per_edge_messages[e.index()] += u64::from(x);
                }
            }
        }
        cores.push(w.sh.core);
    }
    if fold_stats {
        if let Some(plan) = &cfg.faults {
            // Crashes are per-node events decided by the plan, not the
            // shards: count the distinct nodes whose crash round fell
            // inside the run (validation rules out duplicate nodes).
            stats.crashed_nodes = plan
                .crashes
                .iter()
                .filter(|c| c.at_round < stats.rounds)
                .count() as u64;
        }
    }
    let [b0, b1] = bufs;
    arena.put(b0);
    arena.put(b1);
    match outcome {
        Some(Ok(())) => Ok((nodes, stats)),
        Some(Err(e)) => Err(e),
        None => Err(SimError::RoundLimitExceeded {
            limit: cfg.max_rounds,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Flood: node 0 starts; everyone forwards one token to each
    /// neighbor exactly once.
    #[derive(Debug, Default, Clone, PartialEq, Eq)]
    struct Flood {
        seen: bool,
        fired: bool,
        heard_at: Option<u64>,
    }

    impl NodeAlgorithm for Flood {
        type Msg = u32;
        fn round(&mut self, ctx: &mut RoundCtx<'_, u32>) {
            if ctx.round() == 0 && ctx.node() == 0 {
                self.seen = true;
                self.heard_at = Some(0);
            }
            if !self.seen && !ctx.inbox().is_empty() {
                self.seen = true;
                self.heard_at = Some(ctx.round());
            }
            if self.seen && !self.fired {
                self.fired = true;
                for i in 0..ctx.degree() {
                    ctx.send_nth(i, 1);
                }
            }
        }
        fn halted(&self) -> bool {
            self.fired || !self.seen
        }
    }

    #[test]
    fn flood_reaches_everyone_in_ecc_rounds() {
        let g = lcs_graph::generators::path(6);
        let out = run(
            &g,
            (0..6).map(|_| Flood::default()).collect(),
            &SimConfig::default(),
        )
        .unwrap();
        for (v, node) in out.nodes.iter().enumerate() {
            assert_eq!(node.heard_at, Some(v as u64), "node {v}");
        }
        // 2 messages per internal edge (both directions), path has 5 edges.
        assert_eq!(out.stats.messages, 10);
        assert_eq!(out.stats.max_edge_messages(), 2);
        // Tokens travel forward in rounds 1..=5 and the end node's own
        // flood arrives back at round 6.
        assert_eq!(out.stats.delivered_rounds, 6);
    }

    /// Tier-1 determinism smoke: pooled sharded runs are bit-identical
    /// to the sequential engine on a path and a clique.
    #[test]
    fn sharded_runs_bit_identical_on_path_and_clique() {
        for g in [
            lcs_graph::generators::path(23),
            lcs_graph::generators::complete(17),
        ] {
            let n = g.n();
            let mk = || (0..n).map(|_| Flood::default()).collect::<Vec<_>>();
            let base = run(&g, mk(), &SimConfig::default()).unwrap();
            for shards in [2, 4, 7, 64] {
                let cfg = SimConfig {
                    shards,
                    ..SimConfig::default()
                };
                let out = run(&g, mk(), &cfg).unwrap();
                assert_eq!(out.nodes, base.nodes, "shards={shards}");
                assert_eq!(out.stats, base.stats, "shards={shards}");
            }
        }
    }

    /// Per-edge stat folding under the pool: on a path split across
    /// shards, every shard-boundary edge's two arcs live in *different*
    /// shards, and the fold must still count the edge exactly once per
    /// message — with exact totals, not merely shard-count-invariant
    /// ones.
    #[test]
    fn per_edge_folding_counts_shard_boundary_arcs_exactly_once() {
        let g = lcs_graph::generators::path(8);
        for shards in [1usize, 2, 4, 8] {
            let cfg = SimConfig {
                shards,
                ..SimConfig::default()
            };
            let out = run(&g, (0..8).map(|_| Flood::default()).collect(), &cfg).unwrap();
            // Flood crosses every edge exactly once in each direction.
            assert_eq!(
                out.stats.per_edge_messages,
                vec![2u64; 7],
                "shards={shards}"
            );
            assert_eq!(out.stats.messages, 14, "shards={shards}");
            assert_eq!(out.stats.words, 14, "shards={shards}");
            // Forward wave rounds 1..=7, plus node 7's own flood echo at
            // round 8.
            assert_eq!(out.stats.delivered_rounds, 8, "shards={shards}");
        }
    }

    /// Pure mail-driven relay with an invocation log: the event-driven
    /// scheduler must invoke a node ONLY at round 0 and on rounds with
    /// incoming mail — never in between.
    #[derive(Debug, Default, Clone, PartialEq, Eq)]
    struct Relay {
        invoked_at: Vec<u64>,
    }

    impl NodeAlgorithm for Relay {
        type Msg = u32;
        fn round(&mut self, ctx: &mut RoundCtx<'_, u32>) {
            self.invoked_at.push(ctx.round());
            let fire = (ctx.round() == 0 && ctx.node() == 0)
                || ctx.inbox().iter().any(|&(from, _)| from < ctx.node());
            if fire {
                if let Some(i) = ctx.neighbor_index(ctx.node() + 1) {
                    ctx.send_nth(i, 1);
                }
            }
        }
        fn halted(&self) -> bool {
            true // activity is purely mail-driven
        }
    }

    #[test]
    fn rounds_cost_active_nodes_not_n() {
        let g = lcs_graph::generators::path(5);
        let out = run(
            &g,
            (0..5).map(|_| Relay::default()).collect(),
            &SimConfig::default(),
        )
        .unwrap();
        // Node 0 runs only at phase start; node k > 0 additionally runs
        // exactly when the token reaches it (round k) and when its
        // forward neighbor's... nothing else: the hook must NOT run on
        // quiescent rounds.
        assert_eq!(out.nodes[0].invoked_at, vec![0]);
        for k in 1..5u64 {
            assert_eq!(
                out.nodes[k as usize].invoked_at,
                vec![0, k],
                "node {k} must wake only on mail"
            );
        }
        // Token hops rounds 1..=4, then quiescence.
        assert_eq!(out.stats.rounds, 5);
        assert_eq!(out.stats.delivered_rounds, 4);
        assert_eq!(out.stats.messages, 4);
    }

    /// The relay crosses every shard boundary when each node is its own
    /// shard: cross-shard wakes must deliver activation exactly like
    /// the sequential engine, including the invocation logs.
    #[test]
    fn cross_shard_wakes_match_sequential_invocations() {
        let g = lcs_graph::generators::path(8);
        let mk = || (0..8).map(|_| Relay::default()).collect::<Vec<_>>();
        let base = run(&g, mk(), &SimConfig::default()).unwrap();
        for shards in [2usize, 4, 8] {
            let cfg = SimConfig {
                shards,
                ..SimConfig::default()
            };
            let out = run(&g, mk(), &cfg).unwrap();
            assert_eq!(out.nodes, base.nodes, "shards={shards}");
            assert_eq!(out.stats, base.stats, "shards={shards}");
        }
    }

    /// A node that overrides `wake` to stay scheduled WITHOUT mail (the
    /// explicit quiescence contract): a ticking clock. Everyone else
    /// sleeps after round 0, so rounds are O(1) regardless of n.
    #[derive(Debug)]
    struct Clock {
        ticks: u64,
        invocations: u64,
    }

    impl NodeAlgorithm for Clock {
        type Msg = ();
        fn round(&mut self, _ctx: &mut RoundCtx<'_, ()>) {
            self.invocations += 1;
            if self.ticks > 0 {
                self.ticks -= 1;
            }
        }
        fn halted(&self) -> bool {
            true
        }
        fn wake(&self) -> Wake {
            if self.ticks > 0 {
                Wake::Stay
            } else {
                Wake::Sleep
            }
        }
    }

    #[test]
    fn wake_stay_keeps_a_mailless_node_scheduled() {
        let g = lcs_graph::generators::path(50);
        for shards in [1usize, 4] {
            let cfg = SimConfig {
                shards,
                ..SimConfig::default()
            };
            let nodes = (0..50)
                .map(|v| Clock {
                    ticks: if v == 0 { 10 } else { 0 },
                    invocations: 0,
                })
                .collect();
            let out = run(&g, nodes, &cfg).unwrap();
            assert_eq!(out.stats.rounds, 10, "shards={shards}");
            assert_eq!(out.nodes[0].invocations, 10, "shards={shards}");
            for v in 1..50 {
                assert_eq!(
                    out.nodes[v].invocations, 1,
                    "sleeping node {v} must run only at phase start (shards={shards})"
                );
            }
            assert_eq!(out.stats.messages, 0);
            assert_eq!(out.stats.delivered_rounds, 0);
        }
    }

    /// Un-halt after quiescence: a node that slept for several rounds is
    /// re-activated by late mail and acts again — across a shard
    /// boundary.
    #[derive(Debug)]
    struct LateCaller {
        fire_at: u64,
        countdown: u64,
        echoed: bool,
        got_echo_at: Option<u64>,
    }

    impl NodeAlgorithm for LateCaller {
        type Msg = u32;
        fn round(&mut self, ctx: &mut RoundCtx<'_, u32>) {
            if ctx.node() == 0 {
                if ctx.round() == self.fire_at {
                    ctx.send(1, 7);
                }
                if let Some(&(_, m)) = ctx.inbox().first() {
                    self.got_echo_at = Some(ctx.round());
                    assert_eq!(m, 8);
                }
                if self.countdown > 0 {
                    self.countdown -= 1;
                }
            } else if let Some(&(_, m)) = ctx.inbox().first() {
                // Asleep since round 0; woken by the late message.
                self.echoed = true;
                ctx.send(0, m + 1);
            }
        }
        fn halted(&self) -> bool {
            true
        }
        fn wake(&self) -> Wake {
            if self.countdown > 0 {
                Wake::Stay
            } else {
                Wake::Sleep
            }
        }
    }

    #[test]
    fn late_mail_reactivates_a_quiescent_node_identically_across_shards() {
        let g = lcs_graph::generators::path(2);
        for shards in [1usize, 2] {
            let cfg = SimConfig {
                shards,
                ..SimConfig::default()
            };
            let mk = |v: u32| LateCaller {
                fire_at: 5,
                countdown: if v == 0 { 6 } else { 0 },
                echoed: false,
                got_echo_at: None,
            };
            let out = run(&g, vec![mk(0), mk(1)], &cfg).unwrap();
            assert!(out.nodes[1].echoed, "shards={shards}");
            // Sent at 5, echoed at 6, received at 7.
            assert_eq!(out.nodes[0].got_echo_at, Some(7), "shards={shards}");
            assert_eq!(out.stats.rounds, 8, "shards={shards}");
            assert_eq!(out.stats.delivered_rounds, 2, "shards={shards}");
        }
    }

    /// A deliberately misbehaving node for violation tests.
    #[derive(Debug)]
    struct Misbehave {
        mode: u8,
    }

    impl NodeAlgorithm for Misbehave {
        type Msg = u64;
        fn round(&mut self, ctx: &mut RoundCtx<'_, u64>) {
            if ctx.round() == 0 && ctx.node() == 0 {
                match self.mode {
                    0 => ctx.send(2, 1), // non-neighbor on a path 0-1-2
                    1 => {
                        ctx.send(1, 1);
                        ctx.send(1, 2); // double send
                    }
                    _ => {}
                }
            }
        }
        fn halted(&self) -> bool {
            true
        }
    }

    #[test]
    fn invalid_destination_detected() {
        let g = lcs_graph::generators::path(3);
        let nodes = (0..3).map(|_| Misbehave { mode: 0 }).collect();
        let err = run(&g, nodes, &SimConfig::default()).unwrap_err();
        assert_eq!(
            err,
            SimError::InvalidDestination {
                from: 0,
                to: 2,
                round: 0
            }
        );
    }

    #[test]
    fn channel_overflow_detected() {
        let g = lcs_graph::generators::path(3);
        let nodes = (0..3).map(|_| Misbehave { mode: 1 }).collect();
        let err = run(&g, nodes, &SimConfig::default()).unwrap_err();
        assert_eq!(
            err,
            SimError::ChannelOverflow {
                from: 0,
                to: 1,
                round: 0
            }
        );
    }

    #[test]
    fn violations_detected_identically_when_sharded() {
        let g = lcs_graph::generators::path(3);
        for (mode, expect) in [
            (
                0u8,
                SimError::InvalidDestination {
                    from: 0,
                    to: 2,
                    round: 0,
                },
            ),
            (
                1u8,
                SimError::ChannelOverflow {
                    from: 0,
                    to: 1,
                    round: 0,
                },
            ),
        ] {
            let cfg = SimConfig {
                shards: 3,
                ..SimConfig::default()
            };
            let nodes = (0..3).map(|_| Misbehave { mode }).collect();
            assert_eq!(run(&g, nodes, &cfg).unwrap_err(), expect);
        }
    }

    /// Sends an oversized message.
    #[derive(Debug)]
    struct Oversize;

    impl NodeAlgorithm for Oversize {
        type Msg = (u64, (u64, u64));
        fn round(&mut self, ctx: &mut RoundCtx<'_, Self::Msg>) {
            if ctx.round() == 0 && ctx.node() == 0 {
                ctx.send(1, (1, (2, 3))); // 6 words > default 4
            }
        }
        fn halted(&self) -> bool {
            true
        }
    }

    #[test]
    fn oversized_message_detected() {
        let g = lcs_graph::generators::path(2);
        let err = run(&g, vec![Oversize, Oversize], &SimConfig::default()).unwrap_err();
        assert_eq!(
            err,
            SimError::MessageTooLarge {
                words: 6,
                cap: 4,
                round: 0
            }
        );
    }

    /// Never halts.
    #[derive(Debug)]
    struct Spinner;

    impl NodeAlgorithm for Spinner {
        type Msg = ();
        fn round(&mut self, _ctx: &mut RoundCtx<'_, ()>) {}
        fn halted(&self) -> bool {
            false
        }
    }

    #[test]
    fn round_limit_enforced() {
        let g = lcs_graph::generators::path(2);
        let cfg = SimConfig {
            max_rounds: 10,
            ..SimConfig::default()
        };
        let err = run(&g, vec![Spinner, Spinner], &cfg).unwrap_err();
        assert_eq!(err, SimError::RoundLimitExceeded { limit: 10 });
    }

    /// Ping-pong: verifies messages are delivered exactly one round
    /// later and that per-node RNGs are deterministic.
    #[derive(Debug, Default)]
    struct PingPong {
        got: Vec<(u64, u32)>,
        sent: bool,
        coin: Option<u64>,
    }

    impl NodeAlgorithm for PingPong {
        type Msg = u32;
        fn round(&mut self, ctx: &mut RoundCtx<'_, u32>) {
            if self.coin.is_none() {
                self.coin = Some(ctx.rng().gen());
            }
            if ctx.node() == 0 && ctx.round() == 0 {
                ctx.send(1, 7);
                self.sent = true;
            }
            for &(_, m) in ctx.inbox() {
                self.got.push((ctx.round(), m));
                if ctx.node() == 1 && !self.sent {
                    ctx.send(0, m + 1);
                    self.sent = true;
                }
            }
        }
        fn halted(&self) -> bool {
            true
        }
    }

    #[test]
    fn delivery_latency_is_one_round_and_rng_deterministic() {
        let g = lcs_graph::generators::path(2);
        let mk = || vec![PingPong::default(), PingPong::default()];
        let out1 = run(&g, mk(), &SimConfig::default()).unwrap();
        let out2 = run(&g, mk(), &SimConfig::default()).unwrap();
        assert_eq!(out1.nodes[1].got, vec![(1, 7)]);
        assert_eq!(out1.nodes[0].got, vec![(2, 8)]);
        assert_eq!(out1.nodes[0].coin, out2.nodes[0].coin);
        assert_ne!(out1.nodes[0].coin, out1.nodes[1].coin);
        assert_eq!(out1.stats.rounds, 3);
        assert_eq!(out1.stats.delivered_rounds, 2);
    }

    /// `send_nth` out-of-range panics (programmer error, not a model
    /// violation — there is no node id to report).
    #[derive(Debug)]
    struct BadIndex;

    impl NodeAlgorithm for BadIndex {
        type Msg = u32;
        fn round(&mut self, ctx: &mut RoundCtx<'_, u32>) {
            if ctx.node() == 0 {
                ctx.send_nth(5, 1);
            }
        }
        fn halted(&self) -> bool {
            true
        }
    }

    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn send_nth_out_of_range_panics() {
        let g = lcs_graph::generators::path(2);
        let _ = run(&g, vec![BadIndex, BadIndex], &SimConfig::default());
    }

    /// The pool path must propagate the same programmer-error panic
    /// (from a worker thread) instead of deadlocking the barrier.
    #[test]
    #[should_panic(expected = "index out of bounds")]
    fn send_nth_out_of_range_panics_under_the_pool_too() {
        let g = lcs_graph::generators::path(4);
        let cfg = SimConfig {
            shards: 4,
            ..SimConfig::default()
        };
        let _ = run(&g, vec![BadIndex, BadIndex, BadIndex, BadIndex], &cfg);
    }

    /// Node 0 violates the model; a node in a *higher* shard panics in
    /// the same round. The sequential engine reports the violation (it
    /// never reaches the panicking node), so the pool must too.
    #[derive(Debug)]
    struct ViolateOrPanic {
        panic_node: NodeId,
    }

    impl NodeAlgorithm for ViolateOrPanic {
        type Msg = u64;
        fn round(&mut self, ctx: &mut RoundCtx<'_, u64>) {
            if ctx.round() == 0 {
                if ctx.node() == 0 {
                    ctx.send(2, 1); // non-neighbor on a path: violation
                }
                if ctx.node() == self.panic_node {
                    panic!("node {} panicked", self.panic_node);
                }
            }
        }
        fn halted(&self) -> bool {
            true
        }
    }

    #[test]
    fn violation_in_lower_shard_outranks_panic_in_higher_shard() {
        let g = lcs_graph::generators::path(4);
        let expect = SimError::InvalidDestination {
            from: 0,
            to: 2,
            round: 0,
        };
        for shards in [1usize, 2, 4] {
            let cfg = SimConfig {
                shards,
                ..SimConfig::default()
            };
            // Panic at node 3: sequential order hits node 0's violation
            // first and stops the scan before node 3 ever runs — but
            // only within a shard; across shards both events happen in
            // the same round and the coordinator must order them.
            let nodes = (0..4).map(|_| ViolateOrPanic { panic_node: 3 }).collect();
            assert_eq!(run(&g, nodes, &cfg).unwrap_err(), expect, "shards={shards}");
        }
    }

    #[test]
    fn panic_in_lower_shard_outranks_violation_in_higher_shard() {
        // Mirror image: node 1 panics, node 2 (a higher shard at
        // shards=4) violates. Sequential order hits the panic first.
        #[derive(Debug)]
        struct PanicThenViolate;
        impl NodeAlgorithm for PanicThenViolate {
            type Msg = u64;
            fn round(&mut self, ctx: &mut RoundCtx<'_, u64>) {
                if ctx.round() == 0 {
                    if ctx.node() == 1 {
                        panic!("node 1 panicked");
                    }
                    if ctx.node() == 2 {
                        ctx.send(0, 1); // non-neighbor on a path 0-1-2-3
                    }
                }
            }
            fn halted(&self) -> bool {
                true
            }
        }
        let g = lcs_graph::generators::path(4);
        for shards in [1usize, 4] {
            let cfg = SimConfig {
                shards,
                ..SimConfig::default()
            };
            let nodes = (0..4).map(|_| PanicThenViolate).collect::<Vec<_>>();
            let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = run(&g, nodes, &cfg);
            }))
            .expect_err("panic must win, shards={shards}");
            let msg = payload
                .downcast_ref::<&str>()
                .copied()
                .unwrap_or("<non-str payload>");
            assert_eq!(msg, "node 1 panicked", "shards={shards}");
        }
    }

    #[test]
    fn rev_arcs_are_involutions() {
        let g = lcs_graph::generators::grid(3, 4);
        let rev = build_rev_arcs(&g);
        for a in 0..g.num_arcs() {
            let b = rev[a] as usize;
            assert_eq!(rev[b] as usize, a);
            assert_eq!(g.arc_edge(ArcId(a as u32)), g.arc_edge(ArcId(b as u32)));
            assert_ne!(a, b);
            assert_eq!(g.arc_head(ArcId(b as u32)), g.arc_tail(ArcId(a as u32)));
        }
    }

    // ---- fault injection ------------------------------------------------

    fn fault_cfg(plan: FaultPlan, shards: usize) -> SimConfig {
        SimConfig {
            shards,
            faults: Some(plan),
            ..SimConfig::default()
        }
    }

    /// Every inconsistent plan is rejected eagerly with a
    /// [`SimError::FaultConfig`] whose message names the offending field.
    #[test]
    fn fault_plan_validation_rejects_bad_plans() {
        let cases: Vec<(FaultPlan, &str)> = vec![
            (FaultPlan::drops(1.5, 0), "drop_rate"),
            (FaultPlan::drops(f64::NAN, 0), "drop_rate"),
            (
                FaultPlan {
                    delay_rate: -0.1,
                    ..FaultPlan::default()
                },
                "delay_rate",
            ),
            (
                FaultPlan {
                    corrupt_rate: 1.5,
                    ..FaultPlan::default()
                },
                "corrupt_rate",
            ),
            (
                FaultPlan {
                    corrupt_rate: f64::NEG_INFINITY,
                    ..FaultPlan::default()
                },
                "corrupt_rate",
            ),
            (
                FaultPlan {
                    delay_rate: 0.5,
                    max_delay: 0,
                    ..FaultPlan::default()
                },
                "max_delay",
            ),
            (
                FaultPlan {
                    max_delay: u64::MAX,
                    ..FaultPlan::default()
                },
                "max_delay",
            ),
            (
                FaultPlan {
                    crashes: vec![Crash {
                        node: 1,
                        at_round: u64::MAX,
                        recover_at: None,
                    }],
                    ..FaultPlan::default()
                },
                "round budget",
            ),
            (
                FaultPlan {
                    crashes: vec![Crash {
                        node: 1,
                        at_round: 5,
                        recover_at: Some(5),
                    }],
                    ..FaultPlan::default()
                },
                "strictly later",
            ),
            (
                FaultPlan {
                    crashes: vec![
                        Crash {
                            node: 1,
                            at_round: 2,
                            recover_at: None,
                        },
                        Crash {
                            node: 1,
                            at_round: 7,
                            recover_at: None,
                        },
                    ],
                    ..FaultPlan::default()
                },
                "twice",
            ),
        ];
        let g = lcs_graph::generators::path(4);
        for (plan, needle) in cases {
            let cfg = fault_cfg(plan, 1);
            let err = run(&g, (0..4).map(|_| Flood::default()).collect(), &cfg)
                .expect_err("plan must be rejected");
            match &err {
                SimError::FaultConfig { reason } => assert!(
                    reason.contains(needle),
                    "reason {reason:?} should mention {needle:?}"
                ),
                other => panic!("expected FaultConfig, got {other:?}"),
            }
        }
        // A valid plan passes.
        assert!(FaultPlan::drops(0.3, 9).validate(1 << 20).is_ok());
    }

    /// Fault fates hash `(seed, round, arc)` — never shard layout: a
    /// lossy flood is bit-identical (per-node state, stats, and the
    /// fault counters folded into them) at every shard count.
    #[test]
    fn faulty_runs_bit_identical_across_shards() {
        for g in [
            lcs_graph::generators::path(23),
            lcs_graph::generators::complete(17),
        ] {
            let n = g.n();
            let plan = FaultPlan {
                drop_rate: 0.25,
                delay_rate: 0.25,
                max_delay: 3,
                corrupt_rate: 0.25,
                crashes: Vec::new(),
                fault_seed: 0xC0FFEE,
            };
            let mk = || (0..n).map(|_| Flood::default()).collect::<Vec<_>>();
            let base = run(&g, mk(), &fault_cfg(plan.clone(), 1)).unwrap();
            // On the sparse path the flood may die out before both fault
            // kinds fire; at least one must (the clique exercises both).
            assert!(base.stats.dropped + base.stats.delayed > 0);
            for shards in [2usize, 3, 8] {
                let out = run(&g, mk(), &fault_cfg(plan.clone(), shards)).unwrap();
                assert_eq!(out.nodes, base.nodes, "shards={shards}");
                assert_eq!(out.stats, base.stats, "shards={shards}");
                assert_eq!(
                    out.stats.fingerprint(),
                    base.stats.fingerprint(),
                    "shards={shards}"
                );
            }
        }
    }

    /// Delaying every message must not break quiescence: a delivery due
    /// on a round where nothing else happens has to wake its receiver,
    /// or the flood stalls forever.
    #[test]
    fn delayed_delivery_wakes_receiver() {
        let g = lcs_graph::generators::path(6);
        let plan = FaultPlan {
            drop_rate: 0.0,
            delay_rate: 1.0, // every single message is late
            max_delay: 3,
            corrupt_rate: 0.0,
            crashes: Vec::new(),
            fault_seed: 11,
        };
        for shards in [1usize, 4] {
            let out = run(
                &g,
                (0..6).map(|_| Flood::default()).collect(),
                &fault_cfg(plan.clone(), shards),
            )
            .unwrap();
            // The flood still reaches everyone, strictly later than the
            // fault-free schedule (node v hears at round v unfaulted).
            for (v, node) in out.nodes.iter().enumerate().skip(1) {
                let heard = node.heard_at.expect("flood must still arrive");
                assert!(heard > v as u64, "node {v} heard at {heard}");
            }
            assert_eq!(out.stats.delayed, out.stats.messages);
            assert_eq!(out.stats.dropped, 0);
        }
    }

    /// A crash-stopped relay severs the path; recovery (state intact,
    /// in-flight mail lost) lets a retransmitting sender get through.
    #[test]
    fn crash_silences_node_and_recovery_restores_it() {
        // Persistent sender: node 0 re-sends its token every round until
        // node 1 acks; the crash window of node 1 swallows the first
        // attempts.
        #[derive(Debug, Default, Clone, PartialEq, Eq)]
        struct Nag {
            acked: bool,
            heard_at: Option<u64>,
        }
        impl NodeAlgorithm for Nag {
            type Msg = u32;
            fn round(&mut self, ctx: &mut RoundCtx<'_, u32>) {
                if ctx.node() == 0 {
                    if !ctx.inbox().is_empty() {
                        self.acked = true;
                    }
                    if !self.acked {
                        ctx.send_nth(0, 7);
                    }
                } else if self.heard_at.is_none() && !ctx.inbox().is_empty() {
                    self.heard_at = Some(ctx.round());
                    ctx.send_nth(0, 1); // ack back
                }
            }
            fn halted(&self) -> bool {
                self.acked || self.heard_at.is_some()
            }
            fn wake(&self) -> Wake {
                if self.halted() {
                    Wake::Sleep
                } else {
                    Wake::Stay
                }
            }
        }
        let g = lcs_graph::generators::path(2);
        let plan = FaultPlan {
            crashes: vec![Crash {
                node: 1,
                at_round: 1,
                recover_at: Some(6),
            }],
            ..FaultPlan::default()
        };
        for shards in [1usize, 2] {
            let out = run(
                &g,
                (0..2).map(|_| Nag::default()).collect(),
                &fault_cfg(plan.clone(), shards),
            )
            .unwrap();
            // Deliveries due in rounds 1..6 land on a dead node; the
            // first send surviving the outage arrives at round 6.
            assert_eq!(out.nodes[1].heard_at, Some(6), "shards={shards}");
            assert!(out.nodes[0].acked);
            assert!(out.stats.dropped >= 5, "outage must destroy mail");
            assert_eq!(out.stats.crashed_nodes, 1);
        }
    }

    /// A crash scheduled on an already-quiescent network must not keep
    /// the run spinning (the event is unobservable), but a pending
    /// *recovery* must keep the run alive until it fires.
    #[test]
    fn scheduled_faults_interact_correctly_with_quiescence() {
        let g = lcs_graph::generators::path(3);
        // Flood quiesces after ~4 rounds; a crash at round 50 (no
        // recovery) must not stretch the run to round 50.
        let crash_late = FaultPlan {
            crashes: vec![Crash {
                node: 2,
                at_round: 50,
                recover_at: None,
            }],
            ..FaultPlan::default()
        };
        let out = run(
            &g,
            (0..3).map(|_| Flood::default()).collect(),
            &fault_cfg(crash_late, 1),
        )
        .unwrap();
        assert!(out.stats.rounds < 50, "rounds={}", out.stats.rounds);
        // With a recovery at round 60 the run must survive to fire it
        // (the recovered node is re-activated and may act on its state).
        let crash_recover = FaultPlan {
            crashes: vec![Crash {
                node: 2,
                at_round: 50,
                recover_at: Some(60),
            }],
            ..FaultPlan::default()
        };
        let out = run(
            &g,
            (0..3).map(|_| Flood::default()).collect(),
            &fault_cfg(crash_recover, 1),
        )
        .unwrap();
        assert!(out.stats.rounds > 60, "rounds={}", out.stats.rounds);
    }

    /// Without a plan, the fault machinery must stay entirely out of
    /// the hot path — and out of the fingerprint.
    #[test]
    fn absent_fault_plan_changes_nothing() {
        let g = lcs_graph::generators::complete(9);
        let mk = || (0..9).map(|_| Flood::default()).collect::<Vec<_>>();
        let base = run(&g, mk(), &SimConfig::default()).unwrap();
        let zeroed = FaultPlan {
            drop_rate: 0.0,
            delay_rate: 0.0,
            max_delay: 1,
            corrupt_rate: 0.0,
            crashes: Vec::new(),
            fault_seed: 42,
        };
        let out = run(&g, mk(), &fault_cfg(zeroed, 1)).unwrap();
        assert_eq!(out.nodes, base.nodes);
        assert_eq!(out.stats.fingerprint(), base.stats.fingerprint());
        assert_eq!(base.stats.dropped, 0);
        assert_eq!(base.stats.crashed_nodes, 0);
    }
}
