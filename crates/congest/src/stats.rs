//! Run statistics: rounds, message counts, per-edge traffic.

use lcs_graph::{EdgeId, Graph};

/// Statistics collected by a completed simulator run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunStats {
    /// Number of synchronous rounds executed (including quiescent final
    /// sweep).
    pub rounds: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Total message volume in `⌈log₂ n⌉`-bit words.
    pub words: u64,
    /// Cumulative message count per undirected edge, indexed by
    /// [`EdgeId`].
    pub per_edge_messages: Vec<u64>,
}

impl RunStats {
    /// Fresh zeroed statistics for a run on `g` (public so orchestrators
    /// can accumulate multi-phase protocols with [`RunStats::absorb`]).
    pub fn new(g: &Graph) -> Self {
        RunStats {
            rounds: 0,
            messages: 0,
            words: 0,
            per_edge_messages: vec![0; g.m()],
        }
    }

    /// Largest cumulative message count over any single edge — a proxy
    /// for worst-edge load across the whole run.
    pub fn max_edge_messages(&self) -> u64 {
        self.per_edge_messages.iter().copied().max().unwrap_or(0)
    }

    /// Mean messages per edge (0 for edgeless graphs).
    pub fn mean_edge_messages(&self) -> f64 {
        if self.per_edge_messages.is_empty() {
            return 0.0;
        }
        self.messages as f64 / self.per_edge_messages.len() as f64
    }

    /// Accumulates another run's statistics (for multi-phase protocols
    /// executed as successive simulator runs).
    ///
    /// # Panics
    ///
    /// Panics if the per-edge vectors have different lengths (i.e. the
    /// runs were on different graphs).
    pub fn absorb(&mut self, other: &RunStats) {
        assert_eq!(
            self.per_edge_messages.len(),
            other.per_edge_messages.len(),
            "stats from different graphs"
        );
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.words += other.words;
        for (a, b) in self
            .per_edge_messages
            .iter_mut()
            .zip(other.per_edge_messages.iter())
        {
            *a += b;
        }
    }

    pub(crate) fn record(&mut self, edge: EdgeId, words: u32) {
        self.messages += 1;
        self.words += words as u64;
        self.per_edge_messages[edge.index()] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::Graph;

    #[test]
    fn absorb_accumulates() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let mut a = RunStats::new(&g);
        a.rounds = 3;
        a.record(EdgeId(0), 2);
        let mut b = RunStats::new(&g);
        b.rounds = 2;
        b.record(EdgeId(1), 1);
        b.record(EdgeId(1), 1);
        a.absorb(&b);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.messages, 3);
        assert_eq!(a.words, 4);
        assert_eq!(a.per_edge_messages, vec![1, 2]);
        assert_eq!(a.max_edge_messages(), 2);
    }
}
