//! Run statistics: rounds, message counts, per-edge traffic.

use lcs_graph::Graph;

#[cfg(test)]
use lcs_graph::EdgeId;

/// Statistics collected by a completed simulator run.
///
/// All fields are order-independent integer accumulations, which is what
/// makes sharded execution able to reproduce them bit-identically (see
/// [`crate::sim`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunStats {
    /// Phase label (set by [`Session`](crate::Session) from
    /// [`Protocol::label`](crate::Protocol::label), or via
    /// [`RunStats::labeled`]; empty for raw engine runs). Purely
    /// descriptive: excluded from [`RunStats::fingerprint`] so the
    /// shard-determinism gates compare numbers, not naming.
    pub label: String,
    /// Number of synchronous rounds executed (including quiescent final
    /// sweep).
    pub rounds: u64,
    /// Number of rounds in which at least one message was delivered
    /// (always `<= rounds`; the gap counts idle/compute-only rounds).
    pub delivered_rounds: u64,
    /// Total messages delivered.
    pub messages: u64,
    /// Total message volume in `⌈log₂ n⌉`-bit words.
    pub words: u64,
    /// Cumulative message count per undirected edge, indexed by
    /// [`EdgeId`](lcs_graph::EdgeId).
    pub per_edge_messages: Vec<u64>,
    /// Messages destroyed by the fault layer (never delivered): fate
    /// drops plus messages addressed to a crashed node. Always 0 when
    /// the run has no [`FaultPlan`](crate::FaultPlan).
    pub dropped: u64,
    /// Messages the fault layer delivered late (each counted once, at
    /// the round its delay was decided).
    pub delayed: u64,
    /// Messages whose payload the fault layer corrupted in flight (they
    /// still count as delivered — the receiver got a lie).
    pub corrupted: u64,
    /// Number of distinct nodes that crash-stopped during the run
    /// (crashes scheduled past the final round are not counted).
    pub crashed_nodes: u64,
}

impl RunStats {
    /// Fresh zeroed statistics for a run on `g` (public so orchestrators
    /// can accumulate multi-phase protocols with [`RunStats::absorb`]).
    pub fn new(g: &Graph) -> Self {
        RunStats {
            label: String::new(),
            rounds: 0,
            delivered_rounds: 0,
            messages: 0,
            words: 0,
            per_edge_messages: vec![0; g.m()],
            dropped: 0,
            delayed: 0,
            corrupted: 0,
            crashed_nodes: 0,
        }
    }

    /// Relabels these statistics (builder-style), e.g. with the phase
    /// name of the [`Session`](crate::Session) phase that produced
    /// them.
    pub fn labeled(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Largest cumulative message count over any single edge — a proxy
    /// for worst-edge load across the whole run.
    pub fn max_edge_messages(&self) -> u64 {
        self.per_edge_messages.iter().copied().max().unwrap_or(0)
    }

    /// Mean messages per edge (0 for edgeless graphs).
    pub fn mean_edge_messages(&self) -> f64 {
        if self.per_edge_messages.is_empty() {
            return 0.0;
        }
        self.messages as f64 / self.per_edge_messages.len() as f64
    }

    /// Stable 64-bit fingerprint over every *numeric* field (FNV-1a),
    /// including the full per-edge histogram — the descriptive
    /// [`RunStats::label`] is deliberately excluded. Two runs have
    /// equal fingerprints iff their statistics are byte-equal (modulo
    /// hash collisions), so the shard-sweep determinism check in the
    /// `sim_throughput` bench can compare sharded against sequential
    /// runs with one number.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = OFFSET;
        let mut fold = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        fold(self.rounds);
        fold(self.delivered_rounds);
        fold(self.messages);
        fold(self.words);
        fold(self.per_edge_messages.len() as u64);
        for &x in &self.per_edge_messages {
            fold(x);
        }
        // Fault counters fold only when a fault actually occurred, so
        // every fingerprint recorded before the fault layer existed —
        // and every fault-free run since — is byte-for-byte unchanged.
        if self.dropped | self.delayed | self.crashed_nodes != 0 {
            fold(self.dropped);
            fold(self.delayed);
            fold(self.crashed_nodes);
        }
        // Same backwards-compatibility rule for the corruption tier,
        // under its own guard: every fingerprint recorded before
        // `corrupt_rate` existed has `corrupted == 0` and is unchanged —
        // including faulty (drop/delay/crash) ones.
        if self.corrupted != 0 {
            fold(self.corrupted);
        }
        h
    }

    /// Accumulates another run's statistics (for multi-phase protocols
    /// executed as successive simulator runs). Every numeric field —
    /// including [`RunStats::delivered_rounds`] — is summed, so
    /// absorbing the stats of phases 1 and 2 yields exactly the
    /// component-wise totals of the two runs. `self`'s label is kept.
    ///
    /// # Panics
    ///
    /// Panics if the per-edge vectors have different lengths (i.e. the
    /// runs were on different graphs).
    pub fn absorb(&mut self, other: &RunStats) {
        assert_eq!(
            self.per_edge_messages.len(),
            other.per_edge_messages.len(),
            "stats from different graphs"
        );
        self.rounds += other.rounds;
        self.delivered_rounds += other.delivered_rounds;
        self.messages += other.messages;
        self.words += other.words;
        self.dropped += other.dropped;
        self.delayed += other.delayed;
        self.corrupted += other.corrupted;
        self.crashed_nodes += other.crashed_nodes;
        for (a, b) in self
            .per_edge_messages
            .iter_mut()
            .zip(other.per_edge_messages.iter())
        {
            *a += b;
        }
    }

    #[cfg(test)]
    pub(crate) fn record(&mut self, edge: EdgeId, words: u32) {
        self.messages += 1;
        self.words += words as u64;
        self.per_edge_messages[edge.index()] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::Bfs;
    use crate::session::Session;
    use crate::sim::SimConfig;
    use lcs_graph::Graph;

    fn bfs_stats(g: &Graph, root: u32, cfg: &SimConfig) -> RunStats {
        Session::new(g, cfg.clone())
            .run(Bfs::new(root))
            .unwrap()
            .stats
    }

    #[test]
    fn absorb_accumulates() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let mut a = RunStats::new(&g);
        a.rounds = 3;
        a.delivered_rounds = 2;
        a.record(EdgeId(0), 2);
        let mut b = RunStats::new(&g);
        b.rounds = 2;
        b.delivered_rounds = 1;
        b.record(EdgeId(1), 1);
        b.record(EdgeId(1), 1);
        a.absorb(&b);
        assert_eq!(a.rounds, 5);
        assert_eq!(a.delivered_rounds, 3);
        assert_eq!(a.messages, 3);
        assert_eq!(a.words, 4);
        assert_eq!(a.per_edge_messages, vec![1, 2]);
        assert_eq!(a.max_edge_messages(), 2);
    }

    #[test]
    fn fingerprint_separates_unequal_stats_and_matches_equal_ones() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let mut a = RunStats::new(&g);
        a.rounds = 3;
        a.record(EdgeId(0), 2);
        let mut b = RunStats::new(&g);
        b.rounds = 3;
        b.record(EdgeId(0), 2);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // Any field difference must move the fingerprint.
        b.delivered_rounds += 1;
        assert_ne!(a.fingerprint(), b.fingerprint());
        b.delivered_rounds -= 1;
        b.per_edge_messages[1] += 1;
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    /// The fingerprint is shard-invariant because the stats themselves
    /// are — sequential and pooled runs of the same protocol agree.
    #[test]
    fn fingerprint_is_shard_invariant_on_a_real_run() {
        let g = lcs_graph::generators::grid(5, 5);
        let base = bfs_stats(&g, 0, &SimConfig::default());
        for shards in [2usize, 5, 25] {
            let cfg = SimConfig {
                shards,
                ..SimConfig::default()
            };
            let st = bfs_stats(&g, 0, &cfg);
            assert_eq!(st.fingerprint(), base.fingerprint(), "shards={shards}");
        }
    }

    #[test]
    fn mean_edge_messages_is_zero_on_edgeless_graph() {
        let g = Graph::from_edges(4, &[]).unwrap();
        let s = RunStats::new(&g);
        assert_eq!(s.mean_edge_messages(), 0.0);
        assert_eq!(s.max_edge_messages(), 0);
    }

    /// Round-trips `absorb` against a real two-phase run: running the
    /// same protocol twice and absorbing must equal the component-wise
    /// sum of the individual runs, for every field the engine emits.
    #[test]
    fn absorb_round_trips_a_two_phase_run() {
        let g = lcs_graph::generators::grid(4, 4);
        let cfg = SimConfig::default();
        let phase1 = bfs_stats(&g, 0, &cfg);
        let phase2 = bfs_stats(&g, 15, &cfg);
        let mut total = RunStats::new(&g);
        total.absorb(&phase1);
        total.absorb(&phase2);
        assert_eq!(total.rounds, phase1.rounds + phase2.rounds);
        assert_eq!(
            total.delivered_rounds,
            phase1.delivered_rounds + phase2.delivered_rounds
        );
        assert!(total.delivered_rounds > 0 && total.delivered_rounds < total.rounds);
        assert_eq!(total.messages, phase1.messages + phase2.messages);
        assert_eq!(total.words, phase1.words + phase2.words);
        for e in 0..g.m() {
            assert_eq!(
                total.per_edge_messages[e],
                phase1.per_edge_messages[e] + phase2.per_edge_messages[e]
            );
        }
        // Absorbing a zeroed stats value is the identity.
        let snapshot = total.clone();
        total.absorb(&RunStats::new(&g));
        assert_eq!(total, snapshot);
    }
}
