//! Tree primitives on an already-constructed rooted spanning tree:
//! convergecast aggregation, broadcast, and prefix numbering of marked
//! nodes.
//!
//! All three complete in `O(depth)` rounds with one-word-ish messages —
//! these are the `O(D)`-round bookkeeping steps the paper's distributed
//! construction performs on the global BFS tree (learning `n`, the
//! 2-approximate diameter, numbering the large parts, and the final
//! global verification AND).

use crate::message::Message;
use crate::node::{NodeAlgorithm, RoundCtx, Wake};
use crate::protocol::Protocol;
use crate::stats::RunStats;
use lcs_graph::{Graph, NodeId};

/// Aggregation operator for convergecast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggOp {
    /// Sum of values.
    Sum,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
}

impl AggOp {
    /// Applies the operator.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AggOp::Sum => a.saturating_add(b),
            AggOp::Min => a.min(b),
            AggOp::Max => a.max(b),
        }
    }

    /// Identity element.
    pub fn identity(self) -> u64 {
        match self {
            AggOp::Sum => 0,
            AggOp::Min => u64::MAX,
            AggOp::Max => 0,
        }
    }
}

/// The position of a node within the rooted tree, as local knowledge.
#[derive(Debug, Clone, Default)]
pub struct TreePosition {
    /// Parent in the tree (None for the root and non-tree nodes).
    pub parent: Option<NodeId>,
    /// Children in the tree.
    pub children: Vec<NodeId>,
    /// Whether this node participates (non-participants are inert).
    pub in_tree: bool,
    /// Whether this node is the root.
    pub is_root: bool,
}

/// Message for convergecast / broadcast / numbering: a tagged value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeMsg {
    /// Aggregate flowing up.
    Up(u64),
    /// Value flowing down.
    Down(u64),
}

impl Message for TreeMsg {
    fn size_words(&self) -> u32 {
        2 // one u64 payload = 2 words; tag absorbed in the constant
    }
}

/// Convergecast: aggregate one `u64` per tree node up to the root, then
/// optionally broadcast the result back down.
#[derive(Debug, Clone)]
pub struct ConvergecastNode {
    pos: TreePosition,
    op: AggOp,
    broadcast: bool,
    acc: u64,
    pending: usize,
    sent_up: bool,
    sent_down: bool,
    /// Neighbor indices of parent/children, resolved on the first round
    /// so every send takes the engine's zero-lookup arc-slot path.
    parent_idx: Option<usize>,
    children_idx: Vec<usize>,
    resolved: bool,
    /// The aggregate (root: after convergecast; all nodes: after
    /// broadcast when enabled).
    pub result: Option<u64>,
}

impl ConvergecastNode {
    /// Creates the node state; `value` is this node's contribution.
    pub fn new(pos: TreePosition, op: AggOp, value: u64, broadcast: bool) -> Self {
        let pending = pos.children.len();
        ConvergecastNode {
            pos,
            op,
            broadcast,
            acc: value,
            pending,
            sent_up: false,
            sent_down: false,
            parent_idx: None,
            children_idx: Vec::new(),
            resolved: false,
            result: None,
        }
    }
}

impl NodeAlgorithm for ConvergecastNode {
    type Msg = TreeMsg;

    fn round(&mut self, ctx: &mut RoundCtx<'_, TreeMsg>) {
        if !self.pos.in_tree {
            return;
        }
        if !self.resolved {
            self.resolved = true;
            (self.parent_idx, self.children_idx) =
                ctx.tree_indices(self.pos.parent, &self.pos.children);
        }
        for &(from, ref msg) in ctx.inbox() {
            match msg {
                TreeMsg::Up(v) => {
                    debug_assert!(self.pos.children.contains(&from));
                    self.acc = self.op.apply(self.acc, *v);
                    self.pending -= 1;
                }
                TreeMsg::Down(v) => {
                    self.result = Some(*v);
                }
            }
        }
        if self.pending == 0 && !self.sent_up {
            self.sent_up = true;
            if self.pos.is_root {
                self.result = Some(self.acc);
            } else if let Some(pi) = self.parent_idx {
                ctx.send_nth(pi, TreeMsg::Up(self.acc));
            }
        }
        if self.broadcast && !self.sent_down {
            if let Some(r) = self.result {
                self.sent_down = true;
                for i in 0..self.children_idx.len() {
                    ctx.send_nth(self.children_idx[i], TreeMsg::Down(r));
                }
            }
        }
    }

    fn halted(&self) -> bool {
        if !self.pos.in_tree {
            return true;
        }
        self.sent_up && (!self.broadcast || self.sent_down)
    }
}

/// Tree convergecast (optionally with result broadcast) as a
/// composable [`Protocol`]: aggregates one `u64` per node up the tree
/// described by its [`TreePosition`]s. Its output is
/// `(per-node results, phase stats)`, matching the classic
/// free-function shape.
///
/// Joining several `TreeAggregate`s in one [`Session`](crate::session::Session) phase
/// ([`Session::join`](crate::Session::join)) runs the convergecasts in
/// **shared rounds** — the composable form of the paper's concurrent
/// part-wise aggregation.
#[derive(Debug, Clone)]
pub struct TreeAggregate {
    positions: Vec<TreePosition>,
    values: Vec<u64>,
    op: AggOp,
    broadcast: bool,
}

impl TreeAggregate {
    /// Aggregation of `values` (one per node) over the tree described
    /// by `positions`, with operator `op`; `broadcast` sends the root's
    /// result back down.
    pub fn new(positions: Vec<TreePosition>, values: &[u64], op: AggOp, broadcast: bool) -> Self {
        TreeAggregate {
            positions,
            values: values.to_vec(),
            op,
            broadcast,
        }
    }
}

impl Protocol for TreeAggregate {
    type Msg = TreeMsg;
    type State = ConvergecastNode;
    type Output = (Vec<Option<u64>>, RunStats);

    fn label(&self) -> &str {
        "tree_aggregate"
    }

    fn init(&mut self, graph: &Graph) -> Vec<ConvergecastNode> {
        assert_eq!(self.positions.len(), graph.n());
        assert_eq!(self.values.len(), graph.n());
        std::mem::take(&mut self.positions)
            .into_iter()
            .zip(self.values.iter())
            .map(|(pos, &v)| ConvergecastNode::new(pos, self.op, v, self.broadcast))
            .collect()
    }

    fn round(&self, state: &mut ConvergecastNode, ctx: &mut RoundCtx<'_, TreeMsg>) {
        NodeAlgorithm::round(state, ctx);
    }

    fn halted(&self, state: &ConvergecastNode) -> bool {
        NodeAlgorithm::halted(state)
    }

    fn wake(&self, _state: &ConvergecastNode) -> Wake {
        // Convergecast is purely mail-driven after round 0: a node acts
        // exactly when a child's Up (or the parent's Down) arrives, and
        // sends in the same invocation. Even a node still *waiting* for
        // children sleeps — it has nothing to do until mail comes — so
        // a deep tree's rounds cost O(frontier), not O(unfinished
        // subtree). Consequence for malformed trees (a claimed child
        // that never reports): the phase quiesces with `None` results
        // instead of spinning to the round limit, matching
        // [`MultiAggregate`](crate::MultiAggregate)'s no-result-not-a-
        // hang behavior.
        Wake::Sleep
    }

    fn finish(
        self,
        _graph: &Graph,
        nodes: Vec<ConvergecastNode>,
        stats: &RunStats,
    ) -> Self::Output {
        (nodes.into_iter().map(|s| s.result).collect(), stats.clone())
    }
}

/// Prefix numbering: every *marked* node learns its rank (0-based) in a
/// global depth-first order of the tree, and the root learns the total
/// count. Used by the paper's construction to number the `N` large
/// parts in `O(D)` rounds.
#[derive(Debug, Clone)]
pub struct PrefixNumberNode {
    pos: TreePosition,
    marked: bool,
    /// Subtree mark-counts per child, filled during convergecast (in
    /// `pos.children` order).
    child_counts: Vec<u64>,
    pending: usize,
    sent_up: bool,
    sent_down: bool,
    /// Neighbor indices of parent/children, resolved on the first round.
    parent_idx: Option<usize>,
    children_idx: Vec<usize>,
    resolved: bool,
    /// This node's rank among marked nodes (only when marked).
    pub rank: Option<u64>,
    /// Total number of marked nodes (root only, after convergecast).
    pub total: Option<u64>,
    offset: Option<u64>,
}

impl PrefixNumberNode {
    /// Creates the state for one node.
    pub fn new(pos: TreePosition, marked: bool) -> Self {
        let pending = pos.children.len();
        let child_counts = vec![0; pos.children.len()];
        PrefixNumberNode {
            pos,
            marked,
            child_counts,
            pending,
            sent_up: false,
            sent_down: false,
            parent_idx: None,
            children_idx: Vec::new(),
            resolved: false,
            rank: None,
            total: None,
            offset: None,
        }
    }

    fn subtree_count(&self) -> u64 {
        self.child_counts.iter().sum::<u64>() + u64::from(self.marked)
    }
}

impl NodeAlgorithm for PrefixNumberNode {
    type Msg = TreeMsg;

    fn round(&mut self, ctx: &mut RoundCtx<'_, TreeMsg>) {
        if !self.pos.in_tree {
            return;
        }
        if !self.resolved {
            self.resolved = true;
            (self.parent_idx, self.children_idx) =
                ctx.tree_indices(self.pos.parent, &self.pos.children);
        }
        for &(from, ref msg) in ctx.inbox() {
            match msg {
                TreeMsg::Up(v) => {
                    let idx = self
                        .pos
                        .children
                        .iter()
                        .position(|&c| c == from)
                        .expect("Up message only from children");
                    self.child_counts[idx] = *v;
                    self.pending -= 1;
                }
                TreeMsg::Down(v) => {
                    self.offset = Some(*v);
                }
            }
        }
        if self.pending == 0 && !self.sent_up {
            self.sent_up = true;
            if self.pos.is_root {
                self.total = Some(self.subtree_count());
                self.offset = Some(0);
            } else if let Some(pi) = self.parent_idx {
                ctx.send_nth(pi, TreeMsg::Up(self.subtree_count()));
            }
        }
        if self.sent_up && !self.sent_down {
            if let Some(off) = self.offset {
                self.sent_down = true;
                if self.marked {
                    self.rank = Some(off);
                }
                let mut cursor = off + u64::from(self.marked);
                for idx in 0..self.children_idx.len() {
                    ctx.send_nth(self.children_idx[idx], TreeMsg::Down(cursor));
                    cursor += self.child_counts[idx];
                }
            }
        }
    }

    fn halted(&self) -> bool {
        !self.pos.in_tree || self.sent_down
    }
}

/// Prefix numbering of marked nodes as a composable [`Protocol`] (the
/// paper's `O(D)`-round dense ranking of the large parts). Output is
/// `(per-node ranks, total marked, phase stats)`.
#[derive(Debug, Clone)]
pub struct PrefixNumber {
    positions: Vec<TreePosition>,
    marked: Vec<bool>,
    /// Root node index, resolved in `init` for `finish`.
    root: Option<usize>,
}

impl PrefixNumber {
    /// Prefix numbering of `marked` nodes over the tree described by
    /// `positions`.
    pub fn new(positions: Vec<TreePosition>, marked: &[bool]) -> Self {
        PrefixNumber {
            positions,
            marked: marked.to_vec(),
            root: None,
        }
    }
}

impl Protocol for PrefixNumber {
    type Msg = TreeMsg;
    type State = PrefixNumberNode;
    type Output = (Vec<Option<u64>>, u64, RunStats);

    fn label(&self) -> &str {
        "prefix_number"
    }

    fn init(&mut self, graph: &Graph) -> Vec<PrefixNumberNode> {
        assert_eq!(self.positions.len(), graph.n());
        assert_eq!(self.marked.len(), graph.n());
        self.root = self.positions.iter().position(|p| p.is_root);
        std::mem::take(&mut self.positions)
            .into_iter()
            .zip(self.marked.iter())
            .map(|(pos, &m)| PrefixNumberNode::new(pos, m))
            .collect()
    }

    fn round(&self, state: &mut PrefixNumberNode, ctx: &mut RoundCtx<'_, TreeMsg>) {
        NodeAlgorithm::round(state, ctx);
    }

    fn halted(&self, state: &PrefixNumberNode) -> bool {
        NodeAlgorithm::halted(state)
    }

    fn wake(&self, _state: &PrefixNumberNode) -> Wake {
        // Mail-driven exactly like [`TreeAggregate`]: count convergecast
        // up, offsets broadcast down, every send triggered by an
        // arrival (or round 0); waiting nodes sleep.
        Wake::Sleep
    }

    fn finish(
        self,
        _graph: &Graph,
        nodes: Vec<PrefixNumberNode>,
        stats: &RunStats,
    ) -> Self::Output {
        let total = self.root.and_then(|r| nodes[r].total).unwrap_or(0);
        (
            nodes.into_iter().map(|s| s.rank).collect(),
            total,
            stats.clone(),
        )
    }
}

/// Builds [`TreePosition`]s from parallel parent/children arrays (such as
/// a [`crate::bfs::DistBfsOutcome`]). Nodes with no parent and no
/// children that are not the root are marked out-of-tree.
pub fn positions_from_tree(
    root: NodeId,
    parent: &[Option<NodeId>],
    children: &[Vec<NodeId>],
) -> Vec<TreePosition> {
    parent
        .iter()
        .zip(children.iter())
        .enumerate()
        .map(|(v, (&p, ch))| {
            let is_root = v as NodeId == root;
            TreePosition {
                parent: p,
                children: ch.clone(),
                in_tree: is_root || p.is_some(),
                is_root,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bfs::Bfs;
    use crate::session::Session;
    use crate::sim::SimConfig;
    use crate::SimError;

    fn tree_fixture(n: usize, seed: u64) -> (Graph, Vec<TreePosition>) {
        let g = lcs_graph::generators::gnp_connected(
            n,
            0.08,
            &mut <rand_chacha::ChaCha8Rng as rand::SeedableRng>::seed_from_u64(seed),
        );
        let bfs = Session::new(&g, SimConfig::default())
            .run(Bfs::new(0))
            .unwrap();
        let pos = positions_from_tree(0, &bfs.parent, &bfs.children);
        (g, pos)
    }

    fn aggregate(
        g: &Graph,
        pos: Vec<TreePosition>,
        values: &[u64],
        op: AggOp,
        broadcast: bool,
    ) -> Result<(Vec<Option<u64>>, RunStats), SimError> {
        Session::new(g, SimConfig::default()).run(TreeAggregate::new(pos, values, op, broadcast))
    }

    fn number(
        g: &Graph,
        pos: Vec<TreePosition>,
        marked: &[bool],
    ) -> (Vec<Option<u64>>, u64, RunStats) {
        Session::new(g, SimConfig::default())
            .run(PrefixNumber::new(pos, marked))
            .unwrap()
    }

    #[test]
    fn sum_convergecast_counts_nodes() {
        let (g, pos) = tree_fixture(30, 5);
        let values = vec![1u64; g.n()];
        let (results, stats) = aggregate(&g, pos, &values, AggOp::Sum, false).unwrap();
        assert_eq!(results[0], Some(30));
        assert!(stats.rounds < 40);
    }

    #[test]
    fn min_convergecast_with_broadcast_informs_everyone() {
        let (g, pos) = tree_fixture(25, 6);
        let mut values: Vec<u64> = (0..g.n() as u64).map(|v| 100 + v).collect();
        values[17] = 3;
        let (results, _) = aggregate(&g, pos, &values, AggOp::Min, true).unwrap();
        for v in g.nodes() {
            assert_eq!(results[v as usize], Some(3), "node {v}");
        }
    }

    #[test]
    fn max_convergecast() {
        let (g, pos) = tree_fixture(20, 7);
        let values: Vec<u64> = (0..g.n() as u64).collect();
        let (results, _) = aggregate(&g, pos, &values, AggOp::Max, false).unwrap();
        assert_eq!(results[0], Some(19));
    }

    #[test]
    fn prefix_numbering_assigns_distinct_dense_ranks() {
        let (g, pos) = tree_fixture(40, 8);
        let marked: Vec<bool> = (0..g.n()).map(|v| v % 3 == 0).collect();
        let (ranks, total, _) = number(&g, pos, &marked);
        let expected: u64 = marked.iter().filter(|&&m| m).count() as u64;
        assert_eq!(total, expected);
        let mut seen: Vec<u64> = ranks.iter().flatten().copied().collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..expected).collect::<Vec<_>>());
        for (v, r) in ranks.iter().enumerate() {
            assert_eq!(r.is_some(), marked[v]);
        }
    }

    #[test]
    fn prefix_numbering_none_marked() {
        let (g, pos) = tree_fixture(10, 9);
        let marked = vec![false; g.n()];
        let (ranks, total, _) = number(&g, pos, &marked);
        assert_eq!(total, 0);
        assert!(ranks.iter().all(|r| r.is_none()));
    }

    #[test]
    fn malformed_tree_reports_invalid_destination() {
        // Path 0-1-2; the root claims non-neighbor 2 as a child. The
        // run must fail with the same error the old send-path produced,
        // not panic.
        let g = lcs_graph::generators::path(3);
        let mk = |children| TreePosition {
            parent: None,
            children,
            in_tree: true,
            is_root: false,
        };
        let pos = vec![
            TreePosition {
                parent: None,
                children: vec![2],
                in_tree: true,
                is_root: true,
            },
            mk(vec![]),
            mk(vec![]),
        ];
        let err = aggregate(&g, pos, &[1, 1, 1], AggOp::Sum, true).unwrap_err();
        assert!(
            matches!(err, SimError::InvalidDestination { from: 0, to: 2, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn singleton_tree() {
        let g = Graph::from_edges(1, &[]).unwrap();
        let pos = vec![TreePosition {
            parent: None,
            children: vec![],
            in_tree: true,
            is_root: true,
        }];
        let (results, _) = aggregate(&g, pos, &[42], AggOp::Sum, true).unwrap();
        assert_eq!(results[0], Some(42));
    }
}
