//! Session-level exercises of the mailbox slab arena.
//!
//! The arena ([`lcs_congest::arena`]) recycles the message-typed parity
//! mailbox buffers across the phases of one `Session`. Its unit tests
//! pin the raw slab protocol; this suite drives the two edge cases that
//! only materialize through a real engine run:
//!
//! * **zero-sized messages** — a protocol whose wire type is `()` runs
//!   over `Vec<Slot<()>>` buffers that never allocate (and must never
//!   be parked);
//! * **slab reuse across phases** — phases of different message size
//!   classes interleave in one session, and every phase's output and
//!   statistics must be byte-identical to the same protocol run in a
//!   fresh session (a recycled buffer must never leak prior-phase
//!   state).

use lcs_congest::{Bfs, Protocol, RoundCtx, RunStats, Session, SimConfig};
use lcs_graph::{generators, Graph};

fn cfg() -> SimConfig {
    SimConfig::default()
}

fn g() -> Graph {
    generators::grid(6, 7)
}

/// Flood from node 0 with zero-sized `()` pings. A node's distance is
/// the round its first ping arrived, which equals its BFS distance —
/// the payload carries nothing, the schedule itself is the data.
struct ZstPing;

struct PingState {
    dist: u32,
}

impl Protocol for ZstPing {
    type Msg = ();
    type State = PingState;
    type Output = (Vec<u32>, u64);

    fn label(&self) -> &str {
        "zst_ping"
    }

    fn init(&mut self, graph: &Graph) -> Vec<PingState> {
        (0..graph.n())
            .map(|_| PingState { dist: u32::MAX })
            .collect()
    }

    fn round(&self, st: &mut PingState, ctx: &mut RoundCtx<'_, ()>) {
        let pinged = (ctx.round() == 0 && ctx.node() == 0) || !ctx.inbox().is_empty();
        if st.dist == u32::MAX && pinged {
            st.dist = ctx.round() as u32;
            for i in 0..ctx.degree() {
                ctx.send_nth(i, ());
            }
        }
    }

    fn halted(&self, st: &PingState) -> bool {
        st.dist != u32::MAX
    }

    fn finish(self, _: &Graph, states: Vec<PingState>, stats: &RunStats) -> (Vec<u32>, u64) {
        (
            states.into_iter().map(|s| s.dist).collect(),
            stats.fingerprint(),
        )
    }
}

/// Two-round sum of neighbor ids over `u64` messages — a different
/// mailbox size class than both `Bfs` and `ZstPing`.
struct NeighborSum;

#[derive(Default)]
struct SumState {
    sum: u64,
    done: bool,
}

impl Protocol for NeighborSum {
    type Msg = u64;
    type State = SumState;
    type Output = (Vec<u64>, u64);

    fn label(&self) -> &str {
        "neighbor_sum"
    }

    fn init(&mut self, graph: &Graph) -> Vec<SumState> {
        (0..graph.n()).map(|_| SumState::default()).collect()
    }

    fn round(&self, st: &mut SumState, ctx: &mut RoundCtx<'_, u64>) {
        if ctx.round() == 0 {
            let me = u64::from(ctx.node());
            for i in 0..ctx.degree() {
                ctx.send_nth(i, me);
            }
        } else {
            st.sum = ctx.inbox().iter().map(|&(_, m)| m).sum();
            st.done = true;
        }
    }

    fn halted(&self, st: &SumState) -> bool {
        st.done
    }

    fn finish(self, _: &Graph, states: Vec<SumState>, stats: &RunStats) -> (Vec<u64>, u64) {
        (
            states.into_iter().map(|s| s.sum).collect(),
            stats.fingerprint(),
        )
    }
}

#[test]
fn zero_sized_message_phase_computes_bfs_distances() {
    let g = g();
    let mut session = Session::new(&g, cfg());
    let (dist, _) = session.run(ZstPing).expect("zst ping");
    let bfs = session.run(Bfs::new(0)).expect("bfs");
    let expected: Vec<u32> = bfs.dist.iter().map(|d| d.expect("connected")).collect();
    assert_eq!(
        dist, expected,
        "ping arrival rounds must equal BFS distances"
    );
}

#[test]
fn zero_sized_message_phase_is_repeatable_in_one_session() {
    // Vec<Slot<()>> never allocates; the phase must neither park a
    // bogus slab nor be perturbed by slabs parked by earlier phases.
    let g = g();
    let mut session = Session::new(&g, cfg());
    let first = session.run(ZstPing).expect("first");
    let _ = session.run(Bfs::new(0)).expect("interleaved bfs");
    let second = session.run(ZstPing).expect("second");
    let fresh = Session::new(&g, cfg()).run(ZstPing).expect("fresh");
    assert_eq!(first, second);
    assert_eq!(first, fresh);
}

#[test]
fn mixed_size_class_phases_reuse_buffers_without_leakage() {
    // Interleave three message size classes across six phases of one
    // session. From the third phase on, every mailbox buffer is a
    // recycled slab from two phases earlier; each phase must still be
    // byte-identical to a fresh single-phase session.
    let g = g();
    let fresh_bfs = Session::new(&g, cfg()).run(Bfs::new(0)).expect("fresh bfs");
    let fresh_ping = Session::new(&g, cfg()).run(ZstPing).expect("fresh ping");
    let fresh_sum = Session::new(&g, cfg()).run(NeighborSum).expect("fresh sum");
    // Cross-check the sum protocol against the graph itself.
    let expected_sums: Vec<u64> = (0..g.n())
        .map(|v| {
            g.neighbors(v as lcs_graph::NodeId)
                .iter()
                .map(|&w| u64::from(w))
                .sum()
        })
        .collect();
    assert_eq!(fresh_sum.0, expected_sums);

    let mut session = Session::new(&g, cfg());
    for cycle in 0..2 {
        let bfs = session.run(Bfs::new(0)).expect("session bfs");
        assert_eq!(bfs.dist, fresh_bfs.dist, "cycle {cycle}");
        assert_eq!(bfs.stats, fresh_bfs.stats, "cycle {cycle}");
        let ping = session.run(ZstPing).expect("session ping");
        assert_eq!(ping, fresh_ping, "cycle {cycle}");
        let sum = session.run(NeighborSum).expect("session sum");
        assert_eq!(sum, fresh_sum, "cycle {cycle}");
    }
}
