//! Differential tests for the deprecated free-function wrappers.
//!
//! The wrappers (`distributed_bfs`, `tree_aggregate`, `prefix_number`,
//! `run_multi_bfs`, `run_multi_aggregate`) predate the `Protocol` +
//! `Session` API and are kept for source compatibility. Nothing stops
//! them from silently drifting from the first-class path — they are
//! separate code — so this suite pins them: every wrapper must produce
//! **byte-identical outputs and `RunStats`** to running the equivalent
//! protocol through a fresh `Session`. A drift in either direction
//! fails tier-1.

#![allow(deprecated)]

use lcs_congest::{
    distributed_bfs, positions_from_tree, prefix_number, run_multi_aggregate, run_multi_bfs,
    tree_aggregate, AggOp, Bfs, Membership, MultiAggregate, MultiBfs, MultiBfsInstance,
    MultiBfsSpec, Participation, PrefixNumber, Session, SimConfig, TreeAggregate,
};
use lcs_graph::{generators, Graph, NodeId};
use std::sync::Arc;

fn cfg() -> SimConfig {
    SimConfig::default()
}

/// The shared workload graph: a grid is dense enough to queue and
/// sparse enough to leave some nodes idle per round.
fn g() -> Graph {
    generators::grid(6, 7)
}

#[test]
fn distributed_bfs_matches_session_path() {
    let g = g();
    let a = distributed_bfs(&g, 3, &cfg()).expect("wrapper bfs");
    let b = Session::new(&g, cfg())
        .run(Bfs::new(3))
        .expect("session bfs");
    assert_eq!(a.dist, b.dist);
    assert_eq!(a.parent, b.parent);
    assert_eq!(a.children, b.children);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.stats.fingerprint(), b.stats.fingerprint());
}

#[test]
fn tree_aggregate_matches_session_path() {
    let g = g();
    let tree = Session::new(&g, cfg()).run(Bfs::new(0)).expect("tree");
    let pos = positions_from_tree(0, &tree.parent, &tree.children);
    let values: Vec<u64> = (0..g.n() as u64).map(|v| v * 7 + 1).collect();
    let (res_a, stats_a) = tree_aggregate(&g, pos.clone(), &values, AggOp::Sum, true, &cfg())
        .expect("wrapper aggregate");
    let (res_b, stats_b) = Session::new(&g, cfg())
        .run(TreeAggregate::new(pos, &values, AggOp::Sum, true))
        .expect("session aggregate");
    assert_eq!(res_a, res_b);
    assert_eq!(stats_a, stats_b);
}

#[test]
fn prefix_number_matches_session_path() {
    let g = g();
    let tree = Session::new(&g, cfg()).run(Bfs::new(0)).expect("tree");
    let pos = positions_from_tree(0, &tree.parent, &tree.children);
    let marked: Vec<bool> = (0..g.n()).map(|v| v % 3 == 0).collect();
    let (ranks_a, total_a, stats_a) =
        prefix_number(&g, pos.clone(), &marked, &cfg()).expect("wrapper prefix");
    let (ranks_b, total_b, stats_b) = Session::new(&g, cfg())
        .run(PrefixNumber::new(pos, &marked))
        .expect("session prefix");
    assert_eq!(ranks_a, ranks_b);
    assert_eq!(total_a, total_b);
    assert_eq!(stats_a, stats_b);
}

#[test]
fn run_multi_bfs_matches_session_path() {
    let g = g();
    let spec = Arc::new(MultiBfsSpec {
        instances: (0..5u32)
            .map(|i| MultiBfsInstance {
                root: (i * 7) % g.n() as NodeId,
                start_round: u64::from(i % 3),
                depth_limit: u32::MAX,
            })
            .collect(),
        membership: Membership::All,
        queue_cap: 0,
    });
    let a = run_multi_bfs(&g, Arc::clone(&spec), &cfg()).expect("wrapper bundle");
    let b = Session::new(&g, cfg())
        .run(MultiBfs::new(spec))
        .expect("session bundle");
    assert_eq!(a.reached, b.reached);
    assert_eq!(a.children, b.children);
    assert_eq!(a.max_queue, b.max_queue);
    assert_eq!(a.overflowed, b.overflowed);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn run_multi_aggregate_matches_session_path() {
    let g = g();
    let tree = Session::new(&g, cfg()).run(Bfs::new(0)).expect("tree");
    let parts: Vec<Vec<Participation>> = (0..g.n())
        .map(|v| {
            (0..3u32)
                .map(|inst| Participation {
                    inst,
                    parent: tree.parent[v],
                    children: tree.children[v].clone(),
                    value: v as u64 + u64::from(inst) * 11,
                })
                .collect()
        })
        .collect();
    let a = run_multi_aggregate(&g, parts.clone(), AggOp::Max, true, &cfg())
        .expect("wrapper aggregate");
    let b = Session::new(&g, cfg())
        .run(MultiAggregate::new(parts, AggOp::Max, true))
        .expect("session aggregate");
    assert_eq!(a.results, b.results);
    assert_eq!(a.max_queue, b.max_queue);
    assert_eq!(a.stats, b.stats);
}
