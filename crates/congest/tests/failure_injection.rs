//! Failure injection: the engine and protocols must fail loudly and
//! precisely on malformed inputs and protocol violations — silence is a
//! bug in a simulator whose purpose is enforcing a model.

use lcs_congest::{
    run, AggOp, FaultPlan, Message, MultiAggregate, MultiBfs, MultiBfsInstance, MultiBfsSpec,
    NodeAlgorithm, Participation, RoundCtx, Session, SimConfig, SimError, Wake,
};
use lcs_graph::generators::{cycle, path, star};
use std::sync::Arc;

/// A node that violates the model in a configurable round, after
/// behaving correctly for a while (violations must be caught late, not
/// just at round 0). Time-driven misbehavior under the event-driven
/// engine requires the explicit quiescence contract: the node overrides
/// `wake` to stay scheduled until its planned round has passed —
/// sleeping via the derived `halted` signal would mean never being
/// invoked again and never misbehaving.
#[derive(Debug)]
struct LateViolator {
    mode: u8,
    at_round: u64,
    done: bool,
}

#[derive(Debug, Clone)]
struct BigMsg(u32);

impl Message for BigMsg {
    fn size_words(&self) -> u32 {
        self.0
    }
}

impl NodeAlgorithm for LateViolator {
    type Msg = BigMsg;
    fn round(&mut self, ctx: &mut RoundCtx<'_, BigMsg>) {
        if ctx.round() >= self.at_round {
            self.done = true;
        }
        if ctx.node() != 0 {
            return;
        }
        if ctx.round() < self.at_round {
            // Legitimate chatter keeps the run alive.
            ctx.send(1, BigMsg(1));
            return;
        }
        if ctx.round() == self.at_round {
            match self.mode {
                0 => ctx.send(2, BigMsg(1)), // non-neighbor on a path
                1 => {
                    ctx.send(1, BigMsg(1));
                    ctx.send(1, BigMsg(1)); // double send
                }
                _ => ctx.send(1, BigMsg(99)), // oversized
            }
        }
    }
    fn halted(&self) -> bool {
        true
    }
    fn wake(&self) -> Wake {
        if self.done {
            Wake::Sleep
        } else {
            Wake::Stay
        }
    }
}

#[cfg_attr(
    not(feature = "slow-tests"),
    ignore = "tier-2: run with --features slow-tests or -- --ignored"
)]
#[test]
fn late_violations_are_caught_at_the_right_round() {
    let g = path(3);
    for (mode, expect_kind) in [(0u8, "dest"), (1, "overflow"), (2, "size")] {
        let nodes = (0..3)
            .map(|_| LateViolator {
                mode,
                at_round: 5,
                done: false,
            })
            .collect();
        let err = run(&g, nodes, &SimConfig::default()).unwrap_err();
        match (expect_kind, &err) {
            ("dest", SimError::InvalidDestination { round, .. })
            | ("overflow", SimError::ChannelOverflow { round, .. })
            | ("size", SimError::MessageTooLarge { round, .. }) => {
                assert_eq!(*round, 5, "mode {mode}");
            }
            _ => panic!("mode {mode}: wrong error {err}"),
        }
    }
}

#[cfg_attr(
    not(feature = "slow-tests"),
    ignore = "tier-2: run with --features slow-tests or -- --ignored"
)]
#[test]
fn late_violations_are_identical_under_the_worker_pool() {
    // The pool path must surface exactly the error the sequential
    // engine reports, at the same round, for every shard count.
    let g = path(3);
    for mode in [0u8, 1, 2] {
        let mk = || {
            (0..3)
                .map(|_| LateViolator {
                    mode,
                    at_round: 5,
                    done: false,
                })
                .collect()
        };
        let base = run(&g, mk(), &SimConfig::default()).unwrap_err();
        for shards in [2usize, 3] {
            let cfg = SimConfig {
                shards,
                ..SimConfig::default()
            };
            let err = run(&g, mk(), &cfg).unwrap_err();
            assert_eq!(err, base, "mode {mode}, shards {shards}");
        }
    }
}

/// Behaves correctly for a few rounds, then panics outright — the
/// harshest protocol failure a worker shard can inject. Stays awake
/// (explicit `wake` override) until its planned round, since a
/// sleeping node is never invoked to panic.
#[derive(Debug)]
struct PanicsAt {
    node: u32,
    at_round: u64,
    done: bool,
}

impl PanicsAt {
    fn new(node: u32, at_round: u64) -> Self {
        PanicsAt {
            node,
            at_round,
            done: false,
        }
    }
}

impl NodeAlgorithm for PanicsAt {
    type Msg = u32;
    fn round(&mut self, ctx: &mut RoundCtx<'_, u32>) {
        if ctx.round() >= self.at_round {
            self.done = true;
        }
        if ctx.node() == 0 && ctx.round() < 10 {
            ctx.send(1, 1); // keep the run alive past the panic round
        }
        if ctx.node() == self.node && ctx.round() == self.at_round {
            panic!("injected protocol panic at node {}", self.node);
        }
    }
    fn halted(&self) -> bool {
        true
    }
    fn wake(&self) -> Wake {
        if self.done {
            Wake::Sleep
        } else {
            Wake::Stay
        }
    }
}

#[cfg_attr(
    not(feature = "slow-tests"),
    ignore = "tier-2: run with --features slow-tests or -- --ignored"
)]
#[test]
fn panicking_protocol_in_a_worker_shard_propagates_instead_of_deadlocking() {
    // A node in the *last* shard panics mid-run: the pool must catch it
    // in the worker (so no barrier participant is left waiting), shut
    // down, and re-raise the payload on the calling thread — for every
    // shard layout, including the sequential path.
    let g = path(12);
    for shards in [1usize, 2, 4, 12] {
        let cfg = SimConfig {
            shards,
            ..SimConfig::default()
        };
        let nodes: Vec<PanicsAt> = (0..12).map(|_| PanicsAt::new(11, 3)).collect();
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = run(&g, nodes, &cfg);
        }))
        .expect_err("the protocol panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(
            msg.contains("injected protocol panic at node 11"),
            "shards {shards}: unexpected payload {msg:?}"
        );
    }
}

#[cfg_attr(
    not(feature = "slow-tests"),
    ignore = "tier-2: run with --features slow-tests or -- --ignored"
)]
#[test]
fn simultaneous_worker_panics_surface_the_lowest_shard() {
    // Every node panics in the same round; the pool must deterministically
    // re-raise the lowest shard's payload (the one the sequential engine
    // would hit first).
    let g = path(8);
    for shards in [1usize, 4, 8] {
        let cfg = SimConfig {
            shards,
            ..SimConfig::default()
        };
        let nodes: Vec<PanicsAt> = (0..8).map(|v| PanicsAt::new(v, 0)).collect();
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = run(&g, nodes, &cfg);
        }))
        .expect_err("must panic");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(
            msg, "injected protocol panic at node 0",
            "shards {shards}: wrong panic won"
        );
    }
}

#[cfg_attr(
    not(feature = "slow-tests"),
    ignore = "tier-2: run with --features slow-tests or -- --ignored"
)]
#[test]
fn malformed_aggregation_tree_yields_no_result_not_a_hang() {
    // Participation claims a child that never reports: the convergecast
    // cannot complete. The protocol quiesces (all queues empty) rather
    // than spinning, and the root visibly has NO result — callers must
    // treat a missing aggregate as failure (the construction's
    // verification step does exactly that).
    let g = path(3);
    let parts = vec![
        vec![Participation {
            inst: 0,
            parent: None,
            children: vec![1], // 1 has no participation: never sends Up
            value: 7,
        }],
        vec![],
        vec![],
    ];
    let cfg = SimConfig {
        max_rounds: 50,
        ..SimConfig::default()
    };
    let out = Session::new(&g, cfg.clone())
        .run(MultiAggregate::new(parts, AggOp::Sum, false))
        .unwrap();
    assert_eq!(out.result_at(0, 0), None, "stuck root must have no result");
    assert!(out.stats.rounds < 50, "quiesces well before the limit");
}

#[cfg_attr(
    not(feature = "slow-tests"),
    ignore = "tier-2: run with --features slow-tests or -- --ignored"
)]
#[test]
fn cyclic_parent_pointers_yield_no_results() {
    // 0 and 1 claim each other as parent: neither can ever send Up, so
    // both quiesce resultless.
    let g = path(2);
    let parts = vec![
        vec![Participation {
            inst: 0,
            parent: Some(1),
            children: vec![1],
            value: 1,
        }],
        vec![Participation {
            inst: 0,
            parent: Some(0),
            children: vec![0],
            value: 1,
        }],
    ];
    let cfg = SimConfig {
        max_rounds: 30,
        ..SimConfig::default()
    };
    let out = Session::new(&g, cfg.clone())
        .run(MultiAggregate::new(parts, AggOp::Sum, false))
        .unwrap();
    assert_eq!(out.result_at(0, 0), None);
    assert_eq!(out.result_at(1, 0), None);
}

#[cfg_attr(
    not(feature = "slow-tests"),
    ignore = "tier-2: run with --features slow-tests or -- --ignored"
)]
#[test]
fn tiny_queue_cap_degrades_gracefully_not_fatally() {
    // Congestion enforcement drops tokens and flags, but the run itself
    // completes (the construction's verification step then rejects).
    let g = star(16);
    let instances: Vec<MultiBfsInstance> = (1..=12)
        .map(|i| MultiBfsInstance {
            root: i,
            start_round: 0,
            depth_limit: 4,
        })
        .collect();
    let spec = Arc::new(MultiBfsSpec {
        instances,
        membership: lcs_congest::Membership::All,
        queue_cap: 1,
    });
    let out = Session::new(&g, SimConfig::default())
        .run(MultiBfs::new(spec))
        .unwrap();
    assert!(out.overflowed, "cap 1 must drop tokens");
    let spanned = (0..12u32)
        .filter(|&i| out.instance_nodes(i).len() == 16)
        .count();
    assert!(spanned < 12, "some instance must be incomplete");
}

/// Forwards a token along the path; the last node misbehaves the moment
/// it is woken. Every intermediate hop sleeps after its forward (halted
/// = true, derived wake), so the failure originates in a node — and at
/// high shard counts a whole shard — that had been fully quiescent
/// since round 0 and is re-activated by a (possibly cross-shard,
/// possibly inline-executed) delivery.
#[derive(Debug)]
struct TripMine {
    /// What the last node does on wake: `false` = panic, `true` = send
    /// to a non-neighbor (model violation).
    violate: bool,
}

impl NodeAlgorithm for TripMine {
    type Msg = u32;
    fn round(&mut self, ctx: &mut RoundCtx<'_, u32>) {
        let last = ctx.n() as u32 - 1;
        let fire = (ctx.round() == 0 && ctx.node() == 0)
            || ctx.inbox().iter().any(|&(from, _)| from < ctx.node());
        if !fire {
            return;
        }
        if ctx.node() == last {
            if self.violate {
                ctx.send(0, 1); // non-neighbor on a path: violation
            } else {
                panic!("woken node {last} panicked");
            }
        } else {
            ctx.send(ctx.node() + 1, 1);
        }
    }
    fn halted(&self) -> bool {
        true
    }
}

#[cfg_attr(
    not(feature = "slow-tests"),
    ignore = "tier-2: run with --features slow-tests or -- --ignored"
)]
#[test]
fn panic_on_wake_in_a_quiescent_shard_propagates_identically() {
    // At shards = 12 the panicking node is alone in a shard that was
    // quiescent for 11 rounds — and with ~1 active node per round the
    // engine runs those rounds inline on the coordinator. The panic
    // must surface with the same payload for every layout.
    let g = path(12);
    for shards in [1usize, 2, 4, 12] {
        let cfg = SimConfig {
            shards,
            ..SimConfig::default()
        };
        let nodes: Vec<TripMine> = (0..12).map(|_| TripMine { violate: false }).collect();
        let payload = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = run(&g, nodes, &cfg);
        }))
        .expect_err("the wake-round panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert_eq!(
            msg, "woken node 11 panicked",
            "shards {shards}: wrong or missing panic"
        );
    }
}

#[cfg_attr(
    not(feature = "slow-tests"),
    ignore = "tier-2: run with --features slow-tests or -- --ignored"
)]
#[test]
fn violation_on_wake_after_quiescence_is_reported_at_the_wake_round() {
    // The violating node slept from round 0 until the token reached it
    // at round n-1; the error must carry THAT round, identically at
    // every shard count.
    let g = path(7);
    let expect = SimError::InvalidDestination {
        from: 6,
        to: 0,
        round: 6,
    };
    for shards in [1usize, 3, 7] {
        let cfg = SimConfig {
            shards,
            ..SimConfig::default()
        };
        let nodes: Vec<TripMine> = (0..7).map(|_| TripMine { violate: true }).collect();
        assert_eq!(run(&g, nodes, &cfg).unwrap_err(), expect, "shards {shards}");
    }
}

/// A [`LateViolator`]-style node that first drives the engine into its
/// dense (all-active) fast path by flooding **every arc every round**
/// (`in_flight == num_arcs` is the dense trigger, and it counts fresh
/// sends only — message fates are applied receiver-side, so a fault
/// plan cannot deflect the mode switch), then violates the model at a
/// planned round. With `flood_until > violate_at` the violation lands
/// in a `MODE_DENSE` round; with `flood_until < violate_at` (plus the
/// single keep-alive send at `flood_until`) it lands in the
/// `MODE_RESYNC` round that drains the dense exit.
#[derive(Debug)]
struct DenseViolator {
    /// 0 = send to a non-neighbor, 1 = double-send, 2 = oversized.
    mode: u8,
    violate_at: u64,
    flood_until: u64,
    done: bool,
}

impl NodeAlgorithm for DenseViolator {
    type Msg = BigMsg;
    fn round(&mut self, ctx: &mut RoundCtx<'_, BigMsg>) {
        if ctx.round() >= self.violate_at {
            self.done = true;
        }
        if ctx.round() < self.flood_until {
            for i in 0..ctx.degree() {
                ctx.send_nth(i, BigMsg(1));
            }
        } else if ctx.node() == 0 && ctx.round() == self.flood_until {
            // Leave dense mode with one message still in flight: the
            // next round must run as MODE_RESYNC.
            ctx.send_nth(0, BigMsg(1));
        }
        if ctx.node() == 0 && ctx.round() == self.violate_at {
            match self.mode {
                0 => ctx.send(3, BigMsg(1)), // non-neighbor on cycle(6)
                1 => {
                    // Two writes to one arc overflow it whether or not
                    // the flood already claimed the slot this round.
                    ctx.send_nth(0, BigMsg(1));
                    ctx.send_nth(0, BigMsg(1));
                }
                _ => ctx.send_nth(1, BigMsg(99)), // oversized
            }
        }
    }
    fn halted(&self) -> bool {
        true
    }
    fn wake(&self) -> Wake {
        if self.done {
            Wake::Sleep
        } else {
            Wake::Stay
        }
    }
}

/// Runs [`DenseViolator`] on `cycle(6)` under a drops-and-delays fault
/// plan and asserts every shard count reports the **same** violation at
/// the **same** round.
fn assert_dense_violation(violate_at: u64, flood_until: u64) {
    let g = cycle(6);
    let plan = FaultPlan {
        drop_rate: 0.20,
        delay_rate: 0.20,
        max_delay: 2,
        corrupt_rate: 0.0,
        crashes: Vec::new(),
        fault_seed: 0xFA117,
    };
    for mode in [0u8, 1, 2] {
        let mk = || {
            (0..6)
                .map(|_| DenseViolator {
                    mode,
                    violate_at,
                    flood_until,
                    done: false,
                })
                .collect::<Vec<_>>()
        };
        let cfg_for = |shards: usize| SimConfig {
            shards,
            faults: Some(plan.clone()),
            ..SimConfig::default()
        };
        let base = run(&g, mk(), &cfg_for(1)).unwrap_err();
        let round = match (&base, mode) {
            (SimError::InvalidDestination { round, .. }, 0)
            | (SimError::ChannelOverflow { round, .. }, 1)
            | (SimError::MessageTooLarge { round, .. }, 2) => *round,
            _ => panic!("mode {mode}: wrong error {base}"),
        };
        assert_eq!(round, violate_at, "mode {mode}: wrong round");
        for shards in [2usize, 8] {
            let err = run(&g, mk(), &cfg_for(shards)).unwrap_err();
            assert_eq!(err, base, "mode {mode}, shards {shards}");
        }
    }
}

#[cfg_attr(
    not(feature = "slow-tests"),
    ignore = "tier-2: run with --features slow-tests or -- --ignored"
)]
#[test]
fn violations_in_dense_rounds_under_faults_are_caught_identically() {
    // All six nodes flood all arcs through round 9, so rounds 1..=9 run
    // MODE_DENSE; the violation at round 5 happens inside the dense
    // fast path, with the fault plan live.
    assert_dense_violation(5, 10);
}

#[cfg_attr(
    not(feature = "slow-tests"),
    ignore = "tier-2: run with --features slow-tests or -- --ignored"
)]
#[test]
fn violations_in_resync_rounds_under_faults_are_caught_identically() {
    // Flooding stops after round 5 but node 0's keep-alive send at
    // round 6 leaves dense mode with traffic in flight, so round 7 is
    // the MODE_RESYNC round — exactly when the violation fires.
    assert_dense_violation(7, 6);
}

#[cfg_attr(
    not(feature = "slow-tests"),
    ignore = "tier-2: run with --features slow-tests or -- --ignored"
)]
#[test]
fn round_limit_zero_fails_immediately() {
    let g = path(2);
    #[derive(Debug)]
    struct Idle;
    impl NodeAlgorithm for Idle {
        type Msg = ();
        fn round(&mut self, _: &mut RoundCtx<'_, ()>) {}
        fn halted(&self) -> bool {
            false
        }
    }
    let cfg = SimConfig {
        max_rounds: 0,
        ..SimConfig::default()
    };
    let err = run(&g, vec![Idle, Idle], &cfg).unwrap_err();
    assert_eq!(err, SimError::RoundLimitExceeded { limit: 0 });
}
