//! Property-based tests of the CONGEST protocols against centralized
//! references, on random graphs.

use lcs_congest::{
    positions_from_tree, AggOp, Bfs, Crash, DistBfsOutcome, FaultPlan, MultiAggregate, MultiBfs,
    MultiBfsInstance, MultiBfsOutcome, MultiBfsSpec, Participation, PrefixNumber, Reliable,
    Session, SimConfig, TreeAggregate,
};
use lcs_graph::{bfs_distances, gnp_connected, Graph, NodeId, UNREACHABLE};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn random_graph(seed: u64, n: usize) -> lcs_graph::Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    gnp_connected(n, 0.1, &mut rng)
}

fn run_bfs(g: &Graph, root: NodeId) -> DistBfsOutcome {
    Session::new(g, SimConfig::default())
        .run(Bfs::new(root))
        .unwrap()
}

fn run_bundle(g: &Graph, spec: std::sync::Arc<MultiBfsSpec>, cfg: &SimConfig) -> MultiBfsOutcome {
    Session::new(g, cfg.clone())
        .run(MultiBfs::new(spec))
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Distributed BFS distances equal centralized BFS distances from
    /// any root on any connected graph.
    #[cfg_attr(not(feature = "slow-tests"), ignore = "tier-2: run with --features slow-tests or -- --ignored")]
    #[test]
    fn distributed_bfs_equals_centralized(seed in any::<u64>(), n in 5usize..60, root_pick in any::<u32>()) {
        let g = random_graph(seed, n);
        let root = root_pick % n as u32;
        let out = run_bfs(&g, root);
        let exact = bfs_distances(&g, root);
        for v in g.nodes() {
            let expect = (exact[v as usize] != UNREACHABLE).then_some(exact[v as usize]);
            prop_assert_eq!(out.dist[v as usize], expect);
        }
    }

    /// Multi-BFS with concurrent overlapping instances: every instance
    /// spans exactly its reachable set, and queue-pipelined distances
    /// are sound upper bounds on the true BFS distances (under
    /// contention a longer-route token can win the race, which is why
    /// the construction budgets a generous depth limit). A contention-
    /// free single instance is exact.
    #[cfg_attr(not(feature = "slow-tests"), ignore = "tier-2: run with --features slow-tests or -- --ignored")]
    #[test]
    fn multi_bfs_instances_are_sound(seed in any::<u64>(), n in 5usize..40, k in 1usize..5) {
        let g = random_graph(seed, n);
        let roots: Vec<NodeId> = (0..k as u32).map(|i| (i * 7) % n as u32).collect();
        let spec = Arc::new(MultiBfsSpec {
            instances: roots
                .iter()
                .enumerate()
                .map(|(i, &r)| MultiBfsInstance {
                    root: r,
                    start_round: (i as u64 * 3) % 5,
                    depth_limit: u32::MAX,
                })
                .collect(),
            membership: lcs_congest::Membership::All,
            queue_cap: 0,
        });
        let out = run_bundle(&g, spec, &SimConfig::default());
        for (i, &r) in roots.iter().enumerate() {
            let exact = bfs_distances(&g, r);
            for v in g.nodes() {
                let got = out.reached[v as usize][i].map(|x| x.dist);
                match got {
                    Some(d) => {
                        prop_assert!(exact[v as usize] != UNREACHABLE);
                        prop_assert!(
                            d >= exact[v as usize],
                            "instance {} node {}: {} below exact {}",
                            i, v, d, exact[v as usize]
                        );
                        if k == 1 {
                            prop_assert_eq!(d, exact[v as usize]);
                        }
                    }
                    None => prop_assert_eq!(exact[v as usize], UNREACHABLE),
                }
            }
        }
        prop_assert!(!out.overflowed);
    }

    /// Tree aggregation over a BFS tree computes exactly the centralized
    /// fold for every operator.
    #[cfg_attr(not(feature = "slow-tests"), ignore = "tier-2: run with --features slow-tests or -- --ignored")]
    #[test]
    fn convergecast_matches_fold(seed in any::<u64>(), n in 3usize..50) {
        let g = random_graph(seed, n);
        let bfs = run_bfs(&g, 0);
        let pos = positions_from_tree(0, &bfs.parent, &bfs.children);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 1);
        let values: Vec<u64> = (0..n).map(|_| rand::Rng::gen_range(&mut rng, 0..1000u64)).collect();
        for op in [AggOp::Sum, AggOp::Min, AggOp::Max] {
            let (res, _) = Session::new(&g, SimConfig::default())
                .run(TreeAggregate::new(pos.clone(), &values, op, false))
                .unwrap();
            let expect = values.iter().fold(op.identity(), |a, &b| op.apply(a, b));
            prop_assert_eq!(res[0], Some(expect));
        }
    }

    /// Prefix numbering assigns dense distinct ranks matching the count
    /// of marked nodes, for any mark pattern.
    #[cfg_attr(not(feature = "slow-tests"), ignore = "tier-2: run with --features slow-tests or -- --ignored")]
    #[test]
    fn prefix_numbering_is_a_bijection(seed in any::<u64>(), n in 3usize..50, mask in any::<u64>()) {
        let g = random_graph(seed, n);
        let bfs = run_bfs(&g, 0);
        let pos = positions_from_tree(0, &bfs.parent, &bfs.children);
        let marked: Vec<bool> = (0..n).map(|v| mask >> (v % 64) & 1 == 1).collect();
        let (ranks, total, _) = Session::new(&g, SimConfig::default())
            .run(PrefixNumber::new(pos, &marked))
            .unwrap();
        let expected = marked.iter().filter(|&&m| m).count() as u64;
        prop_assert_eq!(total, expected);
        let mut seen: Vec<u64> = ranks.iter().flatten().copied().collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..expected).collect::<Vec<_>>());
    }

    /// Multi-instance aggregation over BFS-tree participations matches
    /// the centralized per-instance fold.
    #[cfg_attr(not(feature = "slow-tests"), ignore = "tier-2: run with --features slow-tests or -- --ignored")]
    #[test]
    fn multi_aggregate_matches_fold(seed in any::<u64>(), n in 4usize..30) {
        let g = random_graph(seed, n);
        // Two instances rooted at 0 and n-1, trees from BFS.
        let roots = [0 as NodeId, (n - 1) as NodeId];
        let mut parts: Vec<Vec<Participation>> = vec![Vec::new(); n];
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 2);
        let values: Vec<u64> = (0..n).map(|_| rand::Rng::gen_range(&mut rng, 0..100u64)).collect();
        for (i, &r) in roots.iter().enumerate() {
            let bfs = run_bfs(&g, r);
            for v in 0..n {
                if bfs.dist[v].is_none() {
                    continue;
                }
                parts[v].push(Participation {
                    inst: i as u32,
                    parent: bfs.parent[v],
                    children: bfs.children[v].clone(),
                    value: values[v],
                });
            }
        }
        let out = Session::new(&g, SimConfig::default())
            .run(MultiAggregate::new(parts, AggOp::Sum, true))
            .unwrap();
        let expect: u64 = values.iter().sum();
        for (i, &r) in roots.iter().enumerate() {
            prop_assert_eq!(out.result_at(r, i as u32), Some(expect));
            // Broadcast delivered everywhere.
            for v in g.nodes() {
                prop_assert_eq!(out.result_at(v, i as u32), Some(expect));
            }
        }
    }

    /// [`Reliable<Bfs>`] under an **arbitrary** fault plan — drop rate
    /// up to 30%, delays up to 3 rounds, payload corruption up to 30%,
    /// up to 10% of non-root nodes crashed from round 0, plus up to two
    /// non-root nodes knocked out transiently (crash with a scheduled
    /// recovery) — computes exactly the fault-free BFS distances on the
    /// subgraph the *permanent* crashes leave, for every surviving
    /// node: corrupted frames must be caught by the integrity tags and
    /// re-sent, and transiently-down nodes must rejoin and catch up.
    /// Every fault knob is its own proptest strategy, so a failing case
    /// shrinks the *plan* along with the graph: rates shrink toward
    /// 0.0, both crash lists shrink toward empty, delays toward 1,
    /// outage windows toward round 1.
    #[cfg_attr(not(feature = "slow-tests"), ignore = "tier-2: run with --features slow-tests or -- --ignored")]
    #[test]
    fn reliable_bfs_survives_arbitrary_fault_plans(
        seed in any::<u64>(),
        n in 8usize..36,
        drop_rate in 0.0f64..0.30,
        delay_rate in 0.0f64..0.50,
        max_delay in 1u64..4,
        corrupt_rate in 0.0f64..0.30,
        fault_seed in any::<u64>(),
        crash_picks in proptest::collection::vec(any::<u32>(), 0..4),
        transient_picks in proptest::collection::vec((any::<u32>(), 1u64..40, 1u64..40), 0..3),
    ) {
        let g = random_graph(seed, n);
        // Distinct non-root casualties, capped at 10% of the graph.
        let mut crashed: Vec<NodeId> = crash_picks
            .iter()
            .map(|&p| 1 + p % (n as u32 - 1))
            .collect();
        crashed.sort_unstable();
        crashed.dedup();
        crashed.truncate(n / 10);
        let mut crashes: Vec<Crash> = crashed
            .iter()
            .map(|&node| Crash { node, at_round: 0, recover_at: None })
            .collect();
        // Transient outages: down for a bounded window, then recovered.
        // Recovering nodes are *not* excised — the reliable layer must
        // bring them back — so they are excluded from `with_crashed` and
        // from the reference subgraph alike (at most one crash per node:
        // skip picks colliding with a permanent casualty or each other).
        for &(p, at, len) in &transient_picks {
            let node = 1 + p % (n as u32 - 1);
            if crashes.iter().any(|c| c.node == node) {
                continue;
            }
            crashes.push(Crash { node, at_round: at, recover_at: Some(at + len) });
        }
        let plan = FaultPlan {
            drop_rate,
            delay_rate,
            max_delay,
            corrupt_rate,
            crashes,
            fault_seed,
        };
        let cfg = SimConfig {
            max_rounds: 200_000,
            faults: Some(plan),
            ..SimConfig::default()
        };
        let out = Session::new(&g, cfg)
            .run(Reliable::with_crashed(Bfs::new(0), &crashed))
            .unwrap();
        // Centralized reference: BFS on the subgraph the crashes leave.
        let alive = |v: NodeId| crashed.binary_search(&v).is_err();
        let sub_edges: Vec<(NodeId, NodeId)> = g
            .edges()
            .iter()
            .copied()
            .filter(|&(a, b)| alive(a) && alive(b))
            .collect();
        let sub = Graph::from_edges(n, &sub_edges).unwrap();
        let exact = bfs_distances(&sub, 0);
        for v in g.nodes() {
            if !alive(v) {
                continue;
            }
            let expect = (exact[v as usize] != UNREACHABLE).then_some(exact[v as usize]);
            prop_assert_eq!(
                out.dist[v as usize], expect,
                "node {} (crashed: {:?})", v, &crashed
            );
        }
    }

    /// Sharded execution is bit-identical to the sequential engine on
    /// arbitrary graphs/seeds: final node states (including per-node RNG
    /// draws), full [`RunStats`], and multi-BFS outcomes all match for
    /// `shards ∈ {2, 4, 7}`.
    #[cfg_attr(not(feature = "slow-tests"), ignore = "tier-2: run with --features slow-tests or -- --ignored")]
    #[test]
    fn sharded_runs_are_bit_identical(seed in any::<u64>(), n in 5usize..50, k in 1usize..5) {
        let g = random_graph(seed, n);
        let cfg_for = |shards| SimConfig { seed, shards, ..SimConfig::default() };

        // A protocol that exercises RNG draws, inbox order, and sends:
        // each node draws one coin per round and gossips the running
        // xor to all neighbors for a few rounds.
        let mk = || (0..n).map(|_| GossipXor::default()).collect::<Vec<_>>();
        let base = lcs_congest::run(&g, mk(), &cfg_for(1)).unwrap();
        for shards in [2usize, 4, 7] {
            let out = lcs_congest::run(&g, mk(), &cfg_for(shards)).unwrap();
            for v in 0..n {
                prop_assert_eq!(&out.nodes[v].coins, &base.nodes[v].coins, "rng stream, shards={}", shards);
                prop_assert_eq!(out.nodes[v].acc, base.nodes[v].acc, "state, shards={}", shards);
            }
            prop_assert_eq!(&out.stats, &base.stats, "stats, shards={}", shards);
        }

        // The real protocol stack: multi-BFS outcomes must also match.
        let roots: Vec<NodeId> = (0..k as u32).map(|i| (i * 5) % n as u32).collect();
        let spec = |_: ()| Arc::new(MultiBfsSpec {
            instances: roots
                .iter()
                .enumerate()
                .map(|(i, &r)| MultiBfsInstance {
                    root: r,
                    start_round: (i as u64 * 3) % 4,
                    depth_limit: u32::MAX,
                })
                .collect(),
            membership: lcs_congest::Membership::All,
            queue_cap: 0,
        });
        let base = run_bundle(&g, spec(()), &cfg_for(1));
        for shards in [2usize, 7] {
            let out = run_bundle(&g, spec(()), &cfg_for(shards));
            prop_assert_eq!(&out.reached, &base.reached, "reached, shards={}", shards);
            prop_assert_eq!(&out.children, &base.children, "children, shards={}", shards);
            prop_assert_eq!(out.max_queue, base.max_queue);
            prop_assert_eq!(&out.stats, &base.stats, "stats, shards={}", shards);
        }
    }
}

/// Proptest helper: draws a coin every round, xors in everything heard,
/// and gossips for 6 rounds. Touches RNG, inbox, and sends each round.
#[derive(Debug, Default)]
struct GossipXor {
    coins: Vec<u64>,
    acc: u64,
}

impl lcs_congest::NodeAlgorithm for GossipXor {
    type Msg = u32;
    fn round(&mut self, ctx: &mut lcs_congest::RoundCtx<'_, u32>) {
        let coin: u64 = rand::Rng::gen(ctx.rng());
        self.coins.push(coin);
        for &(from, m) in ctx.inbox() {
            self.acc ^= u64::from(m) ^ (u64::from(from) << 32);
        }
        if ctx.round() < 6 {
            for i in 0..ctx.degree() {
                ctx.send_nth(i, (self.acc ^ coin) as u32);
            }
        }
    }
    fn halted(&self) -> bool {
        true
    }
}
