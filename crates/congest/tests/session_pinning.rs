//! Pinned differential tests for the first-class `Session` path.
//!
//! This suite inherits the workloads of the retired free-function
//! wrapper suite (`distributed_bfs`, `tree_aggregate`, `prefix_number`,
//! `run_multi_bfs`, `run_multi_aggregate` ran these exact grid(6,7)
//! jobs before their removal): each protocol's outputs and `RunStats`
//! fingerprint must be identical between a 1-shard and a 4-shard
//! engine, and must match a centralized reference where one exists.
//! The pinned fingerprints therefore survive the wrapper removal — a
//! behavioural drift in any protocol still fails tier-1 here.

use lcs_congest::{
    positions_from_tree, AggOp, Bfs, Membership, MultiAggregate, MultiBfs, MultiBfsInstance,
    MultiBfsSpec, Participation, PrefixNumber, Session, SimConfig, TreeAggregate,
};
use lcs_graph::{bfs_distances, generators, Graph, NodeId};
use std::sync::Arc;

fn cfg(shards: usize) -> SimConfig {
    SimConfig {
        shards,
        ..SimConfig::default()
    }
}

/// The shared workload graph: a grid is dense enough to queue and
/// sparse enough to leave some nodes idle per round.
fn g() -> Graph {
    generators::grid(6, 7)
}

#[test]
fn bfs_pinned_across_shard_counts() {
    let g = g();
    let a = Session::new(&g, cfg(1)).run(Bfs::new(3)).expect("1 shard");
    let b = Session::new(&g, cfg(4)).run(Bfs::new(3)).expect("4 shards");
    assert_eq!(a.dist, b.dist);
    assert_eq!(a.parent, b.parent);
    assert_eq!(a.children, b.children);
    assert_eq!(a.stats, b.stats);
    assert_eq!(a.stats.fingerprint(), b.stats.fingerprint());
    // Centralized reference: BFS distances are exact.
    let reference = bfs_distances(&g, 3);
    let got: Vec<u32> = a.dist.iter().map(|d| d.unwrap()).collect();
    assert_eq!(got, reference);
}

#[test]
fn tree_aggregate_pinned_across_shard_counts() {
    let g = g();
    let tree = Session::new(&g, cfg(1)).run(Bfs::new(0)).expect("tree");
    let pos = positions_from_tree(0, &tree.parent, &tree.children);
    let values: Vec<u64> = (0..g.n() as u64).map(|v| v * 7 + 1).collect();
    let (res_a, stats_a) = Session::new(&g, cfg(1))
        .run(TreeAggregate::new(pos.clone(), &values, AggOp::Sum, true))
        .expect("1 shard");
    let (res_b, stats_b) = Session::new(&g, cfg(4))
        .run(TreeAggregate::new(pos, &values, AggOp::Sum, true))
        .expect("4 shards");
    assert_eq!(res_a, res_b);
    assert_eq!(stats_a, stats_b);
    // The broadcast sum at every node is the centralized total.
    let total: u64 = values.iter().sum();
    assert!(res_a.iter().all(|r| *r == Some(total)));
}

#[test]
fn prefix_number_pinned_across_shard_counts() {
    let g = g();
    let tree = Session::new(&g, cfg(1)).run(Bfs::new(0)).expect("tree");
    let pos = positions_from_tree(0, &tree.parent, &tree.children);
    let marked: Vec<bool> = (0..g.n()).map(|v| v % 3 == 0).collect();
    let (ranks_a, total_a, stats_a) = Session::new(&g, cfg(1))
        .run(PrefixNumber::new(pos.clone(), &marked))
        .expect("1 shard");
    let (ranks_b, total_b, stats_b) = Session::new(&g, cfg(4))
        .run(PrefixNumber::new(pos, &marked))
        .expect("4 shards");
    assert_eq!(ranks_a, ranks_b);
    assert_eq!(total_a, total_b);
    assert_eq!(stats_a, stats_b);
    // Ranks are a permutation of 0..total over exactly the marked set.
    let marked_count = marked.iter().filter(|&&m| m).count() as u64;
    assert_eq!(total_a, marked_count);
    let mut ranks: Vec<u64> = ranks_a.iter().filter_map(|r| *r).collect();
    ranks.sort_unstable();
    assert_eq!(ranks, (0..total_a).collect::<Vec<_>>());
}

#[test]
fn multi_bfs_pinned_across_shard_counts() {
    let g = g();
    let spec = Arc::new(MultiBfsSpec {
        instances: (0..5u32)
            .map(|i| MultiBfsInstance {
                root: (i * 7) % g.n() as NodeId,
                start_round: u64::from(i % 3),
                depth_limit: u32::MAX,
            })
            .collect(),
        membership: Membership::All,
        queue_cap: 0,
    });
    let a = Session::new(&g, cfg(1))
        .run(MultiBfs::new(Arc::clone(&spec)))
        .expect("1 shard");
    let b = Session::new(&g, cfg(4))
        .run(MultiBfs::new(spec))
        .expect("4 shards");
    assert_eq!(a.reached, b.reached);
    assert_eq!(a.children, b.children);
    assert_eq!(a.max_queue, b.max_queue);
    assert_eq!(a.overflowed, b.overflowed);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn multi_aggregate_pinned_across_shard_counts() {
    let g = g();
    let tree = Session::new(&g, cfg(1)).run(Bfs::new(0)).expect("tree");
    let parts: Vec<Vec<Participation>> = (0..g.n())
        .map(|v| {
            (0..3u32)
                .map(|inst| Participation {
                    inst,
                    parent: tree.parent[v],
                    children: tree.children[v].clone(),
                    value: v as u64 + u64::from(inst) * 11,
                })
                .collect()
        })
        .collect();
    let a = Session::new(&g, cfg(1))
        .run(MultiAggregate::new(parts.clone(), AggOp::Max, true))
        .expect("1 shard");
    let b = Session::new(&g, cfg(4))
        .run(MultiAggregate::new(parts, AggOp::Max, true))
        .expect("4 shards");
    assert_eq!(a.results, b.results);
    assert_eq!(a.max_queue, b.max_queue);
    assert_eq!(a.stats, b.stats);
    // Centralized reference: instance `i`'s max is (n-1) + 11i.
    let n = g.n() as u64;
    for inst in 0..3u32 {
        assert_eq!(a.result_at(0, inst), Some(n - 1 + 11 * u64::from(inst)));
    }
}
