//! Tier-1 differential suite for the persistent worker pool: every
//! protocol the construction uses — bfs, tree aggregation / prefix
//! numbering, multi-BFS, multi-aggregate — must produce **byte-equal
//! outcomes and `RunStats`** for `shards ∈ {1, 2, 3, 8}` on a fixed
//! seed set. Unlike the tier-2 proptests this runs on every `cargo
//! test`, so a pool regression fails fast without `--features
//! slow-tests`.

use lcs_congest::{
    distributed_bfs, positions_from_tree, prefix_number, run, run_multi_aggregate, run_multi_bfs,
    tree_aggregate, AggOp, MultiBfsInstance, MultiBfsSpec, NodeAlgorithm, Participation, RoundCtx,
    SimConfig,
};
use lcs_graph::{gnp_connected, Graph, NodeId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// The shard counts under test: sequential, even splits, an odd split,
/// and more shards than fit evenly.
const SHARDS: [usize; 4] = [1, 2, 3, 8];

/// Fixed seeds: enough diversity to hit different graph shapes and
/// message schedules while keeping this suite tier-1 fast.
const SEEDS: [u64; 3] = [0xA11CE, 0xB0B, 0x5EED];

fn fixtures(seed: u64) -> Vec<Graph> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    vec![
        gnp_connected(48, 0.12, &mut rng),
        lcs_graph::generators::grid(8, 6),
        lcs_graph::generators::star(17),
    ]
}

fn cfg(seed: u64, shards: usize) -> SimConfig {
    SimConfig {
        seed,
        shards,
        ..SimConfig::default()
    }
}

#[test]
fn bfs_outcomes_and_stats_are_byte_equal_across_shard_counts() {
    for seed in SEEDS {
        for g in fixtures(seed) {
            let root = (seed % g.n() as u64) as NodeId;
            let base = distributed_bfs(&g, root, &cfg(seed, 1)).unwrap();
            for shards in SHARDS {
                let out = distributed_bfs(&g, root, &cfg(seed, shards)).unwrap();
                assert_eq!(out.dist, base.dist, "dist, seed={seed}, shards={shards}");
                assert_eq!(
                    out.parent, base.parent,
                    "parent, seed={seed}, shards={shards}"
                );
                assert_eq!(
                    out.children, base.children,
                    "children, seed={seed}, shards={shards}"
                );
                assert_eq!(out.stats, base.stats, "stats, seed={seed}, shards={shards}");
            }
        }
    }
}

#[test]
fn tree_protocols_are_byte_equal_across_shard_counts() {
    for seed in SEEDS {
        for g in fixtures(seed) {
            let n = g.n();
            let bfs = distributed_bfs(&g, 0, &cfg(seed, 1)).unwrap();
            let pos = positions_from_tree(0, &bfs.parent, &bfs.children);
            let values: Vec<u64> = (0..n as u64).map(|v| v.wrapping_mul(seed) % 997).collect();
            let marked: Vec<bool> = (0..n).map(|v| (seed >> (v % 64)) & 1 == 1).collect();
            for op in [AggOp::Sum, AggOp::Min, AggOp::Max] {
                let (base_res, base_stats) =
                    tree_aggregate(&g, pos.clone(), &values, op, true, &cfg(seed, 1)).unwrap();
                for shards in SHARDS {
                    let (res, stats) =
                        tree_aggregate(&g, pos.clone(), &values, op, true, &cfg(seed, shards))
                            .unwrap();
                    assert_eq!(res, base_res, "agg {op:?}, seed={seed}, shards={shards}");
                    assert_eq!(
                        stats, base_stats,
                        "agg stats {op:?}, seed={seed}, shards={shards}"
                    );
                }
            }
            let (base_ranks, base_total, base_stats) =
                prefix_number(&g, pos.clone(), &marked, &cfg(seed, 1)).unwrap();
            for shards in SHARDS {
                let (ranks, total, stats) =
                    prefix_number(&g, pos.clone(), &marked, &cfg(seed, shards)).unwrap();
                assert_eq!(ranks, base_ranks, "ranks, seed={seed}, shards={shards}");
                assert_eq!(total, base_total, "total, seed={seed}, shards={shards}");
                assert_eq!(
                    stats, base_stats,
                    "prefix stats, seed={seed}, shards={shards}"
                );
            }
        }
    }
}

#[test]
fn multi_bfs_outcomes_are_byte_equal_across_shard_counts() {
    for seed in SEEDS {
        for g in fixtures(seed) {
            let n = g.n();
            let spec = || {
                Arc::new(MultiBfsSpec {
                    instances: (0..4u32)
                        .map(|i| MultiBfsInstance {
                            root: (i * 7 + seed as u32) % n as u32,
                            start_round: (u64::from(i) * 3) % 5,
                            depth_limit: u32::MAX,
                        })
                        .collect(),
                    membership: Arc::new(|_, _, _| true),
                    queue_cap: 3,
                })
            };
            let base = run_multi_bfs(&g, spec(), &cfg(seed, 1)).unwrap();
            for shards in SHARDS {
                let out = run_multi_bfs(&g, spec(), &cfg(seed, shards)).unwrap();
                assert_eq!(
                    out.reached, base.reached,
                    "reached, seed={seed}, shards={shards}"
                );
                assert_eq!(
                    out.children, base.children,
                    "children, seed={seed}, shards={shards}"
                );
                assert_eq!(out.max_queue, base.max_queue);
                assert_eq!(out.overflowed, base.overflowed);
                assert_eq!(out.stats, base.stats, "stats, seed={seed}, shards={shards}");
            }
        }
    }
}

#[test]
fn multi_aggregate_outcomes_are_byte_equal_across_shard_counts() {
    for seed in SEEDS {
        for g in fixtures(seed) {
            let n = g.n();
            let roots = [0 as NodeId, (n - 1) as NodeId];
            let mut parts: Vec<Vec<Participation>> = vec![Vec::new(); n];
            for (i, &r) in roots.iter().enumerate() {
                let bfs = distributed_bfs(&g, r, &cfg(seed, 1)).unwrap();
                for (v, part) in parts.iter_mut().enumerate() {
                    if bfs.dist[v].is_none() {
                        continue;
                    }
                    part.push(Participation {
                        inst: i as u32,
                        parent: bfs.parent[v],
                        children: bfs.children[v].clone(),
                        value: (v as u64).wrapping_mul(seed) % 101,
                    });
                }
            }
            let base =
                run_multi_aggregate(&g, parts.clone(), AggOp::Sum, true, &cfg(seed, 1)).unwrap();
            for shards in SHARDS {
                let out =
                    run_multi_aggregate(&g, parts.clone(), AggOp::Sum, true, &cfg(seed, shards))
                        .unwrap();
                for v in 0..n as u32 {
                    for inst in 0..roots.len() as u32 {
                        assert_eq!(
                            out.result_at(v, inst),
                            base.result_at(v, inst),
                            "result at {v}/{inst}, seed={seed}, shards={shards}"
                        );
                    }
                }
                assert_eq!(out.stats, base.stats, "stats, seed={seed}, shards={shards}");
            }
        }
    }
}

/// RNG-heavy protocol: every node draws a coin per round and gossips a
/// running xor. Catches any divergence in per-node RNG streams or inbox
/// ordering under the pool.
#[derive(Debug, Default, PartialEq, Eq)]
struct GossipXor {
    coins: Vec<u64>,
    acc: u64,
}

impl NodeAlgorithm for GossipXor {
    type Msg = u32;
    fn round(&mut self, ctx: &mut RoundCtx<'_, u32>) {
        let coin: u64 = rand::Rng::gen(ctx.rng());
        self.coins.push(coin);
        for &(from, m) in ctx.inbox() {
            self.acc ^= u64::from(m) ^ (u64::from(from) << 32);
        }
        if ctx.round() < 6 {
            for i in 0..ctx.degree() {
                ctx.send_nth(i, (self.acc ^ coin) as u32);
            }
        }
    }
    fn halted(&self) -> bool {
        true
    }
}

#[test]
fn rng_streams_and_delivered_rounds_are_byte_equal_across_shard_counts() {
    for seed in SEEDS {
        for g in fixtures(seed) {
            let n = g.n();
            let mk = || (0..n).map(|_| GossipXor::default()).collect::<Vec<_>>();
            let base = run(&g, mk(), &cfg(seed, 1)).unwrap();
            assert!(base.stats.delivered_rounds > 0);
            for shards in SHARDS {
                let out = run(&g, mk(), &cfg(seed, shards)).unwrap();
                assert_eq!(
                    out.nodes, base.nodes,
                    "states, seed={seed}, shards={shards}"
                );
                assert_eq!(
                    out.stats.delivered_rounds, base.stats.delivered_rounds,
                    "delivered_rounds, seed={seed}, shards={shards}"
                );
                assert_eq!(out.stats, base.stats, "stats, seed={seed}, shards={shards}");
            }
        }
    }
}
