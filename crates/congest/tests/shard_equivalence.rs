//! Tier-1 differential suite for the persistent worker pool: every
//! protocol the construction uses — bfs, tree aggregation / prefix
//! numbering, multi-BFS, multi-aggregate — must produce **byte-equal
//! outcomes and `RunStats`** for `shards ∈ {1, 2, 3, 8}` on a fixed
//! seed set, and so must *composed* [`Session`] pipelines (sequential
//! phase chains sharing one pool, and concurrent [`Session::join`]
//! phases). Unlike the tier-2 proptests this runs on every `cargo
//! test`, so a pool or session regression fails fast without
//! `--features slow-tests`.

use lcs_congest::{
    positions_from_tree, run, AggOp, Bfs, Crash, DistBfsOutcome, FaultPlan, MultiAggOutcome,
    MultiAggregate, MultiBfs, MultiBfsInstance, MultiBfsOutcome, MultiBfsSpec, NodeAlgorithm,
    Participation, PrefixNumber, Protocol, Reliable, RoundCtx, RunStats, Session, SimConfig,
    TreeAggregate, Wake,
};
use lcs_graph::{gnp_connected, Graph, NodeId};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

/// The shard counts under test: sequential, even splits, an odd split,
/// and more shards than fit evenly.
const SHARDS: [usize; 4] = [1, 2, 3, 8];

/// Fixed seeds: enough diversity to hit different graph shapes and
/// message schedules while keeping this suite tier-1 fast.
const SEEDS: [u64; 3] = [0xA11CE, 0xB0B, 0x5EED];

fn fixtures(seed: u64) -> Vec<Graph> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    vec![
        gnp_connected(48, 0.12, &mut rng),
        lcs_graph::generators::grid(8, 6),
        lcs_graph::generators::star(17),
    ]
}

fn cfg(seed: u64, shards: usize) -> SimConfig {
    SimConfig {
        seed,
        shards,
        ..SimConfig::default()
    }
}

fn session(g: &Graph, seed: u64, shards: usize) -> Session<'_> {
    Session::new(g, cfg(seed, shards))
}

fn bfs(g: &Graph, root: NodeId, seed: u64, shards: usize) -> DistBfsOutcome {
    session(g, seed, shards).run(Bfs::new(root)).unwrap()
}

#[test]
fn bfs_outcomes_and_stats_are_byte_equal_across_shard_counts() {
    for seed in SEEDS {
        for g in fixtures(seed) {
            let root = (seed % g.n() as u64) as NodeId;
            let base = bfs(&g, root, seed, 1);
            for shards in SHARDS {
                let out = bfs(&g, root, seed, shards);
                assert_eq!(out.dist, base.dist, "dist, seed={seed}, shards={shards}");
                assert_eq!(
                    out.parent, base.parent,
                    "parent, seed={seed}, shards={shards}"
                );
                assert_eq!(
                    out.children, base.children,
                    "children, seed={seed}, shards={shards}"
                );
                assert_eq!(out.stats, base.stats, "stats, seed={seed}, shards={shards}");
            }
        }
    }
}

#[test]
fn tree_protocols_are_byte_equal_across_shard_counts() {
    for seed in SEEDS {
        for g in fixtures(seed) {
            let n = g.n();
            let b = bfs(&g, 0, seed, 1);
            let pos = positions_from_tree(0, &b.parent, &b.children);
            let values: Vec<u64> = (0..n as u64).map(|v| v.wrapping_mul(seed) % 997).collect();
            let marked: Vec<bool> = (0..n).map(|v| (seed >> (v % 64)) & 1 == 1).collect();
            for op in [AggOp::Sum, AggOp::Min, AggOp::Max] {
                let (base_res, base_stats) = session(&g, seed, 1)
                    .run(TreeAggregate::new(pos.clone(), &values, op, true))
                    .unwrap();
                for shards in SHARDS {
                    let (res, stats) = session(&g, seed, shards)
                        .run(TreeAggregate::new(pos.clone(), &values, op, true))
                        .unwrap();
                    assert_eq!(res, base_res, "agg {op:?}, seed={seed}, shards={shards}");
                    assert_eq!(
                        stats, base_stats,
                        "agg stats {op:?}, seed={seed}, shards={shards}"
                    );
                }
            }
            let (base_ranks, base_total, base_stats) = session(&g, seed, 1)
                .run(PrefixNumber::new(pos.clone(), &marked))
                .unwrap();
            for shards in SHARDS {
                let (ranks, total, stats) = session(&g, seed, shards)
                    .run(PrefixNumber::new(pos.clone(), &marked))
                    .unwrap();
                assert_eq!(ranks, base_ranks, "ranks, seed={seed}, shards={shards}");
                assert_eq!(total, base_total, "total, seed={seed}, shards={shards}");
                assert_eq!(
                    stats, base_stats,
                    "prefix stats, seed={seed}, shards={shards}"
                );
            }
        }
    }
}

fn multi_bfs_spec(g: &Graph, seed: u64) -> Arc<MultiBfsSpec> {
    let n = g.n();
    Arc::new(MultiBfsSpec {
        instances: (0..4u32)
            .map(|i| MultiBfsInstance {
                root: (i * 7 + seed as u32) % n as u32,
                start_round: (u64::from(i) * 3) % 5,
                depth_limit: u32::MAX,
            })
            .collect(),
        membership: lcs_congest::Membership::All,
        queue_cap: 3,
    })
}

#[test]
fn multi_bfs_outcomes_are_byte_equal_across_shard_counts() {
    for seed in SEEDS {
        for g in fixtures(seed) {
            let run_one = |shards: usize| -> MultiBfsOutcome {
                session(&g, seed, shards)
                    .run(MultiBfs::new(multi_bfs_spec(&g, seed)))
                    .unwrap()
            };
            let base = run_one(1);
            for shards in SHARDS {
                let out = run_one(shards);
                assert_eq!(
                    out.reached, base.reached,
                    "reached, seed={seed}, shards={shards}"
                );
                assert_eq!(
                    out.children, base.children,
                    "children, seed={seed}, shards={shards}"
                );
                assert_eq!(out.max_queue, base.max_queue);
                assert_eq!(out.overflowed, base.overflowed);
                assert_eq!(out.stats, base.stats, "stats, seed={seed}, shards={shards}");
            }
        }
    }
}

fn two_tree_participations(g: &Graph, seed: u64) -> Vec<Vec<Participation>> {
    let n = g.n();
    let roots = [0 as NodeId, (n - 1) as NodeId];
    let mut parts: Vec<Vec<Participation>> = vec![Vec::new(); n];
    for (i, &r) in roots.iter().enumerate() {
        let b = bfs(g, r, seed, 1);
        for (v, part) in parts.iter_mut().enumerate() {
            if b.dist[v].is_none() {
                continue;
            }
            part.push(Participation {
                inst: i as u32,
                parent: b.parent[v],
                children: b.children[v].clone(),
                value: (v as u64).wrapping_mul(seed) % 101,
            });
        }
    }
    parts
}

#[test]
fn multi_aggregate_outcomes_are_byte_equal_across_shard_counts() {
    for seed in SEEDS {
        for g in fixtures(seed) {
            let n = g.n();
            let parts = two_tree_participations(&g, seed);
            let run_one = |shards: usize| -> MultiAggOutcome {
                session(&g, seed, shards)
                    .run(MultiAggregate::new(parts.clone(), AggOp::Sum, true))
                    .unwrap()
            };
            let base = run_one(1);
            for shards in SHARDS {
                let out = run_one(shards);
                for v in 0..n as u32 {
                    for inst in 0..2u32 {
                        assert_eq!(
                            out.result_at(v, inst),
                            base.result_at(v, inst),
                            "result at {v}/{inst}, seed={seed}, shards={shards}"
                        );
                    }
                }
                assert_eq!(out.stats, base.stats, "stats, seed={seed}, shards={shards}");
            }
        }
    }
}

/// RNG-heavy protocol: every node draws a coin per round and gossips a
/// running xor. Catches any divergence in per-node RNG streams or inbox
/// ordering under the pool.
#[derive(Debug, Default, PartialEq, Eq)]
struct GossipXor {
    coins: Vec<u64>,
    acc: u64,
}

impl NodeAlgorithm for GossipXor {
    type Msg = u32;
    fn round(&mut self, ctx: &mut RoundCtx<'_, u32>) {
        let coin: u64 = rand::Rng::gen(ctx.rng());
        self.coins.push(coin);
        for &(from, m) in ctx.inbox() {
            self.acc ^= u64::from(m) ^ (u64::from(from) << 32);
        }
        if ctx.round() < 6 {
            for i in 0..ctx.degree() {
                ctx.send_nth(i, (self.acc ^ coin) as u32);
            }
        }
    }
    fn halted(&self) -> bool {
        true
    }
}

#[test]
fn rng_streams_and_delivered_rounds_are_byte_equal_across_shard_counts() {
    for seed in SEEDS {
        for g in fixtures(seed) {
            let n = g.n();
            let mk = || (0..n).map(|_| GossipXor::default()).collect::<Vec<_>>();
            let base = run(&g, mk(), &cfg(seed, 1)).unwrap();
            assert!(base.stats.delivered_rounds > 0);
            for shards in SHARDS {
                let out = run(&g, mk(), &cfg(seed, shards)).unwrap();
                assert_eq!(
                    out.nodes, base.nodes,
                    "states, seed={seed}, shards={shards}"
                );
                assert_eq!(
                    out.stats.delivered_rounds, base.stats.delivered_rounds,
                    "delivered_rounds, seed={seed}, shards={shards}"
                );
                assert_eq!(out.stats, base.stats, "stats, seed={seed}, shards={shards}");
            }
        }
    }
}

/// Runs a representative composed pipeline — bfs, then two tree
/// aggregations **joined in shared rounds**, then prefix numbering,
/// then a multi-BFS bundle, then a multi-aggregate — through ONE
/// session (one pool spawn, one cumulative budget), and returns every
/// per-phase stat plus the cumulative stats and a digest of outcomes.
#[allow(clippy::type_complexity)]
fn composed_pipeline(
    g: &Graph,
    seed: u64,
    shards: usize,
) -> (Vec<RunStats>, RunStats, Vec<u64>, Vec<Vec<u64>>) {
    let mut session = session(g, seed, shards).with_round_budget(100_000);
    let b = session.run(Bfs::new(0)).unwrap();
    let pos = positions_from_tree(0, &b.parent, &b.children);
    let values: Vec<u64> = (0..g.n() as u64).map(|v| v ^ seed).collect();
    let ((sum, _), (max, _)) = session
        .join(
            TreeAggregate::new(pos.clone(), &values, AggOp::Sum, true),
            TreeAggregate::new(pos.clone(), &values, AggOp::Max, true),
        )
        .unwrap();
    let marked: Vec<bool> = (0..g.n()).map(|v| v % 3 == 0).collect();
    let (ranks, total, _) = session.run(PrefixNumber::new(pos, &marked)).unwrap();
    let mb = session
        .run_configured("mb", MultiBfs::new(multi_bfs_spec(g, seed)), |c| {
            c.seed ^= 0x51_1E
        })
        .unwrap();
    let ma = session
        .run(MultiAggregate::new(
            two_tree_participations(g, seed),
            AggOp::Min,
            true,
        ))
        .unwrap();
    // Digest: every protocol-visible outcome folded to comparable vecs.
    let digest = vec![
        sum[0].unwrap_or(0),
        max[0].unwrap_or(0),
        total,
        ranks.iter().flatten().sum::<u64>(),
        mb.reached
            .iter()
            .flat_map(|r| r.iter().flatten())
            .map(|r| u64::from(r.dist) + r.round)
            .sum::<u64>(),
        ma.results
            .iter()
            .flat_map(|m| m.values().flatten())
            .sum::<u64>(),
    ];
    // Per-node RNG visibility is already covered by GossipXor; here we
    // keep the per-phase round/message shape.
    let phase_shape: Vec<Vec<u64>> = session
        .phases()
        .iter()
        .map(|p| vec![p.rounds, p.delivered_rounds, p.messages, p.words])
        .collect();
    (
        session.phases().to_vec(),
        session.stats().clone(),
        digest,
        phase_shape,
    )
}

/// Active-set stress protocol: node 0 emits a pulse every `gap` rounds
/// (staying awake via an explicit [`Protocol::wake`] override — it gets
/// no mail between pulses); every other node sleeps, is woken by each
/// pulse, forwards it one hop, and goes back to sleep. Exercises the
/// three active-set transitions the event-driven engine adds — stay
/// without mail, un-halt after quiescence, cross-shard wake on delivery
/// — through genuinely idle gaps (no messages in flight between a
/// pulse dying out and the next one firing).
struct PulseChain {
    pulses: u64,
    gap: u64,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct PulseState {
    /// Pulses still to emit (driver node only).
    to_emit: u64,
    /// `(round, pulse id)` log of everything heard.
    heard: Vec<(u64, u32)>,
}

impl Protocol for PulseChain {
    type Msg = u32;
    type State = PulseState;
    type Output = Vec<PulseState>;

    fn label(&self) -> &str {
        "pulse_chain"
    }

    fn init(&mut self, graph: &Graph) -> Vec<PulseState> {
        (0..graph.n())
            .map(|v| PulseState {
                to_emit: if v == 0 { self.pulses } else { 0 },
                heard: Vec::new(),
            })
            .collect()
    }

    fn round(&self, st: &mut PulseState, ctx: &mut RoundCtx<'_, u32>) {
        if ctx.node() == 0 {
            if st.to_emit > 0 && ctx.round() % self.gap == 0 {
                let id = (self.pulses - st.to_emit) as u32;
                st.to_emit -= 1;
                ctx.send(1, id);
            }
            return;
        }
        for &(from, id) in ctx.inbox() {
            st.heard.push((ctx.round(), id));
            if from < ctx.node() && (ctx.node() as usize) < ctx.n() - 1 {
                ctx.send(ctx.node() + 1, id);
            }
        }
    }

    fn halted(&self, st: &PulseState) -> bool {
        st.to_emit == 0
    }

    fn wake(&self, st: &PulseState) -> Wake {
        // The driver must stay scheduled across mail-less gap rounds;
        // everyone else is purely mail-driven.
        if st.to_emit > 0 {
            Wake::Stay
        } else {
            Wake::Sleep
        }
    }

    fn finish(self, _: &Graph, st: Vec<PulseState>, _: &RunStats) -> Vec<PulseState> {
        st
    }
}

/// Un-halt after quiescence + cross-shard wakes, byte-equal across
/// shard counts: every pulse finds the whole chain asleep and must
/// re-activate it hop by hop, across every shard boundary (at 8 shards
/// on 24 nodes each hop is usually a different shard than the last).
#[test]
fn pulse_chain_with_idle_gaps_is_byte_equal_across_shard_counts() {
    let n = 24;
    let g = lcs_graph::generators::path(n);
    let run_one = |shards: usize| {
        let mut s = session(&g, 7, shards);
        let states = s.run(PulseChain { pulses: 3, gap: 40 }).unwrap();
        (states, s.stats().clone())
    };
    let (base_states, base_stats) = run_one(1);
    // Pulses fire at rounds 0, 40, 80; the last one's n-1 hops end at
    // round 80 + (n-1), and `rounds` counts one past the final index.
    assert_eq!(base_stats.rounds, 80 + n as u64);
    // Idle gaps really were idle: only hop deliveries count.
    assert_eq!(base_stats.delivered_rounds, 3 * (n as u64 - 1));
    assert_eq!(base_stats.messages, 3 * (n as u64 - 1));
    let last = &base_states[n - 1];
    assert_eq!(last.heard.len(), 3, "all pulses must arrive");
    for shards in SHARDS {
        let (states, stats) = run_one(shards);
        assert_eq!(states, base_states, "states, shards={shards}");
        assert_eq!(stats, base_stats, "stats, shards={shards}");
    }
}

/// The sparse-frontier workload of the O(active) cost model: BFS down a
/// long path has a 1–2 node frontier for hundreds of rounds. Outcomes
/// and statistics must stay byte-equal across shard counts while the
/// engine runs almost every round inline (below the barrier threshold).
#[test]
fn long_path_bfs_is_byte_equal_across_shard_counts() {
    let g = lcs_graph::generators::path(97);
    let base = bfs(&g, 0, 0xFACE, 1);
    assert_eq!(base.depth(), 96);
    for shards in SHARDS {
        let out = bfs(&g, 0, 0xFACE, shards);
        assert_eq!(out.dist, base.dist, "shards={shards}");
        assert_eq!(out.parent, base.parent, "shards={shards}");
        assert_eq!(out.children, base.children, "shards={shards}");
        assert_eq!(out.stats, base.stats, "shards={shards}");
    }
}

/// Chaos under the pool: drops, delays, AND a mid-run crash (with one
/// permanent casualty) must leave outputs, `RunStats` — including the
/// fault counters `dropped` / `delayed` / `crashed_nodes` — and the
/// fingerprint byte-equal across every shard count, for two distinct
/// fault seeds. Fault fates are a pure hash of `(fault_seed, round,
/// arc)`, so the adversary is part of the determinism contract, not an
/// exception to it.
#[test]
fn chaos_runs_are_byte_equal_across_shard_counts() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xCA05);
    let g = gnp_connected(40, 0.15, &mut rng);
    let n = g.n() as u32;
    for fault_seed in [0x0DD5_u64, 0xE5EED] {
        let plan = FaultPlan {
            drop_rate: 0.10,
            delay_rate: 0.15,
            max_delay: 3,
            // Corruption rides along: the Reliable phase must shrug the
            // lies off via its integrity tags, identically per shard.
            corrupt_rate: 0.05,
            crashes: vec![
                // Mid-run crash with recovery: state survives, inbox lost.
                Crash {
                    node: n / 3,
                    at_round: 2,
                    recover_at: Some(9),
                },
                // Permanent casualty.
                Crash {
                    node: n / 2,
                    at_round: 4,
                    recover_at: None,
                },
            ],
            fault_seed,
        };
        let run_one = |shards: usize| {
            let mut s = Session::new(
                &g,
                SimConfig {
                    seed: 0xBA5E,
                    shards,
                    max_rounds: 50_000,
                    ..SimConfig::default()
                },
            );
            // Raw BFS under fire (output is whatever the faults allow),
            // then a Reliable phase that must still be exact.
            let raw = s
                .run_configured("chaos.raw", Bfs::new(0), |c| c.faults = Some(plan.clone()))
                .unwrap();
            let rel = s
                .run_configured(
                    "chaos.reliable",
                    Reliable::with_crashed(Bfs::new(0), &[n / 2]),
                    |c| c.faults = Some(plan.clone()),
                )
                .unwrap();
            (raw, rel, s.phases().to_vec(), s.stats().clone())
        };
        let (base_raw, base_rel, base_phases, base_total) = run_one(1);
        assert!(base_total.dropped > 0, "seed {fault_seed:#x}: drops fired");
        assert!(base_total.delayed > 0, "seed {fault_seed:#x}: delays fired");
        assert!(
            base_total.corrupted > 0,
            "seed {fault_seed:#x}: corruptions fired"
        );
        // Both crash windows land inside the (long) reliable phase; the
        // raw phase may quiesce before the later one fires.
        assert!(
            base_total.crashed_nodes >= 2,
            "seed {fault_seed:#x}: crashes fired"
        );
        for shards in SHARDS {
            let (raw, rel, phases, total) = run_one(shards);
            assert_eq!(
                raw.dist, base_raw.dist,
                "raw dist, {fault_seed:#x}/{shards}"
            );
            assert_eq!(
                raw.parent, base_raw.parent,
                "raw parent, {fault_seed:#x}/{shards}"
            );
            assert_eq!(
                rel.dist, base_rel.dist,
                "reliable dist, {fault_seed:#x}/{shards}"
            );
            assert_eq!(
                rel.parent, base_rel.parent,
                "reliable parent, {fault_seed:#x}/{shards}"
            );
            assert_eq!(phases, base_phases, "phases, {fault_seed:#x}/{shards}");
            assert_eq!(total, base_total, "stats, {fault_seed:#x}/{shards}");
            assert_eq!(
                total.fingerprint(),
                base_total.fingerprint(),
                "fingerprint, {fault_seed:#x}/{shards}"
            );
        }
    }
}

/// The tentpole acceptance test: a full composed session — sequential
/// phases AND a joined phase, all on one pool — is byte-equal across
/// shard counts, per phase and cumulatively.
#[test]
fn composed_sessions_are_byte_equal_across_shard_counts() {
    for seed in SEEDS {
        for g in fixtures(seed) {
            let (base_phases, base_total, base_digest, base_shape) = composed_pipeline(&g, seed, 1);
            assert_eq!(base_phases.len(), 5);
            assert_eq!(base_phases[1].label, "tree_aggregate+tree_aggregate");
            for shards in SHARDS {
                let (phases, total, digest, shape) = composed_pipeline(&g, seed, shards);
                assert_eq!(phases, base_phases, "phases, seed={seed}, shards={shards}");
                assert_eq!(total, base_total, "total, seed={seed}, shards={shards}");
                assert_eq!(
                    total.fingerprint(),
                    base_total.fingerprint(),
                    "fingerprint, seed={seed}, shards={shards}"
                );
                assert_eq!(digest, base_digest, "digest, seed={seed}, shards={shards}");
                assert_eq!(shape, base_shape, "shape, seed={seed}, shards={shards}");
            }
        }
    }
}
