//! The paper's construction adapted onto the framework-level
//! [`lcs_shortcut::ShortcutBuilder`] trait, so the Kogan–Parter pipeline
//! competes in the same registry (quality bench, tier-2 registry
//! proptest, CI fingerprint gate) as the baselines and the structural
//! backends.
//!
//! [`KoganParter::build`] runs exactly the centralized pipeline the rest
//! of this crate tests — [`centralized_shortcuts`] with
//! [`LargenessRule::Radius`] and [`OracleMode::PerPart`], optionally
//! followed by [`prune_to_trees`] at the paper's depth limit — seeding
//! it with one `u64` drawn from the caller's RNG. The differential
//! suite (`tests/backend_equivalence.rs`) holds this adapter
//! byte-identical to the free-function pipeline.

use crate::centralized::{centralized_shortcuts, prune_to_trees, LargenessRule, OracleMode};
use crate::params::KpParams;
use lcs_graph::{exact_diameter, Graph};
use lcs_shortcut::{Partition, Quality, ShortcutBuilder, ShortcutSet};
use rand::RngCore;

/// The Kogan–Parter constant-diameter construction as a registrable
/// backend (centralized execution; see the crate docs for the
/// distributed one).
#[derive(Debug, Clone, Copy)]
pub struct KoganParter {
    /// Known diameter; `None` = measure it (clamped to ≥ 3, the
    /// smallest `D` the parameterization supports).
    pub diameter: Option<u32>,
    /// Sampling-probability constant (`1.0` = paper).
    pub prob_constant: f64,
    /// Prune the raw sampled sets to depth-limited BFS trees (the
    /// protocol's actual output). The default.
    pub pruned: bool,
}

impl Default for KoganParter {
    fn default() -> Self {
        KoganParter {
            diameter: None,
            prob_constant: 1.0,
            pruned: true,
        }
    }
}

impl KoganParter {
    fn resolve_params(&self, graph: &Graph) -> Option<KpParams> {
        let d = match self.diameter {
            Some(d) => d,
            None => exact_diameter(graph)?,
        };
        KpParams::new(graph.n(), d.max(3), self.prob_constant).ok()
    }
}

impl ShortcutBuilder for KoganParter {
    fn name(&self) -> &'static str {
        "kogan_parter"
    }

    fn params(&self) -> Vec<(&'static str, String)> {
        vec![
            (
                "diameter",
                self.diameter
                    .map_or_else(|| "measured".to_string(), |d| d.to_string()),
            ),
            ("prob_constant", format!("{}", self.prob_constant)),
            ("pruned", self.pruned.to_string()),
        ]
    }

    fn applicable(&self, graph: &Graph, _partition: &Partition) -> bool {
        self.resolve_params(graph).is_some()
    }

    fn build(&self, graph: &Graph, partition: &Partition, rng: &mut dyn RngCore) -> ShortcutSet {
        // One draw: the pipeline is internally deterministic in its seed,
        // so the whole build is a pure function of the RNG stream.
        let seed = rng.next_u64();
        let Some(params) = self.resolve_params(graph) else {
            return ShortcutSet::empty(partition.num_parts());
        };
        let raw = centralized_shortcuts(
            graph,
            partition,
            params,
            seed,
            LargenessRule::Radius,
            OracleMode::PerPart,
        );
        if self.pruned {
            prune_to_trees(graph, partition, &raw.shortcuts, params.depth_limit()).shortcuts
        } else {
            raw.shortcuts
        }
    }

    fn declared_bound(&self, graph: &Graph, _partition: &Partition) -> Option<Quality> {
        // The paper's targets: congestion O(D·k_D·log n), dilation
        // O(k_D·log n), with the repo's documented constants. These are
        // whp bounds; the bench and the registry proptest enforce them
        // empirically on every cell (DESIGN.md §2).
        let params = self.resolve_params(graph)?;
        let clamp = |b: u64| b.min(u32::MAX as u64) as u32;
        Some(Quality {
            congestion: clamp(params.congestion_bound()),
            dilation: clamp(params.dilation_bound()),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::{HighwayGraph, HighwayParams};
    use lcs_shortcut::{measure_quality, verify, DilationMode};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn fixture() -> (Graph, Partition) {
        let hw = HighwayGraph::new(HighwayParams {
            num_paths: 3,
            path_len: 20,
            diameter: 4,
        })
        .unwrap();
        let g = hw.graph().clone();
        let p = Partition::new(&g, hw.path_parts()).unwrap();
        (g, p)
    }

    #[test]
    fn backend_verifies_within_declared_bound() {
        let (g, p) = fixture();
        let b = KoganParter::default();
        assert!(b.applicable(&g, &p));
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let s = b.build(&g, &p, &mut rng);
        verify(&g, &p, &s, b.declared_bound(&g, &p), DilationMode::Exact).unwrap();
    }

    #[test]
    fn raw_variant_dominates_pruned() {
        let (g, p) = fixture();
        let pruned = KoganParter::default();
        let raw = KoganParter {
            pruned: false,
            ..KoganParter::default()
        };
        let mut r1 = ChaCha8Rng::seed_from_u64(3);
        let mut r2 = ChaCha8Rng::seed_from_u64(3);
        let sp = pruned.build(&g, &p, &mut r1);
        let sr = raw.build(&g, &p, &mut r2);
        assert!(sp.total_edges() <= sr.total_edges());
        let qp = measure_quality(&g, &p, &sp, DilationMode::Exact).quality;
        assert!(qp.congestion <= pruned.declared_bound(&g, &p).unwrap().congestion);
    }

    #[test]
    fn inapplicable_on_disconnected_without_diameter() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let p = Partition::new(&g, vec![vec![0, 1]]).unwrap();
        let b = KoganParter::default();
        assert!(!b.applicable(&g, &p));
        // Supplying the diameter restores applicability.
        let with_d = KoganParter {
            diameter: Some(3),
            ..KoganParter::default()
        };
        assert!(with_d.applicable(&g, &p));
    }
}
