//! One-stop entry point: [`ShortcutBuilder`] configures and runs any
//! variant of the construction.
//!
//! ```
//! use lcs_core::ShortcutBuilder;
//! use lcs_graph::{HighwayGraph, HighwayParams};
//! use lcs_shortcut::Partition;
//!
//! let hw = HighwayGraph::new(HighwayParams {
//!     num_paths: 3, path_len: 20, diameter: 4,
//! }).unwrap();
//! let parts = Partition::new(hw.graph(), hw.path_parts()).unwrap();
//! let built = ShortcutBuilder::new()
//!     .seed(7)
//!     .diameter(4)
//!     .build(hw.graph(), &parts)
//!     .unwrap();
//! assert!(built.quality_report.quality.total() > 0);
//! ```

use crate::centralized::{centralized_shortcuts, prune_to_trees, LargenessRule, OracleMode};
use crate::distributed::{distributed_shortcuts, DistributedConfig, DistributedError};
use crate::odd::odd_shortcuts_subdivision;
use crate::params::{KpParams, ParamError};
use lcs_graph::{exact_diameter, Graph};
use lcs_shortcut::{measure_quality, DilationMode, Partition, QualityReport, ShortcutSet};
use std::fmt;

/// Which execution variant to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Variant {
    /// Centralized sampling, raw `H_i` sets (what §3 analyzes).
    CentralizedRaw,
    /// Centralized sampling pruned to depth-limited BFS trees (what a
    /// protocol actually outputs). The default.
    #[default]
    CentralizedPruned,
    /// The full CONGEST protocol on the simulator.
    Distributed,
    /// The §3.2 odd-diameter subdivision construction (requires odd
    /// `D`).
    OddSubdivision,
}

/// Builder error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// Parameter failure.
    Params(ParamError),
    /// Distributed run failure.
    Distributed(DistributedError),
    /// The diameter could not be determined (disconnected graph) and
    /// none was supplied.
    UnknownDiameter,
    /// [`Variant::OddSubdivision`] requires an odd diameter.
    NeedOddDiameter(u32),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::Params(e) => write!(f, "{e}"),
            BuildError::Distributed(e) => write!(f, "{e}"),
            BuildError::UnknownDiameter => {
                write!(f, "diameter unknown (disconnected?) and not supplied")
            }
            BuildError::NeedOddDiameter(d) => {
                write!(f, "odd-subdivision variant requires odd D, got {d}")
            }
        }
    }
}

impl std::error::Error for BuildError {}

impl From<ParamError> for BuildError {
    fn from(e: ParamError) -> Self {
        BuildError::Params(e)
    }
}
impl From<DistributedError> for BuildError {
    fn from(e: DistributedError) -> Self {
        BuildError::Distributed(e)
    }
}

/// Configured shortcut construction. Non-consuming builder
/// (`&mut self` setters returning `&mut Self`).
#[derive(Debug, Clone)]
pub struct ShortcutBuilder {
    seed: u64,
    diameter: Option<u32>,
    prob_constant: f64,
    variant: Variant,
    largeness: LargenessRule,
    oracle_mode: OracleMode,
    reps_override: Option<u32>,
    dilation_mode: DilationMode,
}

impl Default for ShortcutBuilder {
    fn default() -> Self {
        ShortcutBuilder {
            seed: 0xB111D,
            diameter: None,
            prob_constant: 1.0,
            variant: Variant::default(),
            largeness: LargenessRule::Radius,
            oracle_mode: OracleMode::PerPart,
            reps_override: None,
            dilation_mode: DilationMode::Exact,
        }
    }
}

/// Output of [`ShortcutBuilder::build`].
#[derive(Debug)]
pub struct BuiltShortcuts {
    /// The shortcut set.
    pub shortcuts: ShortcutSet,
    /// The parameters used.
    pub params: KpParams,
    /// Measured quality (mode per builder configuration).
    pub quality_report: QualityReport,
    /// Rounds (distributed variant only).
    pub rounds: Option<u64>,
    /// Messages (distributed variant only).
    pub messages: Option<u64>,
    /// The variant that was run.
    pub variant: Variant,
}

impl ShortcutBuilder {
    /// Creates a builder with defaults (centralized-pruned variant,
    /// paper constants, exact quality measurement).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the RNG seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Supplies the (known) diameter; otherwise it is measured.
    pub fn diameter(&mut self, d: u32) -> &mut Self {
        self.diameter = Some(d);
        self
    }

    /// Scales the sampling probability (`1.0` = paper).
    pub fn prob_constant(&mut self, c: f64) -> &mut Self {
        self.prob_constant = c;
        self
    }

    /// Selects the execution variant.
    pub fn variant(&mut self, v: Variant) -> &mut Self {
        self.variant = v;
        self
    }

    /// Selects the largeness rule.
    pub fn largeness(&mut self, rule: LargenessRule) -> &mut Self {
        self.largeness = rule;
        self
    }

    /// Selects the coin enumeration mode.
    pub fn oracle_mode(&mut self, mode: OracleMode) -> &mut Self {
        self.oracle_mode = mode;
        self
    }

    /// Overrides the repetition count (default `D`).
    pub fn reps(&mut self, reps: u32) -> &mut Self {
        self.reps_override = Some(reps);
        self
    }

    /// Selects exact or estimated quality measurement.
    pub fn dilation_mode(&mut self, mode: DilationMode) -> &mut Self {
        self.dilation_mode = mode;
        self
    }

    /// Runs the configured construction and measures its quality.
    ///
    /// # Errors
    ///
    /// See [`BuildError`].
    pub fn build(
        &self,
        graph: &Graph,
        partition: &Partition,
    ) -> Result<BuiltShortcuts, BuildError> {
        let d = match self.diameter {
            Some(d) => d,
            None => exact_diameter(graph)
                .ok_or(BuildError::UnknownDiameter)?
                .max(3),
        };
        let mut params = KpParams::new(graph.n(), d.max(3), self.prob_constant)?;
        if let Some(r) = self.reps_override {
            params = params.with_reps(r);
        }
        let (shortcuts, rounds, messages) = match self.variant {
            Variant::CentralizedRaw => {
                let out = centralized_shortcuts(
                    graph,
                    partition,
                    params,
                    self.seed,
                    self.largeness,
                    self.oracle_mode,
                );
                (out.shortcuts, None, None)
            }
            Variant::CentralizedPruned => {
                let raw = centralized_shortcuts(
                    graph,
                    partition,
                    params,
                    self.seed,
                    self.largeness,
                    self.oracle_mode,
                );
                let pruned = prune_to_trees(graph, partition, &raw.shortcuts, params.depth_limit());
                (pruned.shortcuts, None, None)
            }
            Variant::Distributed => {
                let out = distributed_shortcuts(
                    graph,
                    partition,
                    &DistributedConfig {
                        seed: self.seed,
                        prob_constant: self.prob_constant,
                        known_diameter: self.diameter,
                        ..DistributedConfig::default()
                    },
                )?;
                params = out.params;
                (
                    out.shortcuts,
                    Some(out.total_rounds),
                    Some(out.total_messages),
                )
            }
            Variant::OddSubdivision => {
                if d % 2 == 0 {
                    return Err(BuildError::NeedOddDiameter(d));
                }
                let out =
                    odd_shortcuts_subdivision(graph, partition, params, self.seed, self.largeness);
                (out.shortcuts, None, None)
            }
        };
        let quality_report = measure_quality(graph, partition, &shortcuts, self.dilation_mode);
        Ok(BuiltShortcuts {
            shortcuts,
            params,
            quality_report,
            rounds,
            messages,
            variant: self.variant,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::{HighwayGraph, HighwayParams};

    fn fixture(d: u32) -> (Graph, Partition) {
        let hw = HighwayGraph::new(HighwayParams {
            num_paths: 3,
            path_len: 20,
            diameter: d,
        })
        .unwrap();
        let g = hw.graph().clone();
        let p = Partition::new(&g, hw.path_parts()).unwrap();
        (g, p)
    }

    #[test]
    fn all_variants_build_valid_shortcuts() {
        let (g, p) = fixture(4);
        for variant in [
            Variant::CentralizedRaw,
            Variant::CentralizedPruned,
            Variant::Distributed,
        ] {
            let built = ShortcutBuilder::new()
                .seed(3)
                .variant(variant)
                .build(&g, &p)
                .unwrap_or_else(|e| panic!("{variant:?}: {e}"));
            assert!(
                (built.quality_report.quality.congestion as u64) <= built.params.congestion_bound(),
                "{variant:?}"
            );
            assert_eq!(built.rounds.is_some(), variant == Variant::Distributed);
        }
    }

    #[test]
    fn odd_variant_requires_odd_d() {
        let (g, p) = fixture(4);
        let err = ShortcutBuilder::new()
            .variant(Variant::OddSubdivision)
            .diameter(4)
            .build(&g, &p)
            .unwrap_err();
        assert_eq!(err, BuildError::NeedOddDiameter(4));
        let (g5, p5) = fixture(5);
        ShortcutBuilder::new()
            .variant(Variant::OddSubdivision)
            .build(&g5, &p5)
            .unwrap();
    }

    #[test]
    fn diameter_is_measured_when_missing() {
        let (g, p) = fixture(4);
        let built = ShortcutBuilder::new().build(&g, &p).unwrap();
        assert_eq!(built.params.d, 4);
    }

    #[test]
    fn disconnected_without_diameter_fails() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let p = Partition::new(&g, vec![vec![0, 1]]).unwrap();
        let err = ShortcutBuilder::new().build(&g, &p).unwrap_err();
        assert_eq!(err, BuildError::UnknownDiameter);
    }

    #[test]
    fn builder_knobs_apply() {
        let (g, p) = fixture(4);
        let a = ShortcutBuilder::new()
            .seed(1)
            .prob_constant(0.25)
            .reps(1)
            .oracle_mode(OracleMode::PerArc)
            .largeness(LargenessRule::Size)
            .dilation_mode(DilationMode::Estimate)
            .variant(Variant::CentralizedRaw)
            .build(&g, &p)
            .unwrap();
        let b = ShortcutBuilder::new()
            .seed(1)
            .variant(Variant::CentralizedRaw)
            .build(&g, &p)
            .unwrap();
        assert!(a.shortcuts.total_edges() < b.shortcuts.total_edges());
    }
}
