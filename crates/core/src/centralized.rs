//! The centralized shortcut construction (§2 of the paper).
//!
//! For every *large* part `S_i`:
//!
//! 1. **Step 1** — every node of `S_i` contributes all incident edges to
//!    `H_i`;
//! 2. **Step 2** — every node `u ∉ S_i` samples each incident directed
//!    edge into `H_i` with probability `p`, independently `D` times.
//!
//! The raw `H_i` is what the dilation analysis (§3) reasons about; the
//! *output* a CONGEST algorithm can actually use is the depth-limited
//! BFS tree of `G[S_i] ∪ H_i` rooted at the leader, which
//! [`prune_to_trees`] extracts (this mirrors the paper's distributed
//! implementation, whose final knowledge is exactly those truncated BFS
//! trees).
//!
//! Sampling is keyed by the part **leader id**, so the distributed
//! implementation — which discovers parts in a different order — draws
//! the *same* coins and produces the same `H_i` (differential tests rely
//! on this).

use crate::params::KpParams;
use crate::sampling::SampleOracle;
use lcs_graph::{bfs, BfsOptions, EdgeId, Graph, NodeId, UNREACHABLE};
use lcs_shortcut::{Partition, ShortcutSet};

/// How largeness is decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LargenessRule {
    /// Paper's distributed test: a part is large when the depth-`k_D`
    /// BFS from its leader does **not** span it (radius > `k_D`).
    Radius,
    /// Paper's definition in §2: `|S_i| > k_D`.
    Size,
}

/// Output of the centralized construction.
#[derive(Debug, Clone)]
pub struct CentralizedShortcuts {
    /// The raw sampled shortcut sets (Step 1 ∪ Step 2).
    pub shortcuts: ShortcutSet,
    /// Which parts were classified large.
    pub is_large: Vec<bool>,
    /// The parameters used.
    pub params: KpParams,
    /// The oracle used (for analysis tooling that re-examines the same
    /// coins, e.g. shortcut trees).
    pub oracle: SampleOracle,
}

/// Classifies each part as large/small under `rule`.
pub fn classify_large(
    graph: &Graph,
    partition: &Partition,
    k_ceil: u32,
    rule: LargenessRule,
) -> Vec<bool> {
    (0..partition.num_parts())
        .map(|i| match rule {
            LargenessRule::Radius => partition.leader_radius(graph, i) > k_ceil,
            LargenessRule::Size => partition.part(i).len() > k_ceil as usize,
        })
        .collect()
}

/// How Step-2 coins are enumerated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleMode {
    /// Evaluate the PRF per (arc, instance, repetition) — `Θ(m·N·D)`
    /// work, and bit-identical to the distributed execution.
    PerPart,
    /// Enumerate the instances that picked each arc by geometric
    /// gap-skipping — `O(total picks)` expected work; same distribution,
    /// different coin set.
    PerArc,
}

/// Runs the centralized construction.
///
/// Large parts are keyed for sampling by their leader id. Small parts
/// get `H_i = ∅`.
pub fn centralized_shortcuts(
    graph: &Graph,
    partition: &Partition,
    params: KpParams,
    seed: u64,
    rule: LargenessRule,
    mode: OracleMode,
) -> CentralizedShortcuts {
    let oracle = SampleOracle::new(seed, params.p, params.reps);
    let is_large = classify_large(graph, partition, params.k_ceil, rule);
    let large_parts: Vec<usize> = (0..partition.num_parts())
        .filter(|&i| is_large[i])
        .collect();
    let mut per_part: Vec<Vec<EdgeId>> = vec![Vec::new(); partition.num_parts()];

    // Step 1: all edges incident to each large part.
    for &i in &large_parts {
        for &v in partition.part(i) {
            for (_, e) in graph.neighbors_with_edges(v) {
                per_part[i].push(e);
            }
        }
    }

    // Step 2.
    match mode {
        OracleMode::PerPart => {
            for &i in &large_parts {
                let leader = partition.leader(i);
                for u in graph.nodes() {
                    if partition.part_of(u) == Some(i as u32) {
                        continue;
                    }
                    for (v, e) in graph.neighbors_with_edges(u) {
                        for rep in 0..params.reps {
                            if oracle.sampled_by(u, v, leader, rep) {
                                per_part[i].push(e);
                                break;
                            }
                        }
                    }
                }
            }
        }
        OracleMode::PerArc => {
            // Dense index over large parts, ordered by part index.
            for u in graph.nodes() {
                let pu = partition.part_of(u);
                for (v, e) in graph.neighbors_with_edges(u) {
                    for rep in 0..params.reps {
                        for pick in oracle.picks_for_arc(u, v, rep, large_parts.len()) {
                            let i = large_parts[pick as usize];
                            if pu != Some(i as u32) {
                                per_part[i].push(e);
                            }
                        }
                    }
                }
            }
        }
    }

    CentralizedShortcuts {
        shortcuts: ShortcutSet::from_edge_lists(per_part),
        is_large,
        params,
        oracle,
    }
}

/// Result of pruning raw shortcuts to depth-limited BFS trees.
#[derive(Debug, Clone)]
pub struct PrunedShortcuts {
    /// Per-part tree edge sets (empty for small parts).
    pub shortcuts: ShortcutSet,
    /// Whether each part's truncated tree spans the part (should hold
    /// w.h.p. when the depth limit respects Theorem 3.1).
    pub spans: Vec<bool>,
    /// Depth of each part's tree.
    pub depths: Vec<u32>,
}

/// Extracts, for each part with a nonempty `H_i`, the BFS tree of
/// `G[S_i] ∪ H_i` rooted at the leader, truncated at `depth_limit` —
/// the shape the distributed algorithm actually outputs.
pub fn prune_to_trees(
    graph: &Graph,
    partition: &Partition,
    raw: &ShortcutSet,
    depth_limit: u32,
) -> PrunedShortcuts {
    let mut per_part: Vec<Vec<EdgeId>> = Vec::with_capacity(partition.num_parts());
    let mut spans = Vec::with_capacity(partition.num_parts());
    let mut depths = Vec::with_capacity(partition.num_parts());
    for i in 0..partition.num_parts() {
        if raw.edges(i).is_empty() {
            per_part.push(Vec::new());
            // Small part: its own induced subgraph is its "tree".
            spans.push(true);
            depths.push(partition.leader_radius(graph, i));
            continue;
        }
        let sub = raw.augmented_subgraph(graph, partition, i);
        let root = sub
            .local_of(partition.leader(i))
            .expect("leader in own subgraph");
        let r = bfs(
            sub.local(),
            &[root],
            &BfsOptions {
                max_depth: depth_limit,
                node_filter: None,
            },
        );
        let mut edges = Vec::new();
        let mut depth = 0;
        for lv in 0..sub.n() as u32 {
            if r.dist[lv as usize] == UNREACHABLE {
                continue;
            }
            depth = depth.max(r.dist[lv as usize]);
            if let Some(lp) = r.parent[lv as usize] {
                let a = sub.parent_of(lv);
                let b = sub.parent_of(lp);
                edges.push(graph.edge_between(a, b).expect("tree edge"));
            }
        }
        let span = partition.part(i).iter().all(|&v| {
            sub.local_of(v)
                .is_some_and(|lv| r.dist[lv as usize] != UNREACHABLE)
        });
        per_part.push(edges);
        spans.push(span);
        depths.push(depth);
    }
    PrunedShortcuts {
        shortcuts: ShortcutSet::from_edge_lists(per_part),
        spans,
        depths,
    }
}

/// Convenience: which node in the graph would key instance `i` — the
/// leader of the `i`-th large part in part order.
pub fn large_part_leaders(partition: &Partition, is_large: &[bool]) -> Vec<NodeId> {
    (0..partition.num_parts())
        .filter(|&i| is_large[i])
        .map(|i| partition.leader(i))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::{HighwayGraph, HighwayParams};
    use lcs_shortcut::{measure_quality, DilationMode};

    fn fixture(d: u32, paths: usize, len: usize) -> (Graph, Partition, KpParams) {
        let hw = HighwayGraph::new(HighwayParams {
            num_paths: paths,
            path_len: len,
            diameter: d,
        })
        .unwrap();
        let g = hw.graph().clone();
        let p = Partition::new(&g, hw.path_parts()).unwrap();
        let params = KpParams::new(g.n(), d, 1.0).unwrap();
        (g, p, params)
    }

    #[test]
    fn small_parts_get_no_shortcut() {
        let (g, p, params) = fixture(4, 3, 30);
        // With a huge k threshold, everything is small.
        let mut fake = params;
        fake.k_ceil = 1000;
        let out =
            centralized_shortcuts(&g, &p, fake, 1, LargenessRule::Radius, OracleMode::PerPart);
        assert!(out.is_large.iter().all(|&l| !l));
        assert_eq!(out.shortcuts.total_edges(), 0);
    }

    #[test]
    fn step1_edges_present_for_large_parts() {
        let (g, p, params) = fixture(4, 2, 30);
        let out = centralized_shortcuts(
            &g,
            &p,
            params,
            2,
            LargenessRule::Radius,
            OracleMode::PerPart,
        );
        assert!(out.is_large.iter().all(|&l| l), "long paths are large");
        // Every edge incident to part 0 is in H_0.
        for &v in p.part(0) {
            for (_, e) in g.neighbors_with_edges(v) {
                assert!(out.shortcuts.edges(0).contains(&e));
            }
        }
    }

    #[test]
    fn radius_and_size_rules_agree_on_paths() {
        let (g, p, params) = fixture(4, 3, 40);
        let by_radius = classify_large(&g, &p, params.k_ceil, LargenessRule::Radius);
        let by_size = classify_large(&g, &p, params.k_ceil, LargenessRule::Size);
        // A path part has radius = len-1 ≥ size-1, so for paths the two
        // rules coincide (both compare ~len against k).
        assert_eq!(by_radius, by_size);
    }

    #[test]
    fn sampled_construction_meets_bounds_on_highway() {
        let (g, p, params) = fixture(4, 4, 40);
        let out = centralized_shortcuts(
            &g,
            &p,
            params,
            3,
            LargenessRule::Radius,
            OracleMode::PerPart,
        );
        let report = measure_quality(&g, &p, &out.shortcuts, DilationMode::Exact);
        assert!(
            (report.quality.congestion as u64) <= params.congestion_bound(),
            "congestion {} vs bound {}",
            report.quality.congestion,
            params.congestion_bound()
        );
        assert!(
            (report.quality.dilation as u64) <= params.dilation_bound(),
            "dilation {} vs bound {}",
            report.quality.dilation,
            params.dilation_bound()
        );
        // And the shortcuts genuinely beat the trivial baseline.
        let trivial = measure_quality(
            &g,
            &p,
            &lcs_shortcut::trivial_shortcuts(&p),
            DilationMode::Exact,
        );
        assert!(report.quality.dilation < trivial.quality.dilation);
    }

    #[test]
    fn per_arc_mode_has_same_distribution() {
        let (g, p, params) = fixture(4, 4, 40);
        let a = centralized_shortcuts(
            &g,
            &p,
            params,
            5,
            LargenessRule::Radius,
            OracleMode::PerPart,
        );
        let b = centralized_shortcuts(&g, &p, params, 5, LargenessRule::Radius, OracleMode::PerArc);
        // Not identical coins, but comparable volume (within 2x).
        let (ta, tb) = (
            a.shortcuts.total_edges() as f64,
            b.shortcuts.total_edges() as f64,
        );
        assert!(ta > 0.0 && tb > 0.0);
        assert!(
            (ta / tb) < 2.0 && (tb / ta) < 2.0,
            "volumes {ta} vs {tb} should be comparable"
        );
    }

    #[test]
    fn pruned_trees_span_and_respect_depth() {
        let (g, p, params) = fixture(4, 4, 40);
        let out = centralized_shortcuts(
            &g,
            &p,
            params,
            7,
            LargenessRule::Radius,
            OracleMode::PerPart,
        );
        let pruned = prune_to_trees(&g, &p, &out.shortcuts, params.depth_limit());
        assert!(pruned.spans.iter().all(|&s| s), "trees must span parts");
        assert!(pruned.depths.iter().all(|&d| d <= params.depth_limit()));
        // Pruned quality: dilation within 2*depth_limit; congestion no
        // worse than raw.
        let raw_q = measure_quality(&g, &p, &out.shortcuts, DilationMode::Exact).quality;
        let pruned_q = measure_quality(&g, &p, &pruned.shortcuts, DilationMode::Exact).quality;
        assert!(pruned_q.congestion <= raw_q.congestion);
        assert!((pruned_q.dilation as u64) <= 2 * params.depth_limit() as u64);
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, p, params) = fixture(3, 3, 30);
        let a = centralized_shortcuts(
            &g,
            &p,
            params,
            11,
            LargenessRule::Radius,
            OracleMode::PerPart,
        );
        let b = centralized_shortcuts(
            &g,
            &p,
            params,
            11,
            LargenessRule::Radius,
            OracleMode::PerPart,
        );
        assert_eq!(a.shortcuts, b.shortcuts);
        let c = centralized_shortcuts(
            &g,
            &p,
            params,
            12,
            LargenessRule::Radius,
            OracleMode::PerPart,
        );
        assert_ne!(a.shortcuts, c.shortcuts, "different seed, different coins");
    }

    #[test]
    fn large_part_leaders_ordering() {
        let (g, p, params) = fixture(4, 3, 30);
        let out = centralized_shortcuts(
            &g,
            &p,
            params,
            1,
            LargenessRule::Radius,
            OracleMode::PerPart,
        );
        let leaders = large_part_leaders(&p, &out.is_large);
        assert_eq!(leaders.len(), 3);
        assert!(leaders.windows(2).all(|w| w[0] < w[1]));
    }
}
