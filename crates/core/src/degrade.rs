//! Graceful degradation under crash faults: the shared
//! detect-and-excise machinery behind every fault-tolerant pipeline.
//!
//! Any shortcut-backed computation ([`distributed`](crate::distributed)
//! construction, MST, SSSP, min cut, 2-ECSS) degrades the same way when
//! a [`FaultPlan`] contains permanent
//! crash-stops:
//!
//! 1. **Detect** — a [`Reliable`]-wrapped BFS from node 0 runs on the
//!    faulty network; its reach *is* the surviving component. A census
//!    convergecast over the BFS tree tells the root how many nodes
//!    survive (`count < n` is the detection signal). Both phases execute
//!    over reliable links, so drops, delays, and payload corruption are
//!    absorbed; only permanent crashes (and anything they disconnect)
//!    leave the reach.
//! 2. **Excise** — survivors are relabeled into a compact induced
//!    subgraph; partition parts are split into their surviving connected
//!    fragments (excising a node may cut a part in two); shortcut sets
//!    are restricted to surviving edges.
//! 3. **Complete** — the pipeline proper runs on the survivors. Since
//!    [`Reliable`] makes protocol outputs byte-identical to fault-free
//!    runs (a tier-1 property of `lcs-congest`), the remaining phases
//!    are simulated fault-free and only the detection overhead is
//!    charged, as [`DegradedOutcome::extra_rounds`].
//!
//! [`detect_and_excise`] performs step 1 and returns an [`Excision`]
//! whose helpers implement step 2; callers own step 3 plus the mapping
//! of results back to original ids ([`Excision::original_edge`],
//! [`Excision::survivors`]).
//!
//! [`Reliable`]: lcs_congest::Reliable

use lcs_congest::{
    positions_from_tree, AggOp, Bfs, FaultPlan, Reliable, RunStats, Session, SimConfig, SimError,
    TreeAggregate,
};
use lcs_graph::{EdgeId, Graph, NodeId, UnionFind, WeightedGraph};
use lcs_shortcut::{Partition, ShortcutSet};
use std::collections::HashMap;

/// How a fault-tolerant run coped with crash-stops: what was cut away
/// and what the tolerance cost.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedOutcome {
    /// The pipeline completed on the surviving subgraph.
    pub completed: bool,
    /// Nodes excised before the main pipeline ran: permanently crashed
    /// nodes plus any survivors they disconnected from the root.
    pub excluded_nodes: Vec<NodeId>,
    /// Rounds spent on fault handling — the detection BFS + census
    /// convergecast executed over [`Reliable`]
    /// links on the faulty network — on top of the ordinary pipeline
    /// rounds.
    pub extra_rounds: u64,
}

/// Result of the detection phase: who survived, how to relabel them,
/// and what detection cost.
///
/// Produced by [`detect_and_excise`]; consumed by the fault-tolerant
/// wrappers of each pipeline.
#[derive(Debug, Clone)]
pub struct Excision {
    /// Surviving nodes in ascending original id; index = compact sub id.
    pub survivors: Vec<NodeId>,
    /// Original id → compact sub id (`u32::MAX` for excluded nodes).
    pub new_id: Vec<u32>,
    /// Excised nodes: permanent crashes plus whatever they disconnected
    /// from node 0.
    pub excluded: Vec<NodeId>,
    /// Rounds consumed by the detection BFS + census.
    pub extra_rounds: u64,
    /// Messages exchanged by the detection phases.
    pub messages: u64,
    /// Per-phase engine statistics of the detection session
    /// (`F.detect_bfs`, `F.detect_census`).
    pub phase_stats: Vec<RunStats>,
}

/// Runs the detection phase on the faulty network and computes the
/// excision.
///
/// `seed` and `shards` configure the detection [`Session`]; the
/// remaining simulator knobs are defaults plus a 500 000-round cap
/// (retransmission slack for the reliable layer).
///
/// # Errors
///
/// [`SimError::FaultConfig`] when node 0 — the detection root — is
/// permanently crashed; any engine error from the detection phases.
pub fn detect_and_excise(
    graph: &Graph,
    plan: &FaultPlan,
    seed: u64,
    shards: usize,
) -> Result<Excision, SimError> {
    let n = graph.n();
    let crashed: Vec<NodeId> = plan
        .crashes
        .iter()
        .filter(|c| c.recover_at.is_none())
        .map(|c| c.node)
        .collect();
    if crashed.contains(&0) {
        return Err(SimError::FaultConfig {
            reason: "node 0 roots the detection convergecast; it may not crash permanently \
                     — crash a different node or give node 0 a recovery round"
                .to_string(),
        });
    }

    let det_cfg = SimConfig {
        seed,
        shards,
        max_rounds: 500_000, // retransmission slack
        faults: Some(plan.clone()),
        ..SimConfig::default()
    };
    let mut det = Session::new(graph, det_cfg);
    let bfs = det.run_labeled(
        "F.detect_bfs",
        Reliable::with_crashed(Bfs::new(0), &crashed),
    )?;
    {
        let positions = positions_from_tree(0, &bfs.parent, &bfs.children);
        let ones = vec![1u64; n];
        let (census, _) = det.run_labeled(
            "F.detect_census",
            Reliable::with_crashed(
                TreeAggregate::new(positions, &ones, AggOp::Sum, true),
                &crashed,
            ),
        )?;
        debug_assert_eq!(
            census[0].unwrap_or(0),
            bfs.dist.iter().flatten().count() as u64,
            "census must count exactly the BFS-reached survivors"
        );
    }

    let mut new_id: Vec<u32> = vec![u32::MAX; n];
    let mut survivors: Vec<NodeId> = Vec::new();
    let mut excluded: Vec<NodeId> = Vec::new();
    for v in 0..n as NodeId {
        if bfs.dist[v as usize].is_some() {
            new_id[v as usize] = survivors.len() as u32;
            survivors.push(v);
        } else {
            excluded.push(v);
        }
    }
    Ok(Excision {
        survivors,
        new_id,
        excluded,
        extra_rounds: det.rounds_used(),
        messages: det.stats().messages,
        phase_stats: det.phases().to_vec(),
    })
}

impl Excision {
    /// `true` when nothing was excised: drops, delays, corruption, and
    /// transient crashes were absorbed by the reliable layer, so the
    /// pipeline may run on the whole graph.
    #[must_use]
    pub fn is_trivial(&self) -> bool {
        self.excluded.is_empty()
    }

    /// The [`DegradedOutcome`] this excision reports.
    #[must_use]
    pub fn outcome(&self) -> DegradedOutcome {
        DegradedOutcome {
            completed: true,
            excluded_nodes: self.excluded.clone(),
            extra_rounds: self.extra_rounds,
        }
    }

    /// Surviving edges of `graph` with endpoints relabeled to sub ids,
    /// in original edge order.
    fn sub_edge_list(&self, graph: &Graph) -> Vec<(NodeId, NodeId)> {
        graph
            .edges()
            .iter()
            .filter(|&&(a, b)| {
                self.new_id[a as usize] != u32::MAX && self.new_id[b as usize] != u32::MAX
            })
            .map(|&(a, b)| (self.new_id[a as usize], self.new_id[b as usize]))
            .collect()
    }

    /// The induced subgraph on the survivors, relabeled to compact ids.
    ///
    /// # Panics
    ///
    /// Never on graphs the excision was computed from (relabeling
    /// preserves simplicity).
    #[must_use]
    pub fn induced_graph(&self, graph: &Graph) -> Graph {
        Graph::from_edges(self.survivors.len(), &self.sub_edge_list(graph))
            .expect("relabeled survivor edges are simple")
    }

    /// The induced **weighted** subgraph on the survivors: same edge
    /// set as [`Excision::induced_graph`], each edge carrying its
    /// original weight.
    ///
    /// # Panics
    ///
    /// Never on graphs the excision was computed from.
    #[must_use]
    pub fn induced_weighted(&self, wg: &WeightedGraph) -> WeightedGraph {
        let g = wg.graph();
        let sub_edges: Vec<(NodeId, NodeId, u64)> = g
            .edges()
            .iter()
            .enumerate()
            .filter(|&(_, &(a, b))| {
                self.new_id[a as usize] != u32::MAX && self.new_id[b as usize] != u32::MAX
            })
            .map(|(e, &(a, b))| {
                (
                    self.new_id[a as usize],
                    self.new_id[b as usize],
                    wg.weight(EdgeId(e as u32)),
                )
            })
            .collect();
        WeightedGraph::from_weighted_edges(self.survivors.len(), &sub_edges)
            .expect("relabeled survivor edges are simple")
    }

    /// Splits each part of `partition` into its surviving connected
    /// fragments on the excised subgraph `sub_g` (excising a node may
    /// cut a part in two), returning the fragment partition plus, per
    /// fragment, the index of the original part it came from.
    ///
    /// # Panics
    ///
    /// Never when `sub_g` is [`Excision::induced_graph`] of the graph
    /// `partition` lives on: fragments are connected by construction.
    #[must_use]
    pub fn split_partition(&self, sub_g: &Graph, partition: &Partition) -> (Partition, Vec<usize>) {
        let mut sub_part_label: Vec<Option<usize>> = vec![None; self.survivors.len()];
        for (i, part) in partition.parts().iter().enumerate() {
            for &v in part {
                let nv = self.new_id[v as usize];
                if nv != u32::MAX {
                    sub_part_label[nv as usize] = Some(i);
                }
            }
        }
        let mut uf = UnionFind::new(self.survivors.len());
        for &(a, b) in sub_g.edges() {
            if sub_part_label[a as usize].is_some()
                && sub_part_label[a as usize] == sub_part_label[b as usize]
            {
                uf.union(a, b);
            }
        }
        let mut groups: HashMap<(usize, u32), Vec<NodeId>> = HashMap::new();
        for v in 0..self.survivors.len() as u32 {
            if let Some(p) = sub_part_label[v as usize] {
                groups.entry((p, uf.find(v))).or_default().push(v);
            }
        }
        let mut keys: Vec<(usize, u32)> = groups.keys().copied().collect();
        keys.sort_unstable();
        let mut sub_parts: Vec<Vec<NodeId>> = Vec::with_capacity(keys.len());
        let mut sub_to_orig_part: Vec<usize> = Vec::with_capacity(keys.len());
        for k in &keys {
            sub_parts.push(groups.remove(k).expect("key enumerated from map"));
            sub_to_orig_part.push(k.0);
        }
        let sub_partition =
            Partition::new(sub_g, sub_parts).expect("fragments are connected by construction");
        (sub_partition, sub_to_orig_part)
    }

    /// Restricts a shortcut set to the survivors: every fragment
    /// inherits the surviving shortcut edges of the original part it
    /// came from (`sub_to_orig_part` as returned by
    /// [`Excision::split_partition`]), relabeled to `sub_g` edge ids.
    /// Shortcut edges with an excised endpoint are dropped.
    #[must_use]
    pub fn restrict_shortcuts(
        &self,
        graph: &Graph,
        sub_g: &Graph,
        shortcuts: &ShortcutSet,
        sub_to_orig_part: &[usize],
    ) -> ShortcutSet {
        let surviving_of = |orig_part: usize| -> Vec<EdgeId> {
            shortcuts
                .edges(orig_part)
                .iter()
                .filter_map(|&e| {
                    let (a, b) = graph.edge_endpoints(e);
                    let (na, nb) = (self.new_id[a as usize], self.new_id[b as usize]);
                    if na == u32::MAX || nb == u32::MAX {
                        return None;
                    }
                    Some(
                        sub_g
                            .edge_between(na, nb)
                            .expect("surviving edge exists in the excised subgraph"),
                    )
                })
                .collect()
        };
        ShortcutSet::from_edge_lists(
            sub_to_orig_part
                .iter()
                .map(|&oi| surviving_of(oi))
                .collect(),
        )
    }

    /// Maps an edge of the excised subgraph back to the corresponding
    /// edge of the original graph.
    ///
    /// # Panics
    ///
    /// Panics if `e` does not come from `sub_g` =
    /// [`Excision::induced_graph`] of `graph`.
    #[must_use]
    pub fn original_edge(&self, graph: &Graph, sub_g: &Graph, e: EdgeId) -> EdgeId {
        let (a, b) = sub_g.edge_endpoints(e);
        graph
            .edge_between(self.survivors[a as usize], self.survivors[b as usize])
            .expect("surviving edge exists in the original graph")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_congest::Crash;

    /// Path 0-1-2-3-4-5 with a chord (1,4); crashing 2 keeps everything
    /// reachable via the chord, crashing 4 *and* the chord's absence
    /// would cut the tail.
    fn chord_path() -> Graph {
        Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (1, 4)]).unwrap()
    }

    fn crash_plan(nodes: &[NodeId]) -> FaultPlan {
        FaultPlan {
            crashes: nodes
                .iter()
                .map(|&v| Crash {
                    node: v,
                    at_round: 0,
                    recover_at: None,
                })
                .collect(),
            ..FaultPlan::default()
        }
    }

    #[test]
    fn root_crash_is_rejected_eagerly() {
        let g = chord_path();
        let err = detect_and_excise(&g, &crash_plan(&[0]), 1, 1).unwrap_err();
        assert!(matches!(err, SimError::FaultConfig { .. }));
    }

    #[test]
    fn excision_takes_disconnected_survivors_too() {
        // Crashing 1 cuts 2..=5 off from the root: everything but 0 goes.
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
        let exc = detect_and_excise(&g, &crash_plan(&[1]), 7, 1).unwrap();
        assert_eq!(exc.survivors, vec![0]);
        assert_eq!(exc.excluded, vec![1, 2, 3, 4, 5]);
        assert!(!exc.is_trivial());
        assert!(exc.extra_rounds > 0);
        assert_eq!(exc.phase_stats.len(), 2);
    }

    #[test]
    fn split_partition_fragments_cut_parts() {
        // One part = the whole path; excising 2 splits it in two
        // fragments, both mapping back to part 0.
        let g = chord_path();
        let exc = detect_and_excise(&g, &crash_plan(&[2]), 3, 1).unwrap();
        assert_eq!(exc.excluded, vec![2]);
        let sub_g = exc.induced_graph(&g);
        assert_eq!(sub_g.n(), 5);
        let partition = Partition::new(&g, vec![vec![0, 1, 2], vec![3, 4, 5]]).unwrap();
        let (sub_p, back) = exc.split_partition(&sub_g, &partition);
        // Part {0,1,2} loses node 2 → fragment {0,1}; part {3,4,5}
        // stays whole (3-4-5 connected in the subgraph).
        assert_eq!(sub_p.num_parts(), 2);
        assert_eq!(back, vec![0, 1]);
        let mut sizes: Vec<usize> = sub_p.parts().iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![2, 3]);
    }

    #[test]
    fn weighted_excision_preserves_weights_and_edge_mapping() {
        let g = chord_path();
        let weights: Vec<u64> = (0..g.m() as u64).map(|i| 10 + i).collect();
        let wg = WeightedGraph::new(g.clone(), weights).unwrap();
        let exc = detect_and_excise(&g, &crash_plan(&[2]), 3, 1).unwrap();
        let sub_wg = exc.induced_weighted(&wg);
        let sub_g = exc.induced_graph(&g);
        assert_eq!(sub_wg.graph().edges(), sub_g.edges());
        for e in sub_g.edge_ids() {
            let orig = exc.original_edge(&g, &sub_g, e);
            assert_eq!(
                sub_wg.weight(e),
                wg.weight(orig),
                "weight survives relabeling"
            );
        }
    }
}
