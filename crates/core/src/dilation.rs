//! Empirical dilation certification (Lemma 3.5 and Theorem 3.1).
//!
//! Theorem 3.1's proof shows that for any `s–t` shortest path `P` in
//! `G[S_j]`, w.h.p. one of three events holds in `H = G[S_j] ∪ H_j`:
//! (O1) the first half of `P` shortcuts to length `O(k_D)`, (O2) the
//! second half does, or (O3) the whole pair does; recursing on the
//! unshortcut half then yields `dist_H(s, t) = O(k_D·log n)` with
//! recursion depth `O(log n)`.
//!
//! [`dilation_trace`] replays that recursion on a concrete augmented
//! subgraph and records which event fired at every level, the realized
//! recursion depth, and any *violations* (levels where none of the three
//! events held within the threshold — the "w.h.p." failure the analysis
//! bounds). [`certify_part`] runs the trace on a part's (approximately)
//! most-distant member pair.

use lcs_graph::{bfs, BfsOptions, EdgeSubgraph, Graph, NodeId, UNREACHABLE};
use lcs_shortcut::{Partition, ShortcutSet};

/// Which Lemma-3.5 event fired at one recursion level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trichotomy {
    /// `dist_H(v_1, v_d) ≤ threshold` — recurse on the second half.
    O1FirstHalf,
    /// `dist_H(v_{d+1}, v_{2d−1}) ≤ threshold` — recurse on the first
    /// half.
    O2SecondHalf,
    /// `dist_H(s, t) ≤ threshold` — done.
    O3Whole,
    /// None of the three held (a w.h.p. failure); the trace falls back
    /// to recursing on both halves.
    Violation,
}

/// Result of replaying the Theorem-3.1 recursion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DilationTrace {
    /// Length of the `s–t` walk assembled from the shortcut pieces.
    pub total_length: u64,
    /// Maximum recursion depth reached.
    pub recursion_depth: u32,
    /// Events in recursion order.
    pub events: Vec<Trichotomy>,
    /// Number of [`Trichotomy::Violation`] events.
    pub violations: u32,
    /// The `O(k_D)` threshold used.
    pub threshold: u32,
}

fn rec(
    sub: &EdgeSubgraph,
    path: &[NodeId],
    threshold: u32,
    depth: u32,
    trace: &mut DilationTrace,
) -> u64 {
    trace.recursion_depth = trace.recursion_depth.max(depth);
    let s = path[0];
    let t = *path.last().expect("non-empty path");
    let d_st = sub.distance(s, t).expect("part members stay connected");
    if d_st as u64 <= threshold as u64 || path.len() <= 2 {
        trace.events.push(Trichotomy::O3Whole);
        return d_st as u64;
    }
    let mid = path.len() / 2;
    let (first, second) = (&path[..mid], &path[mid..]);
    let d1 = sub
        .distance(s, *first.last().expect("non-empty half"))
        .expect("connected");
    if d1 <= threshold {
        trace.events.push(Trichotomy::O1FirstHalf);
        // s ⇝ v_d (shortcut), the path edge (v_d, v_{d+1}), then the
        // recursive walk on the second half.
        return d1 as u64 + 1 + rec(sub, second, threshold, depth + 1, trace);
    }
    let d2 = sub.distance(second[0], t).expect("connected");
    if d2 <= threshold {
        trace.events.push(Trichotomy::O2SecondHalf);
        return rec(sub, first, threshold, depth + 1, trace) + 1 + d2 as u64;
    }
    trace.events.push(Trichotomy::Violation);
    trace.violations += 1;
    // Fallback: both halves plus the connecting hop. `first.last()` and
    // `second[0]` are adjacent on the path.
    rec(sub, first, threshold, depth + 1, trace) + 1 + rec(sub, second, threshold, depth + 1, trace)
}

/// Replays the recursion on `path` (a path in `G[S_j]`, given as its
/// node sequence) inside the augmented subgraph `sub`.
///
/// # Panics
///
/// Panics if `path` is empty or its nodes are missing from `sub`.
pub fn dilation_trace(sub: &EdgeSubgraph, path: &[NodeId], threshold: u32) -> DilationTrace {
    assert!(!path.is_empty(), "path must be non-empty");
    let mut trace = DilationTrace {
        total_length: 0,
        recursion_depth: 0,
        events: Vec::new(),
        violations: 0,
        threshold,
    };
    trace.total_length = rec(sub, path, threshold, 0, &mut trace);
    trace
}

/// Finds an (approximately) most-distant member pair of part `i` within
/// `G[S_i]` by double sweep, extracts their `G[S_i]`-shortest path, and
/// replays the recursion in the augmented subgraph.
///
/// # Panics
///
/// Panics if `i` is out of range.
pub fn certify_part(
    graph: &Graph,
    partition: &Partition,
    shortcuts: &ShortcutSet,
    i: usize,
    threshold: u32,
) -> DilationTrace {
    let member = |v: NodeId| partition.part_of(v) == Some(i as u32);
    // Double sweep inside G[S_i].
    let leader = partition.leader(i);
    let r0 = bfs(
        graph,
        &[leader],
        &BfsOptions {
            max_depth: u32::MAX,
            node_filter: Some(&member),
        },
    );
    let s = partition
        .part(i)
        .iter()
        .copied()
        .filter(|&v| r0.dist[v as usize] != UNREACHABLE)
        .max_by_key(|&v| r0.dist[v as usize])
        .unwrap_or(leader);
    let r1 = bfs(
        graph,
        &[s],
        &BfsOptions {
            max_depth: u32::MAX,
            node_filter: Some(&member),
        },
    );
    let t = partition
        .part(i)
        .iter()
        .copied()
        .filter(|&v| r1.dist[v as usize] != UNREACHABLE)
        .max_by_key(|&v| r1.dist[v as usize])
        .unwrap_or(s);
    let path = r1.path_to(t).expect("parts are connected");
    let sub = shortcuts.augmented_subgraph(graph, partition, i);
    dilation_trace(&sub, &path, threshold)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::{centralized_shortcuts, LargenessRule, OracleMode};
    use crate::params::KpParams;
    use lcs_graph::{HighwayGraph, HighwayParams};
    use lcs_shortcut::trivial_shortcuts;

    fn fixture() -> (Graph, Partition, KpParams) {
        let hw = HighwayGraph::new(HighwayParams {
            num_paths: 4,
            path_len: 48,
            diameter: 4,
        })
        .unwrap();
        let g = hw.graph().clone();
        let p = Partition::new(&g, hw.path_parts()).unwrap();
        let params = KpParams::new(g.n(), 4, 1.0).unwrap();
        (g, p, params)
    }

    #[test]
    fn trivial_shortcuts_make_o3_fire_at_path_scale() {
        let (g, p, _) = fixture();
        let s = trivial_shortcuts(&p);
        let sub = s.augmented_subgraph(&g, &p, 0);
        let path: Vec<NodeId> = p.part(0).to_vec(); // the path itself
                                                    // Threshold = path length: O3 fires immediately.
        let t = dilation_trace(&sub, &path, 47);
        assert_eq!(t.events, vec![Trichotomy::O3Whole]);
        assert_eq!(t.total_length, 47);
        assert_eq!(t.recursion_depth, 0);

        // Threshold far below the path: every level violates (no
        // shortcut edges exist at all).
        let t2 = dilation_trace(&sub, &path, 2);
        assert!(t2.violations > 0);
        assert_eq!(t2.total_length, 47, "walking the path is all we can do");
    }

    #[test]
    fn kp_shortcuts_certify_with_few_violations() {
        let (g, p, params) = fixture();
        let out = centralized_shortcuts(
            &g,
            &p,
            params,
            21,
            LargenessRule::Radius,
            OracleMode::PerPart,
        );
        let threshold = params.dilation_bound() as u32;
        for i in 0..p.num_parts() {
            let trace = certify_part(&g, &p, &out.shortcuts, i, threshold);
            assert_eq!(trace.violations, 0, "part {i}: {trace:?}");
            assert!(
                trace.total_length <= params.dilation_bound() * 2,
                "part {i} length {}",
                trace.total_length
            );
        }
    }

    #[test]
    fn recursion_depth_is_logarithmic() {
        let (g, p, params) = fixture();
        let out = centralized_shortcuts(
            &g,
            &p,
            params,
            22,
            LargenessRule::Radius,
            OracleMode::PerPart,
        );
        // Small threshold forces actual recursion.
        let trace = certify_part(&g, &p, &out.shortcuts, 0, params.k_ceil);
        // Path length 48: depth must stay well below the path length
        // (log-ish); the exact value depends on coins.
        assert!(
            trace.recursion_depth <= 12,
            "depth {} too deep",
            trace.recursion_depth
        );
    }

    #[test]
    fn single_node_path() {
        let (g, p, _) = fixture();
        let s = trivial_shortcuts(&p);
        let sub = s.augmented_subgraph(&g, &p, 0);
        let t = dilation_trace(&sub, &[p.part(0)[0]], 5);
        assert_eq!(t.total_length, 0);
        assert_eq!(t.events, vec![Trichotomy::O3Whole]);
    }
}
