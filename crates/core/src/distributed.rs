//! The distributed implementation of the shortcut construction (§2 of
//! the paper), executed on the CONGEST simulator.
//!
//! The protocol is a sequence of sub-protocols (each an honest CONGEST
//! algorithm run through `lcs-congest`; round and message counts are
//! summed across phases):
//!
//! * **Phase A** (once): BFS from an arbitrary root builds the global
//!   tree; convergecasts over it give every node `n` and
//!   `ecc(root)` — i.e. a 2-approximation `D' = 2·ecc` of the diameter.
//! * **Phase B** (per diameter guess `D''`, walking
//!   [`guess_ladder`](crate::params::guess_ladder()) upward):
//!   1. *Largeness test*: truncated depth-`k_{D''}` BFS inside every
//!      part simultaneously (parts are disjoint — no congestion); a
//!      1-round reach-bit exchange plus a convergecast over the
//!      truncated trees tells each leader whether its part spanned.
//!   2. *Numbering*: prefix-numbering of large-part leaders over the
//!      global tree gives each such leader a dense rank `i ∈ [0, N'')`,
//!      plus the total `N''`; ranks are broadcast within the truncated
//!      part trees.
//!   3. *Sampling + parallel BFS*: each node evaluates its Step-2 coins
//!      locally (PRF; keyed by the part **leader id**, so these are the
//!      same coins as the centralized construction); all `N''`
//!      truncated BFS trees grow concurrently with shared-randomness
//!      start delays, multiplexed through per-edge queues
//!      ([`lcs_congest::multi_bfs`]). Tokens carry the root id, as in
//!      the paper. Queue overflow (congestion enforcement) drops tokens.
//!   4. *Verification*: every node checks it was reached by the
//!      instance rooted at its own leader (nodes of small parts are
//!      satisfied by construction); a global AND convergecast accepts or
//!      rejects the guess.
//!
//! On acceptance, each `H_i` is the forest of parent edges of instance
//! `i` — the truncated BFS tree of `G[S_i] ∪ H_i`, which is exactly the
//! knowledge the real protocol leaves at the nodes.

use crate::degrade::detect_and_excise;
use crate::odd::shared_delay;
use crate::params::{guess_ladder, KpParams, ParamError};
use crate::sampling::SampleOracle;
use lcs_congest::{
    ceil_log2, positions_from_tree, AggOp, Bfs, FaultPlan, MultiAggregate, MultiBfs,
    MultiBfsInstance, MultiBfsSpec, Participation, PrefixNumber, RunStats, Session, SimConfig,
    SimError, TreeAggregate, TreePosition,
};
use lcs_graph::{is_connected, EdgeId, Graph, NodeId};
use lcs_shortcut::{Partition, ShortcutSet};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Configuration of the distributed construction.
#[derive(Debug, Clone)]
pub struct DistributedConfig {
    /// Seed for all randomness (sampling PRF, shared delays, engine).
    pub seed: u64,
    /// Probability constant (1.0 = paper's `p = k_D log n / N`).
    pub prob_constant: f64,
    /// Skip the guess ladder and use this diameter directly.
    pub known_diameter: Option<u32>,
    /// Queue capacity multiplier over `congestion_bound` (congestion
    /// enforcement; 0 disables the cap).
    pub queue_cap_factor: f64,
    /// Engine shards ([`SimConfig::shards`]) of the pipeline's
    /// [`Session`]: its persistent barrier-synchronized worker pool
    /// ([`lcs_congest::pool`]) is spawned once, with one thread per
    /// shard, and every phase reuses it. `0` (the default) auto-sizes
    /// to the machine; any value is bit-identical to `1`.
    pub shards: usize,
    /// Fault plan for the network ([`SimConfig::faults`]). With a plan
    /// attached, the pipeline first runs a **detection** phase on the
    /// faulty network — a [`Reliable`](lcs_congest::Reliable)-wrapped BFS + census convergecast
    /// — excises permanently crashed nodes (and anything they
    /// disconnect), and completes on the survivors, reporting a
    /// [`DegradedOutcome`].
    pub faults: Option<FaultPlan>,
}

impl Default for DistributedConfig {
    fn default() -> Self {
        DistributedConfig {
            seed: 0xFACE,
            prob_constant: 1.0,
            known_diameter: None,
            queue_cap_factor: 1.0,
            shards: 0,
            faults: None,
        }
    }
}

/// Why the distributed construction failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DistributedError {
    /// The input graph is disconnected.
    Disconnected,
    /// No guess on the ladder produced verified shortcuts.
    NoGuessAccepted {
        /// The guesses tried.
        tried: Vec<u32>,
    },
    /// Parameter failure (e.g. `n < 2`).
    Params(ParamError),
    /// Engine failure.
    Sim(SimError),
}

impl fmt::Display for DistributedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DistributedError::Disconnected => write!(f, "input graph is disconnected"),
            DistributedError::NoGuessAccepted { tried } => {
                write!(f, "no diameter guess accepted (tried {tried:?})")
            }
            DistributedError::Params(e) => write!(f, "parameter error: {e}"),
            DistributedError::Sim(e) => write!(f, "simulator error: {e}"),
        }
    }
}

impl std::error::Error for DistributedError {}

impl From<ParamError> for DistributedError {
    fn from(e: ParamError) -> Self {
        DistributedError::Params(e)
    }
}

impl From<SimError> for DistributedError {
    fn from(e: SimError) -> Self {
        DistributedError::Sim(e)
    }
}

/// Per-guess diagnostics.
#[derive(Debug, Clone)]
pub struct GuessReport {
    /// The diameter guess.
    pub guess: u32,
    /// Whether verification accepted.
    pub accepted: bool,
    /// Whether congestion enforcement dropped tokens.
    pub overflowed: bool,
    /// Rounds consumed by this guess.
    pub rounds: u64,
    /// Messages consumed by this guess.
    pub messages: u64,
    /// Number of large parts at this guess.
    pub num_large: usize,
    /// Longest per-edge queue observed in the parallel BFS.
    pub max_queue: usize,
}

pub use crate::degrade::DegradedOutcome;

/// Result of the distributed construction.
#[derive(Debug)]
pub struct DistributedOutcome {
    /// The verified (tree-shaped) shortcuts.
    pub shortcuts: ShortcutSet,
    /// Largeness per part at the accepted guess.
    pub is_large: Vec<bool>,
    /// The accepted diameter guess.
    pub accepted_guess: u32,
    /// Parameters at the accepted guess.
    pub params: KpParams,
    /// Total rounds across all phases and guesses (including the
    /// bookkeeping constants documented in the module docs).
    pub total_rounds: u64,
    /// Total messages.
    pub total_messages: u64,
    /// Per-guess diagnostics.
    pub guesses: Vec<GuessReport>,
    /// Aggregated engine statistics.
    pub stats: RunStats,
    /// Per-phase engine statistics (labeled), straight from the
    /// [`Session`] that executed the pipeline.
    pub phase_stats: Vec<RunStats>,
    /// Present iff the run was configured with a
    /// [`FaultPlan`](DistributedConfig::faults): what graceful
    /// degradation excised and cost.
    pub degraded: Option<DegradedOutcome>,
}

/// Runs the full distributed construction.
///
/// The whole multi-phase pipeline — global BFS, the `n`/`ecc`
/// convergecasts (executed **concurrently in shared rounds** via
/// [`Session::join`]), and every per-guess sub-protocol — executes
/// through **one** [`Session`]: a single engine instance whose worker
/// pool is spawned once, whose statistics accumulate into one
/// cumulative [`RunStats`] with a per-phase breakdown
/// ([`DistributedOutcome::phase_stats`]), and whose rounds draw on one
/// cumulative budget. Outcomes are bit-identical to running each phase
/// in a fresh engine, and to any shard count.
///
/// With a [`FaultPlan`](DistributedConfig::faults) attached the
/// pipeline is preceded by a detection phase on the faulty network
/// (reliable BFS + census convergecast), permanently crashed nodes and
/// anything they disconnect are excised, and the construction completes
/// on the survivors — see [`DegradedOutcome`].
///
/// # Errors
///
/// See [`DistributedError`].
pub fn distributed_shortcuts(
    graph: &Graph,
    partition: &Partition,
    cfg: &DistributedConfig,
) -> Result<DistributedOutcome, DistributedError> {
    if !is_connected(graph) {
        return Err(DistributedError::Disconnected);
    }
    match &cfg.faults {
        Some(plan) => degraded_shortcuts(graph, partition, cfg, plan),
        None => run_pipeline(graph, partition, cfg),
    }
}

/// The fault-free pipeline (Phases A and B of the module docs).
fn run_pipeline(
    graph: &Graph,
    partition: &Partition,
    cfg: &DistributedConfig,
) -> Result<DistributedOutcome, DistributedError> {
    let n = graph.n();
    let partition = Arc::new(partition.clone());
    let sim_cfg = SimConfig {
        seed: cfg.seed,
        shards: cfg.shards,
        ..SimConfig::default()
    };
    // One engine for the whole pipeline. The cumulative budget is a
    // generous runaway cap (real pipelines use a few thousand rounds);
    // per-phase limits below stay the binding constraint.
    let mut session = Session::new(graph, sim_cfg).with_round_budget(32_000_000);
    // Rounds charged by accounting arguments rather than executed in
    // the simulator (shared-randomness dissemination, neighbor
    // bookkeeping, in-tree rank broadcasts).
    let mut accounted_rounds = 0u64;

    // ---- Phase A: global BFS; learn n and ecc(root). -----------------
    let root: NodeId = 0;
    let bfs_out = session.run_labeled("A.bfs", Bfs::new(root))?;
    let global_pos = positions_from_tree(root, &bfs_out.parent, &bfs_out.children);
    let ecc = bfs_out.depth();
    // Convergecast n (Sum of 1) and ecc (Max of depth), both broadcast —
    // two independent aggregations over the same tree, so they share
    // rounds in one joined phase.
    {
        let ones = vec![1u64; n];
        let depths: Vec<u64> = bfs_out.dist.iter().map(|d| d.unwrap_or(0) as u64).collect();
        let ((res, _), (res2, _)) = session.join(
            TreeAggregate::new(global_pos.clone(), &ones, AggOp::Sum, true),
            TreeAggregate::new(global_pos.clone(), &depths, AggOp::Max, true),
        )?;
        debug_assert_eq!(res[root as usize], Some(n as u64));
        debug_assert_eq!(res2[root as usize], Some(ecc as u64));
    }
    // Shared-randomness dissemination cost: O(D + log n) (Ghaffari'15).
    accounted_rounds += ecc as u64 + ceil_log2(n) as u64;
    let shared_word = crate::sampling::splitmix64(cfg.seed ^ 0x5EED);

    // ---- Phase B: the guess ladder. -----------------------------------
    let ladder: Vec<u32> = match cfg.known_diameter {
        Some(d) => vec![d.max(3)],
        None => guess_ladder((2 * ecc).max(3)).collect(),
    };
    let mut guesses: Vec<GuessReport> = Vec::new();
    for &guess in &ladder {
        let params = KpParams::new(n, guess, cfg.prob_constant)?;
        let before_rounds = session.rounds_used() + accounted_rounds;
        let before_msgs = session.stats().messages;

        // B0: one round of neighbor bookkeeping (part-leader exchange).
        accounted_rounds += 1;

        // B1: truncated per-part BFS (parts disjoint: zero congestion).
        let part_arc = Arc::clone(&partition);
        let membership_parts = lcs_congest::Membership::func(move |u, v, inst| {
            part_arc.part_of(u) == Some(inst) && part_arc.part_of(v) == Some(inst)
        });
        let b1_spec = Arc::new(MultiBfsSpec {
            instances: (0..partition.num_parts())
                .map(|i| MultiBfsInstance {
                    root: partition.leader(i),
                    start_round: 0,
                    depth_limit: params.k_ceil,
                })
                .collect(),
            membership: membership_parts,
            queue_cap: 0,
        });
        let b1 = session.run_labeled(format!("B1.parts@{guess}"), MultiBfs::new(b1_spec))?;
        // Reach-bit exchange (1 round) + convergecast over truncated
        // trees (≤ k_ceil rounds) + rank broadcast later: counted below.
        accounted_rounds += 1;
        let is_large: Vec<bool> = (0..partition.num_parts())
            .map(|i| {
                partition
                    .part(i)
                    .iter()
                    .any(|&v| b1.reached[v as usize][i].is_none())
            })
            .collect();
        // Convergecast of the largeness bit over the truncated part
        // trees + broadcast back (simulated as a multi-aggregate over
        // the truncated trees).
        {
            let parts_b1 = participations_from_multibfs(graph, &b1, |v, inst| {
                u64::from(
                    partition.part_of(v) == Some(inst)
                        && b1.reached[v as usize][inst as usize].is_none(),
                )
            });
            session.run_labeled(
                format!("B1.largeness@{guess}"),
                MultiAggregate::new(parts_b1, AggOp::Max, true),
            )?;
        }

        // B2: prefix-number the large-part leaders over the global tree.
        let marked: Vec<bool> = (0..n)
            .map(|v| {
                partition.part_of(v as NodeId).is_some_and(|i| {
                    partition.leader(i as usize) == v as NodeId && is_large[i as usize]
                })
            })
            .collect();
        let (ranks, total_large, _) = session.run_labeled(
            format!("B2.ranks@{guess}"),
            PrefixNumber::new(global_pos.clone(), &marked),
        )?;
        let num_large = total_large as usize;
        // Rank broadcast within truncated part trees: ≤ k_ceil + 1.
        accounted_rounds += params.k_ceil as u64 + 1;

        // rank -> part index map (engine-side view of leader knowledge).
        let mut rank_part: Vec<usize> = vec![usize::MAX; num_large];
        let mut rank_leader: Vec<NodeId> = vec![0; num_large];
        for i in 0..partition.num_parts() {
            let leader = partition.leader(i);
            if let Some(r) = ranks[leader as usize] {
                rank_part[r as usize] = i;
                rank_leader[r as usize] = leader;
            }
        }

        // B3: sampling (local PRF) + N'' parallel truncated BFS.
        let oracle = SampleOracle::new(cfg.seed, params.p, params.reps);
        let phase_len = ceil_log2(n) as u64;
        let instances: Vec<MultiBfsInstance> = (0..num_large)
            .map(|r| MultiBfsInstance {
                root: rank_leader[r],
                start_round: shared_delay(shared_word, r as u32, params.k_ceil as u64) * phase_len,
                depth_limit: params.depth_limit(),
            })
            .collect();
        let part_arc = Arc::clone(&partition);
        let rank_part_arc = Arc::new(rank_part.clone());
        let rank_leader_arc = Arc::new(rank_leader.clone());
        let reps = params.reps;
        let membership_aug = lcs_congest::Membership::func(move |u, v, inst| {
            let pi = rank_part_arc[inst as usize] as u32;
            if part_arc.part_of(u) == Some(pi) || part_arc.part_of(v) == Some(pi) {
                return true; // Step 1 edges
            }
            let leader = rank_leader_arc[inst as usize];
            (0..reps).any(|r| oracle.sampled_by(u, v, leader, r))
        });
        let queue_cap = if cfg.queue_cap_factor <= 0.0 {
            0
        } else {
            (params.congestion_bound() as f64 * cfg.queue_cap_factor).ceil() as usize
        };
        let b3_spec = Arc::new(MultiBfsSpec {
            instances,
            membership: membership_aug,
            queue_cap,
        });
        let b3_seed = cfg.seed ^ guess as u64;
        let b3_max_rounds = (params.round_budget() * 8).max(10_000);
        let b3 = match session.run_configured(
            format!("B3.parallel_bfs@{guess}"),
            MultiBfs::new(b3_spec),
            |c| {
                c.seed = b3_seed;
                c.max_rounds = b3_max_rounds;
            },
        ) {
            Ok(out) => out,
            Err(SimError::RoundLimitExceeded { .. }) => {
                // Budget exhausted: the guess fails; try the next one.
                // The session charged the aborted phase at its cap, so
                // `rounds_used` already reflects it.
                guesses.push(GuessReport {
                    guess,
                    accepted: false,
                    overflowed: true,
                    rounds: session.rounds_used() + accounted_rounds - before_rounds,
                    messages: session.stats().messages - before_msgs,
                    num_large,
                    max_queue: 0,
                });
                continue;
            }
            Err(e) => return Err(e.into()),
        };

        // B4: verification. satisfied(u) = not in a part, or part
        // small, or reached by the instance rooted at u's leader.
        let satisfied = |v: NodeId| -> bool {
            let Some(pi) = partition.part_of(v) else {
                return true;
            };
            if !is_large[pi as usize] {
                return true;
            }
            let leader = partition.leader(pi as usize);
            b3.reached[v as usize]
                .iter()
                .flatten()
                .any(|r| r.root == leader)
        };
        let all_ok = (0..n as u32).all(satisfied) && !b3.overflowed;
        // Global AND convergecast + broadcast of the decision.
        {
            let values: Vec<u64> = (0..n as u32).map(|v| u64::from(satisfied(v))).collect();
            session.run_labeled(
                format!("B4.verify@{guess}"),
                TreeAggregate::new(global_pos.clone(), &values, AggOp::Min, true),
            )?;
        }
        guesses.push(GuessReport {
            guess,
            accepted: all_ok,
            overflowed: b3.overflowed,
            rounds: session.rounds_used() + accounted_rounds - before_rounds,
            messages: session.stats().messages - before_msgs,
            num_large,
            max_queue: b3.max_queue,
        });

        if !all_ok {
            continue;
        }

        // Extract the tree shortcuts: parent edges of each instance.
        let mut per_part: Vec<Vec<EdgeId>> = vec![Vec::new(); partition.num_parts()];
        for v in 0..n {
            for (inst, r) in b3.reached[v].iter().enumerate() {
                let Some(r) = r else { continue };
                if let Some(p) = r.parent {
                    let e = graph
                        .edge_between(v as NodeId, p)
                        .expect("tree edge exists");
                    per_part[rank_part[inst]].push(e);
                }
            }
        }
        return Ok(DistributedOutcome {
            shortcuts: ShortcutSet::from_edge_lists(per_part),
            is_large,
            accepted_guess: guess,
            params,
            total_rounds: session.rounds_used() + accounted_rounds,
            total_messages: session.stats().messages,
            guesses,
            stats: session.stats().clone(),
            phase_stats: session.phases().to_vec(),
            degraded: None,
        });
    }
    Err(DistributedError::NoGuessAccepted { tried: ladder })
}

/// Fault-tolerant wrapper: detect crash-stops on the faulty network,
/// excise the dead, and run the pipeline on the survivors.
///
/// Detection executes over [`Reliable`](lcs_congest::Reliable) links under the plan — a BFS
/// from node 0 (its reach IS the surviving component) followed by a
/// census convergecast over the BFS tree (the root learns the survivor
/// count; `count < n` is the detection signal). The remaining phases
/// then run on the excised subgraph over the same reliable transport;
/// since [`Reliable`](lcs_congest::Reliable) makes their outputs byte-identical to fault-free
/// runs (a tier-1 property of `lcs-congest`), they are simulated
/// fault-free, and only the detection overhead is charged as
/// [`DegradedOutcome::extra_rounds`].
fn degraded_shortcuts(
    graph: &Graph,
    partition: &Partition,
    cfg: &DistributedConfig,
    plan: &FaultPlan,
) -> Result<DistributedOutcome, DistributedError> {
    let exc = detect_and_excise(graph, plan, cfg.seed, cfg.shards)?;
    let sub_cfg = DistributedConfig {
        faults: None,
        ..cfg.clone()
    };

    if exc.is_trivial() {
        // Nothing crash-stopped: drops/delays were absorbed by the
        // reliable layer; the pipeline runs on the whole graph.
        let mut out = run_pipeline(graph, partition, &sub_cfg)?;
        out.total_rounds += exc.extra_rounds;
        out.total_messages += exc.messages;
        let mut phases = exc.phase_stats.clone();
        phases.extend(out.phase_stats);
        out.phase_stats = phases;
        out.degraded = Some(exc.outcome());
        return Ok(out);
    }

    // ---- Excision, then the pipeline proper on the survivors. --------
    let sub_g = exc.induced_graph(graph);
    let (sub_partition, sub_to_orig_part) = exc.split_partition(&sub_g, partition);
    let sub = run_pipeline(&sub_g, &sub_partition, &sub_cfg)?;

    // Map the result back to the original graph's ids.
    let mut per_part: Vec<Vec<EdgeId>> = vec![Vec::new(); partition.num_parts()];
    let mut is_large = vec![false; partition.num_parts()];
    for (si, &oi) in sub_to_orig_part.iter().enumerate() {
        is_large[oi] |= sub.is_large[si];
        for &e in sub.shortcuts.edges(si) {
            per_part[oi].push(exc.original_edge(graph, &sub_g, e));
        }
    }
    let sub_phase_stats = sub.phase_stats;
    let mut phase_stats = exc.phase_stats.clone();
    phase_stats.extend(sub_phase_stats);
    Ok(DistributedOutcome {
        shortcuts: ShortcutSet::from_edge_lists(per_part),
        is_large,
        accepted_guess: sub.accepted_guess,
        params: sub.params,
        total_rounds: sub.total_rounds + exc.extra_rounds,
        total_messages: sub.total_messages + exc.messages,
        guesses: sub.guesses,
        stats: sub.stats,
        phase_stats,
        degraded: Some(exc.outcome()),
    })
}

/// Builds multi-aggregate participations from a multi-BFS outcome
/// (instance trees = the BFS trees it grew).
fn participations_from_multibfs(
    graph: &Graph,
    out: &lcs_congest::MultiBfsOutcome,
    value: impl Fn(NodeId, u32) -> u64,
) -> Vec<Vec<Participation>> {
    (0..graph.n())
        .map(|v| {
            out.reached[v]
                .iter()
                .enumerate()
                .filter_map(|(inst, r)| {
                    r.as_ref().map(|r| Participation {
                        inst: inst as u32,
                        parent: r.parent,
                        children: out.children[v][inst].clone(),
                        value: value(v as NodeId, inst as u32),
                    })
                })
                .collect()
        })
        .collect()
}

/// Positions helper re-exported for applications that reuse the global
/// tree (e.g. MST phases).
pub fn global_tree_positions(
    graph: &Graph,
    root: NodeId,
    sim_cfg: &SimConfig,
) -> Result<(Vec<TreePosition>, RunStats), SimError> {
    let out = Session::new(graph, sim_cfg.clone()).run(Bfs::new(root))?;
    Ok((
        positions_from_tree(root, &out.parent, &out.children),
        out.stats,
    ))
}

/// Reference table for debugging: which part each instance rank maps to.
pub fn rank_map(partition: &Partition, is_large: &[bool]) -> HashMap<u32, usize> {
    let mut rank = 0u32;
    let mut map = HashMap::new();
    for (i, &large) in is_large.iter().enumerate().take(partition.num_parts()) {
        if large {
            map.insert(rank, i);
            rank += 1;
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::{centralized_shortcuts, LargenessRule as LR, OracleMode};
    use lcs_graph::{HighwayGraph, HighwayParams};
    use lcs_shortcut::{measure_quality, verify, DilationMode};

    fn fixture(d: u32, paths: usize, len: usize) -> (Graph, Partition) {
        let hw = HighwayGraph::new(HighwayParams {
            num_paths: paths,
            path_len: len,
            diameter: d,
        })
        .unwrap();
        (hw.graph().clone(), {
            let g = hw.graph();
            Partition::new(g, hw.path_parts()).unwrap()
        })
    }

    #[test]
    fn distributed_construction_verifies_on_highway_d4() {
        let (g, p) = fixture(4, 4, 30);
        let cfg = DistributedConfig {
            known_diameter: Some(4),
            ..DistributedConfig::default()
        };
        let out = distributed_shortcuts(&g, &p, &cfg).unwrap();
        assert_eq!(out.accepted_guess, 4);
        assert!(out.is_large.iter().all(|&l| l), "long paths are large");
        // The shortcut set is valid and meets the paper's bounds.
        let report = verify(&g, &p, &out.shortcuts, None, DilationMode::Exact).unwrap();
        assert!(
            (report.quality.dilation as u64) <= 2 * out.params.depth_limit() as u64,
            "dilation {}",
            report.quality.dilation
        );
        assert!(
            (report.quality.congestion as u64) <= out.params.congestion_bound(),
            "congestion {}",
            report.quality.congestion
        );
        assert!(out.total_rounds > 0 && out.total_messages > 0);
    }

    #[test]
    fn guess_ladder_reaches_acceptance() {
        let (g, p) = fixture(4, 3, 24);
        let cfg = DistributedConfig::default(); // unknown diameter
        let out = distributed_shortcuts(&g, &p, &cfg).unwrap();
        assert!(!out.guesses.is_empty());
        assert!(out.guesses.last().unwrap().accepted);
        // Ladder begins at max(3, ecc(0)/…): earlier guesses may fail,
        // later ones should be recorded in order.
        let tried: Vec<u32> = out.guesses.iter().map(|g| g.guess).collect();
        assert!(tried.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn distributed_rounds_within_budget() {
        let (g, p) = fixture(4, 4, 30);
        let cfg = DistributedConfig {
            known_diameter: Some(4),
            ..DistributedConfig::default()
        };
        let out = distributed_shortcuts(&g, &p, &cfg).unwrap();
        // Õ(k_D) budget with our explicit constants.
        assert!(
            out.total_rounds <= out.params.round_budget() * 2,
            "rounds {} vs budget {}",
            out.total_rounds,
            out.params.round_budget()
        );
    }

    #[test]
    fn matches_centralized_quality_scale() {
        let (g, p) = fixture(4, 4, 30);
        let cfg = DistributedConfig {
            known_diameter: Some(4),
            seed: 42,
            ..DistributedConfig::default()
        };
        let dist = distributed_shortcuts(&g, &p, &cfg).unwrap();
        let central =
            centralized_shortcuts(&g, &p, dist.params, 42, LR::Radius, OracleMode::PerPart);
        let dq = measure_quality(&g, &p, &dist.shortcuts, DilationMode::Exact).quality;
        let cq = measure_quality(&g, &p, &central.shortcuts, DilationMode::Exact).quality;
        // The distributed trees are prunings of (directionally
        // restricted) centralized shortcut sets with the same coins:
        // congestion can only be smaller; dilation within ~2x of the
        // raw centralized one (tree detour through the leader).
        assert!(dq.congestion <= cq.congestion);
        assert!(dq.dilation as u64 <= 4 * (cq.dilation as u64).max(1));
        assert_eq!(dist.is_large, central.is_large);
    }

    #[test]
    fn small_parts_need_no_instances() {
        // Parts shorter than k: nothing to do, zero large parts.
        let (g, _) = fixture(4, 3, 24);
        let tiny_parts: Vec<Vec<NodeId>> = vec![vec![0, 1], vec![5, 6]];
        let p = Partition::new(&g, tiny_parts).unwrap();
        let cfg = DistributedConfig {
            known_diameter: Some(4),
            ..DistributedConfig::default()
        };
        let out = distributed_shortcuts(&g, &p, &cfg).unwrap();
        assert!(out.is_large.iter().all(|&l| !l));
        assert_eq!(out.shortcuts.total_edges(), 0);
        assert!(out.guesses[0].accepted);
        assert_eq!(out.guesses[0].num_large, 0);
    }

    #[test]
    fn disconnected_graph_rejected() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let p = Partition::new(&g, vec![vec![0, 1]]).unwrap();
        let err = distributed_shortcuts(&g, &p, &DistributedConfig::default()).unwrap_err();
        assert_eq!(err, DistributedError::Disconnected);
    }

    #[test]
    fn deterministic_given_seed() {
        let (g, p) = fixture(4, 3, 24);
        let cfg = DistributedConfig {
            known_diameter: Some(4),
            seed: 7,
            ..DistributedConfig::default()
        };
        let a = distributed_shortcuts(&g, &p, &cfg).unwrap();
        let b = distributed_shortcuts(&g, &p, &cfg).unwrap();
        assert_eq!(a.shortcuts, b.shortcuts);
        assert_eq!(a.total_rounds, b.total_rounds);
    }

    #[test]
    fn sharded_construction_is_bit_identical() {
        // End-to-end determinism contract of the worker pool: the whole
        // multi-phase construction — every phase a separate pooled
        // simulator run — is byte-equal to the sequential engine, for
        // even, odd, and oversubscribed shard counts.
        let (g, p) = fixture(4, 3, 24);
        let mk = |shards| DistributedConfig {
            known_diameter: Some(4),
            seed: 7,
            shards,
            ..DistributedConfig::default()
        };
        let seq = distributed_shortcuts(&g, &p, &mk(1)).unwrap();
        assert!(
            seq.phase_stats.len() >= 5,
            "the pipeline reports its phases"
        );
        for shards in [2, 3, 5, 8] {
            let par = distributed_shortcuts(&g, &p, &mk(shards)).unwrap();
            assert_eq!(par.shortcuts, seq.shortcuts, "shards={shards}");
            assert_eq!(par.total_rounds, seq.total_rounds);
            assert_eq!(par.stats, seq.stats);
            // The per-phase session breakdown — labels, rounds,
            // messages, per-edge histograms — must match too, not just
            // the cumulative totals.
            assert_eq!(par.phase_stats, seq.phase_stats, "shards={shards}");
            assert_eq!(
                par.stats.fingerprint(),
                seq.stats.fingerprint(),
                "shards={shards}"
            );
        }
    }

    #[test]
    fn degraded_construction_excises_crashed_part() {
        use lcs_congest::Crash;
        // Crash every node of one path-part at round 0, under drops and
        // delays too; the construction must excise it and verify
        // shortcuts for the surviving parts.
        let (g, p) = fixture(4, 4, 30);
        let mut dead_part: Vec<NodeId> = p.part(1).to_vec();
        dead_part.sort_unstable();
        assert!(!dead_part.contains(&0), "node 0 must survive");
        let cfg = DistributedConfig {
            known_diameter: Some(4),
            faults: Some(FaultPlan {
                drop_rate: 0.05,
                delay_rate: 0.05,
                max_delay: 2,
                crashes: dead_part
                    .iter()
                    .map(|&v| Crash {
                        node: v,
                        at_round: 0,
                        recover_at: None,
                    })
                    .collect(),
                corrupt_rate: 0.0,
                fault_seed: 0xDEAD,
            }),
            ..DistributedConfig::default()
        };
        let out = distributed_shortcuts(&g, &p, &cfg).unwrap();
        let deg = out
            .degraded
            .as_ref()
            .expect("faulty run reports degradation");
        assert!(deg.completed);
        assert_eq!(deg.excluded_nodes, dead_part);
        assert!(deg.extra_rounds > 0);
        // The dead part got no shortcuts; surviving large parts did.
        assert!(out.shortcuts.edges(1).is_empty());
        assert!(!out.is_large[1], "a dead part cannot be large");
        for i in [0usize, 2, 3] {
            assert!(out.is_large[i], "surviving long path {i} is large");
            assert!(!out.shortcuts.edges(i).is_empty());
        }
        // No shortcut edge touches a dead node.
        for i in 0..out.shortcuts.num_parts() {
            for &e in out.shortcuts.edges(i) {
                let (a, b) = g.edge_endpoints(e);
                assert!(!dead_part.contains(&a) && !dead_part.contains(&b));
            }
        }
        // Detection phases are first in the per-phase breakdown.
        assert!(out.phase_stats[0].label.starts_with("F.detect"));
    }

    #[test]
    fn degraded_construction_without_crashes_matches_fault_free() {
        let (g, p) = fixture(4, 3, 24);
        let clean = distributed_shortcuts(
            &g,
            &p,
            &DistributedConfig {
                known_diameter: Some(4),
                ..DistributedConfig::default()
            },
        )
        .unwrap();
        let cfg = DistributedConfig {
            known_diameter: Some(4),
            faults: Some(FaultPlan {
                drop_rate: 0.10,
                delay_rate: 0.10,
                max_delay: 2,
                corrupt_rate: 0.05,
                crashes: vec![],
                fault_seed: 21,
            }),
            ..DistributedConfig::default()
        };
        let out = distributed_shortcuts(&g, &p, &cfg).unwrap();
        assert_eq!(out.shortcuts, clean.shortcuts, "reliability is exact");
        assert_eq!(out.is_large, clean.is_large);
        let deg = out.degraded.unwrap();
        assert!(deg.completed && deg.excluded_nodes.is_empty());
        assert!(
            out.total_rounds > clean.total_rounds,
            "detection is charged"
        );
    }

    #[test]
    fn congestion_enforcement_can_reject() {
        // Absurdly small queue cap forces overflow and rejection at the
        // first guess; the ladder should still eventually accept (or
        // report the failure honestly).
        let (g, p) = fixture(4, 4, 30);
        let cfg = DistributedConfig {
            known_diameter: Some(4),
            queue_cap_factor: 0.001,
            ..DistributedConfig::default()
        };
        match distributed_shortcuts(&g, &p, &cfg) {
            Ok(out) => {
                // If it somehow still spans, fine — but overflow must be
                // reported in the guess diagnostics.
                assert!(out.guesses.iter().any(|g| g.overflowed || g.accepted));
            }
            Err(DistributedError::NoGuessAccepted { tried }) => {
                assert_eq!(tried, vec![4]);
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }
}

#[cfg(test)]
mod helper_tests {
    use super::*;
    use lcs_graph::generators::grid;

    #[test]
    fn rank_map_orders_large_parts() {
        let g = grid(4, 4);
        let p = Partition::new(&g, vec![vec![0, 1], vec![4, 5], vec![10, 11]]).unwrap();
        let m = rank_map(&p, &[true, false, true]);
        assert_eq!(m.len(), 2);
        assert_eq!(m[&0], 0);
        assert_eq!(m[&1], 2);
    }

    #[test]
    fn global_tree_positions_build() {
        let g = grid(3, 3);
        let (pos, stats) = global_tree_positions(&g, 4, &SimConfig::default()).unwrap();
        assert!(pos[4].is_root);
        assert!(pos.iter().all(|p| p.in_tree));
        assert!(stats.rounds > 0);
        // Every non-root has a parent; children lists mirror parents.
        for (v, p) in pos.iter().enumerate() {
            if let Some(par) = p.parent {
                assert!(pos[par as usize].children.contains(&(v as NodeId)));
            } else {
                assert!(p.is_root);
            }
        }
    }
}
