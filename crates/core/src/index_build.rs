//! Builder → [`ShortcutIndex`] adapters: freeze any registered
//! [`ShortcutBuilder`] backend's construction — or the full distributed
//! pipeline — into the service-layer artifact that `lcs-serve` answers
//! queries from.
//!
//! Two entry points:
//!
//! * [`build_index`] runs a centralized backend (anything implementing
//!   the registry trait) under a seeded ChaCha8 stream, exactly like a
//!   quality-bench cell, and freezes the result;
//! * [`build_index_distributed`] runs [`distributed_shortcuts`] — the
//!   one-shot CONGEST pipeline — and freezes *its* shortcut set, so an
//!   index-served answer is byte-identical to what the one-shot
//!   pipeline would have computed at the same seed and shard count
//!   (the differential suite in `lcs-serve` holds this).

use crate::distributed::{
    distributed_shortcuts, DistributedConfig, DistributedError, DistributedOutcome,
};
use lcs_graph::{Graph, WeightedGraph};
use lcs_shortcut::{IndexMeta, Partition, Quality, ShortcutBuilder, ShortcutIndex};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration for [`build_index`].
#[derive(Debug, Clone, Copy)]
pub struct IndexBuildConfig {
    /// Seed of the backend's RNG stream (recorded in the index meta).
    pub seed: u64,
    /// Diameter to record in the meta (`None` = unrecorded).
    pub diameter: Option<u32>,
}

impl Default for IndexBuildConfig {
    fn default() -> Self {
        IndexBuildConfig {
            seed: 0xFACE,
            diameter: None,
        }
    }
}

/// Builds a [`ShortcutIndex`] by running `backend` once on
/// `(graph, partition)` under a ChaCha8 stream seeded with `cfg.seed`
/// — the same discipline as a quality-bench cell, so the frozen
/// shortcut set equals what [`ShortcutBuilder::build`] returns for
/// that seed, bit for bit. The backend's declared bound (when present)
/// is recorded as the index certificate.
pub fn build_index(
    wg: &WeightedGraph,
    partition: &Partition,
    backend: &dyn ShortcutBuilder,
    cfg: &IndexBuildConfig,
) -> ShortcutIndex {
    let graph = wg.graph();
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let shortcuts = backend.build(graph, partition, &mut rng);
    let certificate = backend.declared_bound(graph, partition);
    let meta = IndexMeta {
        backend: backend.name().to_string(),
        params: backend
            .params()
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
        seed: cfg.seed,
        certificate,
        diameter: cfg.diameter,
    };
    ShortcutIndex::freeze(
        graph.clone(),
        wg.weights().to_vec(),
        partition.clone(),
        shortcuts,
        meta,
    )
}

/// Runs the full distributed Kogan–Parter pipeline
/// ([`distributed_shortcuts`]) and freezes its verified shortcut set
/// into an index. The returned [`DistributedOutcome`] carries the
/// construction's own accounting (rounds, messages, guess ladder);
/// the index records the accepted guess as its diameter and the
/// accepted parameters' bounds as its certificate.
///
/// # Errors
///
/// Propagates [`DistributedError`] from the pipeline.
pub fn build_index_distributed(
    graph: &Graph,
    weights: &[u64],
    partition: &Partition,
    cfg: &DistributedConfig,
) -> Result<(ShortcutIndex, DistributedOutcome), DistributedError> {
    let outcome = distributed_shortcuts(graph, partition, cfg)?;
    let clamp = |b: u64| b.min(u32::MAX as u64) as u32;
    let meta = IndexMeta {
        backend: "kogan_parter_distributed".to_string(),
        params: vec![
            (
                "prob_constant".to_string(),
                format!("{}", cfg.prob_constant),
            ),
            (
                "known_diameter".to_string(),
                cfg.known_diameter
                    .map_or_else(|| "guessed".to_string(), |d| d.to_string()),
            ),
            (
                "queue_cap_factor".to_string(),
                format!("{}", cfg.queue_cap_factor),
            ),
        ],
        seed: cfg.seed,
        certificate: Some(Quality {
            congestion: clamp(outcome.params.congestion_bound()),
            dilation: clamp(outcome.params.dilation_bound()),
        }),
        diameter: Some(outcome.accepted_guess),
    };
    let index = ShortcutIndex::freeze(
        graph.clone(),
        weights.to_vec(),
        partition.clone(),
        outcome.shortcuts.clone(),
        meta,
    );
    Ok((index, outcome))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::KoganParter;
    use lcs_graph::{HighwayGraph, HighwayParams};
    use rand::SeedableRng;

    fn fixture() -> (WeightedGraph, Partition) {
        let hw = HighwayGraph::new(HighwayParams {
            num_paths: 3,
            path_len: 14,
            diameter: 4,
        })
        .unwrap();
        let g = hw.graph().clone();
        let p = Partition::new(&g, hw.path_parts()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        (WeightedGraph::with_random_weights(g, 100, &mut rng), p)
    }

    #[test]
    fn backend_index_freezes_the_backend_build() {
        let (wg, p) = fixture();
        let backend = KoganParter {
            diameter: Some(4),
            ..KoganParter::default()
        };
        let cfg = IndexBuildConfig {
            seed: 0xABCD,
            diameter: Some(4),
        };
        let idx = build_index(&wg, &p, &backend, &cfg);
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let fresh = backend.build(wg.graph(), &p, &mut rng);
        assert_eq!(idx.shortcuts(), &fresh);
        assert_eq!(idx.meta().backend, "kogan_parter");
        assert_eq!(idx.meta().seed, 0xABCD);
        assert_eq!(idx.meta().diameter, Some(4));
        assert_eq!(
            idx.meta().certificate,
            backend.declared_bound(wg.graph(), &p)
        );
    }

    #[test]
    fn distributed_index_freezes_the_pipeline_output() {
        let (wg, p) = fixture();
        let cfg = DistributedConfig {
            known_diameter: Some(4),
            ..DistributedConfig::default()
        };
        let (idx, outcome) = build_index_distributed(wg.graph(), wg.weights(), &p, &cfg).unwrap();
        assert_eq!(idx.shortcuts(), &outcome.shortcuts);
        assert_eq!(idx.meta().diameter, Some(outcome.accepted_guess));
        assert_eq!(idx.meta().backend, "kogan_parter_distributed");
        // Round-trips through the on-disk format.
        let back = ShortcutIndex::from_bytes(&idx.to_bytes()).unwrap();
        assert_eq!(back, idx);
    }
}
