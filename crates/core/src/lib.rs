//! # lcs-core
//!
//! The Kogan–Parter low-congestion shortcut construction for constant
//! diameter graphs (PODC 2021), in every execution mode:
//!
//! * [`centralized`] — the §2 sampling construction (raw `H_i` sets and
//!   their BFS-tree prunings);
//! * [`distributed`] — the full CONGEST protocol on the `lcs-congest`
//!   simulator, including the unknown-diameter guess ladder;
//! * [`degrade`] — the detect-and-excise machinery shared by every
//!   fault-tolerant pipeline (here and in `lcs-apps`);
//! * [`odd`] — the §3.2 odd-diameter reduction by edge subdivision;
//! * [`shortcut_tree`] — the §3.1 analysis machinery (auxiliary layered
//!   graphs, sampled forests, (i,k) walks), made executable;
//! * [`dilation`] — empirical Lemma 3.5 / Theorem 3.1 certification;
//! * [`params`] / [`sampling`] — `k_D`, `N`, `p`, and the PRF coins
//!   shared by all modes.
//!
//! ## Quick example
//!
//! ```
//! use lcs_graph::{HighwayGraph, HighwayParams};
//! use lcs_shortcut::{measure_quality, DilationMode, Partition};
//! use lcs_core::{centralized_shortcuts, KpParams, LargenessRule, OracleMode};
//!
//! let hw = HighwayGraph::new(HighwayParams {
//!     num_paths: 4, path_len: 30, diameter: 4,
//! }).unwrap();
//! let g = hw.graph();
//! let parts = Partition::new(g, hw.path_parts()).unwrap();
//! let params = KpParams::new(g.n(), 4, 1.0).unwrap();
//! let out = centralized_shortcuts(g, &parts, params, 7,
//!     LargenessRule::Radius, OracleMode::PerPart);
//! let q = measure_quality(g, &parts, &out.shortcuts, DilationMode::Exact).quality;
//! assert!((q.dilation as u64) <= params.dilation_bound());
//! ```

#![warn(missing_docs)]

pub mod backend;
pub mod builder;
pub mod centralized;
pub mod degrade;
pub mod dilation;
pub mod distributed;
pub mod index_build;
pub mod odd;
pub mod params;
pub mod sampling;
pub mod shortcut_tree;
pub mod streaming;

pub use backend::KoganParter;
pub use builder::{BuildError, BuiltShortcuts, ShortcutBuilder, Variant};
pub use centralized::{
    centralized_shortcuts, classify_large, large_part_leaders, prune_to_trees,
    CentralizedShortcuts, LargenessRule, OracleMode, PrunedShortcuts,
};
pub use degrade::{detect_and_excise, DegradedOutcome, Excision};
pub use dilation::{certify_part, dilation_trace, DilationTrace, Trichotomy};
pub use distributed::{
    distributed_shortcuts, DistributedConfig, DistributedError, DistributedOutcome, GuessReport,
};
pub use index_build::{build_index, build_index_distributed, IndexBuildConfig};
pub use odd::{odd_shortcuts_subdivision, shared_delay, subdivide, OddStrategy};
pub use params::{guess_ladder, k_d, KpParams, ParamError};
pub use sampling::{splitmix64, SampleOracle};
pub use shortcut_tree::{ShortcutTree, ShortcutTreeError, WalkEnd, WalkMeasurement};
pub use streaming::{streamed_quality, StreamedQuality};
