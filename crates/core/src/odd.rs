//! Odd-diameter handling (§3.2 of the paper).
//!
//! For odd `D` the paper subdivides every edge `e = (u, v)` with a dummy
//! node `x_e`, making the diameter even (`D' = 2D`), runs the sampling
//! with per-half probability `√p`, and keeps `e` in `H_i` exactly when
//! *both* halves `(u, x_e)` and `(x_e, v)` were sampled — probability
//! `(√p)² = p` per repetition, so the projected construction has the
//! same edge marginals as the even case while the analysis can walk the
//! even-diameter subdivision.
//!
//! We implement both:
//! * [`OddStrategy::Subdivision`] — the paper's reduction, literally;
//! * [`OddStrategy::Direct`] — run the even-case sampling formulas with
//!   the odd `D` (all parameter formulas are well-defined for odd `D`);
//!   the ablation experiment (E10) compares the two.

use crate::centralized::{classify_large, CentralizedShortcuts, LargenessRule};
use crate::params::KpParams;
use crate::sampling::{splitmix64, SampleOracle};
use lcs_graph::{EdgeId, Graph, GraphBuilder, NodeId};
use lcs_shortcut::{Partition, ShortcutSet};

/// Which odd-diameter construction to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OddStrategy {
    /// Edge subdivision with `√p` per-half sampling (paper, §3.2).
    Subdivision,
    /// Even-case code path with odd `D` plugged into the formulas.
    Direct,
}

/// Subdivides every edge of `g`: node `n + e` is the dummy midpoint of
/// edge `e`. Returns the subdivided graph (diameter exactly doubles for
/// any graph with at least one edge).
pub fn subdivide(g: &Graph) -> Graph {
    let n = g.n();
    let mut b = GraphBuilder::new(n + g.m());
    for e in g.edge_ids() {
        let (u, v) = g.edge_endpoints(e);
        let x = (n + e.index()) as NodeId;
        b.add_edge(u, x);
        b.add_edge(x, v);
    }
    b.build().expect("subdivision is simple")
}

/// The subdivision-based odd-`D` construction, projected back to `G`.
///
/// Sampling coins live on edge halves: half `h ∈ {0, 1}` of edge `e` for
/// instance `leader` at repetition `rep` is sampled with probability
/// `√p`; the edge joins `H_i` when both halves succeed in the same
/// repetition. Step 1 (edges incident to the part) is taken with
/// probability 1, as in the even case.
pub fn odd_shortcuts_subdivision(
    graph: &Graph,
    partition: &Partition,
    params: KpParams,
    seed: u64,
    rule: LargenessRule,
) -> CentralizedShortcuts {
    assert!(params.d % 2 == 1, "subdivision strategy targets odd D");
    let sqrt_p = params.p.sqrt();
    let half_oracle = SampleOracle::new(seed ^ 0x0DD0_0DD0, sqrt_p, params.reps);
    let is_large = classify_large(graph, partition, params.k_ceil, rule);
    let mut per_part: Vec<Vec<EdgeId>> = vec![Vec::new(); partition.num_parts()];
    for i in 0..partition.num_parts() {
        if !is_large[i] {
            continue;
        }
        let leader = partition.leader(i);
        // Step 1.
        for &v in partition.part(i) {
            for (_, e) in graph.neighbors_with_edges(v) {
                per_part[i].push(e);
            }
        }
        // Step 2 on halves: key halves by synthetic endpoint ids so the
        // oracle's (sampler, head) key distinguishes them.
        for e in graph.edge_ids() {
            let (u, v) = graph.edge_endpoints(e);
            if partition.part_of(u) == Some(i as u32) || partition.part_of(v) == Some(i as u32) {
                continue; // already added by Step 1
            }
            let x = (graph.n() + e.index()) as NodeId;
            for rep in 0..params.reps {
                let first = half_oracle.sampled_by(u, x, leader, rep);
                let second = half_oracle.sampled_by(x, v, leader, rep);
                if first && second {
                    per_part[i].push(e);
                    break;
                }
            }
        }
    }
    CentralizedShortcuts {
        shortcuts: ShortcutSet::from_edge_lists(per_part),
        is_large,
        params,
        oracle: half_oracle,
    }
}

/// Deterministic start-delay helper shared with the distributed layer:
/// pseudo-random delay in `[0, range)` for instance `inst` derived from
/// a shared-randomness word.
pub fn shared_delay(shared_word: u64, inst: u32, range: u64) -> u64 {
    if range == 0 {
        return 0;
    }
    splitmix64(shared_word ^ ((inst as u64 + 1) << 17)) % range
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::{centralized_shortcuts, OracleMode};
    use lcs_graph::{exact_diameter, HighwayGraph, HighwayParams};
    use lcs_shortcut::{measure_quality, DilationMode};

    #[test]
    fn subdivision_doubles_diameter() {
        let hw = HighwayGraph::new(HighwayParams {
            num_paths: 2,
            path_len: 10,
            diameter: 5,
        })
        .unwrap();
        let g2 = subdivide(hw.graph());
        assert_eq!(g2.n(), hw.graph().n() + hw.graph().m());
        assert_eq!(g2.m(), 2 * hw.graph().m());
        // Node-to-node distances exactly double; midpoint-to-midpoint
        // pairs can add 2 more, so diam(G') ∈ {2D, 2D+2} (the paper's
        // "D' = 2D" refers to the doubled node distances).
        let d2 = exact_diameter(&g2).unwrap();
        assert!(d2 == 10 || d2 == 12, "subdivided diameter {d2}");
        assert_eq!(d2 % 2, 0);
    }

    #[test]
    fn subdivision_strategy_meets_bounds_for_d5() {
        let hw = HighwayGraph::new(HighwayParams {
            num_paths: 4,
            path_len: 36,
            diameter: 5,
        })
        .unwrap();
        let g = hw.graph();
        let p = Partition::new(g, hw.path_parts()).unwrap();
        let params = KpParams::new(g.n(), 5, 1.0).unwrap();
        let out = odd_shortcuts_subdivision(g, &p, params, 9, LargenessRule::Radius);
        let report = measure_quality(g, &p, &out.shortcuts, DilationMode::Exact);
        assert!(
            (report.quality.dilation as u64) <= params.dilation_bound(),
            "dilation {} vs {}",
            report.quality.dilation,
            params.dilation_bound()
        );
        assert!(
            (report.quality.congestion as u64) <= params.congestion_bound(),
            "congestion {} vs {}",
            report.quality.congestion,
            params.congestion_bound()
        );
    }

    #[test]
    fn direct_and_subdivision_have_comparable_volume() {
        let hw = HighwayGraph::new(HighwayParams {
            num_paths: 4,
            path_len: 36,
            diameter: 5,
        })
        .unwrap();
        let g = hw.graph();
        let p = Partition::new(g, hw.path_parts()).unwrap();
        let params = KpParams::new(g.n(), 5, 1.0).unwrap();
        let sub = odd_shortcuts_subdivision(g, &p, params, 13, LargenessRule::Radius);
        let dir = centralized_shortcuts(
            g,
            &p,
            params,
            13,
            LargenessRule::Radius,
            OracleMode::PerPart,
        );
        let (a, b) = (
            sub.shortcuts.total_edges() as f64,
            dir.shortcuts.total_edges() as f64,
        );
        assert!(a > 0.0 && b > 0.0);
        assert!((a / b) < 2.0 && (b / a) < 2.0, "volumes {a} vs {b}");
    }

    #[test]
    fn subdivision_panics_on_even_d() {
        let hw = HighwayGraph::new(HighwayParams {
            num_paths: 2,
            path_len: 12,
            diameter: 4,
        })
        .unwrap();
        let g = hw.graph();
        let p = Partition::new(g, hw.path_parts()).unwrap();
        let params = KpParams::new(g.n(), 4, 1.0).unwrap();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            odd_shortcuts_subdivision(g, &p, params, 1, LargenessRule::Radius)
        }));
        assert!(r.is_err());
    }

    #[test]
    fn shared_delay_in_range_and_deterministic() {
        for inst in 0..100 {
            let d = shared_delay(42, inst, 16);
            assert!(d < 16);
            assert_eq!(d, shared_delay(42, inst, 16));
        }
        assert_eq!(shared_delay(1, 5, 0), 0);
        // Spread: not all delays identical.
        let delays: std::collections::HashSet<u64> =
            (0..32).map(|i| shared_delay(7, i, 16)).collect();
        assert!(delays.len() > 4);
    }
}
