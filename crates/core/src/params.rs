//! Parameters of the Kogan–Parter construction.
//!
//! For an `n`-node graph of diameter `D ≥ 3` the paper sets
//!
//! ```text
//! k_D = n^((D−2)/(2D−2))        (the quality target)
//! N   = ⌈n / k_D⌉              (max number of large parts)
//! p   = k_D·log n / N           (per-direction, per-repetition sampling
//!                                probability = log n · n^(−1/(D−1)))
//! ```
//!
//! with `D` independent repetitions of the sampling step. A part is
//! *small* when a depth-`k_D` BFS from its leader spans it; only the at
//! most `N` non-small parts receive shortcuts.

use lcs_congest::ceil_log2;
use std::fmt;

/// Error constructing [`KpParams`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamError {
    /// The construction needs `D ≥ 3` (D = 1 is the congested clique,
    /// D = 2 has its own `O(log n)` algorithms).
    DiameterTooSmall(u32),
    /// Graphs with fewer than 2 nodes need no shortcuts.
    GraphTooSmall(usize),
}

impl fmt::Display for ParamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamError::DiameterTooSmall(d) => {
                write!(f, "construction requires diameter >= 3, got {d}")
            }
            ParamError::GraphTooSmall(n) => write!(f, "graph with {n} nodes needs no shortcuts"),
        }
    }
}

impl std::error::Error for ParamError {}

/// Resolved parameters for one (n, D) instance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KpParams {
    /// Number of nodes.
    pub n: usize,
    /// Diameter (or current diameter guess).
    pub d: u32,
    /// `k_D` as a real number.
    pub k: f64,
    /// `⌈k_D⌉`, the radius threshold for largeness.
    pub k_ceil: u32,
    /// `N = ⌈n / k_D⌉`.
    pub big_n: usize,
    /// Per-direction per-repetition sampling probability (clamped to 1).
    pub p: f64,
    /// Number of independent sampling repetitions (the paper uses `D`).
    pub reps: u32,
    /// The constant multiplying `k_D·log n / N` in `p` (1.0 = paper).
    pub prob_constant: f64,
}

impl KpParams {
    /// Computes the parameters for an `n`-node graph of diameter `d`,
    /// with the paper's repetition count (`reps = d`) and a probability
    /// constant.
    ///
    /// # Errors
    ///
    /// See [`ParamError`].
    pub fn new(n: usize, d: u32, prob_constant: f64) -> Result<Self, ParamError> {
        if d < 3 {
            return Err(ParamError::DiameterTooSmall(d));
        }
        if n < 2 {
            return Err(ParamError::GraphTooSmall(n));
        }
        let nf = n as f64;
        let k = k_d(n, d);
        let k_ceil = k.ceil() as u32;
        let big_n = (nf / k).ceil() as usize;
        let p = (prob_constant * k * nf.ln() / big_n as f64).min(1.0);
        Ok(KpParams {
            n,
            d,
            k,
            k_ceil,
            big_n,
            p,
            reps: d,
            prob_constant,
        })
    }

    /// Overrides the repetition count (ablation: the analysis needs `D`
    /// independent repetitions; fewer repetitions with boosted
    /// probability have the same edge marginals but break the
    /// level-independence of the (i,k)-walk argument).
    pub fn with_reps(mut self, reps: u32) -> Self {
        self.reps = reps.max(1);
        self
    }

    /// `⌈log₂ n⌉`.
    pub fn log_n(&self) -> u32 {
        ceil_log2(self.n)
    }

    /// Depth limit for the per-part shortcut BFS trees:
    /// `2·k_D·⌈log₂ n⌉` (Theorem 3.1's `O(k_D log n)` with constant 2).
    pub fn depth_limit(&self) -> u32 {
        2 * self.k_ceil * self.log_n()
    }

    /// Congestion target `O(D·k_D·log n)` with constant 4 (two
    /// directions × Chernoff slack).
    pub fn congestion_bound(&self) -> u64 {
        4 * self.d as u64 * self.k_ceil as u64 * self.log_n() as u64
    }

    /// Dilation target `O(k_D·log n)` with constant 4.
    pub fn dilation_bound(&self) -> u64 {
        4 * self.k_ceil as u64 * self.log_n() as u64
    }

    /// Round budget for the distributed construction at this guess:
    /// `O(k_D·log² n)` with constant 8, plus a `O(D)` additive term for
    /// the tree bookkeeping.
    pub fn round_budget(&self) -> u64 {
        8 * self.k_ceil as u64 * (self.log_n() as u64).pow(2) + 4 * self.d as u64 + 64
    }
}

/// `k_D = n^((D−2)/(2D−2))`.
pub fn k_d(n: usize, d: u32) -> f64 {
    let nf = (n.max(2)) as f64;
    let exp = (d as f64 - 2.0) / (2.0 * d as f64 - 2.0);
    nf.powf(exp)
}

/// The diameter-guess ladder the unknown-`D` algorithm walks: from
/// `max(3, ⌈approx/2⌉)` up to `approx`, where `approx` is the 2-factor
/// upper bound obtained from a BFS (`approx = 2·ecc(root)`).
pub fn guess_ladder(approx_upper: u32) -> std::ops::RangeInclusive<u32> {
    let lo = (approx_upper.div_ceil(2)).max(3);
    let hi = approx_upper.max(lo);
    lo..=hi
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_d_matches_closed_forms() {
        // D=3: n^(1/4); D=4: n^(1/3); D→∞: → sqrt(n).
        let n = 65536;
        assert!((k_d(n, 3) - (n as f64).powf(0.25)).abs() < 1e-9);
        assert!((k_d(n, 4) - (n as f64).powf(1.0 / 3.0)).abs() < 1e-9);
        assert!(k_d(n, 64) < (n as f64).sqrt());
        assert!(k_d(n, 64) > (n as f64).powf(0.48));
    }

    #[test]
    fn k_d_is_monotone_in_d() {
        let n = 10_000;
        for d in 3..20 {
            assert!(k_d(n, d) < k_d(n, d + 1));
        }
    }

    #[test]
    fn params_consistency() {
        let p = KpParams::new(4096, 4, 1.0).unwrap();
        assert_eq!(p.k_ceil, 16);
        // k = 4096^(1/3) = 15.99…, so N = ⌈4096/k⌉ = 257.
        assert_eq!(p.big_n, 257);
        // p = k ln n / N = 16 * 8.317 / 256 ≈ 0.52.
        assert!(p.p > 0.4 && p.p < 0.6, "p = {}", p.p);
        assert_eq!(p.reps, 4);
        assert!(p.depth_limit() >= p.k_ceil);
        assert!(p.congestion_bound() > p.dilation_bound());
    }

    #[test]
    fn probability_clamped() {
        // Tiny n: the formula exceeds 1 and must clamp.
        let p = KpParams::new(16, 3, 4.0).unwrap();
        assert_eq!(p.p, 1.0);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(matches!(
            KpParams::new(100, 2, 1.0),
            Err(ParamError::DiameterTooSmall(2))
        ));
        assert!(matches!(
            KpParams::new(1, 4, 1.0),
            Err(ParamError::GraphTooSmall(1))
        ));
    }

    #[test]
    fn reps_override() {
        let p = KpParams::new(1000, 5, 1.0).unwrap().with_reps(1);
        assert_eq!(p.reps, 1);
        let p0 = KpParams::new(1000, 5, 1.0).unwrap().with_reps(0);
        assert_eq!(p0.reps, 1, "clamped to at least one repetition");
    }

    #[test]
    fn ladder_covers_half_to_full() {
        assert_eq!(guess_ladder(8), 4..=8);
        assert_eq!(guess_ladder(3), 3..=3);
        assert_eq!(guess_ladder(2), 3..=3);
        assert_eq!(guess_ladder(9), 5..=9);
    }
}
