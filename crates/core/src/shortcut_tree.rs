//! Shortcut trees (§3.1) — the paper's analytical device, made
//! executable.
//!
//! For a path `P = [p_1, …, p_{|P|}]`, a node set `Q`, and a distance
//! budget `ℓ ≥ dist_G(P, Q)`, the **auxiliary graph** `G_{P,Q,ℓ}` is a
//! layered graph: layer 1 is `V(P)`, layers `2..=ℓ` are full copies of
//! `V(G)`, layer `ℓ+1` is `Q`, and layer `ℓ+2` is a root `r` adjacent to
//! all of `Q`; consecutive layers are joined by self-copy edges and
//! copies of `G`-edges. `T_{P,Q,ℓ}` is the BFS tree of `G_{P,Q,ℓ}`
//! rooted at `r` (its leaves are exactly `V(P)` when the budget holds).
//!
//! The **sampled forest** `T_{P,Q,ℓ}[p]` keeps: all `E(L_1, L_2)` and
//! root edges, all self-copy edges, and each non-self tree edge between
//! layers `k` and `k+1` iff the corresponding `G`-edge was sampled in
//! Step 2's `(k−1)`-th repetition — *the same coins* the construction
//! used, via [`SampleOracle`]. Finally `T* = T[p] ∪ E(P)`.
//!
//! **(i,k) units and walks** (Definition 3.1): a unit climbs from `p_i`
//! to its highest surviving ancestor in layers `≤ k`, then descends to
//! the rightmost `P`-leaf of that ancestor's surviving subtree; a walk
//! concatenates units left to right. Lemma 3.3 proves a walk reaches
//! `{t} ∪ L_k` within length `(c·k_D/N)^{-k+2}` w.h.p.;
//! [`ShortcutTree::walk_to_level`] measures the realized length, unit
//! count, and the Observation-3.1 distinctness of level-`k` nodes.

use crate::sampling::SampleOracle;
use lcs_graph::{Graph, NodeId};
use std::collections::VecDeque;
use std::fmt;

/// Error constructing a [`ShortcutTree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShortcutTreeError {
    /// The path is empty.
    EmptyPath,
    /// `Q` is empty.
    EmptyQ,
    /// `ℓ` must be at least 1.
    BadEll,
    /// Some path node is farther than `ℓ` from `Q` in `G`, so the BFS
    /// tree cannot reach all of `V(P)`.
    PathTooFarFromQ {
        /// Index of an unreached path position.
        position: usize,
    },
}

impl fmt::Display for ShortcutTreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShortcutTreeError::EmptyPath => write!(f, "path must be non-empty"),
            ShortcutTreeError::EmptyQ => write!(f, "Q must be non-empty"),
            ShortcutTreeError::BadEll => write!(f, "ell must be at least 1"),
            ShortcutTreeError::PathTooFarFromQ { position } => {
                write!(f, "path position {position} is beyond distance ell from Q")
            }
        }
    }
}

impl std::error::Error for ShortcutTreeError {}

/// How a measured walk ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkEnd {
    /// The walk ran off the right end of the path (reached `t`).
    ReachedT,
    /// The walk reached a level-`target` node; the payload is the
    /// `G`-vertex whose copy was reached.
    ReachedLevel {
        /// The `G`-vertex reached at the target level.
        vertex: NodeId,
    },
}

/// Measurement of one (i,k)-walk attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkMeasurement {
    /// Total walk length (edges), counting the final upward step on
    /// success.
    pub length: usize,
    /// Number of units concatenated.
    pub units: usize,
    /// How the walk ended.
    pub end: WalkEnd,
    /// Observation 3.1: the level-`k` unit tops were pairwise distinct.
    pub level_nodes_distinct: bool,
}

/// The shortcut tree: auxiliary graph + BFS tree + sampled forest.
#[derive(Debug)]
pub struct ShortcutTree {
    path: Vec<NodeId>,
    q: Vec<NodeId>,
    ell: usize,
    n: usize,
    /// BFS parent of each aux node (toward the root), `u32::MAX` = not
    /// in `T`.
    parent: Vec<u32>,
    /// Whether the (child → parent) tree edge survived into `T[p]`.
    survived: Vec<bool>,
    /// Rightmost `P`-position in each node's surviving subtree
    /// (`u32::MAX` = none).
    rightmost: Vec<u32>,
}

const NONE: u32 = u32::MAX;

impl ShortcutTree {
    /// Number of aux ids: |P| + (ℓ−1)·n + |Q| + 1.
    fn aux_count(&self) -> usize {
        self.path.len() + (self.ell - 1) * self.n + self.q.len() + 1
    }

    /// Root aux id.
    fn root_id(&self) -> u32 {
        (self.path.len() + (self.ell - 1) * self.n + self.q.len()) as u32
    }

    /// Aux id of the layer-`k` copy of `v` (for `2 ≤ k ≤ ℓ`).
    fn copy_id(&self, k: usize, v: NodeId) -> u32 {
        debug_assert!((2..=self.ell).contains(&k));
        (self.path.len() + (k - 2) * self.n + v as usize) as u32
    }

    /// Aux id of `Q` index `qi` (layer ℓ+1).
    fn q_id(&self, qi: usize) -> u32 {
        (self.path.len() + (self.ell - 1) * self.n + qi) as u32
    }

    /// Layer of an aux node (1-based; root = ℓ+2).
    fn layer(&self, id: u32) -> usize {
        let id = id as usize;
        if id < self.path.len() {
            1
        } else if id < self.path.len() + (self.ell - 1) * self.n {
            2 + (id - self.path.len()) / self.n
        } else if id < self.aux_count() - 1 {
            self.ell + 1
        } else {
            self.ell + 2
        }
    }

    /// The `G`-vertex an aux node copies (root has none).
    fn vertex(&self, id: u32) -> Option<NodeId> {
        let idu = id as usize;
        if idu < self.path.len() {
            Some(self.path[idu])
        } else if idu < self.path.len() + (self.ell - 1) * self.n {
            Some(((idu - self.path.len()) % self.n) as NodeId)
        } else if idu < self.aux_count() - 1 {
            Some(self.q[idu - self.path.len() - (self.ell - 1) * self.n])
        } else {
            None
        }
    }

    /// Builds the tree for the given instance.
    ///
    /// * `leader` keys the sampling instance (the part leader id);
    /// * `rep_offset` selects which block of repetitions feeds the
    ///   layers (Lemma 3.5 uses repetitions `0..D/2` for the first `d`
    ///   applications and `D/2..D` for the final one);
    /// * layer transition `k → k+1` (for `k ≥ 2`) consumes repetition
    ///   `rep_offset + (k − 2)`; transitions whose repetition index
    ///   reaches `oracle.reps` are treated as unsampled (the walks the
    ///   lemma measures never use them).
    ///
    /// # Errors
    ///
    /// See [`ShortcutTreeError`].
    pub fn new(
        graph: &Graph,
        path: &[NodeId],
        q: &[NodeId],
        ell: usize,
        oracle: &SampleOracle,
        leader: NodeId,
        rep_offset: u32,
    ) -> Result<Self, ShortcutTreeError> {
        if path.is_empty() {
            return Err(ShortcutTreeError::EmptyPath);
        }
        if q.is_empty() {
            return Err(ShortcutTreeError::EmptyQ);
        }
        if ell == 0 {
            return Err(ShortcutTreeError::BadEll);
        }
        let mut tree = ShortcutTree {
            path: path.to_vec(),
            q: q.to_vec(),
            ell,
            n: graph.n(),
            parent: Vec::new(),
            survived: Vec::new(),
            rightmost: Vec::new(),
        };
        tree.parent = vec![NONE; tree.aux_count()];
        tree.survived = vec![false; tree.aux_count()];
        tree.rightmost = vec![NONE; tree.aux_count()];

        // BFS from the root, layer by layer (the graph is layered).
        let root = tree.root_id();
        let mut frontier: VecDeque<u32> = VecDeque::new();
        // Root -> Q layer.
        for qi in 0..tree.q.len() {
            let id = tree.q_id(qi);
            tree.parent[id as usize] = root;
            frontier.push_back(id);
        }
        // Downward sweep: from layer (k+1) nodes to layer k.
        while let Some(up) = frontier.pop_front() {
            let up_layer = tree.layer(up);
            if up_layer == 1 {
                continue;
            }
            let down_layer = up_layer - 1;
            let v = tree.vertex(up).expect("non-root");
            // Candidate aux ids below: copies of v and its G-neighbors.
            let mut candidates: Vec<u32> = Vec::new();
            if down_layer == 1 {
                for (j, &pv) in path.iter().enumerate() {
                    if pv == v || graph.has_edge(pv, v) {
                        candidates.push(j as u32);
                    }
                }
            } else {
                // Full copy layer (2..=ell).
                candidates.push(tree.copy_id(down_layer, v));
                for &w in graph.neighbors(v) {
                    candidates.push(tree.copy_id(down_layer, w));
                }
            }
            for id in candidates {
                if tree.parent[id as usize] == NONE && id != root {
                    tree.parent[id as usize] = up;
                    frontier.push_back(id);
                }
            }
        }
        // All path leaves must be in T.
        for j in 0..tree.path.len() {
            if tree.parent[j] == NONE {
                return Err(ShortcutTreeError::PathTooFarFromQ { position: j });
            }
        }

        // Survival of each (child -> parent) edge.
        for id in 0..tree.aux_count() as u32 {
            let p = tree.parent[id as usize];
            if p == NONE {
                continue;
            }
            let child_layer = tree.layer(id);
            let surv = if p == root || child_layer == 1 {
                true // root edges and E(L1, L2) kept with probability 1
            } else {
                let cv = tree.vertex(id).expect("non-root child");
                let pv = tree.vertex(p).expect("non-root parent");
                if cv == pv {
                    true // self-copy edge
                } else {
                    // Non-self edge between layers k=child_layer and k+1,
                    // fed by repetition rep_offset + (k-2).
                    let rep = rep_offset + (child_layer as u32 - 2);
                    rep < oracle.reps && oracle.sampled_by(cv, pv, leader, rep)
                }
            };
            tree.survived[id as usize] = surv;
        }

        // Rightmost P-position per surviving subtree, bottom-up. Aux ids
        // are already ordered by layer (L1 first), so one ascending pass
        // pushes values upward correctly.
        for j in 0..tree.path.len() {
            tree.rightmost[j] = j as u32;
        }
        for id in 0..tree.aux_count() as u32 {
            let p = tree.parent[id as usize];
            if p == NONE || !tree.survived[id as usize] {
                continue;
            }
            let r = tree.rightmost[id as usize];
            if r == NONE {
                continue;
            }
            let cur = tree.rightmost[p as usize];
            if cur == NONE || r > cur {
                tree.rightmost[p as usize] = r;
            }
        }
        Ok(tree)
    }

    /// Path length `|P|`.
    pub fn path_len(&self) -> usize {
        self.path.len()
    }

    /// The distance budget ℓ.
    pub fn ell(&self) -> usize {
        self.ell
    }

    /// Number of nodes in the auxiliary graph.
    pub fn aux_size(&self) -> usize {
        self.aux_count()
    }

    /// Highest surviving ancestor of path position `i` within layers
    /// `≤ max_layer`; returns the aux id (the position itself if its
    /// upward edge did not survive, which cannot happen for
    /// `max_layer ≥ 2` since `E(L1, L2)` is kept).
    fn top_ancestor(&self, i: usize, max_layer: usize) -> u32 {
        let mut cur = i as u32;
        loop {
            let p = self.parent[cur as usize];
            if p == NONE || !self.survived[cur as usize] {
                break;
            }
            if self.layer(p) > max_layer {
                break;
            }
            cur = p;
        }
        cur
    }

    /// Measures the greedy walk from path position `i` (0-based) toward
    /// level `target` (the lemma's `k+1`), using `(·, target−1)` units.
    /// For `target = 2` the kept `E(L_1, L_2)` edge gives length 1
    /// immediately.
    ///
    /// Returns `None` when `target` is out of range
    /// (`2 ≤ target ≤ ℓ+1`).
    pub fn walk_to_level(&self, i: usize, target: usize) -> Option<WalkMeasurement> {
        if i >= self.path.len() || target < 2 || target > self.ell + 1 {
            return None;
        }
        if target == 2 {
            let p = self.parent[i];
            debug_assert!(p != NONE);
            return Some(WalkMeasurement {
                length: 1,
                units: 1,
                end: WalkEnd::ReachedLevel {
                    vertex: self.vertex(p).expect("layer-2 node"),
                },
                level_nodes_distinct: true,
            });
        }
        let k = target - 1;
        let last = self.path.len() - 1;
        let mut cur = i;
        let mut total = 0usize;
        let mut units = 0usize;
        let mut tops_at_k: Vec<u32> = Vec::new();
        let mut distinct = true;
        loop {
            let top = self.top_ancestor(cur, k);
            let top_layer = self.layer(top);
            units += 1;
            if top_layer == k {
                if tops_at_k.contains(&top) {
                    distinct = false;
                }
                tops_at_k.push(top);
                // Does the T-edge above the top survive into T[p]?
                let p = self.parent[top as usize];
                if p != NONE && self.survived[top as usize] && self.layer(p) == k + 1 {
                    return Some(WalkMeasurement {
                        length: total + (top_layer - 1) + 1,
                        units,
                        end: WalkEnd::ReachedLevel {
                            vertex: self.vertex(p).expect("level target node"),
                        },
                        level_nodes_distinct: distinct,
                    });
                }
            }
            let j = self.rightmost[top as usize];
            debug_assert!(j != NONE && j as usize >= cur, "unit must not move left");
            let j = j as usize;
            total += 2 * (top_layer - 1);
            if j >= last {
                return Some(WalkMeasurement {
                    length: total,
                    units,
                    end: WalkEnd::ReachedT,
                    level_nodes_distinct: distinct,
                });
            }
            total += 1; // the path edge (p_j, p_{j+1})
            cur = j + 1;
        }
    }

    /// Distances from path position `start` in the undirected graph
    /// `T* = T[p] ∪ E(P)`, per aux node (`None` = unreachable).
    pub fn tstar_distances(&self, start: usize) -> Vec<Option<u32>> {
        assert!(start < self.path.len());
        // Build adjacency of T*: surviving tree edges + path edges.
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); self.aux_count()];
        for id in 0..self.aux_count() as u32 {
            let p = self.parent[id as usize];
            if p != NONE && self.survived[id as usize] {
                adj[id as usize].push(p);
                adj[p as usize].push(id);
            }
        }
        for j in 0..self.path.len() - 1 {
            adj[j].push(j as u32 + 1);
            adj[j + 1].push(j as u32);
        }
        let mut dist = vec![None; self.aux_count()];
        let mut queue = VecDeque::new();
        dist[start] = Some(0u32);
        queue.push_back(start as u32);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize].expect("visited");
            for &w in &adj[u as usize] {
                if dist[w as usize].is_none() {
                    dist[w as usize] = Some(du + 1);
                    queue.push_back(w);
                }
            }
        }
        dist
    }

    /// Minimum `T*` distance from path position `start` to any node of
    /// layer `j` (`None` if unreachable).
    pub fn tstar_dist_to_layer(&self, start: usize, j: usize) -> Option<u32> {
        let dist = self.tstar_distances(start);
        (0..self.aux_count() as u32)
            .filter(|&id| self.layer(id) == j)
            .filter_map(|id| dist[id as usize])
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcs_graph::{HighwayGraph, HighwayParams};

    /// Highway instance with one path as P and {root-ish hub} as Q.
    fn fixture() -> (Graph, Vec<NodeId>, Vec<NodeId>) {
        let hw = HighwayGraph::new(HighwayParams {
            num_paths: 2,
            path_len: 14,
            diameter: 4,
        })
        .unwrap();
        let g = hw.graph().clone();
        let path: Vec<NodeId> = (0..14).map(|c| hw.path_node(0, c)).collect();
        // Q = the tree root (adjacent to all leaves, distance 2 from
        // every path node).
        let root_neighbor = hw.column_leaf(0);
        let q: Vec<NodeId> = g
            .neighbors(root_neighbor)
            .iter()
            .copied()
            .filter(|&w| w >= hw.highway_first() && w != root_neighbor)
            .collect();
        (g, path, q)
    }

    fn all_kept_oracle() -> SampleOracle {
        SampleOracle::new(0, 1.0, 8)
    }

    fn none_kept_oracle() -> SampleOracle {
        SampleOracle::new(0, 0.0, 8)
    }

    #[test]
    fn construction_validates_inputs() {
        let (g, path, q) = fixture();
        let o = all_kept_oracle();
        assert!(matches!(
            ShortcutTree::new(&g, &[], &q, 3, &o, 99, 0),
            Err(ShortcutTreeError::EmptyPath)
        ));
        assert!(matches!(
            ShortcutTree::new(&g, &path, &[], 3, &o, 99, 0),
            Err(ShortcutTreeError::EmptyQ)
        ));
        assert!(matches!(
            ShortcutTree::new(&g, &path, &q, 0, &o, 99, 0),
            Err(ShortcutTreeError::BadEll)
        ));
        // Q at distance 2 from path; ell = 1 is too tight.
        assert!(matches!(
            ShortcutTree::new(&g, &path, &q, 1, &o, 99, 0),
            Err(ShortcutTreeError::PathTooFarFromQ { .. })
        ));
        // ell = 2 suffices.
        assert!(ShortcutTree::new(&g, &path, &q, 2, &o, 99, 0).is_ok());
    }

    #[test]
    fn layers_and_sizes() {
        let (g, path, q) = fixture();
        let o = all_kept_oracle();
        let t = ShortcutTree::new(&g, &path, &q, 3, &o, 99, 0).unwrap();
        assert_eq!(t.aux_size(), path.len() + 2 * g.n() + q.len() + 1);
        assert_eq!(t.layer(0), 1);
        assert_eq!(t.layer(t.root_id()), 5);
        assert_eq!(t.vertex(0), Some(path[0]));
        assert_eq!(t.vertex(t.root_id()), None);
    }

    #[test]
    fn full_sampling_gives_short_walks() {
        let (g, path, q) = fixture();
        let o = all_kept_oracle();
        let t = ShortcutTree::new(&g, &path, &q, 3, &o, 99, 0).unwrap();
        // With every edge kept, a single unit climbs straight to any
        // level: walk to level ell+1 is one climb.
        for i in 0..path.len() {
            let m = t.walk_to_level(i, 4).unwrap();
            assert!(
                matches!(m.end, WalkEnd::ReachedLevel { .. }),
                "position {i}"
            );
            assert!(m.length <= 4, "length {}", m.length);
            assert!(m.level_nodes_distinct);
        }
    }

    #[test]
    fn zero_sampling_walks_along_path() {
        let (g, path, q) = fixture();
        let o = none_kept_oracle();
        let t = ShortcutTree::new(&g, &path, &q, 3, &o, 99, 0).unwrap();
        // Nothing survives above layer 2, so every unit is a bounce
        // (up 1, down 1) and the walk must traverse the whole path.
        let m = t.walk_to_level(0, 4).unwrap();
        assert_eq!(m.end, WalkEnd::ReachedT);
        // Bounce at each position + path edges: 2 per unit + 1 per step.
        assert!(m.length >= path.len() - 1);
        assert_eq!(m.units, path.len());
    }

    #[test]
    fn level_two_walks_are_length_one() {
        let (g, path, q) = fixture();
        let t = ShortcutTree::new(&g, &path, &q, 2, &none_kept_oracle(), 99, 0).unwrap();
        for i in 0..path.len() {
            let m = t.walk_to_level(i, 2).unwrap();
            assert_eq!(m.length, 1);
        }
    }

    #[test]
    fn walk_target_bounds_checked() {
        let (g, path, q) = fixture();
        let t = ShortcutTree::new(&g, &path, &q, 2, &all_kept_oracle(), 99, 0).unwrap();
        assert!(t.walk_to_level(0, 1).is_none());
        assert!(t.walk_to_level(0, 5).is_none());
        assert!(t.walk_to_level(999, 2).is_none());
        assert!(t.walk_to_level(0, 3).is_some());
    }

    #[test]
    fn tstar_distance_consistency() {
        let (g, path, q) = fixture();
        let o = all_kept_oracle();
        let t = ShortcutTree::new(&g, &path, &q, 3, &o, 99, 0).unwrap();
        // With everything kept, s reaches layer 2 at distance 1 and the
        // root within ell+1.
        assert_eq!(t.tstar_dist_to_layer(0, 2), Some(1));
        let d_root = t.tstar_dist_to_layer(0, 5).unwrap();
        assert!(d_root <= 4, "distance to root {d_root}");
        // Walk lengths dominate T* distances (a walk is one particular
        // route).
        let m = t.walk_to_level(0, 4).unwrap();
        let d4 = t.tstar_dist_to_layer(0, 4).unwrap() as usize;
        assert!(m.length >= d4);
    }

    #[test]
    fn intermediate_sampling_beats_path_walk() {
        // With p = 0.5 and several repetitions, walks should reach the
        // target level well before traversing the whole path (w.h.p.;
        // seed fixed).
        let (g, path, q) = fixture();
        let o = SampleOracle::new(1234, 0.5, 8);
        let t = ShortcutTree::new(&g, &path, &q, 3, &o, 99, 0).unwrap();
        let m = t.walk_to_level(0, 4).unwrap();
        assert!(m.level_nodes_distinct, "Obs 3.1");
        if let WalkEnd::ReachedLevel { .. } = m.end {
            assert!(m.length < 2 * path.len());
        }
    }

    #[test]
    fn rep_offset_changes_coins() {
        let (g, path, q) = fixture();
        let o = SampleOracle::new(77, 0.4, 8);
        let t0 = ShortcutTree::new(&g, &path, &q, 3, &o, 99, 0).unwrap();
        let t4 = ShortcutTree::new(&g, &path, &q, 3, &o, 99, 4).unwrap();
        assert_ne!(
            t0.survived, t4.survived,
            "different repetition blocks draw different coins"
        );
    }
}
