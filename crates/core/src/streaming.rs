//! Streaming quality measurement for large-`n` sweeps.
//!
//! Materializing every `H_i` costs `Θ(m·k_D·log n)` memory — prohibitive
//! past `n ≈ 10⁴`. But the two quality numbers can be computed without
//! ever storing the shortcut sets:
//!
//! * **congestion**: an edge's congestion is the number of distinct
//!   instances that own it; with the per-arc pick enumeration
//!   ([`SampleOracle::picks_for_arc`]) the pick lists of one edge
//!   (2 directions × `reps` repetitions, each `O(k_D·log n)` long w.h.p.)
//!   can be merged and deduplicated *per edge*, so peak memory is per
//!   edge, not per graph;
//! * **dilation**: estimated on a random sample of large parts, each of
//!   whose `H_i` is materialized alone via membership queries.
//!
//! The same coins as [`OracleMode::PerArc`](crate::OracleMode) are
//! drawn, so streamed
//! congestion equals the materialized measurement exactly (tested).

use crate::centralized::{classify_large, LargenessRule};
use crate::params::KpParams;
use crate::sampling::SampleOracle;
use lcs_graph::{EdgeId, Graph};
use lcs_shortcut::{Partition, ShortcutSet};
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Result of a streaming quality measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct StreamedQuality {
    /// Exact max per-edge congestion (same coins as `PerArc`).
    pub congestion: u32,
    /// Mean congestion over loaded edges.
    pub mean_congestion: f64,
    /// Upper-bound dilation estimate over the sampled parts
    /// (2 × leader radius in the augmented subgraph).
    pub dilation_upper: u32,
    /// Lower-bound (double-sweep) dilation over the sampled parts.
    pub dilation_lower: u32,
    /// How many parts the dilation was sampled on.
    pub parts_sampled: usize,
    /// Number of large parts.
    pub num_large: usize,
}

/// Streams the quality of the `PerArc` centralized construction without
/// materializing the shortcut sets. `dilation_sample` bounds how many
/// large parts get their dilation measured (0 = skip dilation).
pub fn streamed_quality(
    graph: &Graph,
    partition: &Partition,
    params: KpParams,
    seed: u64,
    rule: LargenessRule,
    dilation_sample: usize,
) -> StreamedQuality {
    let oracle = SampleOracle::new(seed, params.p, params.reps);
    let is_large = classify_large(graph, partition, params.k_ceil, rule);
    let large_parts: Vec<usize> = (0..partition.num_parts())
        .filter(|&i| is_large[i])
        .collect();
    let num_large = large_parts.len();
    // Dense rank of each large part (PerArc pick space), and the part
    // of each node for the Step-1 term.
    let mut rank_of_part: Vec<Option<u32>> = vec![None; partition.num_parts()];
    for (r, &i) in large_parts.iter().enumerate() {
        rank_of_part[i] = Some(r as u32);
    }

    // --- Congestion: per-edge merge of pick lists + Step-1 terms. -----
    let mut max_c = 0u32;
    let mut sum_c = 0u64;
    let mut loaded = 0u64;
    let mut picks: Vec<u32> = Vec::with_capacity(256);
    for e in graph.edge_ids() {
        let (u, v) = graph.edge_endpoints(e);
        picks.clear();
        // Step 1: the edge belongs to the augmented subgraph of the
        // parts of its endpoints (large or not, for measurement parity
        // count the part itself like measure_quality does via G[S_i]).
        // Sampled instances (large ranks only):
        for rep in 0..params.reps {
            for &arcdir in &[(u, v), (v, u)] {
                for r in oracle.picks_for_arc(arcdir.0, arcdir.1, rep, num_large) {
                    // u ∉ S_i condition of Step 2.
                    let part = large_parts[r as usize] as u32;
                    if partition.part_of(arcdir.0) != Some(part) {
                        picks.push(r);
                    }
                }
            }
        }
        picks.sort_unstable();
        picks.dedup();
        let mut c = picks.len() as u32;
        // Parts that own the edge via G[S_i] or Step 1 (edge incident to
        // the part) and were not already counted via sampling.
        for &w in &[u, v] {
            if let Some(p) = partition.part_of(w) {
                if is_large[p as usize] {
                    let r = rank_of_part[p as usize].expect("large part has a rank");
                    if picks.binary_search(&r).is_err() {
                        c += 1;
                        picks.push(r); // guard against u,v in same part
                        picks.sort_unstable();
                    }
                } else if partition.part_of(u) == partition.part_of(v) && w == u {
                    // Small part internal edge: counted once.
                    c += 1;
                }
            }
        }
        if c > 0 {
            loaded += 1;
            sum_c += c as u64;
        }
        max_c = max_c.max(c);
    }

    // --- Dilation: sampled parts, one materialized H_i at a time. -----
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD11A);
    let mut sample = large_parts.clone();
    sample.shuffle(&mut rng);
    sample.truncate(dilation_sample);
    let mut dil_upper = 0u32;
    let mut dil_lower = 0u32;
    for &i in &sample {
        let leader = partition.leader(i);
        let mut edges: Vec<EdgeId> = Vec::new();
        for e in graph.edge_ids() {
            let (u, v) = graph.edge_endpoints(e);
            let pi = Some(i as u32);
            let step1 = partition.part_of(u) == pi || partition.part_of(v) == pi;
            if step1 || oracle.edge_in_instance(u, v, leader) {
                edges.push(e);
            }
        }
        let shortcut = ShortcutSet::from_edge_lists({
            let mut per_part = vec![Vec::new(); partition.num_parts()];
            per_part[i] = edges;
            per_part
        });
        let sub = shortcut.augmented_subgraph(graph, partition, i);
        if let Some((lo, hi)) = sub.estimate_pairwise_distance(partition.part(i), leader) {
            dil_upper = dil_upper.max(hi);
            dil_lower = dil_lower.max(lo);
        }
    }

    StreamedQuality {
        congestion: max_c,
        mean_congestion: if loaded == 0 {
            0.0
        } else {
            sum_c as f64 / loaded as f64
        },
        dilation_upper: dil_upper,
        dilation_lower: dil_lower,
        parts_sampled: sample.len(),
        num_large,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::centralized::{centralized_shortcuts, OracleMode};
    use lcs_graph::{HighwayGraph, HighwayParams};
    use lcs_shortcut::{measure_quality, DilationMode};

    #[test]
    fn streamed_congestion_matches_materialized_per_arc() {
        let hw = HighwayGraph::new(HighwayParams {
            num_paths: 4,
            path_len: 30,
            diameter: 4,
        })
        .unwrap();
        let g = hw.graph();
        let p = Partition::new(g, hw.path_parts()).unwrap();
        let params = KpParams::new(g.n(), 4, 1.0).unwrap();
        for seed in [1u64, 7, 42] {
            let streamed = streamed_quality(g, &p, params, seed, LargenessRule::Radius, 0);
            let materialized = centralized_shortcuts(
                g,
                &p,
                params,
                seed,
                LargenessRule::Radius,
                OracleMode::PerArc,
            );
            let report = measure_quality(g, &p, &materialized.shortcuts, DilationMode::Exact);
            assert_eq!(
                streamed.congestion, report.quality.congestion,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn streamed_dilation_brackets_materialized() {
        let hw = HighwayGraph::new(HighwayParams {
            num_paths: 3,
            path_len: 24,
            diameter: 4,
        })
        .unwrap();
        let g = hw.graph();
        let p = Partition::new(g, hw.path_parts()).unwrap();
        let params = KpParams::new(g.n(), 4, 1.0).unwrap();
        let streamed = streamed_quality(g, &p, params, 5, LargenessRule::Radius, 3);
        assert_eq!(streamed.parts_sampled, 3);
        let materialized =
            centralized_shortcuts(g, &p, params, 5, LargenessRule::Radius, OracleMode::PerArc);
        let exact = measure_quality(g, &p, &materialized.shortcuts, DilationMode::Exact);
        // Sampled-part double-sweep brackets the exact max when all
        // parts are sampled.
        assert!(streamed.dilation_upper >= exact.quality.dilation);
        assert!(streamed.dilation_lower <= exact.quality.dilation);
    }

    #[test]
    fn zero_sample_skips_dilation() {
        let hw = HighwayGraph::new(HighwayParams {
            num_paths: 2,
            path_len: 16,
            diameter: 4,
        })
        .unwrap();
        let g = hw.graph();
        let p = Partition::new(g, hw.path_parts()).unwrap();
        let params = KpParams::new(g.n(), 4, 1.0).unwrap();
        let s = streamed_quality(g, &p, params, 1, LargenessRule::Radius, 0);
        assert_eq!(s.dilation_upper, 0);
        assert_eq!(s.parts_sampled, 0);
        assert!(s.congestion > 0);
    }
}
