//! Differential test for the [`KoganParter`] trait adapter: building
//! through the trait must be byte-identical to running the pipeline's
//! free functions with the seed the adapter draws (the first `next_u64`
//! of the caller's RNG).

use lcs_core::{
    centralized_shortcuts, prune_to_trees, KoganParter, KpParams, LargenessRule, OracleMode,
};
use lcs_graph::{gnp_connected, Graph, HighwayGraph, HighwayParams};
use lcs_shortcut::{Partition, ShortcutBuilder};
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn highway() -> (Graph, Partition) {
    let hw = HighwayGraph::new(HighwayParams {
        num_paths: 3,
        path_len: 20,
        diameter: 4,
    })
    .unwrap();
    let g = hw.graph().clone();
    let p = Partition::new(&g, hw.path_parts()).unwrap();
    (g, p)
}

fn pipeline(
    g: &Graph,
    p: &Partition,
    d: u32,
    seed: u64,
    pruned: bool,
) -> lcs_shortcut::ShortcutSet {
    let params = KpParams::new(g.n(), d, 1.0).unwrap();
    let raw = centralized_shortcuts(
        g,
        p,
        params,
        seed,
        LargenessRule::Radius,
        OracleMode::PerPart,
    );
    if pruned {
        prune_to_trees(g, p, &raw.shortcuts, params.depth_limit()).shortcuts
    } else {
        raw.shortcuts
    }
}

#[test]
fn kogan_parter_backend_matches_pipeline() {
    let (g, p) = highway();
    for rng_seed in [1u64, 2, 3] {
        for pruned in [true, false] {
            let backend = KoganParter {
                diameter: Some(4),
                prob_constant: 1.0,
                pruned,
            };
            let mut rng = ChaCha8Rng::seed_from_u64(rng_seed);
            let s = backend.build(&g, &p, &mut rng);
            // The adapter's pipeline seed is its single RNG draw.
            let pipeline_seed = ChaCha8Rng::seed_from_u64(rng_seed).next_u64();
            let free = pipeline(&g, &p, 4, pipeline_seed, pruned);
            assert_eq!(s, free, "seed {rng_seed}, pruned {pruned}");
        }
    }
}

#[test]
fn measured_diameter_matches_supplied_diameter() {
    // On a random connected graph, letting the backend measure D must
    // agree with supplying the measured value explicitly.
    let mut rng = ChaCha8Rng::seed_from_u64(9);
    let g = gnp_connected(50, 0.08, &mut rng);
    let p = Partition::bfs_balls(&g, 5, &mut rng);
    let d = lcs_graph::exact_diameter(&g).unwrap().max(3);

    let auto = KoganParter::default();
    let fixed = KoganParter {
        diameter: Some(d),
        ..KoganParter::default()
    };
    let mut r1 = ChaCha8Rng::seed_from_u64(4);
    let mut r2 = ChaCha8Rng::seed_from_u64(4);
    assert_eq!(auto.build(&g, &p, &mut r1), fixed.build(&g, &p, &mut r2));
}
