//! Locks the paper's parameter table and bound formulas: `k_D`
//! exponents for small diameters, the `dilation_bound`/
//! `congestion_bound` formulas derived from them, and agreement
//! between `measure_quality` and `verify` on the hard highway
//! instances the construction targets.

use lcs_core::{centralized_shortcuts, k_d, KpParams, LargenessRule, OracleMode, ParamError};
use lcs_graph::{HighwayGraph, HighwayParams};
use lcs_shortcut::{measure_quality, verify, DilationMode, Partition};

/// `⌈log₂ n⌉`, restated locally so the test pins the formula rather
/// than echoing the implementation's helper.
fn ceil_log2(n: usize) -> u64 {
    (n as f64).log2().ceil() as u64
}

/// The paper's quality-target table: `k_D = n^((D−2)/(2D−2))`.
/// D = 2 degenerates to exponent 0 (k = 1, no shortcut budget) and is
/// rejected by the constructor; D ∈ {3, 4, 5} give the closed-form
/// exponents 1/4, 1/3, 3/8.
#[test]
fn k_d_table_small_diameters() {
    let exponent = |d: u32| (d as f64 - 2.0) / (2.0 * d as f64 - 2.0);
    assert_eq!(exponent(2), 0.0);
    assert_eq!(exponent(3), 0.25);
    assert!((exponent(4) - 1.0 / 3.0).abs() < 1e-12);
    assert_eq!(exponent(5), 0.375);

    for n in [64usize, 1000, 4096, 100_000] {
        let nf = n as f64;
        assert!((k_d(n, 3) - nf.powf(0.25)).abs() < 1e-9, "n={n} D=3");
        assert!((k_d(n, 4) - nf.powf(1.0 / 3.0)).abs() < 1e-9, "n={n} D=4");
        assert!((k_d(n, 5) - nf.powf(0.375)).abs() < 1e-9, "n={n} D=5");
        // The ladder is strictly increasing in D and stays below √n,
        // the D → ∞ limit.
        assert!(k_d(n, 3) < k_d(n, 4));
        assert!(k_d(n, 4) < k_d(n, 5));
        assert!(k_d(n, 5) < nf.sqrt());
    }
}

/// D = 2 is outside the construction (the paper handles it separately
/// with O(log n)-quality shortcuts); the API must reject it loudly for
/// every n rather than produce vacuous bounds.
#[test]
fn diameter_two_is_rejected() {
    for n in [2usize, 64, 4096] {
        assert_eq!(
            KpParams::new(n, 2, 1.0).unwrap_err(),
            ParamError::DiameterTooSmall(2),
            "n={n}"
        );
    }
}

/// `dilation_bound = 4·⌈k_D⌉·⌈log₂ n⌉` and
/// `congestion_bound = D·dilation_bound`, for every tabulated D.
#[test]
fn bound_formulas_match_table() {
    for n in [64usize, 1000, 4096, 100_000] {
        for d in [3u32, 4, 5] {
            let p = KpParams::new(n, d, 1.0).unwrap();
            let k_ceil = k_d(n, d).ceil() as u64;
            assert_eq!(p.k_ceil as u64, k_ceil, "n={n} D={d}");
            assert_eq!(
                p.dilation_bound(),
                4 * k_ceil * ceil_log2(n),
                "dilation n={n} D={d}"
            );
            assert_eq!(
                p.congestion_bound(),
                4 * d as u64 * k_ceil * ceil_log2(n),
                "congestion n={n} D={d}"
            );
            // The two bounds differ by exactly the factor D.
            assert_eq!(p.congestion_bound(), d as u64 * p.dilation_bound());
        }
    }
}

/// Bounds are monotone in n for fixed D: a bigger graph never gets a
/// smaller budget.
#[test]
fn bounds_monotone_in_n() {
    for d in [3u32, 4, 5] {
        let mut prev = (0u64, 0u64);
        for n in [64usize, 256, 1024, 4096, 16_384] {
            let p = KpParams::new(n, d, 1.0).unwrap();
            let cur = (p.dilation_bound(), p.congestion_bound());
            assert!(cur.0 >= prev.0 && cur.1 >= prev.1, "n={n} D={d}");
            prev = cur;
        }
    }
}

/// On highway instances, `measure_quality` and `verify` must tell the
/// same story: verify with no claim reports the measured quality,
/// verify accepts the measured quality as a claim, and rejects any
/// strictly tighter claim.
#[test]
fn measure_quality_agrees_with_verify_on_highways() {
    for (num_paths, path_len, diameter) in [(4usize, 30usize, 4u32), (3, 20, 3), (5, 12, 5)] {
        let hw = HighwayGraph::new(HighwayParams {
            num_paths,
            path_len,
            diameter,
        })
        .unwrap();
        let g = hw.graph();
        let parts = Partition::new(g, hw.path_parts()).unwrap();
        let params = KpParams::new(g.n(), diameter, 1.0).unwrap();
        let built = centralized_shortcuts(
            g,
            &parts,
            params,
            7,
            LargenessRule::Radius,
            OracleMode::PerPart,
        );

        let measured = measure_quality(g, &parts, &built.shortcuts, DilationMode::Exact);
        let report = verify(g, &parts, &built.shortcuts, None, DilationMode::Exact)
            .expect("unclaimed verify cannot fail");
        assert_eq!(
            report.quality, measured.quality,
            "verify and measure_quality disagree on D={diameter}"
        );

        // The measured quality, claimed back, passes...
        verify(
            g,
            &parts,
            &built.shortcuts,
            Some(measured.quality),
            DilationMode::Exact,
        )
        .expect("measured quality must verify");
        // ...and any strictly tighter claim fails.
        if measured.quality.dilation > 0 {
            let mut tighter = measured.quality;
            tighter.dilation -= 1;
            assert!(
                verify(
                    g,
                    &parts,
                    &built.shortcuts,
                    Some(tighter),
                    DilationMode::Exact
                )
                .is_err(),
                "tighter dilation claim must be rejected (D={diameter})"
            );
        }
        if measured.quality.congestion > 0 {
            let mut tighter = measured.quality;
            tighter.congestion -= 1;
            assert!(
                verify(
                    g,
                    &parts,
                    &built.shortcuts,
                    Some(tighter),
                    DilationMode::Exact
                )
                .is_err(),
                "tighter congestion claim must be rejected (D={diameter})"
            );
        }

        // And the construction meets the paper's budgets on its target
        // instance family.
        assert!(measured.quality.dilation as u64 <= params.dilation_bound());
        assert!(measured.quality.congestion as u64 <= params.congestion_bound());
    }
}
