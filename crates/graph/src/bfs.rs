//! Breadth-first search: distances, trees, truncated and filtered
//! variants.
//!
//! The shortcut constructions need several flavours of BFS:
//!
//! * plain single-source BFS over the whole graph;
//! * BFS restricted to an induced node subset (`G[S_i]`);
//! * *truncated* BFS that stops at a depth bound `k_D` and reports
//!   whether any frontier remained (the paper's large-part test);
//! * multi-source BFS (distance to a node set, used by the shortcut-tree
//!   machinery).

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Distance value for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// Result of a (possibly truncated / filtered) BFS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BfsResult {
    /// `dist[v]` is the hop distance from the source set, or
    /// [`UNREACHABLE`].
    pub dist: Vec<u32>,
    /// `parent[v]` is the BFS-tree parent, `None` for sources and
    /// unreached nodes.
    pub parent: Vec<Option<NodeId>>,
    /// Nodes in visitation order (sources first).
    pub order: Vec<NodeId>,
    /// True iff the BFS was truncated while some unvisited neighbor of
    /// the deepest layer existed (i.e. the ball of the given radius does
    /// not cover the reachable subgraph).
    pub truncated_with_frontier: bool,
}

impl BfsResult {
    /// Maximum finite distance reached (0 when only sources visited).
    pub fn max_depth(&self) -> u32 {
        self.order
            .iter()
            .map(|&v| self.dist[v as usize])
            .max()
            .unwrap_or(0)
    }

    /// Number of visited nodes.
    pub fn visited(&self) -> usize {
        self.order.len()
    }

    /// Whether `v` was reached.
    pub fn reached(&self, v: NodeId) -> bool {
        self.dist[v as usize] != UNREACHABLE
    }

    /// Reconstructs the tree path from a source to `v` (inclusive), or
    /// `None` when `v` was not reached.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.reached(v) {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while let Some(p) = self.parent[cur as usize] {
            path.push(p);
            cur = p;
        }
        path.reverse();
        Some(path)
    }
}

/// Configuration for [`bfs`]. Use [`BfsOptions::default`] for a full
/// single-graph BFS.
#[derive(Clone)]
pub struct BfsOptions<'a> {
    /// Maximum depth to explore (`u32::MAX` = unbounded).
    pub max_depth: u32,
    /// Restrict traversal to nodes for which this returns true (sources
    /// are always allowed). `None` = all nodes.
    #[allow(clippy::type_complexity)]
    pub node_filter: Option<&'a dyn Fn(NodeId) -> bool>,
}

impl<'a> Default for BfsOptions<'a> {
    fn default() -> Self {
        BfsOptions {
            max_depth: u32::MAX,
            node_filter: None,
        }
    }
}

impl<'a> std::fmt::Debug for BfsOptions<'a> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BfsOptions")
            .field("max_depth", &self.max_depth)
            .field("has_node_filter", &self.node_filter.is_some())
            .finish()
    }
}

/// Multi-source BFS with optional depth bound and node filter.
///
/// # Panics
///
/// Panics if a source id is `>= g.n()`.
///
/// # Examples
///
/// ```
/// use lcs_graph::{Graph, bfs, BfsOptions};
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
/// let r = bfs(&g, &[0], &BfsOptions::default());
/// assert_eq!(r.dist, vec![0, 1, 2, 3]);
/// ```
pub fn bfs(g: &Graph, sources: &[NodeId], opts: &BfsOptions<'_>) -> BfsResult {
    let n = g.n();
    let mut dist = vec![UNREACHABLE; n];
    let mut parent = vec![None; n];
    let mut order = Vec::new();
    let mut queue: VecDeque<NodeId> = VecDeque::new();
    for &s in sources {
        assert!((s as usize) < n, "BFS source {s} out of range (n={n})");
        if dist[s as usize] == UNREACHABLE {
            dist[s as usize] = 0;
            order.push(s);
            queue.push_back(s);
        }
    }
    let mut truncated_with_frontier = false;
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &w in g.neighbors(u) {
            if dist[w as usize] != UNREACHABLE {
                continue;
            }
            if let Some(filter) = opts.node_filter {
                if !filter(w) {
                    continue;
                }
            }
            if du >= opts.max_depth {
                truncated_with_frontier = true;
                continue;
            }
            dist[w as usize] = du + 1;
            parent[w as usize] = Some(u);
            order.push(w);
            queue.push_back(w);
        }
    }
    BfsResult {
        dist,
        parent,
        order,
        truncated_with_frontier,
    }
}

/// Single-source full-graph BFS distances.
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<u32> {
    bfs(g, &[source], &BfsOptions::default()).dist
}

/// BFS restricted to the induced subgraph `G[set]`; `set_member` must be
/// a membership predicate for the set and `source` must satisfy it.
pub fn bfs_within(
    g: &Graph,
    source: NodeId,
    set_member: &dyn Fn(NodeId) -> bool,
    max_depth: u32,
) -> BfsResult {
    debug_assert!(set_member(source), "source must belong to the set");
    bfs(
        g,
        &[source],
        &BfsOptions {
            max_depth,
            node_filter: Some(set_member),
        },
    )
}

/// Eccentricity of `v` (max finite BFS distance). Returns `None` if the
/// graph has unreachable nodes from `v` and `require_connected` is set.
pub fn eccentricity(g: &Graph, v: NodeId, require_connected: bool) -> Option<u32> {
    let dist = bfs_distances(g, v);
    let mut ecc = 0;
    for &d in &dist {
        if d == UNREACHABLE {
            if require_connected {
                return None;
            }
            continue;
        }
        ecc = ecc.max(d);
    }
    Some(ecc)
}

/// Extracts one shortest path between `s` and `t`, or `None` when
/// disconnected.
pub fn shortest_path(g: &Graph, s: NodeId, t: NodeId) -> Option<Vec<NodeId>> {
    bfs(g, &[s], &BfsOptions::default()).path_to(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<_> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn plain_bfs_distances() {
        let g = path_graph(5);
        assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs_distances(&g, 2), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn disconnected_marks_unreachable() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(d[3], UNREACHABLE);
    }

    #[test]
    fn truncated_bfs_reports_frontier() {
        let g = path_graph(10);
        let r = bfs(
            &g,
            &[0],
            &BfsOptions {
                max_depth: 3,
                node_filter: None,
            },
        );
        assert_eq!(r.visited(), 4);
        assert!(r.truncated_with_frontier);
        assert_eq!(r.max_depth(), 3);

        let r_full = bfs(
            &g,
            &[0],
            &BfsOptions {
                max_depth: 9,
                node_filter: None,
            },
        );
        assert!(!r_full.truncated_with_frontier);
        assert_eq!(r_full.visited(), 10);
    }

    #[test]
    fn truncation_at_exact_cover_depth_has_no_frontier() {
        let g = path_graph(5);
        let r = bfs(
            &g,
            &[2],
            &BfsOptions {
                max_depth: 2,
                node_filter: None,
            },
        );
        assert_eq!(r.visited(), 5);
        assert!(!r.truncated_with_frontier);
    }

    #[test]
    fn multi_source() {
        let g = path_graph(7);
        let r = bfs(&g, &[0, 6], &BfsOptions::default());
        assert_eq!(r.dist, vec![0, 1, 2, 3, 2, 1, 0]);
        // Duplicate sources are harmless.
        let r2 = bfs(&g, &[0, 0, 6], &BfsOptions::default());
        assert_eq!(r2.dist, r.dist);
    }

    #[test]
    fn filtered_bfs_stays_inside_set() {
        // Star: center 0 connected to 1..5; set = {0, 1, 2}.
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]).unwrap();
        let member = |v: NodeId| v <= 2;
        let r = bfs_within(&g, 0, &member, u32::MAX);
        assert_eq!(r.visited(), 3);
        assert!(!r.reached(3));
        assert_eq!(r.dist[1], 1);
    }

    #[test]
    fn path_reconstruction() {
        let g = path_graph(5);
        let r = bfs(&g, &[0], &BfsOptions::default());
        assert_eq!(r.path_to(4).unwrap(), vec![0, 1, 2, 3, 4]);
        assert_eq!(r.path_to(0).unwrap(), vec![0]);
        assert_eq!(shortest_path(&g, 4, 1).unwrap(), vec![4, 3, 2, 1]);
    }

    #[test]
    fn parents_form_valid_tree() {
        let g = Graph::from_edges(6, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 5), (1, 5)])
            .unwrap();
        let r = bfs(&g, &[0], &BfsOptions::default());
        for v in g.nodes() {
            if let Some(p) = r.parent[v as usize] {
                assert!(g.has_edge(p, v));
                assert_eq!(r.dist[v as usize], r.dist[p as usize] + 1);
            }
        }
    }

    #[test]
    fn eccentricity_values() {
        let g = path_graph(5);
        assert_eq!(eccentricity(&g, 0, true), Some(4));
        assert_eq!(eccentricity(&g, 2, true), Some(2));
        let disc = Graph::from_edges(3, &[(0, 1)]).unwrap();
        assert_eq!(eccentricity(&disc, 0, true), None);
        assert_eq!(eccentricity(&disc, 0, false), Some(1));
    }
}
