//! Bridge detection (Tarjan's low-link algorithm, iterative).
//!
//! Used to verify two-edge-connected subgraphs in the 2-ECSS
//! application (Corollary 4.3).

use crate::graph::{EdgeId, Graph};

/// All bridges of `g` (edges whose removal disconnects their
/// component), sorted by edge id.
pub fn bridges(g: &Graph) -> Vec<EdgeId> {
    let n = g.n();
    let mut disc = vec![u32::MAX; n];
    let mut low = vec![u32::MAX; n];
    let mut timer = 0u32;
    let mut out = Vec::new();
    // Iterative DFS storing (node, parent_edge, neighbor cursor).
    let mut stack: Vec<(u32, Option<EdgeId>, usize)> = Vec::new();
    for start in 0..n as u32 {
        if disc[start as usize] != u32::MAX {
            continue;
        }
        disc[start as usize] = timer;
        low[start as usize] = timer;
        timer += 1;
        stack.push((start, None, 0));
        while let Some(&mut (v, pe, ref mut cursor)) = stack.last_mut() {
            let adj: Vec<(u32, EdgeId)> = g.neighbors_with_edges(v).collect();
            if *cursor < adj.len() {
                let (w, e) = adj[*cursor];
                *cursor += 1;
                if Some(e) == pe {
                    continue; // don't traverse the parent edge back
                }
                if disc[w as usize] == u32::MAX {
                    disc[w as usize] = timer;
                    low[w as usize] = timer;
                    timer += 1;
                    stack.push((w, Some(e), 0));
                } else {
                    low[v as usize] = low[v as usize].min(disc[w as usize]);
                }
            } else {
                stack.pop();
                if let Some(&(parent, _, _)) = stack.last() {
                    low[parent as usize] = low[parent as usize].min(low[v as usize]);
                    if low[v as usize] > disc[parent as usize] {
                        out.push(pe.expect("non-root frame has a parent edge"));
                    }
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// Whether `g` is two-edge-connected (connected and bridgeless); trivial
/// graphs (`n ≤ 1`) count as two-edge-connected.
pub fn is_two_edge_connected(g: &Graph) -> bool {
    if g.n() <= 1 {
        return true;
    }
    crate::components::is_connected(g) && bridges(g).is_empty()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::{complete, cycle, path};

    #[test]
    fn path_is_all_bridges() {
        let g = path(5);
        assert_eq!(bridges(&g).len(), 4);
        assert!(!is_two_edge_connected(&g));
    }

    #[test]
    fn cycle_has_no_bridges() {
        let g = cycle(6);
        assert!(bridges(&g).is_empty());
        assert!(is_two_edge_connected(&g));
    }

    #[test]
    fn bridge_between_two_triangles() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
            .unwrap();
        let b = bridges(&g);
        assert_eq!(b.len(), 1);
        let (u, v) = g.edge_endpoints(b[0]);
        assert_eq!((u, v), (2, 3));
    }

    #[test]
    fn complete_graph_two_edge_connected() {
        assert!(is_two_edge_connected(&complete(5)));
    }

    #[test]
    fn disconnected_graph_bridges_per_component() {
        let g = Graph::from_edges(6, &[(0, 1), (2, 3), (3, 4), (4, 2), (4, 5)]).unwrap();
        let b = bridges(&g);
        // (0,1) and (4,5) are bridges; the triangle 2-3-4 is not.
        assert_eq!(b.len(), 2);
        assert!(!is_two_edge_connected(&g));
    }

    #[test]
    fn trivial_graphs() {
        assert!(is_two_edge_connected(&Graph::from_edges(0, &[]).unwrap()));
        assert!(is_two_edge_connected(&Graph::from_edges(1, &[]).unwrap()));
        assert!(!is_two_edge_connected(&Graph::from_edges(2, &[]).unwrap()));
    }
}
