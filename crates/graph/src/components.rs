//! Connected components and connectivity predicates.

use crate::bfs::{bfs, BfsOptions, UNREACHABLE};
use crate::graph::{Graph, NodeId};
use crate::union_find::UnionFind;

/// Connected-component labelling of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Components {
    /// `label[v]` is the component index of `v`, dense in
    /// `0..num_components`.
    pub label: Vec<u32>,
    /// Number of components.
    pub num_components: usize,
    /// Sizes indexed by component label.
    pub sizes: Vec<usize>,
}

impl Components {
    /// Nodes of a given component, in increasing id order.
    pub fn members(&self, c: u32) -> Vec<NodeId> {
        self.label
            .iter()
            .enumerate()
            .filter(|&(_, &l)| l == c)
            .map(|(v, _)| v as NodeId)
            .collect()
    }
}

/// Labels connected components via union-find.
pub fn connected_components(g: &Graph) -> Components {
    let mut uf = UnionFind::new(g.n());
    for &(u, v) in g.edges() {
        uf.union(u, v);
    }
    let mut label = vec![u32::MAX; g.n()];
    let mut sizes = Vec::new();
    let mut next = 0u32;
    for v in 0..g.n() as u32 {
        let r = uf.find(v);
        if label[r as usize] == u32::MAX {
            label[r as usize] = next;
            sizes.push(0);
            next += 1;
        }
        let c = label[r as usize];
        if v != r {
            label[v as usize] = c;
        }
        sizes[c as usize] += 1;
    }
    Components {
        label,
        num_components: next as usize,
        sizes,
    }
}

/// Whether the whole graph is connected (the empty graph counts as
/// connected; a single node does too).
pub fn is_connected(g: &Graph) -> bool {
    if g.n() <= 1 {
        return true;
    }
    let r = bfs(g, &[0], &BfsOptions::default());
    r.visited() == g.n()
}

/// Whether the induced subgraph `G[set]` is connected. An empty set and a
/// singleton are connected. `set` must contain valid, distinct node ids.
pub fn is_set_connected(g: &Graph, set: &[NodeId]) -> bool {
    if set.len() <= 1 {
        return true;
    }
    let mut member = vec![false; g.n()];
    for &v in set {
        member[v as usize] = true;
    }
    let pred = |v: NodeId| member[v as usize];
    let r = bfs(
        g,
        &[set[0]],
        &BfsOptions {
            max_depth: u32::MAX,
            node_filter: Some(&pred),
        },
    );
    set.iter().all(|&v| r.dist[v as usize] != UNREACHABLE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_component() {
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.num_components, 1);
        assert_eq!(c.sizes, vec![4]);
        assert!(is_connected(&g));
    }

    #[test]
    fn multiple_components_and_isolated() {
        let g = Graph::from_edges(5, &[(0, 1), (2, 3)]).unwrap();
        let c = connected_components(&g);
        assert_eq!(c.num_components, 3);
        assert_eq!(c.sizes.iter().sum::<usize>(), 5);
        assert!(!is_connected(&g));
        assert_eq!(c.label[0], c.label[1]);
        assert_ne!(c.label[0], c.label[2]);
        assert_eq!(c.members(c.label[4]), vec![4]);
    }

    #[test]
    fn trivial_graphs_connected() {
        assert!(is_connected(&Graph::from_edges(0, &[]).unwrap()));
        assert!(is_connected(&Graph::from_edges(1, &[]).unwrap()));
        assert!(!is_connected(&Graph::from_edges(2, &[]).unwrap()));
    }

    #[test]
    fn set_connectivity() {
        // Path 0-1-2-3-4.
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]).unwrap();
        assert!(is_set_connected(&g, &[1, 2, 3]));
        assert!(!is_set_connected(&g, &[0, 2]));
        assert!(is_set_connected(&g, &[4]));
        assert!(is_set_connected(&g, &[]));
        // The whole path is connected as a set even though 0 and 4 are far.
        assert!(is_set_connected(&g, &[0, 1, 2, 3, 4]));
    }
}
