//! Diameter computation: exact (all-pairs BFS), double-sweep bounds, and
//! sampled eccentricity estimates.
//!
//! The paper's parameters hinge on the exact unweighted diameter `D` (or
//! the 2-approximation a single BFS provides); the workloads need to
//! *verify* that generated graphs have the intended constant diameter.

use crate::bfs::{bfs, bfs_distances, BfsOptions, UNREACHABLE};
use crate::graph::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Exact diameter by BFS from every node. `None` for the empty graph or
/// a disconnected graph.
///
/// Runs in `O(n·m)`; intended for verification on moderate sizes.
pub fn exact_diameter(g: &Graph) -> Option<u32> {
    if g.n() == 0 {
        return None;
    }
    let mut best = 0u32;
    for v in g.nodes() {
        let dist = bfs_distances(g, v);
        for &d in &dist {
            if d == UNREACHABLE {
                return None;
            }
            best = best.max(d);
        }
    }
    Some(best)
}

/// Double-sweep lower bound: BFS from `start`, then BFS from the farthest
/// node found. Exact on trees; a lower bound in general. `None` when the
/// graph is disconnected or empty.
pub fn double_sweep_lower_bound(g: &Graph, start: NodeId) -> Option<u32> {
    if g.n() == 0 {
        return None;
    }
    let d0 = bfs_distances(g, start);
    let mut far = start;
    let mut best = 0;
    for (v, &d) in d0.iter().enumerate() {
        if d == UNREACHABLE {
            return None;
        }
        if d > best {
            best = d;
            far = v as NodeId;
        }
    }
    let d1 = bfs_distances(g, far);
    d1.iter().copied().filter(|&d| d != UNREACHABLE).max()
}

/// Upper bound from a single BFS: `2 × ecc(start)`.
/// `None` when disconnected or empty.
pub fn single_bfs_upper_bound(g: &Graph, start: NodeId) -> Option<u32> {
    if g.n() == 0 {
        return None;
    }
    let dist = bfs_distances(g, start);
    let mut ecc = 0;
    for &d in &dist {
        if d == UNREACHABLE {
            return None;
        }
        ecc = ecc.max(d);
    }
    Some(ecc * 2)
}

/// Bracketed diameter estimate `(lower, upper)` using `samples` random
/// double sweeps. `None` when disconnected or empty.
pub fn estimate_diameter<R: Rng>(g: &Graph, samples: usize, rng: &mut R) -> Option<(u32, u32)> {
    if g.n() == 0 {
        return None;
    }
    let nodes: Vec<NodeId> = g.nodes().collect();
    let mut lower = 0u32;
    let mut upper = u32::MAX;
    for _ in 0..samples.max(1) {
        let &start = nodes.choose(rng).expect("nonempty");
        lower = lower.max(double_sweep_lower_bound(g, start)?);
        upper = upper.min(single_bfs_upper_bound(g, start)?);
    }
    Some((lower, upper.max(lower)))
}

/// Eccentricity of every node (exact, `O(n·m)`); `None` entries never
/// occur — a disconnected graph yields `None` overall.
pub fn all_eccentricities(g: &Graph) -> Option<Vec<u32>> {
    let mut eccs = Vec::with_capacity(g.n());
    for v in g.nodes() {
        let dist = bfs_distances(g, v);
        let mut e = 0;
        for &d in &dist {
            if d == UNREACHABLE {
                return None;
            }
            e = e.max(d);
        }
        eccs.push(e);
    }
    Some(eccs)
}

/// Radius (min eccentricity) and diameter (max eccentricity) together.
pub fn radius_and_diameter(g: &Graph) -> Option<(u32, u32)> {
    let eccs = all_eccentricities(g)?;
    let r = eccs.iter().copied().min()?;
    let d = eccs.iter().copied().max()?;
    Some((r, d))
}

/// Diameter of the induced subgraph `G[set]`: the maximum pairwise
/// distance when travelling only through `set`. `Some(u32::MAX)` if the
/// induced subgraph is disconnected; `None` when `set` is empty.
pub fn induced_diameter(g: &Graph, set: &[NodeId]) -> Option<u32> {
    if set.is_empty() {
        return None;
    }
    let mut member = vec![false; g.n()];
    for &v in set {
        member[v as usize] = true;
    }
    let pred = |v: NodeId| member[v as usize];
    let mut best = 0u32;
    for &s in set {
        let r = bfs(
            g,
            &[s],
            &BfsOptions {
                max_depth: u32::MAX,
                node_filter: Some(&pred),
            },
        );
        for &t in set {
            let d = r.dist[t as usize];
            if d == UNREACHABLE {
                return Some(u32::MAX);
            }
            best = best.max(d);
        }
    }
    Some(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn path_graph(n: usize) -> Graph {
        let edges: Vec<_> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        Graph::from_edges(n, &edges).unwrap()
    }

    fn cycle_graph(n: usize) -> Graph {
        let mut edges: Vec<_> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
        edges.push((n as u32 - 1, 0));
        Graph::from_edges(n, &edges).unwrap()
    }

    #[test]
    fn exact_on_path_and_cycle() {
        assert_eq!(exact_diameter(&path_graph(6)), Some(5));
        assert_eq!(exact_diameter(&cycle_graph(6)), Some(3));
        assert_eq!(exact_diameter(&cycle_graph(7)), Some(3));
    }

    #[test]
    fn exact_handles_trivial_and_disconnected() {
        assert_eq!(exact_diameter(&Graph::from_edges(0, &[]).unwrap()), None);
        assert_eq!(exact_diameter(&Graph::from_edges(1, &[]).unwrap()), Some(0));
        assert_eq!(exact_diameter(&Graph::from_edges(2, &[]).unwrap()), None);
    }

    #[test]
    fn double_sweep_exact_on_trees() {
        // A caterpillar: path 0..4 with leaves hanging off 2.
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 3), (3, 4), (2, 5), (2, 6)]).unwrap();
        let exact = exact_diameter(&g).unwrap();
        for v in g.nodes() {
            assert_eq!(double_sweep_lower_bound(&g, v), Some(exact));
        }
    }

    #[test]
    fn bounds_bracket_exact() {
        let g = cycle_graph(9);
        let exact = exact_diameter(&g).unwrap();
        for v in g.nodes() {
            let lo = double_sweep_lower_bound(&g, v).unwrap();
            let hi = single_bfs_upper_bound(&g, v).unwrap();
            assert!(lo <= exact && exact <= hi);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let (lo, hi) = estimate_diameter(&g, 4, &mut rng).unwrap();
        assert!(lo <= exact && exact <= hi);
    }

    #[test]
    fn radius_diameter_relation() {
        let g = path_graph(9);
        let (r, d) = radius_and_diameter(&g).unwrap();
        assert_eq!((r, d), (4, 8));
        assert!(d <= 2 * r);
    }

    #[test]
    fn induced_diameter_cases() {
        let g = path_graph(6);
        // Contiguous segment: its own diameter.
        assert_eq!(induced_diameter(&g, &[1, 2, 3]), Some(2));
        // Disconnected within the induced subgraph.
        assert_eq!(induced_diameter(&g, &[0, 2]), Some(u32::MAX));
        // Empty.
        assert_eq!(induced_diameter(&g, &[]), None);
        // Singleton.
        assert_eq!(induced_diameter(&g, &[3]), Some(0));
    }
}
