//! Deterministic classic topologies: paths, cycles, cliques, stars,
//! grids, and balanced trees.

use crate::graph::{Graph, NodeId};

/// Path on `n` nodes (`n ≥ 1`); diameter `n - 1`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize) -> Graph {
    assert!(n >= 1, "path requires at least one node");
    let edges: Vec<_> = (0..n.saturating_sub(1) as u32)
        .map(|i| (i, i + 1))
        .collect();
    Graph::from_edges(n, &edges).expect("valid path")
}

/// Cycle on `n ≥ 3` nodes; diameter `⌊n/2⌋`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3, "cycle requires at least three nodes");
    let mut edges: Vec<_> = (0..n as u32 - 1).map(|i| (i, i + 1)).collect();
    edges.push((n as u32 - 1, 0));
    Graph::from_edges(n, &edges).expect("valid cycle")
}

/// Complete graph on `n ≥ 1` nodes; diameter 1 (for `n ≥ 2`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn complete(n: usize) -> Graph {
    assert!(n >= 1, "complete graph requires at least one node");
    let mut edges = Vec::with_capacity(n * (n - 1) / 2);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            edges.push((u, v));
        }
    }
    Graph::from_edges(n, &edges).expect("valid clique")
}

/// Star with center 0 and `n - 1` leaves; diameter 2 (for `n ≥ 3`).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn star(n: usize) -> Graph {
    assert!(n >= 1, "star requires at least one node");
    let edges: Vec<_> = (1..n as u32).map(|v| (0, v)).collect();
    Graph::from_edges(n, &edges).expect("valid star")
}

/// `rows × cols` grid; diameter `rows + cols - 2`.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1, "grid dimensions must be positive");
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut edges = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            }
        }
    }
    Graph::from_edges(rows * cols, &edges).expect("valid grid")
}

/// Balanced `b`-ary tree of the given `depth` (root at node 0);
/// diameter `2 × depth`. Returns the graph and the first node id of the
/// deepest level.
///
/// # Panics
///
/// Panics if `b == 0`.
pub fn balanced_tree(b: usize, depth: usize) -> (Graph, NodeId) {
    assert!(b >= 1, "branching factor must be positive");
    let mut edges = Vec::new();
    let mut level_start = 0u32;
    let mut level_size = 1u32;
    let mut next = 1u32;
    for _ in 0..depth {
        for i in 0..level_size {
            let parent = level_start + i;
            for _ in 0..b {
                edges.push((parent, next));
                next += 1;
            }
        }
        level_start = next - level_size * b as u32;
        level_size *= b as u32;
    }
    let n = next as usize;
    (
        Graph::from_edges(n, &edges).expect("valid tree"),
        level_start,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diameter::exact_diameter;

    #[test]
    fn path_diameter() {
        assert_eq!(exact_diameter(&path(1)), Some(0));
        assert_eq!(exact_diameter(&path(7)), Some(6));
    }

    #[test]
    fn cycle_diameter() {
        assert_eq!(exact_diameter(&cycle(8)), Some(4));
        assert_eq!(exact_diameter(&cycle(9)), Some(4));
    }

    #[test]
    fn complete_properties() {
        let g = complete(6);
        assert_eq!(g.m(), 15);
        assert_eq!(exact_diameter(&g), Some(1));
        assert_eq!(exact_diameter(&complete(1)), Some(0));
    }

    #[test]
    fn star_diameter() {
        assert_eq!(exact_diameter(&star(10)), Some(2));
        assert_eq!(star(10).degree(0), 9);
    }

    #[test]
    fn grid_diameter() {
        assert_eq!(exact_diameter(&grid(3, 4)), Some(5));
        assert_eq!(exact_diameter(&grid(1, 5)), Some(4));
    }

    #[test]
    fn balanced_tree_shape() {
        let (g, deepest) = balanced_tree(2, 3);
        assert_eq!(g.n(), 1 + 2 + 4 + 8);
        assert_eq!(exact_diameter(&g), Some(6));
        assert_eq!(deepest, 7);
        let (g1, d1) = balanced_tree(3, 0);
        assert_eq!(g1.n(), 1);
        assert_eq!(d1, 0);
    }
}
