//! The hard instance family for constant-diameter shortcuts.
//!
//! Elkin (STOC 2004) and Das Sarma et al. (STOC 2011) prove the
//! `c + d = Ω̃(n^((D−2)/(2D−2)))` shortcut/MST lower bound on graphs built
//! from **many long vertex-disjoint paths** that can only communicate
//! through a **shallow, small "highway" hierarchy**: every path must either
//! walk along itself (dilation) or funnel through the few high-level
//! highway edges shared by all paths (congestion).
//!
//! [`HighwayGraph`] reproduces that mechanism with exact unweighted
//! diameter `D` for any `D ≥ 3`:
//!
//! * `Γ` ([`HighwayParams::num_paths`]) disjoint paths, each with `ℓ`
//!   ([`HighwayParams::path_len`]) *columns*;
//! * every column `c` has a **leaf** node adjacent to the `c`-th node of
//!   every path;
//! * **even `D = 2h + 2`**: the `ℓ` leaves are the depth-`h` level of one
//!   balanced tree;
//! * **odd `D = 2h + 3`**: columns are split into contiguous groups, each
//!   group has its own depth-`h` subtree, and the subtree roots form a
//!   clique (for `D = 3` the leaves themselves form the clique).
//!
//! The natural part collection is one part per path
//! ([`HighwayGraph::path_parts`]); these are exactly the subsets on which
//! the lower bound binds.

use crate::graph::{Graph, GraphBuilder, NodeId};
use std::fmt;

/// Parameters of a [`HighwayGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HighwayParams {
    /// Number of vertex-disjoint paths `Γ`.
    pub num_paths: usize,
    /// Number of columns `ℓ` (nodes per path).
    pub path_len: usize,
    /// Target exact diameter `D ≥ 3`.
    pub diameter: u32,
}

/// Error constructing a [`HighwayGraph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HighwayError {
    /// `diameter < 3` — use a clique (D=1) or star-like graphs (D=2).
    UnsupportedDiameter(u32),
    /// The paths are too short to realize the requested diameter
    /// (`path_len ≥ diameter + 2` is required).
    PathTooShort {
        /// Required minimum path length.
        needed: usize,
        /// Supplied path length.
        got: usize,
    },
    /// `num_paths == 0`.
    NoPaths,
}

impl fmt::Display for HighwayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HighwayError::UnsupportedDiameter(d) => {
                write!(f, "highway family requires diameter >= 3, got {d}")
            }
            HighwayError::PathTooShort { needed, got } => {
                write!(f, "path_len {got} too short, need at least {needed}")
            }
            HighwayError::NoPaths => write!(f, "num_paths must be positive"),
        }
    }
}

impl std::error::Error for HighwayError {}

/// A hard-instance graph together with its path parts and highway
/// bookkeeping.
#[derive(Debug, Clone)]
pub struct HighwayGraph {
    params: HighwayParams,
    graph: Graph,
    /// First node id of the highway (all smaller ids are path nodes).
    highway_first: NodeId,
    /// Leaf node id of every column.
    column_leaf: Vec<NodeId>,
}

impl HighwayGraph {
    /// Builds the family member with the given parameters.
    ///
    /// # Errors
    ///
    /// See [`HighwayError`].
    pub fn new(params: HighwayParams) -> Result<Self, HighwayError> {
        let HighwayParams {
            num_paths,
            path_len,
            diameter,
        } = params;
        if diameter < 3 {
            return Err(HighwayError::UnsupportedDiameter(diameter));
        }
        if num_paths == 0 {
            return Err(HighwayError::NoPaths);
        }
        let needed = diameter as usize + 2;
        if path_len < needed {
            return Err(HighwayError::PathTooShort {
                needed,
                got: path_len,
            });
        }

        let gamma = num_paths;
        let ell = path_len;
        let path_node = |i: usize, c: usize| (i * ell + c) as NodeId;
        let highway_first = (gamma * ell) as u32;
        let mut next_id = highway_first;
        let mut alloc = |k: usize| {
            let start = next_id;
            next_id += k as u32;
            start
        };

        // Path edges.
        let mut builder_edges: Vec<(NodeId, NodeId)> = Vec::new();
        for i in 0..gamma {
            for c in 0..ell - 1 {
                builder_edges.push((path_node(i, c), path_node(i, c + 1)));
            }
        }

        // One leaf per column.
        let leaf_start = alloc(ell);
        let column_leaf: Vec<NodeId> = (0..ell).map(|c| leaf_start + c as u32).collect();
        for (c, &leaf) in column_leaf.iter().enumerate() {
            for i in 0..gamma {
                builder_edges.push((leaf, path_node(i, c)));
            }
        }

        // Highway above the leaves.
        if diameter % 2 == 0 {
            // D = 2h + 2: one tree of depth exactly h over all leaves.
            let h = (diameter as usize - 2) / 2;
            Self::build_tree_over(&mut builder_edges, &column_leaf, h, &mut alloc);
        } else {
            // D = 2h + 3: groups with depth-h subtrees; roots in a clique.
            let h = (diameter as usize - 3) / 2;
            let groups = Self::odd_group_count(ell, h);
            let group_size = ell.div_ceil(groups);
            let mut roots: Vec<NodeId> = Vec::with_capacity(groups);
            for g in 0..groups {
                let lo = g * group_size;
                let hi = ((g + 1) * group_size).min(ell);
                if lo >= hi {
                    break;
                }
                let group_leaves: Vec<NodeId> = column_leaf[lo..hi].to_vec();
                let root = Self::build_tree_over(&mut builder_edges, &group_leaves, h, &mut alloc);
                roots.push(root);
            }
            for a in 0..roots.len() {
                for b in (a + 1)..roots.len() {
                    builder_edges.push((roots[a], roots[b]));
                }
            }
        }

        let n = next_id as usize;
        let mut builder = GraphBuilder::new(n);
        builder.add_edges(builder_edges);
        let graph = builder.build().expect("construction yields a simple graph");
        Ok(HighwayGraph {
            params,
            graph,
            highway_first,
            column_leaf,
        })
    }

    /// Number of root groups used for odd diameters.
    fn odd_group_count(ell: usize, h: usize) -> usize {
        if h == 0 {
            // Depth-0 subtrees are single leaves: one group per column.
            ell
        } else {
            // Balance the clique size against subtree width.
            let f = (ell as f64).powf(1.0 / (h as f64 + 1.0)).ceil() as usize;
            f.clamp(2, ell)
        }
    }

    /// Builds a tree of depth exactly `h` whose deepest level is exactly
    /// `leaves`; returns the root. For `h = 0`, `leaves` must be a single
    /// node, which becomes the root.
    fn build_tree_over(
        edges: &mut Vec<(NodeId, NodeId)>,
        leaves: &[NodeId],
        h: usize,
        alloc: &mut impl FnMut(usize) -> NodeId,
    ) -> NodeId {
        debug_assert!(!leaves.is_empty());
        if h == 0 {
            debug_assert_eq!(leaves.len(), 1, "depth-0 tree must be a single leaf");
            return leaves[0];
        }
        // Branching factor that contracts `leaves` to one node within h
        // levels.
        let b = (leaves.len() as f64).powf(1.0 / h as f64).ceil().max(2.0) as usize;
        let mut level: Vec<NodeId> = leaves.to_vec();
        for _ in 0..h {
            if level.len() == 1 {
                // Already contracted: extend upward with a unary chain so
                // the root sits at depth exactly h above the leaves.
                let start = alloc(1);
                edges.push((level[0], start));
                level = vec![start];
                continue;
            }
            let parents = level.len().div_ceil(b);
            let start = alloc(parents);
            for (idx, &child) in level.iter().enumerate() {
                edges.push((start + (idx / b) as u32, child));
            }
            level = (0..parents as u32).map(|i| start + i).collect();
        }
        debug_assert_eq!(level.len(), 1, "tree must contract to a single root");
        level[0]
    }

    /// Convenience constructor: the balanced `Γ = ℓ ≈ √n` member with
    /// roughly `n_target` path nodes, the canonical benchmark instance.
    ///
    /// # Errors
    ///
    /// Propagates [`HighwayError`] (e.g. `n_target` too small for the
    /// requested diameter).
    pub fn balanced(n_target: usize, diameter: u32) -> Result<Self, HighwayError> {
        let side = (n_target as f64).sqrt().round().max(1.0) as usize;
        let path_len = side.max(diameter as usize + 2);
        let num_paths = (n_target / path_len).max(1);
        HighwayGraph::new(HighwayParams {
            num_paths,
            path_len,
            diameter,
        })
    }

    /// Convenience constructor sweeping the path-count exponent:
    /// `Γ ≈ n_target^gamma_exp`, `ℓ = n_target / Γ`.
    ///
    /// # Errors
    ///
    /// Propagates [`HighwayError`].
    pub fn with_gamma_exponent(
        n_target: usize,
        diameter: u32,
        gamma_exp: f64,
    ) -> Result<Self, HighwayError> {
        let gamma = (n_target as f64).powf(gamma_exp).round().max(1.0) as usize;
        let path_len = (n_target / gamma).max(diameter as usize + 2);
        HighwayGraph::new(HighwayParams {
            num_paths: gamma,
            path_len,
            diameter,
        })
    }

    /// The parameters used.
    pub fn params(&self) -> HighwayParams {
        self.params
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Consumes self, returning the graph.
    pub fn into_graph(self) -> Graph {
        self.graph
    }

    /// Total node count.
    pub fn n(&self) -> usize {
        self.graph.n()
    }

    /// Node id of path `i`, column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `i`/`c` are out of range.
    pub fn path_node(&self, i: usize, c: usize) -> NodeId {
        assert!(i < self.params.num_paths && c < self.params.path_len);
        (i * self.params.path_len + c) as NodeId
    }

    /// The leaf node attached to every path at column `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn column_leaf(&self, c: usize) -> NodeId {
        self.column_leaf[c]
    }

    /// First highway node id (all ids below are path nodes).
    pub fn highway_first(&self) -> NodeId {
        self.highway_first
    }

    /// Number of highway (non-path) nodes.
    pub fn num_highway_nodes(&self) -> usize {
        self.graph.n() - self.highway_first as usize
    }

    /// The canonical part collection: one part per path.
    pub fn path_parts(&self) -> Vec<Vec<NodeId>> {
        (0..self.params.num_paths)
            .map(|i| {
                (0..self.params.path_len)
                    .map(|c| self.path_node(i, c))
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::{is_connected, is_set_connected};
    use crate::diameter::exact_diameter;

    fn check_exact_diameter(num_paths: usize, path_len: usize, diameter: u32) {
        let hw = HighwayGraph::new(HighwayParams {
            num_paths,
            path_len,
            diameter,
        })
        .unwrap();
        assert!(is_connected(hw.graph()), "D={diameter} connected");
        assert_eq!(
            exact_diameter(hw.graph()),
            Some(diameter),
            "D={diameter}, gamma={num_paths}, ell={path_len}, n={}",
            hw.n()
        );
    }

    #[test]
    fn exact_diameter_for_all_small_d() {
        for d in 3..=9u32 {
            check_exact_diameter(4, (d as usize + 2).max(14), d);
        }
    }

    #[test]
    fn exact_diameter_single_path() {
        check_exact_diameter(1, 16, 4);
        check_exact_diameter(1, 16, 5);
    }

    #[test]
    fn exact_diameter_larger_instances() {
        check_exact_diameter(8, 40, 3);
        check_exact_diameter(8, 40, 6);
        check_exact_diameter(6, 30, 7);
    }

    #[test]
    fn rejects_bad_params() {
        assert!(matches!(
            HighwayGraph::new(HighwayParams {
                num_paths: 2,
                path_len: 10,
                diameter: 2
            }),
            Err(HighwayError::UnsupportedDiameter(2))
        ));
        assert!(matches!(
            HighwayGraph::new(HighwayParams {
                num_paths: 0,
                path_len: 10,
                diameter: 4
            }),
            Err(HighwayError::NoPaths)
        ));
        assert!(matches!(
            HighwayGraph::new(HighwayParams {
                num_paths: 2,
                path_len: 4,
                diameter: 4
            }),
            Err(HighwayError::PathTooShort { .. })
        ));
    }

    #[test]
    fn parts_are_disjoint_connected_paths() {
        let hw = HighwayGraph::new(HighwayParams {
            num_paths: 5,
            path_len: 12,
            diameter: 5,
        })
        .unwrap();
        let parts = hw.path_parts();
        assert_eq!(parts.len(), 5);
        let mut seen = std::collections::HashSet::new();
        for part in &parts {
            assert_eq!(part.len(), 12);
            assert!(is_set_connected(hw.graph(), part));
            for &v in part {
                assert!(seen.insert(v), "parts must be disjoint");
                assert!(v < hw.highway_first(), "parts contain only path nodes");
            }
        }
    }

    #[test]
    fn column_leaf_touches_every_path() {
        let hw = HighwayGraph::new(HighwayParams {
            num_paths: 4,
            path_len: 10,
            diameter: 4,
        })
        .unwrap();
        for c in 0..10 {
            let leaf = hw.column_leaf(c);
            for i in 0..4 {
                assert!(hw.graph().has_edge(leaf, hw.path_node(i, c)));
            }
        }
    }

    #[test]
    fn balanced_constructor_hits_target_scale() {
        let hw = HighwayGraph::balanced(900, 4).unwrap();
        let p = hw.params();
        assert!(p.num_paths * p.path_len >= 600);
        assert_eq!(exact_diameter(hw.graph()), Some(4));
    }

    #[test]
    fn gamma_exponent_sweep() {
        let hw = HighwayGraph::with_gamma_exponent(600, 5, 0.25).unwrap();
        assert_eq!(exact_diameter(hw.graph()), Some(5));
        let p = hw.params();
        // gamma ≈ 600^0.25 ≈ 5
        assert!(p.num_paths >= 3 && p.num_paths <= 8);
    }
}
