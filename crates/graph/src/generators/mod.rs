//! Graph generators: deterministic classics, randomized families, and the
//! constant-diameter lower-bound ("highway") hard instances.

pub mod classic;
pub mod lower_bound;
pub mod random;
pub mod zoo;

pub use classic::{balanced_tree, complete, cycle, grid, path, star};
pub use lower_bound::{HighwayError, HighwayGraph, HighwayParams};
pub use random::{gnp, gnp_connected, hub_and_spoke, random_tree};
pub use zoo::{grid_diagonals, k_chordal, k_tree, power_law, random_regular};
