//! Randomized graph generators: Erdős–Rényi, random trees, hub-and-spoke
//! "social network" topologies.
//!
//! Constant-diameter random workloads are produced by generating and then
//! *measuring*: dense-enough G(n, p) has diameter 2–4 w.h.p., and
//! hub-and-spoke families have diameter ≤ 4 by construction. Benchmarks
//! always report the measured diameter rather than trusting the target.

use crate::graph::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Erdős–Rényi `G(n, p)`: each pair independently an edge.
///
/// # Panics
///
/// Panics if `p` is not within `[0, 1]`.
pub fn gnp<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut edges = Vec::new();
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("valid gnp")
}

/// `G(n, p)` forced connected by overlaying a uniform random attachment
/// tree. The tree adds at most `n - 1` edges, preserving sparsity.
pub fn gnp_connected<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "probability out of range");
    let mut edges = Vec::new();
    for v in 1..n as u32 {
        let u = rng.gen_range(0..v);
        edges.push((u, v));
    }
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if rng.gen_bool(p) {
                edges.push((u, v));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("valid connected gnp")
}

/// Uniform random recursive tree on `n ≥ 1` nodes (each node attaches to
/// a uniform earlier node).
pub fn random_tree<R: Rng>(n: usize, rng: &mut R) -> Graph {
    assert!(n >= 1, "tree requires at least one node");
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for v in 1..n as u32 {
        edges.push((rng.gen_range(0..v), v));
    }
    Graph::from_edges(n, &edges).expect("valid tree")
}

/// Hub-and-spoke "social network": `hubs` fully connected hub nodes;
/// every other node links to `links_per_node` distinct random hubs and to
/// `peer_links` random non-hub peers. Diameter ≤ 4 by construction
/// (spoke → hub → hub → spoke), usually 3.
///
/// # Panics
///
/// Panics if `hubs == 0` or `hubs > n` or `links_per_node == 0`.
pub fn hub_and_spoke<R: Rng>(
    n: usize,
    hubs: usize,
    links_per_node: usize,
    peer_links: usize,
    rng: &mut R,
) -> Graph {
    assert!(hubs >= 1 && hubs <= n, "invalid hub count");
    assert!(links_per_node >= 1, "spokes must link to at least one hub");
    let mut edges = Vec::new();
    for u in 0..hubs as u32 {
        for v in (u + 1)..hubs as u32 {
            edges.push((u, v));
        }
    }
    let hub_ids: Vec<NodeId> = (0..hubs as u32).collect();
    for v in hubs as u32..n as u32 {
        let k = links_per_node.min(hubs);
        for &h in hub_ids.choose_multiple(rng, k) {
            edges.push((h, v));
        }
        for _ in 0..peer_links {
            let w = rng.gen_range(hubs as u32..n as u32);
            if w != v {
                edges.push((v, w));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("valid hub-and-spoke")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;
    use crate::diameter::exact_diameter;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn gnp_extremes() {
        let mut rng = ChaCha8Rng::seed_from_u64(0);
        let empty = gnp(10, 0.0, &mut rng);
        assert_eq!(empty.m(), 0);
        let full = gnp(10, 1.0, &mut rng);
        assert_eq!(full.m(), 45);
    }

    #[test]
    fn gnp_connected_is_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..5 {
            let g = gnp_connected(50, 0.01, &mut rng);
            assert!(is_connected(&g));
        }
    }

    #[test]
    fn dense_gnp_has_small_diameter() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let g = gnp_connected(200, 0.08, &mut rng);
        let d = exact_diameter(&g).unwrap();
        assert!(d <= 4, "dense gnp diameter was {d}");
    }

    #[test]
    fn random_tree_is_spanning_acyclic() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = random_tree(64, &mut rng);
        assert_eq!(g.m(), 63);
        assert!(is_connected(&g));
    }

    #[test]
    fn hub_and_spoke_diameter_at_most_four() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = hub_and_spoke(300, 8, 2, 1, &mut rng);
        assert!(is_connected(&g));
        let d = exact_diameter(&g).unwrap();
        assert!(d <= 4, "hub-and-spoke diameter was {d}");
    }

    #[test]
    fn hub_and_spoke_single_hub_is_star_like() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = hub_and_spoke(20, 1, 1, 0, &mut rng);
        assert!(is_connected(&g));
        assert!(exact_diameter(&g).unwrap() <= 2);
    }
}
