//! Wider generator zoo for the multi-backend quality bench: planar grids
//! with diagonals, bounded-treewidth random k-trees, random d-regular
//! expanders, preferential-attachment power-law graphs, and provably
//! k-chordal cacti.
//!
//! Every generator here is deterministic in its inputs: equal parameters
//! plus an equal RNG seed produce a bit-identical [`Graph`] (asserted by
//! the tier-1 invariant tests in `tests/zoo_invariants.rs`). The
//! `quality_bench` CI fingerprint gate relies on this.

use crate::graph::{Graph, NodeId};
use rand::Rng;
use std::collections::{BTreeSet, HashMap};

/// `rows × cols` grid with one diagonal per unit face (the
/// `(r, c)–(r+1, c+1)` diagonal). One diagonal per face keeps the graph
/// planar; diameter is `Θ(max(rows, cols))` and treewidth
/// `Θ(min(rows, cols))`, so separator-based shortcut constructions have
/// real (but not constant-size) separators to find.
///
/// # Panics
///
/// Panics if either dimension is zero.
pub fn grid_diagonals(rows: usize, cols: usize) -> Graph {
    assert!(rows >= 1 && cols >= 1, "grid requires positive dimensions");
    let id = |r: usize, c: usize| (r * cols + c) as NodeId;
    let mut edges = Vec::with_capacity(3 * rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                edges.push((id(r, c), id(r, c + 1)));
            }
            if r + 1 < rows {
                edges.push((id(r, c), id(r + 1, c)));
            }
            if r + 1 < rows && c + 1 < cols {
                edges.push((id(r, c), id(r + 1, c + 1)));
            }
        }
    }
    Graph::from_edges(rows * cols, &edges).expect("valid diagonal grid")
}

/// Uniform random k-tree on `n` nodes: start from a `(k+1)`-clique, then
/// attach each new node to a uniformly chosen existing k-clique. The
/// result has treewidth exactly `min(k, n - 1)`.
///
/// The construction carries its own treewidth certificate in the node
/// ids: for every node `v ≥ k + 1`, the neighbors of `v` with smaller id
/// are exactly `k` nodes forming a clique, so eliminating nodes in
/// descending id order is a perfect elimination order of width `k`
/// (checked by `tests/zoo_invariants.rs`).
///
/// # Panics
///
/// Panics if `n == 0` or `k == 0`.
pub fn k_tree<R: Rng>(n: usize, k: usize, rng: &mut R) -> Graph {
    assert!(n >= 1, "k-tree requires at least one node");
    assert!(k >= 1, "k-tree requires k >= 1");
    if n <= k + 1 {
        return super::classic::complete(n);
    }
    let mut edges = Vec::new();
    for u in 0..=k as u32 {
        for v in (u + 1)..=k as u32 {
            edges.push((u, v));
        }
    }
    // All k-subsets of the base clique are attachment candidates.
    let mut cliques: Vec<Vec<NodeId>> = (0..=k as u32)
        .map(|drop| (0..=k as u32).filter(|&u| u != drop).collect())
        .collect();
    for v in (k + 1) as u32..n as u32 {
        let q = cliques[rng.gen_range(0..cliques.len())].clone();
        for &u in &q {
            edges.push((u, v));
        }
        for i in 0..q.len() {
            let mut fresh = q.clone();
            fresh[i] = v;
            cliques.push(fresh);
        }
    }
    Graph::from_edges(n, &edges).expect("valid k-tree")
}

/// Random d-regular multigraph-free graph via the configuration model
/// with deterministic switch repair: pair up `n·d` stubs uniformly, then
/// remove self-loops and duplicate edges by random 2-switches (and a
/// full reshuffle if a repair pass stalls). For `d ≥ 3` the result is
/// connected with high probability — callers that need connectivity
/// should re-seed and retry (see `quality_bench`).
///
/// # Panics
///
/// Panics if `d == 0`, `d >= n`, or `n·d` is odd.
pub fn random_regular<R: Rng>(n: usize, d: usize, rng: &mut R) -> Graph {
    assert!(d >= 1, "regular graph requires d >= 1");
    assert!(d < n, "regular graph requires d < n");
    assert!((n * d).is_multiple_of(2), "n * d must be even");
    use rand::seq::SliceRandom;
    let mut stubs: Vec<NodeId> = (0..n as u32)
        .flat_map(|v| std::iter::repeat_n(v, d))
        .collect();
    'attempt: for _ in 0..64 {
        stubs.shuffle(rng);
        let mut pairs: Vec<(NodeId, NodeId)> =
            stubs.chunks_exact(2).map(|c| (c[0], c[1])).collect();
        let canon = |u: NodeId, v: NodeId| if u < v { (u, v) } else { (v, u) };
        let mut count: HashMap<(NodeId, NodeId), u32> = HashMap::new();
        for &(u, v) in &pairs {
            if u != v {
                *count.entry(canon(u, v)).or_insert(0) += 1;
            }
        }
        let is_bad = |&(u, v): &(NodeId, NodeId), count: &HashMap<(NodeId, NodeId), u32>| {
            u == v || count[&canon(u, v)] > 1
        };
        for _pass in 0..200 {
            let bad: Vec<usize> = (0..pairs.len())
                .filter(|&i| is_bad(&pairs[i], &count))
                .collect();
            if bad.is_empty() {
                return Graph::from_edges(n, &pairs).expect("valid regular graph");
            }
            for &b in &bad {
                if !is_bad(&pairs[b], &count) {
                    continue; // an earlier switch this pass already fixed it
                }
                let (a1, a2) = pairs[b];
                for _try in 0..32 {
                    let j = rng.gen_range(0..pairs.len());
                    if j == b {
                        continue;
                    }
                    let (b1, b2) = pairs[j];
                    // Remove the two old pairs from the edge counts, then
                    // test the proposed re-pairing (a1,b1),(a2,b2).
                    if a1 != a2 {
                        *count.get_mut(&canon(a1, a2)).unwrap() -= 1;
                    }
                    if b1 != b2 {
                        *count.get_mut(&canon(b1, b2)).unwrap() -= 1;
                    }
                    let ok = a1 != b1
                        && a2 != b2
                        && canon(a1, b1) != canon(a2, b2)
                        && count.get(&canon(a1, b1)).copied().unwrap_or(0) == 0
                        && count.get(&canon(a2, b2)).copied().unwrap_or(0) == 0;
                    if ok {
                        pairs[b] = (a1, b1);
                        pairs[j] = (a2, b2);
                        *count.entry(canon(a1, b1)).or_insert(0) += 1;
                        *count.entry(canon(a2, b2)).or_insert(0) += 1;
                        break;
                    }
                    // Roll back the decrements and try another partner.
                    if a1 != a2 {
                        *count.get_mut(&canon(a1, a2)).unwrap() += 1;
                    }
                    if b1 != b2 {
                        *count.get_mut(&canon(b1, b2)).unwrap() += 1;
                    }
                }
                if is_bad(&pairs[b], &count) {
                    continue; // this pair stayed bad; next pass retries it
                }
            }
        }
        continue 'attempt;
    }
    panic!("random_regular: switch repair failed to converge (n={n}, d={d})");
}

/// Barabási–Albert preferential attachment: nodes arrive one at a time
/// and connect to `attach` distinct existing nodes sampled proportional
/// to degree (the first `attach + 1` nodes form a clique seed). Produces
/// a connected graph with a power-law degree tail — a few hubs of degree
/// `Θ(√(n·attach))` against a mean degree of `≈ 2·attach`.
///
/// # Panics
///
/// Panics if `n == 0` or `attach == 0`.
pub fn power_law<R: Rng>(n: usize, attach: usize, rng: &mut R) -> Graph {
    assert!(n >= 1, "power-law graph requires at least one node");
    assert!(attach >= 1, "power-law graph requires attach >= 1");
    let mut edges = Vec::new();
    // One pool entry per edge endpoint: sampling the pool uniformly is
    // sampling nodes proportional to degree.
    let mut pool: Vec<NodeId> = Vec::new();
    for v in 1..n as u32 {
        let targets: BTreeSet<NodeId> = if (v as usize) <= attach {
            (0..v).collect()
        } else {
            let mut t = BTreeSet::new();
            let mut tries = 0usize;
            while t.len() < attach && tries < 64 * attach {
                tries += 1;
                let cand = pool[rng.gen_range(0..pool.len())];
                if cand != v {
                    t.insert(cand);
                }
            }
            // Pathological rejection streaks: top up with the smallest
            // ids not yet chosen (deterministic, keeps the graph simple).
            let mut fill = 0u32;
            while t.len() < attach {
                if fill != v {
                    t.insert(fill);
                }
                fill += 1;
            }
            t
        };
        for &u in &targets {
            edges.push((u, v));
            pool.push(u);
            pool.push(v);
        }
    }
    Graph::from_edges(n, &edges).expect("valid power-law graph")
}

/// Random k-chordal cactus on `n` nodes: blocks are single edges or
/// cycles of length at most `k`, glued at cut vertices. In a cactus
/// every induced cycle is a block, so the longest induced cycle has
/// length exactly `k` (the first block is forced to be a `k`-cycle
/// whenever `n ≥ k`) — the defining property of a k-chordal graph,
/// spot-checked by brute force in `tests/zoo_invariants.rs`.
///
/// # Panics
///
/// Panics if `n == 0` or `k < 3`.
pub fn k_chordal<R: Rng>(n: usize, k: usize, rng: &mut R) -> Graph {
    assert!(n >= 1, "k-chordal graph requires at least one node");
    assert!(k >= 3, "chordality parameter must be at least 3");
    let mut edges: Vec<(NodeId, NodeId)> = Vec::new();
    let mut next: u32 = 1;
    if n >= k {
        for i in 0..k as u32 - 1 {
            edges.push((i, i + 1));
        }
        edges.push((k as u32 - 1, 0));
        next = k as u32;
    }
    while (next as usize) < n {
        let anchor = rng.gen_range(0..next);
        let remaining = n - next as usize;
        let max_cycle = k.min(remaining + 1);
        if max_cycle >= 3 && rng.gen_bool(0.5) {
            // Cycle block: anchor plus `c - 1` fresh nodes.
            let c = rng.gen_range(3..=max_cycle);
            let mut prev = anchor;
            for _ in 0..c - 1 {
                edges.push((prev, next));
                prev = next;
                next += 1;
            }
            edges.push((prev, anchor));
        } else {
            // Bridge block: a pendant edge.
            edges.push((anchor, next));
            next += 1;
        }
    }
    Graph::from_edges(n, &edges).expect("valid k-chordal cactus")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::components::is_connected;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn mix(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn grid_diagonals_counts() {
        let g = grid_diagonals(3, 4);
        assert_eq!(g.n(), 12);
        // 3*(4-1) horizontal + 4*(3-1) vertical + (3-1)*(4-1) diagonal.
        assert_eq!(g.m(), 9 + 8 + 6);
        assert!(is_connected(&g));
        assert!(g.has_edge(0, 5)); // (0,0)-(1,1) diagonal
    }

    #[test]
    fn k_tree_small_is_clique() {
        let g = k_tree(4, 5, &mut mix(1));
        assert_eq!(g.m(), 6);
    }

    #[test]
    fn k_tree_edge_count_and_connectivity() {
        let k = 3;
        let n = 40;
        let g = k_tree(n, k, &mut mix(2));
        // k+1 choose 2 base edges plus k per later node.
        assert_eq!(g.m(), k * (k + 1) / 2 + (n - k - 1) * k);
        assert!(is_connected(&g));
    }

    #[test]
    fn random_regular_is_regular() {
        let g = random_regular(24, 4, &mut mix(3));
        assert_eq!(g.m(), 24 * 4 / 2);
        for v in g.nodes() {
            assert_eq!(g.degree(v), 4);
        }
    }

    #[test]
    fn power_law_connected_with_hubs() {
        let g = power_law(200, 2, &mut mix(4));
        assert!(is_connected(&g));
        let mean = 2.0 * g.m() as f64 / g.n() as f64;
        assert!(g.max_degree() as f64 > 2.5 * mean, "no heavy tail");
    }

    #[test]
    fn k_chordal_is_cactus_sized() {
        let g = k_chordal(60, 6, &mut mix(5));
        assert_eq!(g.n(), 60);
        assert!(is_connected(&g));
        // A cactus has at most ⌊3(n-1)/2⌋ edges.
        assert!(g.m() <= 3 * (g.n() - 1) / 2);
    }
}
