//! Immutable compressed-sparse-row (CSR) graph representation.
//!
//! All graphs in this workspace are simple, undirected, and unweighted at
//! this layer (weights live in [`crate::weighted`]). Nodes are dense
//! `0..n` indices ([`NodeId`]); every undirected edge has a stable
//! [`EdgeId`], and every *directed* occurrence of an edge (an adjacency
//! slot) has an [`ArcId`]. Arc identities matter for the Kogan–Parter
//! construction, where each endpoint samples its own direction of an edge
//! independently.

use std::fmt;

/// Dense node identifier in `0..n`.
pub type NodeId = u32;

/// Identifier of an undirected edge, indexing the canonical edge list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub u32);

impl EdgeId {
    /// Returns the raw index of this edge.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// Identifier of a directed adjacency slot (one direction of one edge).
///
/// Arc `a` lives in the CSR `neighbors` array; its *tail* is the node
/// whose adjacency list contains slot `a` and its *head* is
/// `neighbors[a]`. An undirected edge `{u, v}` owns exactly two arcs:
/// `u → v` and `v → u`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArcId(pub u32);

impl ArcId {
    /// Returns the raw index of this arc.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ArcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Error produced when constructing a [`Graph`] from invalid input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint is `>= n`.
    NodeOutOfRange {
        /// The offending endpoint.
        node: NodeId,
        /// The number of nodes the graph was declared with.
        n: usize,
    },
    /// A self-loop `{u, u}` was supplied.
    SelfLoop {
        /// The node with the loop.
        node: NodeId,
    },
    /// More than `u32::MAX / 2` edges were supplied.
    TooManyEdges,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, n } => {
                write!(f, "edge endpoint {node} out of range for {n} nodes")
            }
            GraphError::SelfLoop { node } => write!(f, "self-loop at node {node}"),
            GraphError::TooManyEdges => write!(f, "edge count exceeds u32 capacity"),
        }
    }
}

impl std::error::Error for GraphError {}

/// An immutable simple undirected graph in CSR form.
///
/// # Examples
///
/// ```
/// use lcs_graph::Graph;
///
/// // A triangle plus a pendant: 0-1, 1-2, 2-0, 2-3.
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).unwrap();
/// assert_eq!(g.n(), 4);
/// assert_eq!(g.m(), 4);
/// assert_eq!(g.degree(2), 3);
/// assert!(g.has_edge(0, 2));
/// assert!(!g.has_edge(0, 3));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Graph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors`/`arc_edges` for `v`.
    offsets: Vec<u32>,
    /// Concatenated sorted adjacency lists; length `2m`.
    neighbors: Vec<NodeId>,
    /// For each adjacency slot, the undirected edge id; length `2m`.
    arc_edges: Vec<EdgeId>,
    /// Canonical edge list with endpoints `(u, v)`, `u < v`; length `m`.
    edges: Vec<(NodeId, NodeId)>,
}

impl fmt::Debug for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Graph")
            .field("n", &self.n())
            .field("m", &self.m())
            .finish()
    }
}

impl Graph {
    /// Builds a graph with `n` nodes from an undirected edge list.
    ///
    /// Duplicate edges (in either orientation) are collapsed. Endpoint
    /// order within each pair is irrelevant.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::NodeOutOfRange`] if an endpoint is `>= n`,
    /// [`GraphError::SelfLoop`] on a loop, and
    /// [`GraphError::TooManyEdges`] if the deduplicated edge count
    /// exceeds `u32` capacity.
    pub fn from_edges(n: usize, edges: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        let mut canon: Vec<(NodeId, NodeId)> = Vec::with_capacity(edges.len());
        for &(u, v) in edges {
            if u as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: u, n });
            }
            if v as usize >= n {
                return Err(GraphError::NodeOutOfRange { node: v, n });
            }
            if u == v {
                return Err(GraphError::SelfLoop { node: u });
            }
            canon.push(if u < v { (u, v) } else { (v, u) });
        }
        canon.sort_unstable();
        canon.dedup();
        if canon.len() >= (u32::MAX / 2) as usize {
            return Err(GraphError::TooManyEdges);
        }
        Ok(Self::from_canonical_edges(n, canon))
    }

    /// Builds a graph from an already-canonical (sorted, deduplicated,
    /// `u < v`) edge list. Internal fast path.
    pub(crate) fn from_canonical_edges(n: usize, edges: Vec<(NodeId, NodeId)>) -> Self {
        let mut degree = vec![0u32; n];
        for &(u, v) in &edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + degree[v];
        }
        let mut neighbors = vec![0 as NodeId; offsets[n] as usize];
        let mut arc_edges = vec![EdgeId(0); offsets[n] as usize];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for (e, &(u, v)) in edges.iter().enumerate() {
            let eid = EdgeId(e as u32);
            let cu = cursor[u as usize] as usize;
            neighbors[cu] = v;
            arc_edges[cu] = eid;
            cursor[u as usize] += 1;
            let cv = cursor[v as usize] as usize;
            neighbors[cv] = u;
            arc_edges[cv] = eid;
            cursor[v as usize] += 1;
        }
        // Canonical edge order already sorts each adjacency list by
        // neighbor id *except* that edges are emitted in (min, max)
        // order, so a node's list interleaves "as u" and "as v" entries.
        // Sort each list (stable key: neighbor id) to enable binary
        // search in `edge_between`.
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            let mut slot: Vec<(NodeId, EdgeId)> = neighbors[lo..hi]
                .iter()
                .copied()
                .zip(arc_edges[lo..hi].iter().copied())
                .collect();
            slot.sort_unstable_by_key(|&(w, _)| w);
            for (i, (w, e)) in slot.into_iter().enumerate() {
                neighbors[lo + i] = w;
                arc_edges[lo + i] = e;
            }
        }
        Graph {
            offsets,
            neighbors,
            arc_edges,
            edges,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Number of arcs (`2m`).
    #[inline]
    pub fn num_arcs(&self) -> usize {
        self.neighbors.len()
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Sorted neighbor list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        &self.neighbors[self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize]
    }

    /// Iterates `(neighbor, edge_id)` pairs of `v` in neighbor order.
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    pub fn neighbors_with_edges(&self, v: NodeId) -> impl Iterator<Item = (NodeId, EdgeId)> + '_ {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        self.neighbors[lo..hi]
            .iter()
            .copied()
            .zip(self.arc_edges[lo..hi].iter().copied())
    }

    /// Iterates the arcs whose tail is `v` as `(arc, head, edge_id)`.
    pub fn arcs_from(&self, v: NodeId) -> impl Iterator<Item = (ArcId, NodeId, EdgeId)> + '_ {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        (lo..hi).map(move |a| (ArcId(a as u32), self.neighbors[a], self.arc_edges[a]))
    }

    /// The contiguous range of arc indices whose tail is `v` — `v`'s
    /// slice of the CSR arrays. O(1); this is the addressing primitive
    /// of the arc-indexed simulator mailboxes.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcs_graph::{ArcId, Graph};
    ///
    /// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
    /// assert_eq!(g.arc_range(1), 1..3);
    /// for a in g.arc_range(1) {
    ///     assert_eq!(g.arc_tail(ArcId(a as u32)), 1);
    /// }
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `v >= n`.
    #[inline]
    pub fn arc_range(&self, v: NodeId) -> std::ops::Range<usize> {
        self.offsets[v as usize] as usize..self.offsets[v as usize + 1] as usize
    }

    /// The `i`-th neighbor of `v` (in sorted neighbor order). O(1).
    ///
    /// # Examples
    ///
    /// ```
    /// use lcs_graph::Graph;
    ///
    /// let g = Graph::from_edges(4, &[(2, 0), (2, 1), (2, 3)]).unwrap();
    /// assert_eq!(g.nth_neighbor(2, 0), 0);
    /// assert_eq!(g.nth_neighbor(2, 2), 3);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `v >= n` or `i >= degree(v)`.
    #[inline]
    pub fn nth_neighbor(&self, v: NodeId, i: usize) -> NodeId {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        self.neighbors[lo..hi][i]
    }

    /// Endpoints of edge `e` in canonical `(min, max)` order.
    ///
    /// # Panics
    ///
    /// Panics if `e` is out of range.
    #[inline]
    pub fn edge_endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        self.edges[e.index()]
    }

    /// The canonical edge list, `(u, v)` with `u < v`, sorted.
    #[inline]
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Looks up the edge between `u` and `v`, if present.
    pub fn edge_between(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        if u as usize >= self.n() || v as usize >= self.n() || u == v {
            return None;
        }
        // Search the smaller adjacency list; on tiny lists a linear scan
        // is branch-predictable and beats binary search.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        let lo = self.offsets[a as usize] as usize;
        let hi = self.offsets[a as usize + 1] as usize;
        // Unconditional binary search on the sorted neighbor list:
        // O(log deg) even when both endpoints are hubs, where a linear
        // scan turns all-pairs hub queries quadratic.
        self.neighbors[lo..hi]
            .binary_search(&b)
            .ok()
            .map(|i| self.arc_edges[lo + i])
    }

    /// Whether `{u, v}` is an edge.
    #[inline]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.edge_between(u, v).is_some()
    }

    /// Tail node of arc `a` (binary search over offsets).
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    pub fn arc_tail(&self, a: ArcId) -> NodeId {
        debug_assert!(a.index() < self.num_arcs());
        // partition_point returns the first v with offsets[v] > a, so the
        // tail is that minus one.
        let v = self
            .offsets
            .partition_point(|&off| off as usize <= a.index());
        (v - 1) as NodeId
    }

    /// Head node of arc `a`. O(1).
    ///
    /// # Examples
    ///
    /// ```
    /// use lcs_graph::{ArcId, Graph};
    ///
    /// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
    /// // Node 1's arcs point at its sorted neighbors 0 and 2.
    /// let arcs: Vec<_> = g.arc_range(1).collect();
    /// assert_eq!(g.arc_head(ArcId(arcs[0] as u32)), 0);
    /// assert_eq!(g.arc_head(ArcId(arcs[1] as u32)), 2);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    #[inline]
    pub fn arc_head(&self, a: ArcId) -> NodeId {
        self.neighbors[a.index()]
    }

    /// Undirected edge underlying arc `a`. O(1) — an arc names its edge
    /// directly, which is what lets the simulator account per-edge
    /// traffic without an adjacency lookup.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcs_graph::{ArcId, Graph};
    ///
    /// let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
    /// for v in g.nodes() {
    ///     for a in g.arc_range(v) {
    ///         let e = g.arc_edge(ArcId(a as u32));
    ///         let (x, y) = g.edge_endpoints(e);
    ///         assert!(x == v || y == v);
    ///     }
    /// }
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `a` is out of range.
    #[inline]
    pub fn arc_edge(&self, a: ArcId) -> EdgeId {
        self.arc_edges[a.index()]
    }

    /// Iterates all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.n() as u32).map(|v| v as NodeId)
    }

    /// Iterates all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.m() as u32).map(EdgeId)
    }

    /// Maximum degree over all nodes (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.n() as u32)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }
}

/// Incremental builder for [`Graph`].
///
/// # Examples
///
/// ```
/// use lcs_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// let g = b.build().unwrap();
/// assert_eq!(g.m(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// Number of nodes the builder was created with.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Adds an undirected edge; duplicates are tolerated and collapsed at
    /// [`GraphBuilder::build`] time.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> &mut Self {
        self.edges.push((u, v));
        self
    }

    /// Extends with many edges.
    pub fn add_edges<I: IntoIterator<Item = (NodeId, NodeId)>>(&mut self, iter: I) -> &mut Self {
        self.edges.extend(iter);
        self
    }

    /// Number of (possibly duplicated) edges added so far.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Whether no edges were added.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from [`Graph::from_edges`].
    pub fn build(&self) -> Result<Graph, GraphError> {
        Graph::from_edges(self.n, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k4() -> Graph {
        Graph::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap()
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]).unwrap();
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn single_node_no_edges() {
        let g = Graph::from_edges(1, &[]).unwrap();
        assert_eq!(g.n(), 1);
        assert_eq!(g.degree(0), 0);
        assert!(g.neighbors(0).is_empty());
    }

    #[test]
    fn dedup_and_orientation() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 1)]).unwrap();
        assert_eq!(g.m(), 2);
        assert_eq!(g.edges(), &[(0, 1), (1, 2)]);
    }

    #[test]
    fn rejects_self_loop() {
        let err = Graph::from_edges(3, &[(1, 1)]).unwrap_err();
        assert_eq!(err, GraphError::SelfLoop { node: 1 });
    }

    #[test]
    fn rejects_out_of_range() {
        let err = Graph::from_edges(3, &[(0, 3)]).unwrap_err();
        assert_eq!(err, GraphError::NodeOutOfRange { node: 3, n: 3 });
    }

    #[test]
    fn degrees_and_neighbors_sorted() {
        let g = k4();
        for v in g.nodes() {
            assert_eq!(g.degree(v), 3);
            let ns = g.neighbors(v);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "sorted adjacency");
            assert!(!ns.contains(&v));
        }
    }

    #[test]
    fn edge_between_consistency() {
        let g = k4();
        for e in g.edge_ids() {
            let (u, v) = g.edge_endpoints(e);
            assert_eq!(g.edge_between(u, v), Some(e));
            assert_eq!(g.edge_between(v, u), Some(e));
        }
        assert_eq!(g.edge_between(0, 0), None);
        assert_eq!(g.edge_between(0, 99), None);
    }

    #[test]
    fn arcs_cover_both_directions() {
        let g = k4();
        assert_eq!(g.num_arcs(), 2 * g.m());
        let mut seen = std::collections::HashSet::new();
        for v in g.nodes() {
            for (a, head, e) in g.arcs_from(v) {
                assert_eq!(g.arc_tail(a), v);
                assert_eq!(g.arc_head(a), head);
                assert_eq!(g.arc_edge(a), e);
                let (x, y) = g.edge_endpoints(e);
                assert!((v, head) == (x, y) || (v, head) == (y, x));
                seen.insert((v, head));
            }
        }
        assert_eq!(seen.len(), g.num_arcs());
    }

    #[test]
    fn arc_tail_handles_isolated_nodes() {
        // Node 1 is isolated; offsets have a run of equal values.
        let g = Graph::from_edges(4, &[(0, 2), (2, 3)]).unwrap();
        for v in g.nodes() {
            for (a, _, _) in g.arcs_from(v) {
                assert_eq!(g.arc_tail(a), v);
            }
        }
    }

    #[test]
    fn builder_roundtrip() {
        let mut b = GraphBuilder::new(5);
        assert!(b.is_empty());
        b.add_edge(0, 1).add_edge(1, 2);
        b.add_edges([(2, 3), (3, 4)]);
        assert_eq!(b.len(), 4);
        assert_eq!(b.n(), 5);
        let g = b.build().unwrap();
        assert_eq!(g.m(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn arc_range_and_nth_neighbor_match_csr() {
        let g = k4();
        let mut covered = 0usize;
        for v in g.nodes() {
            let r = g.arc_range(v);
            assert_eq!(r.len(), g.degree(v));
            covered += r.len();
            for (i, a) in r.clone().enumerate() {
                assert_eq!(g.arc_head(ArcId(a as u32)), g.nth_neighbor(v, i));
                assert_eq!(g.arc_tail(ArcId(a as u32)), v);
            }
        }
        assert_eq!(covered, g.num_arcs());
    }

    #[test]
    fn edge_between_two_hubs_regression() {
        // Two hubs of degree ~500 joined by one edge. Before the
        // unconditional binary search, querying between two hubs
        // scanned the smaller (still huge) adjacency list — all-pairs
        // hub queries were quadratic. The test pins the O(log deg)
        // behaviour by exercising exactly that shape: hub–hub,
        // hub–leaf, and absent leaf–leaf pairs.
        let h0: NodeId = 0;
        let h1: NodeId = 1;
        let mut edges = vec![(h0, h1)];
        // Leaves 2..502 on hub 0, 502..1002 on hub 1.
        edges.extend((2..502).map(|v| (h0, v)));
        edges.extend((502..1002).map(|v| (h1, v)));
        let g = Graph::from_edges(1002, &edges).unwrap();
        assert_eq!(g.degree(h0), 501);
        assert_eq!(g.degree(h1), 501);
        let hub_edge = g.edge_between(h0, h1).expect("hub-hub edge");
        assert_eq!(g.edge_between(h1, h0), Some(hub_edge));
        assert_eq!(g.edge_endpoints(hub_edge), (h0, h1));
        for v in [2u32, 250, 501] {
            let e = g.edge_between(h0, v).expect("hub0 leaf edge");
            assert_eq!(g.edge_between(v, h0), Some(e));
            assert_eq!(g.edge_between(h1, v), None, "leaf {v} not on hub 1");
        }
        assert_eq!(g.edge_between(2, 3), None);
        assert_eq!(g.edge_between(2, 502), None);
    }

    #[test]
    fn edge_between_high_degree_uses_binary_search_path() {
        // Complete graph on 12 nodes: every adjacency list has 11
        // entries, forcing the binary-search branch on both endpoints.
        let g = Graph::from_edges(
            12,
            &(0..12u32)
                .flat_map(|u| (u + 1..12).map(move |v| (u, v)))
                .collect::<Vec<_>>(),
        )
        .unwrap();
        for e in g.edge_ids() {
            let (u, v) = g.edge_endpoints(e);
            assert_eq!(g.edge_between(u, v), Some(e));
            assert_eq!(g.edge_between(v, u), Some(e));
        }
        assert_eq!(g.edge_between(3, 3), None);
    }

    #[test]
    fn neighbors_with_edges_matches_edge_between() {
        let g = k4();
        for v in g.nodes() {
            for (w, e) in g.neighbors_with_edges(v) {
                assert_eq!(g.edge_between(v, w), Some(e));
            }
        }
    }
}
