//! # lcs-graph
//!
//! Graph substrate for the reproduction of *Kogan & Parter, "Low-Congestion
//! Shortcuts in Constant Diameter Graphs"* (PODC 2021): immutable CSR
//! graphs, BFS in all the flavours the shortcut constructions need,
//! diameter measurement, subgraph materialization, generators (including
//! the Elkin / Das-Sarma-style lower-bound family), and centralized
//! reference algorithms (Kruskal/Prim MST, Stoer–Wagner min cut, Dijkstra)
//! used as correctness oracles by the distributed layers.
//!
//! ## Quick example
//!
//! ```
//! use lcs_graph::{HighwayGraph, HighwayParams, exact_diameter};
//!
//! // A hard instance: 4 disjoint paths of 16 columns, diameter exactly 5.
//! let hw = HighwayGraph::new(HighwayParams {
//!     num_paths: 4,
//!     path_len: 16,
//!     diameter: 5,
//! }).unwrap();
//! assert_eq!(exact_diameter(hw.graph()), Some(5));
//! assert_eq!(hw.path_parts().len(), 4);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bfs;
pub mod bridges;
pub mod components;
pub mod diameter;
pub mod generators;
pub mod graph;
pub mod mincut;
pub mod mst;
pub mod sssp;
pub mod subgraph;
pub mod union_find;
pub mod weighted;

pub use bfs::{
    bfs, bfs_distances, bfs_within, eccentricity, shortest_path, BfsOptions, BfsResult, UNREACHABLE,
};
pub use bridges::{bridges, is_two_edge_connected};
pub use components::{connected_components, is_connected, is_set_connected, Components};
pub use diameter::{
    all_eccentricities, double_sweep_lower_bound, estimate_diameter, exact_diameter,
    induced_diameter, radius_and_diameter, single_bfs_upper_bound,
};
pub use generators::{
    balanced_tree, complete, cycle, gnp, gnp_connected, grid, grid_diagonals, hub_and_spoke,
    k_chordal, k_tree, path, power_law, random_regular, random_tree, star, HighwayError,
    HighwayGraph, HighwayParams,
};
pub use graph::{ArcId, EdgeId, Graph, GraphBuilder, GraphError, NodeId};
pub use mincut::{brute_force_min_cut, cut_weight, stoer_wagner, unweighted_min_cut, Cut};
pub use mst::{kruskal, mst_key, prim, verify_spanning_forest, SpanningForest};
pub use sssp::{bounded_hop_distances, dijkstra, W_UNREACHABLE};
pub use subgraph::EdgeSubgraph;
pub use union_find::UnionFind;
pub use weighted::{WeightedGraph, WeightedGraphError};
