//! Exact global minimum cut (Stoer–Wagner) and cut-evaluation helpers.
//!
//! Correctness oracle for the (1+ε)-approximate distributed min-cut of
//! `lcs-apps` (Corollary 1.2).

use crate::graph::{Graph, NodeId};
use crate::weighted::WeightedGraph;

/// A global cut: its total weight and one side of the bipartition
/// (parent node ids).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cut {
    /// Total weight of edges crossing the cut.
    pub weight: u64,
    /// One side of the bipartition (non-empty, proper subset).
    pub side: Vec<NodeId>,
}

/// Exact global min cut via Stoer–Wagner. Requires a connected graph with
/// at least two nodes; returns `None` otherwise.
///
/// Runs in `O(n³)` with the simple array implementation — an oracle for
/// verification-sized graphs.
///
/// # Examples
///
/// ```
/// use lcs_graph::{WeightedGraph, stoer_wagner};
///
/// // Two triangles joined by a single light edge.
/// let wg = WeightedGraph::from_weighted_edges(
///     6,
///     &[(0, 1, 5), (1, 2, 5), (2, 0, 5), (3, 4, 5), (4, 5, 5), (5, 3, 5), (2, 3, 1)],
/// ).unwrap();
/// let cut = stoer_wagner(&wg).unwrap();
/// assert_eq!(cut.weight, 1);
/// ```
pub fn stoer_wagner(wg: &WeightedGraph) -> Option<Cut> {
    let g = wg.graph();
    let n = g.n();
    if n < 2 {
        return None;
    }
    // Dense weight matrix of the (multi-)graph after contractions.
    let mut w = vec![vec![0u64; n]; n];
    for e in g.edge_ids() {
        let (u, v) = g.edge_endpoints(e);
        w[u as usize][v as usize] += wg.weight(e);
        w[v as usize][u as usize] += wg.weight(e);
    }
    // merged[v] = original nodes currently contracted into v.
    let mut merged: Vec<Vec<NodeId>> = (0..n as u32).map(|v| vec![v]).collect();
    let mut active: Vec<usize> = (0..n).collect();
    let mut best: Option<Cut> = None;

    while active.len() > 1 {
        // Maximum adjacency (minimum cut phase) starting from active[0].
        let mut in_a = vec![false; n];
        let mut wsum = vec![0u64; n];
        let mut order = Vec::with_capacity(active.len());
        for _ in 0..active.len() {
            // Pick the most tightly connected unvisited active node.
            let mut pick = usize::MAX;
            for &v in &active {
                if !in_a[v] && (pick == usize::MAX || wsum[v] > wsum[pick]) {
                    pick = v;
                }
            }
            in_a[pick] = true;
            order.push(pick);
            for &v in &active {
                if !in_a[v] {
                    wsum[v] += w[pick][v];
                }
            }
        }
        let t = *order.last().expect("at least one active node");
        let s = order[order.len() - 2];
        let cut_weight = {
            // Weight of the cut separating t from the rest = its final wsum
            // value = sum of w[t][v] over other active v.
            active
                .iter()
                .filter(|&&v| v != t)
                .map(|&v| w[t][v])
                .sum::<u64>()
        };
        let candidate = Cut {
            weight: cut_weight,
            side: merged[t].clone(),
        };
        if best.as_ref().is_none_or(|b| candidate.weight < b.weight) {
            best = Some(candidate);
        }
        // Contract t into s.
        let t_merged = std::mem::take(&mut merged[t]);
        merged[s].extend(t_merged);
        for &v in &active {
            if v != s && v != t {
                w[s][v] += w[t][v];
                w[v][s] = w[s][v];
            }
        }
        active.retain(|&v| v != t);
    }

    let best = best?;
    // A connected graph yields a proper cut; a disconnected one yields
    // weight 0 with a proper side, which is also a legitimate min cut —
    // but we promise connectivity to callers, so check properness only.
    if best.side.is_empty() || best.side.len() == n {
        return None;
    }
    Some(best)
}

/// Evaluates the weight of the cut defined by `side` (parent ids).
///
/// # Panics
///
/// Panics if a node id in `side` is out of range.
pub fn cut_weight(wg: &WeightedGraph, side: &[NodeId]) -> u64 {
    let g = wg.graph();
    let mut in_side = vec![false; g.n()];
    for &v in side {
        in_side[v as usize] = true;
    }
    let mut total = 0u64;
    for e in g.edge_ids() {
        let (u, v) = g.edge_endpoints(e);
        if in_side[u as usize] != in_side[v as usize] {
            total += wg.weight(e);
        }
    }
    total
}

/// Exhaustive min cut over all `2^(n-1) - 1` proper bipartitions.
/// Only usable for `n <= ~20`; test oracle for [`stoer_wagner`].
pub fn brute_force_min_cut(wg: &WeightedGraph) -> Option<u64> {
    let n = wg.graph().n();
    if !(2..=24).contains(&n) {
        return None;
    }
    let mut best = u64::MAX;
    // Fix node 0 on one side to halve the enumeration.
    for mask in 1u32..(1 << (n - 1)) {
        let side: Vec<NodeId> = (0..n as u32 - 1)
            .filter(|&v| mask >> v & 1 == 1)
            .map(|v| v + 1)
            .collect();
        best = best.min(cut_weight(wg, &side));
    }
    (best != u64::MAX).then_some(best)
}

/// Unweighted edge connectivity helper: treats every edge as weight 1.
pub fn unweighted_min_cut(g: &Graph) -> Option<u64> {
    let wg = WeightedGraph::new(g.clone(), vec![1; g.m()]).ok()?;
    stoer_wagner(&wg).map(|c| c.weight)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn bridge_is_the_min_cut() {
        let wg = WeightedGraph::from_weighted_edges(
            6,
            &[
                (0, 1, 5),
                (1, 2, 5),
                (2, 0, 5),
                (3, 4, 5),
                (4, 5, 5),
                (5, 3, 5),
                (2, 3, 2),
            ],
        )
        .unwrap();
        let cut = stoer_wagner(&wg).unwrap();
        assert_eq!(cut.weight, 2);
        assert_eq!(cut_weight(&wg, &cut.side), cut.weight);
        let mut side = cut.side.clone();
        side.sort_unstable();
        assert!(side == vec![0, 1, 2] || side == vec![3, 4, 5]);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..15 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let n = rng.gen_range(4..9);
            let mut edges = Vec::new();
            for v in 1..n as u32 {
                let u = rng.gen_range(0..v);
                edges.push((u, v, rng.gen_range(1..20)));
            }
            for _ in 0..n {
                let u = rng.gen_range(0..n as u32);
                let v = rng.gen_range(0..n as u32);
                if u != v {
                    edges.push((u, v, rng.gen_range(1..20)));
                }
            }
            let wg = WeightedGraph::from_weighted_edges(n, &edges).unwrap();
            let sw = stoer_wagner(&wg).unwrap().weight;
            let bf = brute_force_min_cut(&wg).unwrap();
            assert_eq!(sw, bf, "seed {seed}");
        }
    }

    #[test]
    fn unweighted_cycle_has_connectivity_two() {
        let mut edges: Vec<(NodeId, NodeId)> = (0..7).map(|i| (i, (i + 1) % 8)).collect();
        edges.push((7, 0));
        let g = Graph::from_edges(8, &edges).unwrap();
        assert_eq!(unweighted_min_cut(&g), Some(2));
    }

    #[test]
    fn too_small_graphs_yield_none() {
        let wg = WeightedGraph::from_weighted_edges(1, &[]).unwrap();
        assert!(stoer_wagner(&wg).is_none());
        let empty = WeightedGraph::from_weighted_edges(0, &[]).unwrap();
        assert!(stoer_wagner(&empty).is_none());
    }

    #[test]
    fn disconnected_graph_reports_zero_cut() {
        let wg = WeightedGraph::from_weighted_edges(4, &[(0, 1, 3), (2, 3, 3)]).unwrap();
        let cut = stoer_wagner(&wg).unwrap();
        assert_eq!(cut.weight, 0);
    }
}
